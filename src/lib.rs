//! # ranknet — Rank Position Forecasting in Car Racing
//!
//! A complete Rust reproduction of *"Rank Position Forecasting in Car
//! Racing"* (Peng et al., IPDPS 2021): the RankNet model (probabilistic
//! LSTM encoder–decoder + MLP pit-stop model with cause–effect
//! decomposition), every baseline the paper compares against, an
//! IndyCar-style race simulator standing in for the proprietary timing
//! logs, and the systems experiments (training throughput, roofline,
//! operator breakdown).
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`tensor`] — dense f32 matrix kernels with per-kernel profiling
//! * [`autodiff`] — tape-based reverse-mode AD
//! * [`nn`] — layers (LSTM, MLP, Transformer), Adam, training loop
//! * [`racesim`] — race simulator + dataset generator
//! * [`baselines`] — CurRank, ARIMA, RandomForest, SVR, gradient boosting
//! * [`core`] — RankNet itself, features, metrics, experiment runners
//! * [`perfmodel`] — analytic CPU/GPU/VE device models for the systems study
//! * [`serve`] — concurrent request-batching serving layer over the engine
//! * [`gateway`] — HTTP/1.1 network edge over the serving layer: JSON
//!   forecast API, `/metrics` exposition, SSE per-lap streams
//! * [`obs`] — unified observability: metrics registry, span tracing,
//!   operator profiling, Prometheus/JSONL exporters
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use ranknet_core as core;
pub use rpf_autodiff as autodiff;
pub use rpf_baselines as baselines;
pub use rpf_gateway as gateway;
pub use rpf_nn as nn;
pub use rpf_obs as obs;
pub use rpf_perfmodel as perfmodel;
pub use rpf_racesim as racesim;
pub use rpf_serve as serve;
pub use rpf_tensor as tensor;
