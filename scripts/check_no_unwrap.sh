#!/usr/bin/env bash
# Robustness gate: production code in the core, nn, serve, gateway and obs
# crates must not call `.unwrap()` / `.expect(` — failures there have typed
# error paths (TrainError, EngineError, ServeError, LifecycleError, HttpError,
# Result-returning persist), and the serving scheduler, the gateway's
# connection queue / lap bus and the obs registry recover poisoned locks
# instead of unwrapping them. The model-lifecycle
# modules (core::lifecycle and serve::lifecycle — the versioned store, the
# hot-swap slot, the shadow controller) sit inside the recursive core/serve
# walks below, so they are covered without listing them.
# Test modules are
# exempt: the awk pass strips `#[cfg(test)] mod ... { }` bodies by brace
# tracking before grepping.
set -euo pipefail
cd "$(dirname "$0")/.."

strip_test_mods() {
  awk '
    /#\[cfg\(test\)\]/ { intest = 1 }
    intest {
      n = gsub(/\{/, "{"); m = gsub(/\}/, "}")
      if (!entered && n > 0) entered = 1
      depth += n - m
      if (entered && depth <= 0) { intest = 0; entered = 0; depth = 0 }
      next
    }
    { print FILENAME ":" FNR ":" $0 }
  ' "$1"
}

fail=0
# Recursive so new submodules (e.g. a split-out nn::infer) stay covered
# without touching this script.
while IFS= read -r f; do
  hits=$(strip_test_mods "$f" | grep -E '\.unwrap\(\)|\.expect\(' || true)
  if [ -n "$hits" ]; then
    echo "$hits"
    fail=1
  fi
# crates/tensor stays excluded as a whole (par.rs joins worker threads with
# an intentional panic), but the batched decode kernels are serving-path
# production code and follow the typed-error discipline.
# The serve walk picks up the sharding modules (mailbox, shard, supervisor,
# router) recursively; perfmodel is modelling code and exempt except for the
# capacity planner, which feeds production fleet-sizing decisions.
# racesim is mostly pre-serving data generation and exempt, except the
# scenario engine, whose configs are a public API fed by benchmarks and the
# serving workload generators.
done < <(find crates/core/src crates/nn/src crates/serve/src crates/obs/src \
  crates/gateway/src crates/racesim/src/scenario \
  crates/tensor/src/batched.rs crates/perfmodel/src/capacity.rs -name '*.rs' | sort)

if [ "$fail" -ne 0 ]; then
  echo "error: .unwrap()/.expect( in non-test core/nn/serve/obs code (use a typed error path)" >&2
  exit 1
fi
echo "no-unwrap gate clean."
