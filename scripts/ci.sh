#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite.
#
#   scripts/ci.sh            # fmt --check, clippy -D warnings, tests
#
# Runs offline: all external crates resolve to the local stubs under
# crates/vendor/ via [patch.crates-io] (see CHANGES.md for why).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== no-unwrap gate (core/nn non-test code) =="
bash scripts/check_no_unwrap.sh

echo "== backend parity (tape-free runtime vs tape forward, bitwise) =="
cargo test -q -p rpf-nn --test infer_parity --offline

echo "== engine determinism (tape vs tape-free across thread counts) =="
cargo test -q -p ranknet-core --test engine_determinism --offline

echo "== cargo test (workspace) =="
cargo test -q --workspace --offline

echo "== cargo test (fault-inject matrix) =="
cargo test -q -p rpf-nn --features fault-inject --offline
cargo test -q -p ranknet-core --features fault-inject --offline

echo "CI green."
