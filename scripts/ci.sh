#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite.
#
#   scripts/ci.sh            # fmt --check, clippy -D warnings, tests
#
# Runs offline: all external crates resolve to the local stubs under
# crates/vendor/ via [patch.crates-io] (see CHANGES.md for why).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== no-unwrap gate (core/nn/serve/gateway/obs + capacity planner non-test code) =="
bash scripts/check_no_unwrap.sh

echo "== backend parity (tape-free bitwise + batched mirrors vs per-row) =="
cargo test -q -p rpf-nn --test infer_parity --offline

echo "== decode parity (batched vs tape within tolerance, bit-deterministic) =="
cargo test -q -p ranknet-core --test decode_parity --offline

echo "== engine determinism (every backend across thread counts) =="
cargo test -q -p ranknet-core --test engine_determinism --offline

echo "== engine cache bounds (LRU cap + eviction bit-determinism) =="
cargo test -q -p ranknet-core --test engine_cache --offline

echo "== lifecycle store (versioned artifacts, torn/corrupt quarantine) =="
cargo test -q -p ranknet-core --test lifecycle_store --offline

echo "== pit runtime rebuild (import invalidates the cached runtime) =="
cargo test -q -p ranknet-core --test pit_runtime_rebuild --offline

echo "== serving equivalence (batched + sharded == direct, bitwise) =="
cargo test -q -p rpf-serve --test serve_equivalence --offline

echo "== shard scaling gate (4 shards >= 1.6x one shard, virtual clock, release) =="
cargo test -q -p rpf-serve --test shard_scaling_gate --release --offline

echo "== capacity planner round-trip (perfmodel plan vs sharded replay) =="
cargo test -q -p rpf-perfmodel --test capacity --offline

echo "== serving conservation properties =="
cargo test -q -p rpf-serve --test scheduler_props --offline

echo "== serving metrics golden (virtual-clock replay, incl. swap trace) =="
cargo test -q -p rpf-serve --test metrics_golden --offline

echo "== lifecycle hot-swap (zero-downtime swap, shadow promote/rollback) =="
cargo test -q -p rpf-serve --test lifecycle_swap --offline

echo "== serving soak smoke (<= 10 s) =="
cargo test -q -p rpf-serve --test soak_smoke --offline

echo "== gateway HTTP parser properties (torn reads, pipelining, byte soup) =="
cargo test -q -p rpf-gateway --test http_parser_props --offline

echo "== gateway wire golden (/metrics bytes == exporter output) =="
cargo test -q -p rpf-gateway --test wire_golden --offline

echo "== gateway response equivalence (JSON over TCP == direct engine, bitwise) =="
cargo test -q -p rpf-gateway --test response_equivalence --offline

echo "== gateway fault matrix (slow-loris, disconnect, 429 burst, drain) =="
cargo test -q -p rpf-gateway --test gateway_faults --offline

echo "== gateway SSE streams (live + replay + terminal event) =="
cargo test -q -p rpf-gateway --test sse_stream --offline

echo "== gateway soak smoke over real sockets (<= 10 s) =="
cargo test -q -p rpf-gateway --test gateway_soak --offline

echo "== obs unit suite (registry, spans, ops, exporters) =="
cargo test -q -p rpf-obs --offline

echo "== obs recording properties (concurrent == sequential totals) =="
cargo test -q -p rpf-obs --test registry_props --offline

echo "== obs export golden (bucket edges + exporter bytes) =="
cargo test -q -p rpf-obs --test export_golden --offline

echo "== engine observability (registry counters, phase spans) =="
cargo test -q -p ranknet-core --test engine_obs --offline

echo "== obs disabled-overhead gate (< 1% of decode, release) =="
cargo test -q -p rpf-bench --test obs_overhead --release --offline

echo "== decode perf gate (batched beats per-row at batch >= 16, release) =="
cargo test -q -p rpf-bench --test decode_perf_gate --release --offline

echo "== scenario properties (per-family determinism, physicality, tyre aging) =="
cargo test -q -p rpf-racesim --test scenario_props --offline

echo "== scenario goldens (IndyCar bit-equal to legacy, family shape bands) =="
cargo test -q -p rpf-racesim --test scenario_golden --offline

echo "== feature-schema compatibility (v2 artifacts load + serve, incl. ModelStore) =="
cargo test -q -p ranknet-core --test schema_compat --offline

echo "== scenario-mixed serving workload (labels off the wire, every family served) =="
cargo test -q -p rpf-serve --test scenario_mix --offline

echo "== cross-scenario bench smoke (4 models x 4 families end to end, release) =="
cargo test -q -p rpf-bench --test scenario_smoke --release --offline

echo "== cargo test (workspace) =="
cargo test -q --workspace --offline

echo "== cargo test (fault-inject matrix) =="
cargo test -q -p rpf-nn --features fault-inject --offline
cargo test -q -p ranknet-core --features fault-inject --offline
cargo test -q -p rpf-serve --features fault-inject --offline

echo "== lifecycle + shard fault matrix (panic mid-swap, torn publish, corrupt checksum, shard kill/poison, aborted rolling swap) =="
cargo test -q -p rpf-serve --test fault_inject --features fault-inject --offline

echo "CI green."
