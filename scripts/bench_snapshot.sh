#!/usr/bin/env bash
# Machine-readable perf snapshot: runs the forecasting + serving criterion
# groups and writes BENCH_<date>.json with the headline numbers (decode
# ms/iter per backend, serving req/s with p50/p99 latency per mode/load —
# including the `swap` mode, p99 under a continuous model hot-swap thread),
# so the perf trajectory is diffable across PRs.
#
#   scripts/bench_snapshot.sh                  # writes BENCH_YYYY-MM-DD.json
#   scripts/bench_snapshot.sh out.json         # explicit output path
#   scripts/bench_snapshot.sh shards [out]     # scale-out snapshot only:
#                                              # the shard1/shard2/shard4
#                                              # serving lines, written to
#                                              # BENCH_YYYY-MM-DD_shards.json
#   scripts/bench_snapshot.sh scenarios [out]  # cross-scenario accuracy
#                                              # snapshot: `repro scenarios`
#                                              # SignAcc/MAE per (family,
#                                              # model) cell, written to
#                                              # BENCH_YYYY-MM-DD_scenarios.json
#
# Runs offline against the vendored criterion stub, whose output format is
# stable: stdout bench lines `label  <t>/iter  [lo .. hi]` and the serving
# summary on stderr `serving <mode> load=<n> clients: <r> req/s  p50=..`.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="full"
if [ "${1:-}" = "shards" ]; then
  mode="shards"
  shift
elif [ "${1:-}" = "scenarios" ]; then
  mode="scenarios"
  shift
fi
case "$mode" in
  shards)    out="${1:-BENCH_$(date +%F)_shards.json}" ;;
  scenarios) out="${1:-BENCH_$(date +%F)_scenarios.json}" ;;
  *)         out="${1:-BENCH_$(date +%F).json}" ;;
esac
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if [ "$mode" = "scenarios" ]; then
  # Accuracy snapshot, not a perf one: the cross-scenario table's
  # machine-parseable cells (`scenario <family> model=<m> sign_acc=..
  # mae=.. n=..`), one JSON entry per (scenario family, model family).
  echo "== cargo run -p rpf-bench -- scenarios ==" >&2
  cargo run -q --release -p rpf-bench --offline -- scenarios \
    >"$tmp/scenarios.out" 2>"$tmp/scenarios.err"

  scen_json=$(awk -v q='"' '
    /^scenario / {
      family = $2
      model = $3; sub(/^model=/, "", model)
      sa = $4;   sub(/^sign_acc=/, "", sa)
      mae = $5;  sub(/^mae=/, "", mae)
      n = $6;    sub(/^n=/, "", n)
      if (c++) printf ",\n"
      printf "    {%sscenario%s: %s%s%s, %smodel%s: %s%s%s, %ssign_acc%s: %.4f, %smae%s: %.4f, %sn%s: %d}", \
        q, q, q, family, q, q, q, q, model, q, q, q, sa + 0, q, q, mae + 0, q, q, n + 0
    }
    END { if (c) printf "\n" }
  ' "$tmp/scenarios.out")

  # Cross-scenario drift guard: a snapshot is meaningless unless every
  # scenario family reported — a missing family means the bench output
  # format or the family enumeration drifted.
  for want in IndyCar TyreStrategy CautionRegime WetDry; do
    if ! printf '%s' "$scen_json" | grep -q "\"scenario\": \"$want\""; then
      echo "error: scenarios bench emitted no $want cells; raw output in $tmp kept" >&2
      trap - EXIT
      exit 1
    fi
  done

  {
    echo "{"
    echo "  \"date\": \"$(date +%F)\","
    echo "  \"git\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
    echo "  \"scenarios\": ["
    printf '%s\n' "$scen_json"
    echo "  ]"
    echo "}"
  } >"$out"
  echo "wrote $out" >&2
  exit 0
fi

if [ "$mode" = "full" ]; then
  echo "== cargo bench -p rpf-bench --bench forecasting ==" >&2
  cargo bench -q -p rpf-bench --bench forecasting --offline \
    >"$tmp/forecasting.out" 2>"$tmp/forecasting.err"
fi

echo "== cargo bench -p rpf-bench --bench serving ==" >&2
cargo bench -q -p rpf-bench --bench serving --offline \
  >"$tmp/serving.out" 2>"$tmp/serving.err"

# "1.234 ms" / "567 µs" / "2.3 s" (criterion stub) and "1.234ms" /
# "567.8µs" (Duration debug) all normalise to milliseconds.
to_ms='
function to_ms(v, u) {
  if (u == "s")  return v * 1000.0
  if (u == "ms") return v
  if (u ~ /^(µs|us)$/) return v / 1000.0
  if (u == "ns") return v / 1e6
  return v
}'

# Decode bench lines: `decode_backend/<backend>/<threads>  <t> <unit>/iter ...`
decode_json=""
if [ "$mode" = "full" ]; then
  decode_json=$(awk -v q='"' "$to_ms"'
    $1 ~ /^decode_backend\// {
      split($1, parts, "/")
      t = $2; unit = $3; sub(/\/iter.*/, "", unit)
      ms = to_ms(t + 0, unit)
      if (n++) printf ",\n"
      printf "    {%sbackend%s: %s%s%s, %sthreads%s: %s, %sms_per_iter%s: %.4f}", \
        q, q, q, parts[2], q, q, q, parts[3] + 0, q, q, ms
    }
    END { if (n) printf "\n" }
  ' "$tmp/forecasting.out")
fi

# Serving summary lines (stderr): `serving <mode> load=<n> clients:
# <r> req/s  p50=<d>  p99=<d>` where <d> is a Duration debug string.
# The mode and load columns are right-aligned (`load= 4` vs `load=32`),
# so extract by regex match rather than by field position.
serving_json=$(awk -v q='"' "$to_ms"'
function dur_ms(s,   v, u) {
  u = s; sub(/^[0-9.]+/, "", u)
  v = s; sub(/[^0-9.].*$/, "", v)
  return to_ms(v + 0, u)
}
  /^serving / {
    mode = $2
    load = $0;  sub(/^.*load= */, "", load);  sub(/ .*$/, "", load)
    rps = $0;   sub(/^.*clients: */, "", rps); sub(/ .*$/, "", rps)
    p50 = $0;   sub(/^.*p50=/, "", p50);      sub(/ .*$/, "", p50)
    p99 = $0;   sub(/^.*p99=/, "", p99);      sub(/ .*$/, "", p99)
    if (n++) printf ",\n"
    printf "    {%smode%s: %s%s%s, %sclients%s: %s, %sreq_per_s%s: %.1f, %sp50_ms%s: %.4f, %sp99_ms%s: %.4f}", \
      q, q, q, mode, q, q, q, load + 0, q, q, rps + 0, q, q, dur_ms(p50), q, q, dur_ms(p99)
  }
  END { if (n) printf "\n" }
' "$tmp/serving.err")

# The serving summary parse feeds the perf trajectory; an empty result
# means the bench output format drifted and the script must be updated.
if [ -z "$serving_json" ]; then
  echo "error: failed to parse bench output (format drift?); raw output in $tmp kept" >&2
  trap - EXIT
  exit 1
fi

if [ "$mode" = "shards" ]; then
  # Scale-out drift guard: the snapshot is meaningless unless all three
  # fleet sizes reported — a missing line means the bench format or the
  # shard summary loop drifted.
  shards_json=$(printf '%s\n' "$serving_json" | grep '"mode": "shard' || true)
  for want in shard1 shard2 shard4; do
    if ! printf '%s' "$shards_json" | grep -q "\"mode\": \"$want\""; then
      echo "error: serving bench emitted no $want summary line; raw output in $tmp kept" >&2
      trap - EXIT
      exit 1
    fi
  done
  # Re-join the filtered entries with commas (grep stripped the trailing
  # ones from all but the last line).
  shards_json=$(printf '%s\n' "$shards_json" | sed 's/,$//' | sed '$!s/$/,/')
  {
    echo "{"
    echo "  \"date\": \"$(date +%F)\","
    echo "  \"git\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
    echo "  \"shards\": ["
    printf '%s\n' "$shards_json"
    echo "  ]"
    echo "}"
  } >"$out"
  echo "wrote $out" >&2
  exit 0
fi

if [ -z "$decode_json" ]; then
  echo "error: failed to parse bench output (format drift?); raw output in $tmp kept" >&2
  trap - EXIT
  exit 1
fi

# The lifecycle PR's headline figure is p99 under continuous hot-swap; a
# snapshot without the swap mode silently loses that trajectory.
if ! printf '%s' "$serving_json" | grep -q '"mode": "swap"'; then
  echo "error: serving bench emitted no swap-mode summary lines; raw output in $tmp kept" >&2
  trap - EXIT
  exit 1
fi

{
  echo "{"
  echo "  \"date\": \"$(date +%F)\","
  echo "  \"git\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
  echo "  \"decode\": ["
  printf '%s\n' "$decode_json"
  echo "  ],"
  echo "  \"serving\": ["
  printf '%s\n' "$serving_json"
  echo "  ]"
  echo "}"
} >"$out"

echo "wrote $out" >&2
