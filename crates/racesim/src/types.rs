//! The record schema of the paper's Fig 1a.

use serde::{Deserialize, Serialize};

/// Whether a lap was a normal racing lap (`T`) or a pit-stop lap (`P`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LapStatus {
    /// Normal lap (`T` in the IndyCar feed).
    Normal,
    /// The car crossed SF/SFP through the pit lane this lap (`P`).
    Pit,
}

impl LapStatus {
    /// The single-letter code used by the IndyCar data feed and Fig 1a.
    pub fn code(self) -> char {
        match self {
            LapStatus::Normal => 'T',
            LapStatus::Pit => 'P',
        }
    }

    pub fn is_pit(self) -> bool {
        matches!(self, LapStatus::Pit)
    }
}

/// Track-wide flag state for a lap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrackStatus {
    /// Green flag — normal racing.
    Green,
    /// Yellow flag — full-course caution behind the safety car.
    Yellow,
}

impl TrackStatus {
    /// The single-letter code used by the IndyCar data feed and Fig 1a.
    pub fn code(self) -> char {
        match self {
            TrackStatus::Green => 'G',
            TrackStatus::Yellow => 'Y',
        }
    }

    pub fn is_caution(self) -> bool {
        matches!(self, TrackStatus::Yellow)
    }
}

/// One timing record: car `car_id` completing lap `lap`.
///
/// Matches the columns of the paper's Fig 1a. `rank` is the order in which
/// cars completed this lap (1 = leader), computed from cumulative elapsed
/// time exactly as the paper describes in §II-A.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LapRecord {
    /// 1-based rank at completion of this lap.
    pub rank: u16,
    /// Car number (stable within a season).
    pub car_id: u16,
    /// 1-based lap number.
    pub lap: u16,
    /// Time to complete this lap, seconds.
    pub lap_time: f32,
    /// Gap to the leader's cumulative time at this lap, seconds.
    pub time_behind_leader: f32,
    /// Normal or pit lap for this car.
    pub lap_status: LapStatus,
    /// Green or yellow flag for this lap.
    pub track_status: TrackStatus,
}

impl LapRecord {
    /// Render like the paper's Fig 1a table row.
    pub fn display_row(&self) -> String {
        format!(
            "{:>4} {:>5} {:>4} {:>9.4} {:>9.4}  {}  {}",
            self.rank,
            self.car_id,
            self.lap,
            self.lap_time,
            self.time_behind_leader,
            self.lap_status.code(),
            self.track_status.code()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_match_fig1a() {
        assert_eq!(LapStatus::Normal.code(), 'T');
        assert_eq!(LapStatus::Pit.code(), 'P');
        assert_eq!(TrackStatus::Green.code(), 'G');
        assert_eq!(TrackStatus::Yellow.code(), 'Y');
    }

    #[test]
    fn predicates() {
        assert!(LapStatus::Pit.is_pit());
        assert!(!LapStatus::Normal.is_pit());
        assert!(TrackStatus::Yellow.is_caution());
        assert!(!TrackStatus::Green.is_caution());
    }

    #[test]
    fn record_serde_roundtrip() {
        let r = LapRecord {
            rank: 3,
            car_id: 12,
            lap: 31,
            lap_time: 45.6879,
            time_behind_leader: 1.6026,
            lap_status: LapStatus::Normal,
            track_status: TrackStatus::Green,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: LapRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn display_row_contains_fields() {
        let r = LapRecord {
            rank: 1,
            car_id: 1,
            lap: 31,
            lap_time: 44.6091,
            time_behind_leader: 0.0,
            lap_status: LapStatus::Normal,
            track_status: TrackStatus::Green,
        };
        let row = r.display_row();
        assert!(row.contains("44.6091"));
        assert!(row.contains('T'));
        assert!(row.contains('G'));
    }
}
