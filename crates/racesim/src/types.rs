//! The record schema of the paper's Fig 1a.

use serde::{Deserialize, Serialize};

/// Whether a lap was a normal racing lap (`T`) or a pit-stop lap (`P`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LapStatus {
    /// Normal lap (`T` in the IndyCar feed).
    Normal,
    /// The car crossed SF/SFP through the pit lane this lap (`P`).
    Pit,
}

impl LapStatus {
    /// The single-letter code used by the IndyCar data feed and Fig 1a.
    pub fn code(self) -> char {
        match self {
            LapStatus::Normal => 'T',
            LapStatus::Pit => 'P',
        }
    }

    pub fn is_pit(self) -> bool {
        matches!(self, LapStatus::Pit)
    }
}

/// Track-wide flag state for a lap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrackStatus {
    /// Green flag — normal racing.
    Green,
    /// Yellow flag — full-course caution behind the safety car.
    Yellow,
}

impl TrackStatus {
    /// The single-letter code used by the IndyCar data feed and Fig 1a.
    pub fn code(self) -> char {
        match self {
            TrackStatus::Green => 'G',
            TrackStatus::Yellow => 'Y',
        }
    }

    pub fn is_caution(self) -> bool {
        matches!(self, TrackStatus::Yellow)
    }
}

/// One timing record: car `car_id` completing lap `lap`.
///
/// Matches the columns of the paper's Fig 1a. `rank` is the order in which
/// cars completed this lap (1 = leader), computed from cumulative elapsed
/// time exactly as the paper describes in §II-A.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct LapRecord {
    /// 1-based rank at completion of this lap.
    pub rank: u16,
    /// Car number (stable within a season).
    pub car_id: u16,
    /// 1-based lap number.
    pub lap: u16,
    /// Time to complete this lap, seconds.
    pub lap_time: f32,
    /// Gap to the leader's cumulative time at this lap, seconds.
    pub time_behind_leader: f32,
    /// Normal or pit lap for this car.
    pub lap_status: LapStatus,
    /// Green or yellow flag for this lap.
    pub track_status: TrackStatus,
    /// Tyre compound fitted this lap (0 = single-compound series such as
    /// the IndyCar baseline; F1-style scenarios use 1..=3 soft/medium/hard).
    pub compound: u8,
    /// Laps since the current tyre set was fitted, counted entering this
    /// lap (0 on the out-lap; mirrors the pit-age feature of `core`).
    pub tyre_age: u16,
    /// Track wetness in `[0, 1]`; 0.0 for dry-only scenarios.
    pub track_wetness: f32,
    /// Fuel-saving pressure in `[0, 1]` (lift-and-coast target); 0.0 when
    /// the scenario does not model fuel saving.
    pub fuel_target: f32,
}

// Hand-written so payloads recorded before the scenario covariates existed
// still deserialize: the vendored derive has no `#[serde(default)]`, so the
// four covariates fall back to their documented "unmodelled" zeros via
// `take_field_or` when absent.
impl<'de> Deserialize<'de> for LapRecord {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match serde::Deserializer::deserialize_content(deserializer)? {
            serde::Content::Map(mut fields) => Ok(LapRecord {
                rank: serde::de::take_field(&mut fields, "rank")?,
                car_id: serde::de::take_field(&mut fields, "car_id")?,
                lap: serde::de::take_field(&mut fields, "lap")?,
                lap_time: serde::de::take_field(&mut fields, "lap_time")?,
                time_behind_leader: serde::de::take_field(&mut fields, "time_behind_leader")?,
                lap_status: serde::de::take_field(&mut fields, "lap_status")?,
                track_status: serde::de::take_field(&mut fields, "track_status")?,
                compound: serde::de::take_field_or(&mut fields, "compound", 0u8)?,
                tyre_age: serde::de::take_field_or(&mut fields, "tyre_age", 0u16)?,
                track_wetness: serde::de::take_field_or(&mut fields, "track_wetness", 0.0f32)?,
                fuel_target: serde::de::take_field_or(&mut fields, "fuel_target", 0.0f32)?,
            }),
            other => Err(<D::Error as serde::de::Error>::custom(format!(
                "expected map for struct LapRecord, got {other:?}"
            ))),
        }
    }
}

impl LapRecord {
    /// Render like the paper's Fig 1a table row.
    pub fn display_row(&self) -> String {
        format!(
            "{:>4} {:>5} {:>4} {:>9.4} {:>9.4}  {}  {}",
            self.rank,
            self.car_id,
            self.lap,
            self.lap_time,
            self.time_behind_leader,
            self.lap_status.code(),
            self.track_status.code()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_match_fig1a() {
        assert_eq!(LapStatus::Normal.code(), 'T');
        assert_eq!(LapStatus::Pit.code(), 'P');
        assert_eq!(TrackStatus::Green.code(), 'G');
        assert_eq!(TrackStatus::Yellow.code(), 'Y');
    }

    #[test]
    fn predicates() {
        assert!(LapStatus::Pit.is_pit());
        assert!(!LapStatus::Normal.is_pit());
        assert!(TrackStatus::Yellow.is_caution());
        assert!(!TrackStatus::Green.is_caution());
    }

    #[test]
    fn record_serde_roundtrip() {
        let r = LapRecord {
            rank: 3,
            car_id: 12,
            lap: 31,
            lap_time: 45.6879,
            time_behind_leader: 1.6026,
            lap_status: LapStatus::Normal,
            track_status: TrackStatus::Green,
            compound: 2,
            tyre_age: 14,
            track_wetness: 0.25,
            fuel_target: 0.5,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: LapRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn record_deserializes_pre_scenario_payloads() {
        // A record serialized before the scenario covariates existed: the
        // four new fields must default to their unmodelled zeros.
        let json = r#"{"rank":3,"car_id":12,"lap":31,"lap_time":45.6879,
            "time_behind_leader":1.6026,"lap_status":"Normal",
            "track_status":"Green"}"#;
        let back: LapRecord = serde_json::from_str(json).unwrap();
        assert_eq!(back.rank, 3);
        assert_eq!(back.compound, 0);
        assert_eq!(back.tyre_age, 0);
        assert_eq!(back.track_wetness, 0.0);
        assert_eq!(back.fuel_target, 0.0);
    }

    #[test]
    fn display_row_contains_fields() {
        let r = LapRecord {
            rank: 1,
            car_id: 1,
            lap: 31,
            lap_time: 44.6091,
            time_behind_leader: 0.0,
            lap_status: LapStatus::Normal,
            track_status: TrackStatus::Green,
            compound: 0,
            tyre_age: 0,
            track_wetness: 0.0,
            fuel_target: 0.0,
        };
        let row = r.display_row();
        assert!(row.contains("44.6091"));
        assert!(row.contains('T'));
        assert!(row.contains('G'));
    }
}
