//! Statistics over simulated races: everything needed for Fig 4 (pit-stop
//! analysis) and Fig 6 (dataset distribution).

use crate::sim::RaceResult;
use crate::types::LapStatus;
use serde::Serialize;

/// One pit stop with its context.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PitStop {
    pub car_id: u16,
    /// Lap on which the stop happened.
    pub lap: u16,
    /// Laps since the previous stop (or the start).
    pub stint_length: u16,
    /// True if the stop happened under yellow ("caution pit").
    pub caution: bool,
    /// Rank immediately before the stop minus rank two laps after
    /// (negative = positions lost).
    pub rank_change: i32,
}

/// Extract every pit stop in a race with stint length and rank impact.
pub fn pit_stops(race: &RaceResult) -> Vec<PitStop> {
    let mut out = Vec::new();
    for car in &race.field {
        let recs = race.car_records(car.car_id);
        let mut last_pit_lap = 0u16;
        for (i, rec) in recs.iter().enumerate() {
            if rec.lap_status == LapStatus::Pit {
                let before = if i > 0 { recs[i - 1].rank } else { rec.rank };
                let after_idx = (i + 2).min(recs.len() - 1);
                let after = recs[after_idx].rank;
                out.push(PitStop {
                    car_id: car.car_id,
                    lap: rec.lap,
                    stint_length: rec.lap - last_pit_lap,
                    caution: rec.track_status.is_caution(),
                    rank_change: before as i32 - after as i32,
                });
                last_pit_lap = rec.lap;
            }
        }
    }
    out
}

/// Fig 6's x-axis: the fraction of laps on which at least one car pits.
pub fn pit_laps_ratio(race: &RaceResult) -> f32 {
    let last_lap = race.records.iter().map(|r| r.lap).max().unwrap_or(0);
    if last_lap == 0 {
        return 0.0;
    }
    let mut pit_lap = vec![false; last_lap as usize + 1];
    for r in &race.records {
        if r.lap_status == LapStatus::Pit {
            pit_lap[r.lap as usize] = true;
        }
    }
    pit_lap.iter().filter(|&&p| p).count() as f32 / last_lap as f32
}

/// Fig 6's y-axis: the fraction of (car, lap) points whose rank differs
/// from the same car's rank one lap earlier.
pub fn rank_changes_ratio(race: &RaceResult) -> f32 {
    let mut changes = 0usize;
    let mut total = 0usize;
    for car in &race.field {
        let recs = race.car_records(car.car_id);
        for w in recs.windows(2) {
            total += 1;
            if w[0].rank != w[1].rank {
                changes += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        changes as f32 / total as f32
    }
}

/// Histogram helper: counts of `values` in `[0, max)` bucketed by `width`.
pub fn histogram(values: impl IntoIterator<Item = f32>, max: f32, width: f32) -> Vec<usize> {
    let buckets = (max / width).ceil() as usize;
    let mut h = vec![0usize; buckets];
    for v in values {
        if v >= 0.0 && v < max {
            h[(v / width) as usize] += 1;
        }
    }
    h
}

/// Summary statistics of a set of stints, split by pit type (Fig 4).
#[derive(Clone, Debug, Serialize)]
pub struct PitSummary {
    pub normal_count: usize,
    pub caution_count: usize,
    pub normal_stint_mean: f32,
    pub caution_stint_mean: f32,
    pub normal_stint_max: u16,
    pub caution_stint_max: u16,
    /// Mean |rank change| across normal pits.
    pub normal_rank_impact: f32,
    /// Mean |rank change| across caution pits.
    pub caution_rank_impact: f32,
    /// Fraction of stints shorter than 24 laps among normal pits
    /// (the paper's "lower section ... keeps a low probability of <10%").
    pub short_stint_fraction: f32,
}

/// Aggregate pit statistics over many races.
pub fn summarize_pits(stops: &[PitStop]) -> PitSummary {
    let (normal, caution): (Vec<&PitStop>, Vec<&PitStop>) = stops.iter().partition(|p| !p.caution);
    let mean_stint = |v: &[&PitStop]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().map(|p| p.stint_length as f32).sum::<f32>() / v.len() as f32
        }
    };
    let mean_abs_change = |v: &[&PitStop]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter()
                .map(|p| p.rank_change.unsigned_abs() as f32)
                .sum::<f32>()
                / v.len() as f32
        }
    };
    PitSummary {
        normal_count: normal.len(),
        caution_count: caution.len(),
        normal_stint_mean: mean_stint(&normal),
        caution_stint_mean: mean_stint(&caution),
        normal_stint_max: normal.iter().map(|p| p.stint_length).max().unwrap_or(0),
        caution_stint_max: caution.iter().map(|p| p.stint_length).max().unwrap_or(0),
        normal_rank_impact: mean_abs_change(&normal),
        caution_rank_impact: mean_abs_change(&caution),
        short_stint_fraction: if normal.is_empty() {
            0.0
        } else {
            normal.iter().filter(|p| p.stint_length < 24).count() as f32 / normal.len() as f32
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate_race;
    use crate::track::{Event, EventConfig};

    fn indy_pits() -> Vec<PitStop> {
        let mut stops = Vec::new();
        for seed in 0..5u64 {
            let race = simulate_race(&EventConfig::for_race(Event::Indy500, 2016), seed);
            stops.extend(pit_stops(&race));
        }
        stops
    }

    #[test]
    fn fig4a_normal_stints_are_bell_shaped_and_bounded() {
        let stops = indy_pits();
        let s = summarize_pits(&stops);
        assert!(
            s.normal_count > 50,
            "need a meaningful sample, got {}",
            s.normal_count
        );
        assert!(
            (24.0..40.0).contains(&s.normal_stint_mean),
            "normal stint mean ~32 per Fig 4a, got {}",
            s.normal_stint_mean
        );
        assert!(
            s.normal_stint_max <= 50,
            "fuel window caps stints at 50 (Fig 4a)"
        );
        assert!(s.caution_stint_max <= 50);
    }

    #[test]
    fn fig4b_short_stint_tail_is_small() {
        let s = summarize_pits(&indy_pits());
        assert!(
            s.short_stint_fraction < 0.25,
            "short-stint tail should be a minority, got {}",
            s.short_stint_fraction
        );
    }

    #[test]
    fn normal_and_caution_pits_both_occur() {
        // Paper: 777 normal vs 763 caution pits — same order of magnitude.
        let s = summarize_pits(&indy_pits());
        assert!(s.normal_count > 0 && s.caution_count > 0);
        let ratio = s.normal_count as f32 / s.caution_count.max(1) as f32;
        assert!(
            (0.2..8.0).contains(&ratio),
            "normal/caution balance is way off: {} vs {}",
            s.normal_count,
            s.caution_count
        );
    }

    #[test]
    fn fig4d_caution_pits_cost_fewer_positions() {
        let s = summarize_pits(&indy_pits());
        assert!(
            s.caution_rank_impact < s.normal_rank_impact,
            "caution pits should cost fewer positions: caution {} vs normal {}",
            s.caution_rank_impact,
            s.normal_rank_impact
        );
    }

    #[test]
    fn fig6_event_ordering() {
        // Indy500 is the most dynamic event, Iowa the least (Fig 6).
        let avg = |event: Event, year: u16| {
            let mut p = 0.0;
            let mut r = 0.0;
            for seed in 0..3u64 {
                let race = simulate_race(&EventConfig::for_race(event, year), 1000 + seed);
                p += pit_laps_ratio(&race);
                r += rank_changes_ratio(&race);
            }
            (p / 3.0, r / 3.0)
        };
        let (ip, ir) = avg(Event::Indy500, 2018);
        let (wp, wr) = avg(Event::Iowa, 2018);
        assert!(ip > wp, "Indy500 pit ratio {ip} should exceed Iowa {wp}");
        assert!(
            ir > wr,
            "Indy500 rank-change ratio {ir} should exceed Iowa {wr}"
        );
    }

    #[test]
    fn histogram_buckets() {
        let h = histogram([0.5, 1.5, 1.6, 9.9, 10.0, -1.0], 10.0, 1.0);
        assert_eq!(h.len(), 10);
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 2);
        assert_eq!(h[9], 1); // 10.0 and -1.0 fall outside
        assert_eq!(h.iter().sum::<usize>(), 4);
    }

    #[test]
    fn ratios_are_in_unit_interval() {
        let race = simulate_race(&EventConfig::for_race(Event::Texas, 2018), 3);
        let p = pit_laps_ratio(&race);
        let r = rank_changes_ratio(&race);
        assert!((0.0..=1.0).contains(&p));
        assert!((0.0..=1.0).contains(&r));
    }
}

/// Empirical CDF of a set of values evaluated at integer points `0..=max`
/// (Fig 4b's stint-distance CDF).
pub fn empirical_cdf(values: &[f32], max: usize) -> Vec<f32> {
    let n = values.len().max(1) as f32;
    (0..=max)
        .map(|x| values.iter().filter(|&&v| v <= x as f32).count() as f32 / n)
        .collect()
}

#[cfg(test)]
mod cdf_tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_normalised() {
        let values = [3.0, 1.0, 4.0, 1.0, 5.0];
        let cdf = empirical_cdf(&values, 6);
        assert_eq!(cdf.len(), 7);
        assert!(cdf.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(cdf[0], 0.0);
        assert_eq!(cdf[6], 1.0);
        assert!((cdf[1] - 0.4).abs() < 1e-6); // two values <= 1
    }

    #[test]
    fn fig4b_normal_pit_cdf_sections() {
        // The paper reads three sections off the CDF: a short tail below 24
        // laps (<~10-15%), the bulk 24-40, and a long-stint remainder.
        let mut stops = Vec::new();
        for seed in 0..4u64 {
            let race = crate::sim::simulate_race(
                &crate::track::EventConfig::for_race(crate::track::Event::Indy500, 2017),
                seed,
            );
            stops.extend(pit_stops(&race));
        }
        let normal: Vec<f32> = stops
            .iter()
            .filter(|p| !p.caution)
            .map(|p| p.stint_length as f32)
            .collect();
        let cdf = empirical_cdf(&normal, 50);
        assert!(
            cdf[23] < 0.35,
            "short-stint section should be small, got {}",
            cdf[23]
        );
        assert!(cdf[40] > 0.8, "most stints end by lap 40, got {}", cdf[40]);
        assert_eq!(cdf[50], 1.0, "nothing beyond the fuel window");
    }
}
