//! Car / driver profiles.
//!
//! A profile captures the per-season identity of a car: how fast it is
//! relative to the field, how consistent, and how aggressive its pit
//! strategy is. Skills are drawn from a *year-seeded* RNG so the same car id
//! has the same underlying performance across all events of a season —
//! which is what makes the paper's CarId embedding informative across races
//! of the same year (§III-C: "CarId represents the skill level of the
//! driver and performance of the car").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-season profile of one car.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CarProfile {
    /// Car number (1-based, stable within a season).
    pub car_id: u16,
    /// Lap-time multiplier offset: negative is faster than the field.
    /// Applied as `base_lap * (1 + skill)`.
    pub skill: f32,
    /// Multiplier on the event's per-lap noise (driver consistency).
    pub consistency: f32,
    /// Fraction of the planned stint at which the team becomes willing to
    /// pit opportunistically under caution (0.5 = very aggressive).
    pub caution_pit_eagerness: f32,
}

/// Deterministically generate the season's field.
///
/// `skill_spread` is the event's `skill_spread_frac`; profiles for the same
/// `(year, car_id)` are identical across events up to that scale factor.
pub fn season_field(year: u16, n_cars: u16, skill_spread: f32) -> Vec<CarProfile> {
    let mut rng = StdRng::seed_from_u64(0xCA5_0000 + year as u64);
    (1..=n_cars)
        .map(|car_id| {
            // Approximate standard normal from the sum of uniforms.
            let z: f32 = (0..12).map(|_| rng.gen::<f32>()).sum::<f32>() - 6.0;
            CarProfile {
                car_id,
                skill: z * skill_spread,
                consistency: rng.gen_range(0.7..1.3),
                caution_pit_eagerness: rng.gen_range(0.3..0.55),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_is_deterministic_per_year() {
        let a = season_field(2018, 33, 0.004);
        let b = season_field(2018, 33, 0.004);
        assert_eq!(a.len(), 33);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.skill, y.skill);
            assert_eq!(x.car_id, y.car_id);
        }
    }

    #[test]
    fn different_years_differ() {
        let a = season_field(2018, 10, 0.004);
        let b = season_field(2019, 10, 0.004);
        assert!(a.iter().zip(&b).any(|(x, y)| x.skill != y.skill));
    }

    #[test]
    fn same_year_same_car_scales_across_events() {
        // Same (year, car) drawn with different spreads keeps its z-score.
        let a = season_field(2017, 20, 0.004);
        let b = season_field(2017, 20, 0.008);
        for (x, y) in a.iter().zip(&b) {
            assert!((y.skill - 2.0 * x.skill).abs() < 1e-6);
        }
    }

    #[test]
    fn skills_are_reasonably_spread() {
        let field = season_field(2016, 33, 0.004);
        let mean: f32 = field.iter().map(|c| c.skill).sum::<f32>() / 33.0;
        assert!(
            mean.abs() < 0.003,
            "field mean skill should be near zero, got {mean}"
        );
        let spread = field.iter().map(|c| c.skill).fold(f32::MIN, f32::max)
            - field.iter().map(|c| c.skill).fold(f32::MAX, f32::min);
        assert!(spread > 0.004, "field should have meaningful skill spread");
    }

    #[test]
    fn car_ids_are_one_based_and_sequential() {
        let field = season_field(2015, 5, 0.004);
        let ids: Vec<u16> = field.iter().map(|c| c.car_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }
}
