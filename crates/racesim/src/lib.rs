//! IndyCar-style stochastic race simulator.
//!
//! The paper trains on proprietary IndyCar timing logs (25 superspeedway
//! races, 2013–2019) that are not redistributable. This crate is the
//! substitute substrate: a lap-by-lap simulator whose *statistics* are
//! calibrated to everything the paper publishes about the data —
//!
//! * record schema of Fig 1a (`Rank`, `CarId`, `Lap`, `LapTime`,
//!   `TimeBehindLeader`, `LapStatus`, `TrackStatus`),
//! * stint-length distributions of Fig 4 (normal pits bell-shaped around
//!   ~32 laps and never beyond the ~50-lap fuel window; caution pits spread
//!   widely; short-stint failures under 10%),
//! * roughly balanced normal vs caution pit counts (777 vs 763 in the
//!   paper's Indy500 data),
//! * caution pits costing far fewer rank positions than green-flag pits
//!   (Fig 4d) — this *emerges* here because most of the field pits together
//!   under yellow, preserving relative order,
//! * per-event pit-lap and rank-change ratios of Fig 6 (Indy500 most
//!   dynamic, Iowa least),
//! * the dataset inventory of Table II (four events, 25 races, field sizes,
//!   lap counts, train/val/test splits).
//!
//! The sequences it produces have the structure that makes the forecasting
//! problem hard in exactly the paper's way: rank is locally stable (CurRank
//! is a strong baseline on normal laps) but undergoes abrupt, partially
//! predictable phase changes at pit stops, whose timing is itself uncertain.

pub mod car;
pub mod dataset;
pub mod scenario;
pub mod sim;
pub mod stats;
pub mod track;
pub mod types;

pub use car::CarProfile;
pub use dataset::{Dataset, RaceKey, Split};
pub use scenario::{generate_races, simulate_scenario, ScenarioConfig, ScenarioFamily};
pub use sim::{simulate_race, RaceResult};
pub use track::{Event, EventConfig};
pub use types::{LapRecord, LapStatus, TrackStatus};
