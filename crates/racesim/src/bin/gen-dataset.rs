//! `gen-dataset` — export the simulated 25-race IndyCar dataset as JSONL,
//! one record per line in the Fig 1a schema, for use outside this
//! workspace (plotting, other toolchains, regression baselines).
//!
//! ```text
//! cargo run --release -p rpf-racesim --bin gen-dataset -- <out-dir> [seed]
//! ```
//!
//! Writes one `<Event>-<year>.jsonl` per race plus a `manifest.json` with
//! per-race metadata (config, split, record count, winner).

use rpf_racesim::{dataset::split_of, Dataset};
use serde::Serialize;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

#[derive(Serialize)]
struct ManifestEntry {
    race: String,
    split: String,
    records: usize,
    winner_car: u16,
    caution_laps: usize,
    participants: u16,
    total_laps: u16,
}

fn main() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let out_dir = PathBuf::from(args.next().ok_or("usage: gen-dataset <out-dir> [seed]")?);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().map_err(|e| format!("bad seed: {e}")))
        .transpose()?
        .unwrap_or(0x1AD5_2021);

    fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    let dataset = Dataset::generate(seed);
    let mut manifest = Vec::new();

    for key in dataset.keys() {
        let race = dataset.get(key).unwrap();
        let path = out_dir.join(format!("{}.jsonl", key.label()));
        let mut file = fs::File::create(&path).map_err(|e| e.to_string())?;
        for rec in &race.records {
            let line = serde_json::to_string(rec).map_err(|e| e.to_string())?;
            writeln!(file, "{line}").map_err(|e| e.to_string())?;
        }
        manifest.push(ManifestEntry {
            race: key.label(),
            split: format!("{:?}", split_of(key)),
            records: race.records.len(),
            winner_car: race.winner(),
            caution_laps: race.caution_lap_count(),
            participants: race.config.participants,
            total_laps: race.config.total_laps,
        });
        eprintln!("wrote {}", path.display());
    }

    let manifest_path = out_dir.join("manifest.json");
    fs::write(
        &manifest_path,
        serde_json::to_string_pretty(&manifest).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} ({} races)",
        manifest_path.display(),
        manifest.len()
    );
    Ok(())
}
