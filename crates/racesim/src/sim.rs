//! The lap-by-lap race simulation.
//!
//! Mechanism summary (each piece maps to a phenomenon the paper documents):
//!
//! * **Skill + noise lap times** — rank is stable on green laps, so CurRank
//!   is hard to beat there (Table V "Normal Laps" column).
//! * **Fuel/tire stint planning** — green-flag pits happen when the planned
//!   stint (≈ N(stint_mean, stint_sd), capped by the fuel window) runs out:
//!   Fig 4a's bell curve. A small per-lap failure hazard produces the short
//!   early-pit tail (<10%, Fig 4b).
//! * **Crashes → cautions** — a crash closes the field up behind the pace
//!   car for several laps. Cars far enough into their stint pit together on
//!   the first caution laps ("caution pits"), which spreads the caution-pit
//!   stint distribution (Fig 4a) and — because most of the field pits at
//!   once — costs few rank positions (Fig 4d).
//! * **Field compression under yellow** — resets the time gaps, so restarts
//!   create overtaking opportunities; caution-heavy events have higher
//!   RankChangesRatio (Fig 6).

use crate::car::{season_field, CarProfile};
use crate::track::EventConfig;
use crate::types::{LapRecord, LapStatus, TrackStatus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of simulating one race.
#[derive(Clone, Debug)]
pub struct RaceResult {
    pub config: EventConfig,
    pub field: Vec<CarProfile>,
    /// All records, ordered by `(lap, rank)` — the Fig 1a table.
    pub records: Vec<LapRecord>,
    /// Lap on which each car retired (`None` = finished), indexed by
    /// position in `field`.
    pub retired: Vec<Option<u16>>,
}

impl RaceResult {
    /// All records of one car, in lap order.
    pub fn car_records(&self, car_id: u16) -> Vec<&LapRecord> {
        self.records.iter().filter(|r| r.car_id == car_id).collect()
    }

    /// Car ids that completed the full distance.
    pub fn finishers(&self) -> Vec<u16> {
        self.field
            .iter()
            .zip(&self.retired)
            .filter(|(_, ret)| ret.is_none())
            .map(|(c, _)| c.car_id)
            .collect()
    }

    /// The winner: rank 1 on the final lap.
    pub fn winner(&self) -> u16 {
        self.records
            .iter()
            .rev()
            .find(|r| r.rank == 1)
            .map(|r| r.car_id)
            .expect("race produced no records")
    }

    /// Number of caution laps in the race.
    pub fn caution_lap_count(&self) -> usize {
        let last_lap = self.records.iter().map(|r| r.lap).max().unwrap_or(0);
        (1..=last_lap)
            .filter(|&lap| {
                self.records
                    .iter()
                    .find(|r| r.lap == lap)
                    .is_some_and(|r| r.track_status.is_caution())
            })
            .count()
    }
}

struct CarState {
    cum_time: f64,
    pit_age: u16,
    planned_stint: u16,
    retired: Option<u16>,
    /// Records in lap order for this car.
    laps: Vec<LapRecord>,
}

fn gaussian(rng: &mut StdRng) -> f32 {
    // Box–Muller.
    let u1: f32 = rng.gen_range(1e-7..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

fn draw_stint(rng: &mut StdRng, cfg: &EventConfig) -> u16 {
    let s = cfg.stint_mean + cfg.stint_sd * gaussian(rng);
    (s.round().max(8.0) as u16).min(cfg.fuel_window_laps - 1)
}

/// Simulate one race deterministically from `seed`.
///
/// ```
/// use rpf_racesim::{simulate_race, Event, EventConfig};
///
/// let cfg = EventConfig::for_race(Event::Indy500, 2019);
/// let race = simulate_race(&cfg, 42);
/// assert_eq!(race.records, simulate_race(&cfg, 42).records); // deterministic
/// assert!(race.finishers().contains(&race.winner()));
/// ```
pub fn simulate_race(cfg: &EventConfig, seed: u64) -> RaceResult {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D_F00D);
    let field = season_field(cfg.year, cfg.participants, cfg.skill_spread_frac);
    let n = field.len();
    let base = cfg.base_lap_time_s();
    let tire_coef = 0.015f32;

    // Qualifying: grid order follows skill with noise; rows of cars start
    // slightly staggered (the warm-up period of §II-A).
    let mut grid: Vec<usize> = (0..n).collect();
    let quali: Vec<f32> = field
        .iter()
        .map(|c| c.skill + 0.002 * gaussian(&mut rng))
        .collect();
    grid.sort_by(|&a, &b| quali[a].partial_cmp(&quali[b]).unwrap());

    let mut cars: Vec<CarState> = (0..n)
        .map(|i| {
            let pos = grid.iter().position(|&g| g == i).unwrap();
            CarState {
                cum_time: pos as f64 * 0.18,
                pit_age: 0,
                planned_stint: 0,
                retired: None,
                laps: Vec::with_capacity(cfg.total_laps as usize),
            }
        })
        .collect();
    for c in cars.iter_mut() {
        c.planned_stint = draw_stint(&mut rng, cfg);
    }

    let mut caution_left: u16 = 0;
    let mut laps_since_restart: u16 = 100;
    let mut retired = vec![None; n];

    for lap in 1..=cfg.total_laps {
        let laps_remaining = cfg.total_laps - lap;

        // --- crashes trigger cautions (green only, one trigger per lap) ---
        if caution_left == 0 {
            for i in 0..n {
                if cars[i].retired.is_some() {
                    continue;
                }
                if rng.gen_bool(cfg.crash_hazard) {
                    caution_left = rng.gen_range(4..=9);
                    if rng.gen_bool(0.65) {
                        cars[i].retired = Some(lap);
                        retired[i] = Some(lap);
                    }
                    break;
                }
            }
        }
        let track_status = if caution_left > 0 {
            TrackStatus::Yellow
        } else {
            TrackStatus::Green
        };
        let caution_lap_index = if caution_left > 0 {
            // 1 on the first caution lap, growing as the caution ages.
            laps_since_restart = 0;
            Some(caution_left)
        } else {
            None
        };

        // --- pit decisions ------------------------------------------------
        let mut pits = vec![false; n];
        for (i, car) in cars.iter_mut().enumerate() {
            if car.retired.is_some() {
                continue;
            }
            let profile = &field[i];
            let must_pit_fuel = car.pit_age + 1 >= cfg.fuel_window_laps;
            let stint_done = car.pit_age >= car.planned_stint;
            // Teams skip the final stop if the fuel window covers the finish.
            let can_reach_finish = laps_remaining < cfg.fuel_window_laps - car.pit_age;
            let near_end_skip = stint_done && can_reach_finish && laps_remaining <= 12;

            let pit = if must_pit_fuel {
                true
            } else if track_status.is_caution() {
                // Opportunistic caution pit in the first two caution laps.
                let eager_enough = (car.pit_age as f32)
                    >= profile.caution_pit_eagerness * car.planned_stint as f32;
                let early_caution = caution_left >= 3 && caution_lap_index.is_some();
                eager_enough && early_caution && !can_reach_finish && rng.gen_bool(0.92)
            } else if stint_done && !near_end_skip && laps_remaining > 4 {
                true
            } else {
                // Unplanned problems (loose wheel, puncture, penalty) give
                // the short-stint tail of Fig 4b.
                rng.gen_bool(0.0012) && laps_remaining > 4
            };
            pits[i] = pit;
        }

        // --- lap times ----------------------------------------------------
        for (i, car) in cars.iter_mut().enumerate() {
            if car.retired.is_some() {
                continue;
            }
            let profile = &field[i];
            let lap_time = if track_status.is_caution() {
                base * cfg.caution_slowdown + 0.3 * gaussian(&mut rng).abs()
            } else {
                let tire = tire_coef * car.pit_age as f32 / cfg.fuel_window_laps as f32;
                let mut noise_frac = cfg.lap_noise_frac * profile.consistency;
                if laps_since_restart <= 2 {
                    noise_frac += cfg.restart_noise_frac;
                }
                base * (1.0 + profile.skill + tire) + base * noise_frac * gaussian(&mut rng)
            };
            let mut lap_time = lap_time.max(base * 0.9);
            if pits[i] {
                lap_time += if track_status.is_caution() {
                    cfg.pit_loss_s
                } else {
                    cfg.pit_loss_s + 2.0 * gaussian(&mut rng).abs()
                };
            }
            car.cum_time += lap_time as f64;

            // Age entering the lap — the tyre-age covariate (the IndyCar
            // baseline runs one stint = one tyre set, so it equals pit age).
            let age_entering = car.pit_age;
            if pits[i] {
                car.pit_age = 0;
                car.planned_stint = draw_stint(&mut rng, cfg);
            } else {
                car.pit_age += 1;
            }

            // Stash the raw lap time; rank and gap are filled in below.
            car.laps.push(LapRecord {
                rank: 0,
                car_id: profile.car_id,
                lap,
                lap_time,
                time_behind_leader: 0.0,
                lap_status: if pits[i] {
                    LapStatus::Pit
                } else {
                    LapStatus::Normal
                },
                track_status,
                compound: 0,
                tyre_age: age_entering,
                track_wetness: 0.0,
                fuel_target: 0.0,
            });
        }

        // --- field compression behind the pace car -------------------------
        if track_status.is_caution() {
            let mut order: Vec<usize> = (0..n).filter(|&i| cars[i].retired.is_none()).collect();
            order.sort_by(|&a, &b| cars[a].cum_time.partial_cmp(&cars[b].cum_time).unwrap());
            if let Some(&leader) = order.first() {
                let leader_time = cars[leader].cum_time;
                for (pos, &i) in order.iter().enumerate() {
                    cars[i].cum_time = leader_time + pos as f64 * 1.1 + rng.gen_range(0.0..0.25);
                }
            }
        }

        // --- ranks and gaps -------------------------------------------------
        let mut order: Vec<usize> = (0..n)
            .filter(|&i| {
                cars[i].retired.is_none() || cars[i].laps.last().map(|r| r.lap) == Some(lap)
            })
            .filter(|&i| cars[i].laps.last().map(|r| r.lap) == Some(lap))
            .collect();
        order.sort_by(|&a, &b| cars[a].cum_time.partial_cmp(&cars[b].cum_time).unwrap());
        if let Some(&leader) = order.first() {
            let leader_time = cars[leader].cum_time;
            for (pos, &i) in order.iter().enumerate() {
                let gap = (cars[i].cum_time - leader_time) as f32;
                let rec = cars[i].laps.last_mut().unwrap();
                rec.rank = (pos + 1) as u16;
                rec.time_behind_leader = gap;
            }
        }

        if caution_left > 0 {
            caution_left -= 1;
        } else {
            laps_since_restart = laps_since_restart.saturating_add(1);
        }
    }

    // Flatten records ordered by (lap, rank).
    let mut records: Vec<LapRecord> = cars.iter().flat_map(|c| c.laps.iter().copied()).collect();
    records.sort_by_key(|r| (r.lap, r.rank));

    RaceResult {
        config: cfg.clone(),
        field,
        records,
        retired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::Event;

    fn indy(seed: u64) -> RaceResult {
        simulate_race(&EventConfig::for_race(Event::Indy500, 2018), seed)
    }

    #[test]
    fn deterministic_given_seed() {
        let a = indy(42);
        let b = indy(42);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn different_seeds_differ() {
        let a = indy(1);
        let b = indy(2);
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn ranks_are_permutations_each_lap() {
        let r = indy(7);
        for lap in 1..=200u16 {
            let mut ranks: Vec<u16> = r
                .records
                .iter()
                .filter(|x| x.lap == lap)
                .map(|x| x.rank)
                .collect();
            ranks.sort_unstable();
            let expect: Vec<u16> = (1..=ranks.len() as u16).collect();
            assert_eq!(ranks, expect, "lap {lap} ranks are not a permutation");
        }
    }

    #[test]
    fn leader_has_zero_gap() {
        let r = indy(9);
        for rec in r.records.iter().filter(|x| x.rank == 1) {
            assert!(rec.time_behind_leader.abs() < 1e-6);
        }
    }

    #[test]
    fn gaps_increase_with_rank() {
        let r = indy(11);
        for lap in [50u16, 120, 199] {
            let mut recs: Vec<&LapRecord> = r.records.iter().filter(|x| x.lap == lap).collect();
            recs.sort_by_key(|x| x.rank);
            for w in recs.windows(2) {
                assert!(
                    w[1].time_behind_leader >= w[0].time_behind_leader - 1e-4,
                    "lap {lap}: gap must be monotone in rank"
                );
            }
        }
    }

    #[test]
    fn no_stint_exceeds_fuel_window() {
        // Fig 4a: "no car run more than 50 laps before entering the pit".
        let r = indy(13);
        for car in &r.field {
            let recs = r.car_records(car.car_id);
            let mut age = 0u16;
            for rec in recs {
                if rec.lap_status.is_pit() {
                    assert!(age <= 50, "car {} ran a {age}-lap stint", car.car_id);
                    age = 0;
                } else {
                    age += 1;
                }
            }
        }
    }

    #[test]
    fn pit_laps_are_slower() {
        let r = indy(17);
        let base = r.config.base_lap_time_s();
        for rec in r.records.iter().filter(|x| x.lap_status.is_pit()) {
            assert!(
                rec.lap_time > base * 1.2,
                "pit lap should cost significant time, got {}",
                rec.lap_time
            );
        }
    }

    #[test]
    fn cars_pit_several_times_at_indy() {
        // Paper: "on average a car goes to pit stop for six times in a race".
        let r = indy(19);
        let total_pits: usize = r.records.iter().filter(|x| x.lap_status.is_pit()).count();
        let finishing_cars = r.finishers().len().max(1);
        let avg = total_pits as f32 / finishing_cars as f32;
        assert!(
            (3.0..9.0).contains(&avg),
            "average pit stops per car should be around 6, got {avg}"
        );
    }

    #[test]
    fn races_have_cautions_sometimes() {
        let with_caution = (0..10).filter(|&s| indy(s).caution_lap_count() > 0).count();
        assert!(
            with_caution >= 5,
            "most Indy500 sims should see at least one caution"
        );
    }

    #[test]
    fn winner_is_a_finisher() {
        for seed in 0..5 {
            let r = indy(seed);
            assert!(r.finishers().contains(&r.winner()));
        }
    }

    #[test]
    fn retired_cars_stop_producing_records() {
        let r = indy(23);
        for (i, car) in r.field.iter().enumerate() {
            if let Some(lap) = r.retired[i] {
                assert!(r.car_records(car.car_id).iter().all(|rec| rec.lap < lap));
            }
        }
    }

    #[test]
    fn record_count_matches_table2_scale() {
        // Table II: Indy500 has 6600 records (33 cars x 200 laps); retirements
        // trim that slightly.
        let r = indy(29);
        assert!(r.records.len() > 5000 && r.records.len() <= 6600);
    }
}
