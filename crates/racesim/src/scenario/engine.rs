//! The generalized scenario race loop.
//!
//! Structurally this is `sim::simulate_race` with the three strategy
//! dimensions the families vary made explicit: the caution process (hazard
//! multiplier, caution-length window, scheduled cautions), the tyre model
//! (a set of [`CompoundSpec`]s with closed-form degradation), and weather
//! (a per-lap wetness trajectory with crossover pit stops and fuel-saving
//! pressure). It deliberately does NOT try to be byte-compatible with the
//! legacy simulator — the IndyCar family bypasses this engine entirely and
//! calls `simulate_race`, which is what the bit-identity golden pins.
//!
//! RNG discipline: one `(config salt, seed)` pair derives independent
//! per-concern streams — weather, strategy (compound choice), and the main
//! race dynamics — mirroring the counter-derived `RngStreams` layout used
//! by the serving stack. Adding draws to the weather model can never shift
//! the crash sequence, and vice versa.

use crate::car::season_field;
use crate::sim::RaceResult;
use crate::track::EventConfig;
use crate::types::{LapRecord, LapStatus, TrackStatus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::families::CompoundSpec;

/// Compound id of the wet tyre (dry compounds use 1..=3; 0 is the
/// single-compound baseline).
pub const WET_COMPOUND: u8 = 4;

/// Stream salt for the weather trajectory.
const WEATHER_STREAM: u64 = 0x5745_5448; // "WETH"
/// Stream salt for strategy (compound) choices.
const STRATEGY_STREAM: u64 = 0x5354_5241; // "STRA"

/// Closed-form tyre degradation: seconds of lap-time loss at tyre age
/// `age` on compound `spec`. Monotone non-decreasing in `age` for any
/// non-negative curve parameters — the property the scenario proptests pin.
pub fn degradation_s(spec: &CompoundSpec, age: u16) -> f32 {
    let a = age as f32;
    spec.deg_linear_s * a + spec.deg_quad_s * a * a
}

/// Weather parameters of a wet/dry scenario (engine-internal form).
#[derive(Clone, Debug)]
pub(crate) struct WetParams {
    /// Number of rain showers swept over the race.
    pub showers: u16,
    /// Lap-time penalty at full wetness for a car on dry tyres, as a
    /// fraction of base lap time.
    pub wet_slowdown_frac: f32,
    /// Wetness decay per dry lap.
    pub drying_per_lap: f32,
    /// Wetness growth per raining lap.
    pub rain_per_lap: f32,
    /// Strength of fuel-saving pressure in `[0, 1]` (scales the
    /// `fuel_target` covariate and its lap-time cost).
    pub fuel_pressure: f32,
}

/// Everything the generalized loop needs, lowered from a family config.
#[derive(Clone, Debug)]
pub(crate) struct Dynamics {
    pub base: EventConfig,
    /// Family-specific stream salt so two families over the same event and
    /// seed draw from unrelated streams.
    pub salt: u64,
    /// Multiplier on the per-car per-lap crash hazard.
    pub hazard_mult: f64,
    /// Caution length is drawn uniformly from this inclusive window.
    pub caution_len: (u16, u16),
    /// Laps at which a full-course caution is thrown regardless of crashes
    /// (competition cautions); ignored if a caution is already running.
    pub scheduled_cautions: Vec<u16>,
    /// Available dry compounds; must be non-empty (family lowering
    /// guarantees at least the event's implicit baseline compound).
    pub compounds: Vec<CompoundSpec>,
    /// F1-style rule: a car must run at least two distinct dry compounds.
    pub mandatory_compound_change: bool,
    /// Weather model; `None` = bone dry.
    pub wet: Option<WetParams>,
}

struct CarState {
    cum_time: f64,
    /// Laps since the last stop (tyres and fuel turn over together).
    age: u16,
    planned_stint: u16,
    /// Index into `Dynamics::compounds`, or `usize::MAX` for the wet tyre.
    compound_idx: usize,
    /// Bitmask of dry compound indices used so far.
    used_dry: u32,
    retired: Option<u16>,
    laps: Vec<LapRecord>,
}

fn gaussian(rng: &mut StdRng) -> f32 {
    // Box–Muller, as in the legacy simulator.
    let u1: f32 = rng.gen_range(1e-7..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// The wet tyre's spec, derived from the event (generous life — wet stints
/// end at crossovers, not from wear).
fn wet_spec(cfg: &EventConfig) -> CompoundSpec {
    CompoundSpec {
        id: WET_COMPOUND,
        pace_offset_s: 0.0,
        deg_linear_s: 0.004,
        deg_quad_s: 0.0,
        max_life: cfg.fuel_window_laps,
    }
}

/// Precompute the per-lap wetness trajectory from its dedicated stream.
/// Index 0 is unused (laps are 1-based).
fn wetness_trajectory(wet: Option<&WetParams>, total_laps: u16, mut rng: StdRng) -> Vec<f32> {
    let mut w = vec![0.0f32; total_laps as usize + 1];
    let Some(p) = wet else { return w };
    let horizon = total_laps.saturating_sub(20).max(6);
    let showers: Vec<(u16, u16)> = (0..p.showers)
        .map(|_| {
            let start = rng.gen_range(5..horizon);
            let dur = rng.gen_range(8..=20);
            (start, dur)
        })
        .collect();
    let mut cur = 0.0f32;
    for lap in 1..=total_laps {
        let raining = showers.iter().any(|&(s, d)| lap >= s && lap < s + d);
        cur = if raining {
            (cur + p.rain_per_lap).min(1.0)
        } else {
            (cur - p.drying_per_lap).max(0.0)
        };
        w[lap as usize] = cur;
    }
    w
}

fn draw_stint(rng: &mut StdRng, cfg: &EventConfig, max_life: u16) -> u16 {
    let s = cfg.stint_mean + cfg.stint_sd * gaussian(rng);
    (s.round().max(8.0) as u16).min(cfg.fuel_window_laps.min(max_life).saturating_sub(1).max(8))
}

/// Pick the next dry compound: weight hards when many laps remain, softs
/// near the end; under a mandatory-change rule a car that has only used one
/// compound never re-fits it.
fn choose_dry_compound(
    rng: &mut StdRng,
    dynamics: &Dynamics,
    current: usize,
    used_dry: u32,
    laps_remaining: u16,
) -> usize {
    let n = dynamics.compounds.len();
    if n <= 1 {
        return 0;
    }
    let owes_change = dynamics.mandatory_compound_change && used_dry.count_ones() <= 1;
    let frac = laps_remaining as f32 / dynamics.base.total_laps.max(1) as f32;
    let weights: Vec<f32> = dynamics
        .compounds
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if owes_change && i == current {
                return 0.0;
            }
            // Life coverage of the remaining distance biases the draw:
            // durable compounds when far out, fast ones near the flag.
            let durability = c.max_life as f32 / dynamics.base.fuel_window_laps.max(1) as f32;
            let bias = 1.0 + 2.0 * (durability * frac + (1.0 - durability) * (1.0 - frac));
            bias.max(0.05)
        })
        .collect();
    let total: f32 = weights.iter().sum();
    if total <= 0.0 {
        return (current + 1) % n;
    }
    let mut u = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Run the generalized scenario loop. Pure in `(dynamics, seed)`.
pub(crate) fn run(dynamics: &Dynamics, seed: u64) -> RaceResult {
    let cfg = &dynamics.base;
    let mut rng = StdRng::seed_from_u64(seed ^ dynamics.salt ^ 0xD00D_F00D);
    let mut strategy_rng = StdRng::seed_from_u64(seed ^ dynamics.salt ^ STRATEGY_STREAM);
    let weather_rng = StdRng::seed_from_u64(seed ^ dynamics.salt ^ WEATHER_STREAM);
    let wetness = wetness_trajectory(dynamics.wet.as_ref(), cfg.total_laps, weather_rng);
    let wet_tyre = wet_spec(cfg);

    let field = season_field(cfg.year, cfg.participants, cfg.skill_spread_frac);
    let n = field.len();
    let base = cfg.base_lap_time_s();

    // Qualifying: skill plus noise orders the grid, staggered start.
    let mut grid: Vec<usize> = (0..n).collect();
    let quali: Vec<f32> = field
        .iter()
        .map(|c| c.skill + 0.002 * gaussian(&mut rng))
        .collect();
    grid.sort_by(|&a, &b| quali[a].total_cmp(&quali[b]));

    let mut cars: Vec<CarState> = (0..n)
        .map(|i| {
            let pos = grid.iter().position(|&g| g == i).unwrap_or(i);
            CarState {
                cum_time: pos as f64 * 0.18,
                age: 0,
                planned_stint: 0,
                compound_idx: 0,
                used_dry: 0,
                retired: None,
                laps: Vec::with_capacity(cfg.total_laps as usize),
            }
        })
        .collect();
    for car in cars.iter_mut() {
        let idx = choose_dry_compound(&mut strategy_rng, dynamics, 0, 0, cfg.total_laps);
        car.compound_idx = idx;
        car.used_dry |= 1 << (idx as u32 % 32);
        let life = dynamics
            .compounds
            .get(idx)
            .map(|c| c.max_life)
            .unwrap_or(cfg.fuel_window_laps);
        car.planned_stint = draw_stint(&mut rng, cfg, life);
    }

    let mut caution_left: u16 = 0;
    let mut laps_since_restart: u16 = 100;
    let mut retired = vec![None; n];

    for lap in 1..=cfg.total_laps {
        let laps_remaining = cfg.total_laps - lap;
        let wet_now = wetness[lap as usize];

        // --- cautions: scheduled first, then crash-triggered --------------
        if caution_left == 0 && dynamics.scheduled_cautions.contains(&lap) {
            caution_left = rng.gen_range(dynamics.caution_len.0..=dynamics.caution_len.1);
        }
        if caution_left == 0 {
            // Wet track raises the hazard alongside the family multiplier.
            let hazard =
                (cfg.crash_hazard * dynamics.hazard_mult * (1.0 + 2.0 * wet_now as f64)).min(0.5);
            for i in 0..n {
                if cars[i].retired.is_some() {
                    continue;
                }
                if rng.gen_bool(hazard) {
                    caution_left = rng.gen_range(dynamics.caution_len.0..=dynamics.caution_len.1);
                    if rng.gen_bool(0.65) {
                        cars[i].retired = Some(lap);
                        retired[i] = Some(lap);
                    }
                    break;
                }
            }
        }
        let track_status = if caution_left > 0 {
            TrackStatus::Yellow
        } else {
            TrackStatus::Green
        };
        let early_caution = caution_left >= 3;
        if caution_left > 0 {
            laps_since_restart = 0;
        }

        // --- pit decisions -------------------------------------------------
        let mut pits = vec![false; n];
        let mut to_wet = vec![false; n];
        for (i, car) in cars.iter_mut().enumerate() {
            if car.retired.is_some() {
                continue;
            }
            let profile = &field[i];
            let on_wet_tyre = car.compound_idx == usize::MAX;
            let spec = if on_wet_tyre {
                &wet_tyre
            } else {
                dynamics
                    .compounds
                    .get(car.compound_idx)
                    .unwrap_or(&wet_tyre)
            };
            let window = cfg.fuel_window_laps.min(spec.max_life);
            let must_pit = car.age + 1 >= window;
            let stint_done = car.age >= car.planned_stint;
            let can_reach_finish = laps_remaining < window - car.age.min(window);
            let owes_change = dynamics.mandatory_compound_change
                && car.used_dry.count_ones() <= 1
                && dynamics.compounds.len() > 1;
            let near_end_skip =
                stint_done && can_reach_finish && laps_remaining <= 12 && !owes_change;

            // Weather crossovers dominate every other consideration.
            let needs_wets = wet_now >= 0.5 && !on_wet_tyre;
            let needs_dries = wet_now <= 0.25 && on_wet_tyre;
            let crossover = dynamics.wet.is_some() && car.age >= 2 && (needs_wets || needs_dries);

            let pit = if must_pit || crossover {
                true
            } else if track_status.is_caution() {
                let eager_enough =
                    (car.age as f32) >= profile.caution_pit_eagerness * car.planned_stint as f32;
                eager_enough && early_caution && !can_reach_finish && rng.gen_bool(0.92)
            } else if stint_done && !near_end_skip && laps_remaining > 4 {
                true
            } else {
                rng.gen_bool(0.0012) && laps_remaining > 4
            };
            pits[i] = pit;
            to_wet[i] = pit && dynamics.wet.is_some() && wet_now >= 0.5;
        }

        // --- lap times -----------------------------------------------------
        for (i, car) in cars.iter_mut().enumerate() {
            if car.retired.is_some() {
                continue;
            }
            let profile = &field[i];
            let on_wet_tyre = car.compound_idx == usize::MAX;
            let spec = if on_wet_tyre {
                &wet_tyre
            } else {
                dynamics
                    .compounds
                    .get(car.compound_idx)
                    .unwrap_or(&wet_tyre)
            };
            let window = cfg.fuel_window_laps.min(spec.max_life);

            // Fuel-saving pressure grows through the stint (lift-and-coast
            // deepens as the stretch target approaches).
            let fuel_pressure = dynamics
                .wet
                .as_ref()
                .map(|p| p.fuel_pressure)
                .unwrap_or(0.0);
            let stint_frac = car.age as f32 / window.max(1) as f32;
            let fuel_target = (fuel_pressure * stint_frac * stint_frac).clamp(0.0, 1.0);

            // Wrong-tyre penalty: dry tyres suffer the full wet slowdown;
            // wets carve through standing water but scrub on a drying line.
            let wet_penalty = match dynamics.wet.as_ref() {
                Some(p) if on_wet_tyre => {
                    base * (0.35 * p.wet_slowdown_frac * wet_now + 0.04 * (1.0 - wet_now))
                }
                Some(p) => base * p.wet_slowdown_frac * wet_now,
                None => 0.0,
            };

            let lap_time = if track_status.is_caution() {
                base * cfg.caution_slowdown + 0.3 * gaussian(&mut rng).abs()
            } else {
                let mut noise_frac = cfg.lap_noise_frac * profile.consistency;
                if laps_since_restart <= 2 {
                    noise_frac += cfg.restart_noise_frac;
                }
                base * (1.0 + profile.skill)
                    + spec.pace_offset_s
                    + degradation_s(spec, car.age)
                    + wet_penalty
                    + base * 0.008 * fuel_target
                    + base * noise_frac * gaussian(&mut rng)
            };
            let mut lap_time = lap_time.max(base * 0.9);
            if pits[i] {
                lap_time += if track_status.is_caution() {
                    cfg.pit_loss_s
                } else {
                    cfg.pit_loss_s + 2.0 * gaussian(&mut rng).abs()
                };
            }
            car.cum_time += lap_time as f64;

            let age_entering = car.age;
            let compound_entering = if on_wet_tyre { WET_COMPOUND } else { spec.id };
            if pits[i] {
                car.age = 0;
                if to_wet[i] {
                    car.compound_idx = usize::MAX;
                    car.planned_stint = draw_stint(&mut rng, cfg, wet_tyre.max_life);
                } else {
                    let idx = choose_dry_compound(
                        &mut strategy_rng,
                        dynamics,
                        if on_wet_tyre { 0 } else { car.compound_idx },
                        car.used_dry,
                        laps_remaining,
                    );
                    car.compound_idx = idx;
                    car.used_dry |= 1 << (idx as u32 % 32);
                    let life = dynamics
                        .compounds
                        .get(idx)
                        .map(|c| c.max_life)
                        .unwrap_or(cfg.fuel_window_laps);
                    car.planned_stint = draw_stint(&mut rng, cfg, life);
                }
            } else {
                car.age += 1;
            }

            car.laps.push(LapRecord {
                rank: 0,
                car_id: profile.car_id,
                lap,
                lap_time,
                time_behind_leader: 0.0,
                lap_status: if pits[i] {
                    LapStatus::Pit
                } else {
                    LapStatus::Normal
                },
                track_status,
                compound: compound_entering,
                tyre_age: age_entering,
                track_wetness: wet_now,
                fuel_target,
            });
        }

        // --- field compression behind the pace car -------------------------
        if track_status.is_caution() {
            let mut order: Vec<usize> = (0..n).filter(|&i| cars[i].retired.is_none()).collect();
            order.sort_by(|&a, &b| cars[a].cum_time.total_cmp(&cars[b].cum_time));
            if let Some(&leader) = order.first() {
                let leader_time = cars[leader].cum_time;
                for (pos, &i) in order.iter().enumerate() {
                    cars[i].cum_time = leader_time + pos as f64 * 1.1 + rng.gen_range(0.0..0.25);
                }
            }
        }

        // --- ranks and gaps -------------------------------------------------
        let mut order: Vec<usize> = (0..n)
            .filter(|&i| cars[i].laps.last().map(|r| r.lap) == Some(lap))
            .collect();
        order.sort_by(|&a, &b| cars[a].cum_time.total_cmp(&cars[b].cum_time));
        if let Some(&leader) = order.first() {
            let leader_time = cars[leader].cum_time;
            for (pos, &i) in order.iter().enumerate() {
                let gap = (cars[i].cum_time - leader_time) as f32;
                if let Some(rec) = cars[i].laps.last_mut() {
                    rec.rank = (pos + 1) as u16;
                    rec.time_behind_leader = gap;
                }
            }
        }

        if caution_left > 0 {
            caution_left -= 1;
        } else {
            laps_since_restart = laps_since_restart.saturating_add(1);
        }
    }

    let mut records: Vec<LapRecord> = cars.iter().flat_map(|c| c.laps.iter().copied()).collect();
    records.sort_by_key(|r| (r.lap, r.rank));

    RaceResult {
        config: cfg.clone(),
        field,
        records,
        retired,
    }
}
