//! The four scenario families and their lowering to engine [`Dynamics`].

use crate::track::{Event, EventConfig};
use serde::{Deserialize, Serialize};

use super::engine::{Dynamics, WetParams};

/// Per-family stream salts: two families over the same event and seed must
/// draw from unrelated streams (see the module docs on RNG discipline).
const TYRE_SALT: u64 = 0x7479_7265; // "tyre"
const CAUTION_SALT: u64 = 0x6361_7574; // "caut"
const WETDRY_SALT: u64 = 0x7765_7464; // "wetd"

/// One tyre compound: a pace offset against the event's base lap time and
/// a closed-form degradation curve (`deg_linear_s * age + deg_quad_s *
/// age²` seconds — see [`super::degradation_s`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompoundSpec {
    /// Covariate value recorded in `LapRecord::compound` (1..=3 dry,
    /// [`super::WET_COMPOUND`] wet, 0 single-compound baseline).
    pub id: u8,
    /// Seconds added to the base lap time when fresh (soft compounds are
    /// negative: faster than the reference).
    pub pace_offset_s: f32,
    /// Linear degradation, seconds per lap of tyre age.
    pub deg_linear_s: f32,
    /// Quadratic degradation, seconds per lap² — the "cliff".
    pub deg_quad_s: f32,
    /// Hard cap on stint length on this compound, laps.
    pub max_life: u16,
}

/// The paper-baseline family: `event`/`year` straight through the legacy
/// `simulate_race`, bit-identical by construction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndyCarScenario {
    pub event: Event,
    pub year: u16,
}

impl IndyCarScenario {
    pub fn event_config(&self) -> EventConfig {
        EventConfig::for_race(self.event, self.year)
    }
}

/// F1-style tyre strategy: compound choice against per-compound
/// degradation curves drives pit timing instead of the fuel window alone.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TyreStrategyConfig {
    pub event: Event,
    pub year: u16,
    /// Available dry compounds; must be non-empty.
    pub compounds: Vec<CompoundSpec>,
    /// F1 rule: every car must run at least two distinct dry compounds.
    pub mandatory_compound_change: bool,
}

impl TyreStrategyConfig {
    /// The standard three-compound set (soft/medium/hard), scaled so the
    /// soft's cliff arrives well inside the event's fuel window.
    pub fn standard(event: Event, year: u16) -> TyreStrategyConfig {
        let cfg = EventConfig::for_race(event, year);
        let w = cfg.fuel_window_laps as f32;
        TyreStrategyConfig {
            event,
            year,
            compounds: vec![
                CompoundSpec {
                    id: 1, // soft
                    pace_offset_s: -0.45,
                    deg_linear_s: 0.9 / w,
                    deg_quad_s: 0.9 / (w * w),
                    max_life: ((w * 0.55) as u16).max(10),
                },
                CompoundSpec {
                    id: 2, // medium
                    pace_offset_s: 0.0,
                    deg_linear_s: 0.55 / w,
                    deg_quad_s: 0.35 / (w * w),
                    max_life: ((w * 0.8) as u16).max(12),
                },
                CompoundSpec {
                    id: 3, // hard
                    pace_offset_s: 0.4,
                    deg_linear_s: 0.3 / w,
                    deg_quad_s: 0.15 / (w * w),
                    max_life: cfg.fuel_window_laps,
                },
            ],
            mandatory_compound_change: true,
        }
    }

    pub(crate) fn dynamics(&self) -> Dynamics {
        let base = EventConfig::for_race(self.event, self.year);
        Dynamics {
            base,
            salt: TYRE_SALT,
            hazard_mult: 1.0,
            caution_len: (4, 9),
            scheduled_cautions: Vec::new(),
            compounds: self.compounds.clone(),
            mandatory_compound_change: self.mandatory_compound_change,
            wet: None,
        }
    }
}

/// Safety-car/caution-regime variation: the IndyCar dynamics with the
/// caution process re-parameterised.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CautionRegimeConfig {
    pub event: Event,
    pub year: u16,
    /// Multiplier on the event's per-car per-lap crash hazard.
    pub hazard_mult: f64,
    /// Inclusive window the caution length is drawn from.
    pub caution_len: (u16, u16),
    /// Competition cautions thrown at these laps regardless of crashes.
    pub scheduled_cautions: Vec<u16>,
}

impl CautionRegimeConfig {
    /// A caution-heavy regime: 2.5× hazard, long cautions, one scheduled
    /// competition caution a third of the way in.
    pub fn standard(event: Event, year: u16) -> CautionRegimeConfig {
        let cfg = EventConfig::for_race(event, year);
        CautionRegimeConfig {
            event,
            year,
            hazard_mult: 2.5,
            caution_len: (6, 14),
            scheduled_cautions: vec![cfg.total_laps / 3],
        }
    }

    pub(crate) fn dynamics(&self) -> Dynamics {
        let base = EventConfig::for_race(self.event, self.year);
        Dynamics {
            salt: CAUTION_SALT,
            hazard_mult: self.hazard_mult,
            caution_len: self.caution_len,
            scheduled_cautions: self.scheduled_cautions.clone(),
            compounds: vec![baseline_compound(&base)],
            mandatory_compound_change: false,
            wet: None,
            base,
        }
    }
}

/// Wet/dry transitions: rain showers sweep a wetness trajectory across the
/// race; crossovers force tyre swaps and fuel-saving pressure stretches
/// stints.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WetDryConfig {
    pub event: Event,
    pub year: u16,
    /// Number of rain showers swept over the race.
    pub showers: u16,
    /// Lap-time penalty at full wetness on dry tyres, fraction of base.
    pub wet_slowdown_frac: f32,
    /// Wetness decay per dry lap.
    pub drying_per_lap: f32,
    /// Wetness growth per raining lap.
    pub rain_per_lap: f32,
    /// Fuel-saving pressure in `[0, 1]`.
    pub fuel_pressure: f32,
}

impl WetDryConfig {
    /// Two showers, a 14% full-wet slowdown, and moderate fuel saving.
    pub fn standard(event: Event, year: u16) -> WetDryConfig {
        WetDryConfig {
            event,
            year,
            showers: 2,
            wet_slowdown_frac: 0.14,
            drying_per_lap: 0.06,
            rain_per_lap: 0.18,
            fuel_pressure: 0.6,
        }
    }

    pub(crate) fn dynamics(&self) -> Dynamics {
        let base = EventConfig::for_race(self.event, self.year);
        Dynamics {
            salt: WETDRY_SALT,
            hazard_mult: 1.0,
            caution_len: (4, 9),
            scheduled_cautions: Vec::new(),
            compounds: vec![baseline_compound(&base)],
            mandatory_compound_change: false,
            wet: Some(WetParams {
                showers: self.showers,
                wet_slowdown_frac: self.wet_slowdown_frac,
                drying_per_lap: self.drying_per_lap,
                rain_per_lap: self.rain_per_lap,
                fuel_pressure: self.fuel_pressure,
            }),
            base,
        }
    }
}

/// The event's implicit single compound: reproduces the legacy simulator's
/// linear tyre term (`0.015 · base · age / fuel_window`) as a degradation
/// curve, with the fuel window as its life.
fn baseline_compound(cfg: &EventConfig) -> CompoundSpec {
    CompoundSpec {
        id: 0,
        pace_offset_s: 0.0,
        deg_linear_s: 0.015 * cfg.base_lap_time_s() / cfg.fuel_window_laps as f32,
        deg_quad_s: 0.0,
        max_life: cfg.fuel_window_laps,
    }
}
