//! Multi-series strategy scenario engine.
//!
//! The paper's simulator is calibrated to one series — IndyCar
//! superspeedway pit/caution statistics — so every model-ordering claim
//! rests on a single scenario family. This module generalizes the substrate
//! behind one typed config API so the forecasting conclusions can be tested
//! across racing regimes the related work names (F1 tyre-energy/compound
//! degradation, weather transitions, caution-regime sensitivity):
//!
//! * [`ScenarioFamily::IndyCar`] — the paper's baseline. Selecting it
//!   delegates to the untouched [`simulate_race`], so it is bit-identical
//!   to the legacy path by construction (pinned by a golden test).
//! * [`ScenarioFamily::TyreStrategy`] — F1-style compound choice: three dry
//!   compounds with per-compound degradation curves
//!   ([`engine::degradation_s`]) driving pit decisions, optional mandatory
//!   compound change.
//! * [`ScenarioFamily::CautionRegime`] — the IndyCar dynamics with the
//!   caution process re-parameterised: hazard multiplier, longer caution
//!   windows, scheduled (competition) cautions.
//! * [`ScenarioFamily::WetDry`] — rain showers sweep a wetness trajectory
//!   over the race; wet/dry crossovers force tyre swaps and fuel-saving
//!   pressure stretches stints.
//!
//! Every family is a pure function of `(config, seed)`. The engine mirrors
//! the counter-derived stream discipline of `rpf_nn::RngStreams` with
//! per-concern salted streams (weather, strategy, race dynamics), so adding
//! draws to one concern never shifts another family's trajectory.

pub mod engine;
pub mod families;

pub use engine::{degradation_s, WET_COMPOUND};
pub use families::{
    CautionRegimeConfig, CompoundSpec, IndyCarScenario, TyreStrategyConfig, WetDryConfig,
};

use crate::sim::{simulate_race, RaceResult};
use crate::track::Event;
use serde::{Deserialize, Serialize};

/// The scenario families the engine can generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioFamily {
    /// Paper baseline: bit-identical to [`simulate_race`].
    IndyCar,
    /// F1-style compound strategy with per-compound degradation.
    TyreStrategy,
    /// Re-parameterised safety-car/caution process.
    CautionRegime,
    /// Wet/dry transitions with fuel-saving pressure.
    WetDry,
}

impl ScenarioFamily {
    pub const ALL: [ScenarioFamily; 4] = [
        ScenarioFamily::IndyCar,
        ScenarioFamily::TyreStrategy,
        ScenarioFamily::CautionRegime,
        ScenarioFamily::WetDry,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ScenarioFamily::IndyCar => "IndyCar",
            ScenarioFamily::TyreStrategy => "TyreStrategy",
            ScenarioFamily::CautionRegime => "CautionRegime",
            ScenarioFamily::WetDry => "WetDry",
        }
    }
}

/// Typed configuration of one scenario: which family, over which base
/// event, with which family-specific dynamics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ScenarioConfig {
    IndyCar(IndyCarScenario),
    TyreStrategy(TyreStrategyConfig),
    CautionRegime(CautionRegimeConfig),
    WetDry(WetDryConfig),
}

impl ScenarioConfig {
    pub fn family(&self) -> ScenarioFamily {
        match self {
            ScenarioConfig::IndyCar(_) => ScenarioFamily::IndyCar,
            ScenarioConfig::TyreStrategy(_) => ScenarioFamily::TyreStrategy,
            ScenarioConfig::CautionRegime(_) => ScenarioFamily::CautionRegime,
            ScenarioConfig::WetDry(_) => ScenarioFamily::WetDry,
        }
    }

    /// The paper-baseline scenario for `event`/`year`.
    pub fn indycar(event: Event, year: u16) -> ScenarioConfig {
        ScenarioConfig::IndyCar(IndyCarScenario { event, year })
    }

    /// The standard F1-style tyre-strategy scenario over `event`/`year`.
    pub fn tyre_strategy(event: Event, year: u16) -> ScenarioConfig {
        ScenarioConfig::TyreStrategy(TyreStrategyConfig::standard(event, year))
    }

    /// The standard caution-heavy regime over `event`/`year`.
    pub fn caution_regime(event: Event, year: u16) -> ScenarioConfig {
        ScenarioConfig::CautionRegime(CautionRegimeConfig::standard(event, year))
    }

    /// The standard wet/dry transition scenario over `event`/`year`.
    pub fn wet_dry(event: Event, year: u16) -> ScenarioConfig {
        ScenarioConfig::WetDry(WetDryConfig::standard(event, year))
    }

    /// The standard scenario of `family` over `event`/`year`.
    pub fn standard(family: ScenarioFamily, event: Event, year: u16) -> ScenarioConfig {
        match family {
            ScenarioFamily::IndyCar => ScenarioConfig::indycar(event, year),
            ScenarioFamily::TyreStrategy => ScenarioConfig::tyre_strategy(event, year),
            ScenarioFamily::CautionRegime => ScenarioConfig::caution_regime(event, year),
            ScenarioFamily::WetDry => ScenarioConfig::wet_dry(event, year),
        }
    }
}

/// Simulate one race of `cfg` deterministically from `seed`.
///
/// The IndyCar family delegates to [`simulate_race`] verbatim — same RNG
/// stream, same call order — so its output is byte-equal to the legacy
/// simulator. The other families run the generalized [`engine`].
pub fn simulate_scenario(cfg: &ScenarioConfig, seed: u64) -> RaceResult {
    match cfg {
        ScenarioConfig::IndyCar(c) => simulate_race(&c.event_config(), seed),
        ScenarioConfig::TyreStrategy(c) => engine::run(&c.dynamics(), seed),
        ScenarioConfig::CautionRegime(c) => engine::run(&c.dynamics(), seed),
        ScenarioConfig::WetDry(c) => engine::run(&c.dynamics(), seed),
    }
}

/// `n` independent races of `cfg`: race `i` uses the same index-salted
/// derivation as the bench dataset (`base_seed ^ ((i + 1) << 32)`), so a
/// scenario season replays bit-identically from `(cfg, base_seed)`.
pub fn generate_races(cfg: &ScenarioConfig, base_seed: u64, n: usize) -> Vec<RaceResult> {
    (0..n)
        .map(|i| simulate_scenario(cfg, base_seed ^ ((i as u64 + 1) << 32)))
        .collect()
}
