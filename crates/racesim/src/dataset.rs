//! The full 25-race dataset of Table II with its train/validation/test
//! splits.

use crate::sim::{simulate_race, RaceResult};
use crate::track::{Event, EventConfig};
use serde::Serialize;
use std::collections::BTreeMap;

/// Identifies one race: `(event, year)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct RaceKey {
    pub event: Event,
    pub year: u16,
}

impl RaceKey {
    pub fn new(event: Event, year: u16) -> Self {
        RaceKey { event, year }
    }

    pub fn label(&self) -> String {
        format!("{}-{}", self.event.name(), self.year)
    }
}

/// Which split a race belongs to, per Table II's "Usage" column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Split {
    Training,
    Validation,
    Test,
}

/// Table II's usage assignment.
///
/// Indy500 2013–2017 train / 2018 validation / 2019 test; the other events
/// put their final season(s) in test, the rest in training (Pocono has only
/// five seasons so four train).
pub fn split_of(key: RaceKey) -> Split {
    match (key.event, key.year) {
        (Event::Indy500, 2018) => Split::Validation,
        (Event::Indy500, 2019) => Split::Test,
        (Event::Indy500, _) => Split::Training,
        (Event::Iowa, 2019) => Split::Test,
        (Event::Iowa, _) => Split::Training,
        (Event::Pocono, 2018) => Split::Test,
        (Event::Pocono, _) => Split::Training,
        (Event::Texas, y) if y >= 2018 => Split::Test,
        (Event::Texas, _) => Split::Training,
    }
}

/// The simulated 25-race dataset.
pub struct Dataset {
    races: BTreeMap<RaceKey, RaceResult>,
}

impl Dataset {
    /// Generate every race of Table II deterministically from `seed`.
    pub fn generate(seed: u64) -> Dataset {
        let mut races = BTreeMap::new();
        for &event in &Event::ALL {
            for year in EventConfig::years(event) {
                let key = RaceKey::new(event, year);
                let cfg = EventConfig::for_race(event, year);
                // Race seed mixes the dataset seed with the race identity so
                // each race is independent but reproducible.
                let race_seed = seed ^ (year as u64) ^ ((event as u64 + 1) << 32);
                races.insert(key, simulate_race(&cfg, race_seed));
            }
        }
        Dataset { races }
    }

    /// Generate only the races of one event (cheaper for tests).
    pub fn generate_event(event: Event, seed: u64) -> Dataset {
        let mut races = BTreeMap::new();
        for year in EventConfig::years(event) {
            let key = RaceKey::new(event, year);
            let cfg = EventConfig::for_race(event, year);
            let race_seed = seed ^ (year as u64) ^ ((event as u64 + 1) << 32);
            races.insert(key, simulate_race(&cfg, race_seed));
        }
        Dataset { races }
    }

    pub fn get(&self, key: RaceKey) -> Option<&RaceResult> {
        self.races.get(&key)
    }

    pub fn race(&self, event: Event, year: u16) -> &RaceResult {
        self.races
            .get(&RaceKey::new(event, year))
            .unwrap_or_else(|| panic!("{} {year} not in dataset", event.name()))
    }

    pub fn keys(&self) -> impl Iterator<Item = RaceKey> + '_ {
        self.races.keys().copied()
    }

    pub fn len(&self) -> usize {
        self.races.len()
    }

    pub fn is_empty(&self) -> bool {
        self.races.is_empty()
    }

    /// Races of `event` belonging to `split`.
    pub fn split(&self, event: Event, split: Split) -> Vec<(&RaceKey, &RaceResult)> {
        self.races
            .iter()
            .filter(|(k, _)| k.event == event && split_of(**k) == split)
            .collect()
    }

    /// All races in a split across every event.
    pub fn split_all(&self, split: Split) -> Vec<(&RaceKey, &RaceResult)> {
        self.races
            .iter()
            .filter(|(k, _)| split_of(**k) == split)
            .collect()
    }

    /// Total number of timing records across the dataset.
    pub fn record_count(&self) -> usize {
        self.races.values().map(|r| r.records.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_match_table2_usage() {
        assert_eq!(
            split_of(RaceKey::new(Event::Indy500, 2015)),
            Split::Training
        );
        assert_eq!(
            split_of(RaceKey::new(Event::Indy500, 2018)),
            Split::Validation
        );
        assert_eq!(split_of(RaceKey::new(Event::Indy500, 2019)), Split::Test);
        assert_eq!(split_of(RaceKey::new(Event::Iowa, 2019)), Split::Test);
        assert_eq!(split_of(RaceKey::new(Event::Pocono, 2018)), Split::Test);
        assert_eq!(split_of(RaceKey::new(Event::Texas, 2018)), Split::Test);
        assert_eq!(split_of(RaceKey::new(Event::Texas, 2019)), Split::Test);
        assert_eq!(split_of(RaceKey::new(Event::Texas, 2017)), Split::Training);
    }

    #[test]
    fn event_dataset_has_expected_years() {
        let d = Dataset::generate_event(Event::Pocono, 99);
        assert_eq!(d.len(), 5);
        assert!(d.get(RaceKey::new(Event::Pocono, 2014)).is_none());
        assert!(d.get(RaceKey::new(Event::Pocono, 2018)).is_some());
    }

    #[test]
    fn full_dataset_shape() {
        let d = Dataset::generate(7);
        assert_eq!(d.len(), 25);
        // Table II: 5 Indy500 + ... training races; 1 validation; 5 test.
        assert_eq!(d.split_all(Split::Validation).len(), 1);
        assert_eq!(d.split_all(Split::Test).len(), 5);
        assert_eq!(d.split_all(Split::Training).len(), 19);
        // Record count is in the ballpark of Table II's totals (~120k
        // across all events, minus retirements).
        let n = d.record_count();
        assert!(n > 90_000 && n < 160_000, "record count {n}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate_event(Event::Iowa, 5);
        let b = Dataset::generate_event(Event::Iowa, 5);
        for k in a.keys() {
            assert_eq!(a.get(k).unwrap().records, b.get(k).unwrap().records);
        }
    }

    #[test]
    fn races_differ_across_years() {
        let d = Dataset::generate_event(Event::Texas, 5);
        let a = &d.race(Event::Texas, 2016).records;
        let b = &d.race(Event::Texas, 2017).records;
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "not in dataset")]
    fn missing_race_panics_with_label() {
        let d = Dataset::generate_event(Event::Iowa, 5);
        let _ = d.race(Event::Indy500, 2018);
    }
}
