//! The four superspeedway events of the paper's Table II and their
//! simulation parameters.

use serde::{Deserialize, Serialize};

/// The IndyCar events used in the paper (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Event {
    Indy500,
    Iowa,
    Pocono,
    Texas,
}

impl Event {
    pub const ALL: [Event; 4] = [Event::Indy500, Event::Iowa, Event::Pocono, Event::Texas];

    pub fn name(self) -> &'static str {
        match self {
            Event::Indy500 => "Indy500",
            Event::Iowa => "Iowa",
            Event::Pocono => "Pocono",
            Event::Texas => "Texas",
        }
    }
}

/// Static configuration of one event in one season.
///
/// The physical columns reproduce Table II; the dynamics block controls the
/// simulator and was tuned so the generated data lands where each event sits
/// in the paper's Fig 6 (Indy500 top-right: most pit laps, most rank
/// changes; Iowa bottom-left).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EventConfig {
    pub event: Event,
    pub year: u16,
    /// Track length, miles (Table II).
    pub track_length_miles: f32,
    /// Track shape label (Table II).
    pub track_shape: String,
    /// Scheduled lap count (Table II; Iowa/Pocono/Texas changed over years).
    pub total_laps: u16,
    /// Average speed, mph (Table II) — sets the base lap time.
    pub avg_speed_mph: f32,
    /// Number of starters (Table II).
    pub participants: u16,

    // ---- simulator dynamics -------------------------------------------
    /// Fuel window: the hard ceiling on stint length, laps. Indy500's is
    /// ~50 (Fig 4a: "no car run more than 50 laps").
    pub fuel_window_laps: u16,
    /// Mean of the planned green-flag stint length, laps.
    pub stint_mean: f32,
    /// Std-dev of the planned stint length, laps.
    pub stint_sd: f32,
    /// Per-car, per-lap probability of a crash / mechanical failure that
    /// triggers a full-course caution.
    pub crash_hazard: f64,
    /// Seconds lost to a green-flag pit stop (drive-through + service).
    pub pit_loss_s: f32,
    /// Caution laps are this factor slower than green laps.
    pub caution_slowdown: f32,
    /// Per-lap per-car lap-time noise, as a fraction of base lap time.
    /// Larger values produce more green-flag overtaking (RankChangesRatio).
    pub lap_noise_frac: f32,
    /// Spread of car performance (skill), as a fraction of base lap time.
    pub skill_spread_frac: f32,
    /// Extra lap-time noise on the two laps after a restart, fraction of
    /// base lap time (restart shuffles the order a little).
    pub restart_noise_frac: f32,
}

impl EventConfig {
    /// Base (best) lap time in seconds implied by Table II's track length
    /// and average speed.
    pub fn base_lap_time_s(&self) -> f32 {
        self.track_length_miles / self.avg_speed_mph * 3600.0
    }

    /// Configuration for `event` in `year`, matching Table II.
    ///
    /// Panics if the combination is not part of the paper's dataset (e.g.
    /// Iowa 2014, which the paper dropped as corrupted).
    pub fn for_race(event: Event, year: u16) -> EventConfig {
        assert!(
            Self::years(event).contains(&year),
            "{} {year} is not in the paper's dataset",
            event.name()
        );
        match event {
            Event::Indy500 => EventConfig {
                event,
                year,
                track_length_miles: 2.5,
                track_shape: "Oval".into(),
                total_laps: 200,
                avg_speed_mph: 175.0,
                participants: 33,
                fuel_window_laps: 50,
                stint_mean: 32.0,
                stint_sd: 5.0,
                crash_hazard: 0.0011,
                pit_loss_s: 34.0,
                caution_slowdown: 1.55,
                lap_noise_frac: 0.0026,
                skill_spread_frac: 0.0035,
                restart_noise_frac: 0.009,
            },
            Event::Iowa => EventConfig {
                event,
                year,
                track_length_miles: 0.894,
                track_shape: "Oval".into(),
                total_laps: if year >= 2019 { 300 } else { 250 },
                avg_speed_mph: 135.0,
                participants: 22,
                fuel_window_laps: 110,
                stint_mean: 72.0,
                stint_sd: 9.0,
                crash_hazard: 0.0006,
                pit_loss_s: 22.0,
                caution_slowdown: 1.45,
                lap_noise_frac: 0.0018,
                skill_spread_frac: 0.0045,
                restart_noise_frac: 0.006,
            },
            Event::Pocono => EventConfig {
                event,
                year,
                track_length_miles: 2.5,
                track_shape: "Triangle".into(),
                total_laps: if year >= 2018 { 200 } else { 160 },
                avg_speed_mph: 135.0,
                participants: 22,
                fuel_window_laps: 42,
                stint_mean: 28.0,
                stint_sd: 4.5,
                crash_hazard: 0.0007,
                pit_loss_s: 38.0,
                caution_slowdown: 1.5,
                lap_noise_frac: 0.0022,
                skill_spread_frac: 0.004,
                restart_noise_frac: 0.007,
            },
            Event::Texas => EventConfig {
                event,
                year,
                track_length_miles: 1.455,
                track_shape: "Oval".into(),
                total_laps: if year >= 2018 { 248 } else { 228 },
                avg_speed_mph: 153.0,
                participants: 22,
                fuel_window_laps: 62,
                stint_mean: 42.0,
                stint_sd: 6.5,
                crash_hazard: 0.0008,
                pit_loss_s: 28.0,
                caution_slowdown: 1.5,
                lap_noise_frac: 0.0028,
                skill_spread_frac: 0.004,
                restart_noise_frac: 0.009,
            },
        }
    }

    /// Seasons of this event present in the paper's dataset (Table II).
    pub fn years(event: Event) -> Vec<u16> {
        match event {
            // Indy500: 2013–2017 train, 2018 validation, 2019 test.
            Event::Indy500 => (2013..=2019).collect(),
            // Iowa: 2013, 2015–2018 train, 2019 test (2014 corrupted/dropped).
            Event::Iowa => vec![2013, 2015, 2016, 2017, 2018, 2019],
            // Pocono: 2013, 2015–2017 train, 2018 test.
            Event::Pocono => vec![2013, 2015, 2016, 2017, 2018],
            // Texas: 2013–2017 train, 2018–2019 test.
            Event::Texas => (2013..=2019).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_lap_times_match_table2_speeds() {
        // Indy500: 2.5 miles at 175 mph → ~51.4s laps.
        let c = EventConfig::for_race(Event::Indy500, 2018);
        assert!((c.base_lap_time_s() - 51.43).abs() < 0.1);
        // Iowa: 0.894 at 135 → ~23.8s.
        let c = EventConfig::for_race(Event::Iowa, 2018);
        assert!((c.base_lap_time_s() - 23.84).abs() < 0.1);
    }

    #[test]
    fn lap_counts_follow_table2() {
        assert_eq!(EventConfig::for_race(Event::Indy500, 2019).total_laps, 200);
        assert_eq!(EventConfig::for_race(Event::Iowa, 2018).total_laps, 250);
        assert_eq!(EventConfig::for_race(Event::Iowa, 2019).total_laps, 300);
        assert_eq!(EventConfig::for_race(Event::Pocono, 2017).total_laps, 160);
        assert_eq!(EventConfig::for_race(Event::Pocono, 2018).total_laps, 200);
        assert_eq!(EventConfig::for_race(Event::Texas, 2017).total_laps, 228);
        assert_eq!(EventConfig::for_race(Event::Texas, 2019).total_laps, 248);
    }

    #[test]
    fn dataset_has_25_races() {
        let total: usize = Event::ALL
            .iter()
            .map(|&e| EventConfig::years(e).len())
            .sum();
        assert_eq!(total, 25);
    }

    #[test]
    #[should_panic(expected = "not in the paper's dataset")]
    fn iowa_2014_was_dropped() {
        let _ = EventConfig::for_race(Event::Iowa, 2014);
    }

    #[test]
    fn stints_fit_inside_fuel_window() {
        for &e in &Event::ALL {
            for &y in &EventConfig::years(e) {
                let c = EventConfig::for_race(e, y);
                assert!(
                    c.stint_mean + 2.5 * c.stint_sd < c.fuel_window_laps as f32,
                    "{} {y}: planned stints must fit the fuel window",
                    e.name()
                );
            }
        }
    }
}
