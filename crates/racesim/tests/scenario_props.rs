//! Property tests of the scenario engine: the four guarantees the issue
//! pins for every family — bit-identical replay, physical lap times,
//! monotone tyre-age bookkeeping between stops, and byte-equality of the
//! IndyCar family with the legacy simulator.

use proptest::prelude::*;
use rpf_racesim::scenario::{degradation_s, TyreStrategyConfig};
use rpf_racesim::{
    simulate_race, simulate_scenario, Event, EventConfig, LapRecord, ScenarioConfig, ScenarioFamily,
};

fn any_family() -> impl Strategy<Value = ScenarioFamily> {
    prop::sample::select(ScenarioFamily::ALL.to_vec())
}

/// Events kept small-ish so 12 cases stay fast; Indy500 exercises the
/// largest field, Iowa the longest fuel window.
fn any_base() -> impl Strategy<Value = (Event, u16)> {
    prop_oneof![
        Just((Event::Indy500, 2018)),
        Just((Event::Iowa, 2018)),
        Just((Event::Texas, 2019)),
    ]
}

fn bitwise_equal(a: &[LapRecord], b: &[LapRecord]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.rank == y.rank
                && x.car_id == y.car_id
                && x.lap == y.lap
                && x.lap_time.to_bits() == y.lap_time.to_bits()
                && x.time_behind_leader.to_bits() == y.time_behind_leader.to_bits()
                && x.lap_status == y.lap_status
                && x.track_status == y.track_status
                && x.compound == y.compound
                && x.tyre_age == y.tyre_age
                && x.track_wetness.to_bits() == y.track_wetness.to_bits()
                && x.fuel_target.to_bits() == y.fuel_target.to_bits()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_family_replays_bit_identically(
        family in any_family(), (event, year) in any_base(), seed in 0u64..1000
    ) {
        let cfg = ScenarioConfig::standard(family, event, year);
        let a = simulate_scenario(&cfg, seed);
        let b = simulate_scenario(&cfg, seed);
        prop_assert!(
            bitwise_equal(&a.records, &b.records),
            "{} is not a pure function of (config, seed)", family.name()
        );
    }

    #[test]
    fn lap_times_stay_physical(
        family in any_family(), (event, year) in any_base(), seed in 0u64..1000
    ) {
        let cfg = ScenarioConfig::standard(family, event, year);
        let base = EventConfig::for_race(event, year).base_lap_time_s();
        let race = simulate_scenario(&cfg, seed);
        for rec in &race.records {
            prop_assert!(rec.lap_time.is_finite());
            prop_assert!(
                rec.lap_time >= base * 0.85,
                "{}: impossibly fast lap {}", family.name(), rec.lap_time
            );
            prop_assert!(rec.time_behind_leader >= 0.0);
            prop_assert!((0.0..=1.0).contains(&rec.track_wetness));
            prop_assert!((0.0..=1.0).contains(&rec.fuel_target));
        }
    }

    #[test]
    fn tyre_age_counts_up_between_stops(
        family in any_family(), (event, year) in any_base(), seed in 0u64..1000
    ) {
        // tyre_age is the age entering the lap: 0 on a car's first lap,
        // +1 per non-pit lap, back to 0 on the lap after a stop. Monotone
        // within every stint by construction — this checks the recorded
        // covariate actually obeys that bookkeeping in every family.
        let cfg = ScenarioConfig::standard(family, event, year);
        let race = simulate_scenario(&cfg, seed);
        for car in &race.field {
            let recs = race.car_records(car.car_id);
            for (i, rec) in recs.iter().enumerate() {
                if i == 0 {
                    prop_assert_eq!(rec.tyre_age, 0, "car {} starts on fresh tyres", car.car_id);
                } else if recs[i - 1].lap_status.is_pit() {
                    prop_assert_eq!(rec.tyre_age, 0, "car {} left the pits", car.car_id);
                } else {
                    prop_assert_eq!(
                        rec.tyre_age, recs[i - 1].tyre_age + 1,
                        "car {} lap {}: tyre age must grow by one", car.car_id, rec.lap
                    );
                }
            }
        }
    }

    #[test]
    fn degradation_is_monotone_in_age(
        (event, year) in any_base(), a in 0u16..120, b in 0u16..120
    ) {
        // The closed-form curve behind every compound's pit pressure.
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for spec in &TyreStrategyConfig::standard(event, year).compounds {
            prop_assert!(
                degradation_s(spec, lo) <= degradation_s(spec, hi),
                "compound {} degradation not monotone", spec.id
            );
        }
    }

    #[test]
    fn indycar_family_is_byte_equal_to_legacy(
        (event, year) in any_base(), seed in 0u64..1000
    ) {
        let scenario = simulate_scenario(&ScenarioConfig::indycar(event, year), seed);
        let legacy = simulate_race(&EventConfig::for_race(event, year), seed);
        prop_assert!(
            bitwise_equal(&scenario.records, &legacy.records),
            "IndyCar scenario drifted from the legacy simulator"
        );
        prop_assert_eq!(scenario.retired, legacy.retired);
    }
}
