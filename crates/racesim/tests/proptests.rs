//! Property tests of simulator invariants across random seeds and events —
//! the guarantees every downstream model silently relies on.

use proptest::prelude::*;
use rpf_racesim::{simulate_race, stats, Event, EventConfig};

fn any_event() -> impl Strategy<Value = (Event, u16)> {
    prop_oneof![
        Just(Event::Indy500),
        Just(Event::Iowa),
        Just(Event::Pocono),
        Just(Event::Texas),
    ]
    .prop_flat_map(|e| {
        let years = EventConfig::years(e);
        (Just(e), prop::sample::select(years))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ranks_are_permutations_on_every_lap((event, year) in any_event(), seed in 0u64..1000) {
        let race = simulate_race(&EventConfig::for_race(event, year), seed);
        let max_lap = race.records.iter().map(|r| r.lap).max().unwrap();
        for lap in [1u16, max_lap / 2, max_lap] {
            let mut ranks: Vec<u16> =
                race.records.iter().filter(|r| r.lap == lap).map(|r| r.rank).collect();
            ranks.sort_unstable();
            let expect: Vec<u16> = (1..=ranks.len() as u16).collect();
            prop_assert_eq!(ranks, expect, "{}-{} lap {}", event.name(), year, lap);
        }
    }

    #[test]
    fn lap_times_are_physical((event, year) in any_event(), seed in 0u64..1000) {
        let cfg = EventConfig::for_race(event, year);
        let race = simulate_race(&cfg, seed);
        let base = cfg.base_lap_time_s();
        for rec in &race.records {
            prop_assert!(rec.lap_time >= base * 0.85, "impossibly fast lap {}", rec.lap_time);
            prop_assert!(
                rec.lap_time <= base * cfg.caution_slowdown + cfg.pit_loss_s + 20.0,
                "impossibly slow lap {}",
                rec.lap_time
            );
            prop_assert!(rec.time_behind_leader >= 0.0);
        }
    }

    #[test]
    fn stints_never_exceed_fuel_window((event, year) in any_event(), seed in 0u64..1000) {
        let cfg = EventConfig::for_race(event, year);
        let race = simulate_race(&cfg, seed);
        for stop in stats::pit_stops(&race) {
            prop_assert!(
                stop.stint_length <= cfg.fuel_window_laps,
                "{}-{}: stint {} beyond fuel window {}",
                event.name(),
                year,
                stop.stint_length,
                cfg.fuel_window_laps
            );
        }
    }

    #[test]
    fn caution_status_is_field_wide((event, year) in any_event(), seed in 0u64..1000) {
        // TrackStatus is a property of the lap, not the car: all records of
        // one lap agree.
        let race = simulate_race(&EventConfig::for_race(event, year), seed);
        let max_lap = race.records.iter().map(|r| r.lap).max().unwrap();
        for lap in 1..=max_lap {
            let statuses: Vec<_> = race
                .records
                .iter()
                .filter(|r| r.lap == lap)
                .map(|r| r.track_status)
                .collect();
            prop_assert!(statuses.windows(2).all(|w| w[0] == w[1]), "lap {lap} disagrees");
        }
    }

    #[test]
    fn each_car_laps_are_strictly_increasing((event, year) in any_event(), seed in 0u64..1000) {
        let race = simulate_race(&EventConfig::for_race(event, year), seed);
        for car in &race.field {
            let laps: Vec<u16> = race.car_records(car.car_id).iter().map(|r| r.lap).collect();
            prop_assert!(laps.windows(2).all(|w| w[1] == w[0] + 1),
                "car {} has lap gaps", car.car_id);
        }
    }

    #[test]
    fn finishers_complete_the_full_distance((event, year) in any_event(), seed in 0u64..1000) {
        let cfg = EventConfig::for_race(event, year);
        let race = simulate_race(&cfg, seed);
        for id in race.finishers() {
            let n = race.car_records(id).len();
            prop_assert_eq!(n, cfg.total_laps as usize, "finisher {} ran {} laps", id, n);
        }
    }
}
