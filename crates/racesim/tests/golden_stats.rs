//! Golden summary-statistics regression test for the simulator.
//!
//! The forecast engine's equivalence harness pins the *model* side of
//! determinism; this pins the *data* side: `simulate_race` with a fixed
//! seed must keep producing the same race shape, or every downstream
//! "deterministic" forecast test silently changes meaning. Structural
//! facts (field size, lap counts, retirement bounds) are exact; the tuned
//! dynamics (pit-lap ratio) get a tolerance band so harmless re-tuning of
//! lap-noise constants doesn't trip the test, while a broken pit loop does.

use rpf_racesim::stats::{pit_laps_ratio, rank_changes_ratio};
use rpf_racesim::{simulate_race, Event, EventConfig};

#[test]
fn indy500_fixed_seed_summary_stats() {
    let cfg = EventConfig::for_race(Event::Indy500, 2018);
    let race = simulate_race(&cfg, 42);

    // Structure (exact): Table II field of 33 starters, every running car
    // logs exactly `total_laps` records, retired cars strictly fewer.
    assert_eq!(race.field.len(), 33);
    assert_eq!(race.retired.len(), 33);
    for (i, car) in race.field.iter().enumerate() {
        let laps = race.car_records(car.car_id).len();
        match race.retired[i] {
            None => assert_eq!(
                laps, cfg.total_laps as usize,
                "car {} lap count",
                car.car_id
            ),
            Some(_) => assert!(
                laps < cfg.total_laps as usize,
                "retired car {} must not log a full distance",
                car.car_id
            ),
        }
    }
    let finishers = race.finishers().len();
    assert!(
        (20..=33).contains(&finishers),
        "{finishers} finishers is outside any plausible Indy500"
    );

    // Dynamics (banded): the paper's Fig 6 places Indy500 top-right —
    // highest PitLapsRatio and RankChangesRatio of the four events.
    let pit_ratio = pit_laps_ratio(&race);
    assert!(
        (0.02..=0.30).contains(&pit_ratio),
        "pit-laps ratio {pit_ratio} drifted out of the Indy500 band"
    );
    let rank_changes = rank_changes_ratio(&race);
    assert!(
        rank_changes > 0.0 && rank_changes < 1.0,
        "rank-changes ratio {rank_changes} degenerate"
    );

    // Determinism: the same seed replays the identical race; a different
    // seed does not.
    let replay = simulate_race(&cfg, 42);
    assert_eq!(race.records.len(), replay.records.len());
    for (a, b) in race.records.iter().zip(&replay.records) {
        assert_eq!(a.car_id, b.car_id);
        assert_eq!(a.lap, b.lap);
        assert_eq!(a.rank, b.rank);
        assert_eq!(a.lap_time.to_bits(), b.lap_time.to_bits());
    }
    let other = simulate_race(&cfg, 43);
    let same = race
        .records
        .iter()
        .zip(&other.records)
        .all(|(a, b)| a.lap_time.to_bits() == b.lap_time.to_bits());
    assert!(!same, "different seeds must not replay the same race");
}
