//! Golden regression for the scenario families at a fixed seed.
//!
//! The IndyCar pin is exact — byte equality with the legacy simulator is
//! the acceptance criterion of the scenario subsystem. The other families
//! pin the *shape* their dynamics are supposed to produce (compound usage,
//! caution load, wetness sweep) in bands, golden_stats-style, so harmless
//! re-tuning survives but a broken strategy loop does not.

use rpf_racesim::stats::pit_laps_ratio;
use rpf_racesim::{
    simulate_race, simulate_scenario, Event, EventConfig, ScenarioConfig, ScenarioFamily,
    TrackStatus,
};
use std::collections::BTreeSet;

const SEED: u64 = 42;

fn indy(family: ScenarioFamily) -> rpf_racesim::RaceResult {
    simulate_scenario(
        &ScenarioConfig::standard(family, Event::Indy500, 2018),
        SEED,
    )
}

#[test]
fn indycar_family_is_the_legacy_simulator() {
    let scenario = indy(ScenarioFamily::IndyCar);
    let legacy = simulate_race(&EventConfig::for_race(Event::Indy500, 2018), SEED);
    assert_eq!(scenario.records.len(), legacy.records.len());
    for (a, b) in scenario.records.iter().zip(&legacy.records) {
        assert_eq!(a.car_id, b.car_id);
        assert_eq!(a.lap, b.lap);
        assert_eq!(a.rank, b.rank);
        assert_eq!(a.lap_time.to_bits(), b.lap_time.to_bits());
        assert_eq!(
            a.time_behind_leader.to_bits(),
            b.time_behind_leader.to_bits()
        );
        assert_eq!(a.lap_status, b.lap_status);
        assert_eq!(a.track_status, b.track_status);
        // Legacy covariate defaults: single compound, dry, no fuel saving.
        assert_eq!(a.compound, 0);
        assert_eq!(a.track_wetness, 0.0);
        assert_eq!(a.fuel_target, 0.0);
    }
    assert_eq!(scenario.retired, legacy.retired);
}

#[test]
fn every_family_keeps_the_race_shape() {
    for family in ScenarioFamily::ALL {
        let race = indy(family);
        assert_eq!(race.field.len(), 33, "{}", family.name());
        let finishers = race.finishers().len();
        assert!(
            (15..=33).contains(&finishers),
            "{}: {finishers} finishers",
            family.name()
        );
        let ratio = pit_laps_ratio(&race);
        assert!(
            (0.02..=0.60).contains(&ratio),
            "{}: pit-laps ratio {ratio} out of band",
            family.name()
        );
        // Replay determinism at the golden seed.
        let replay = indy(family);
        assert_eq!(race.records.len(), replay.records.len());
        for (a, b) in race.records.iter().zip(&replay.records) {
            assert_eq!(
                a.lap_time.to_bits(),
                b.lap_time.to_bits(),
                "{}",
                family.name()
            );
        }
    }
}

#[test]
fn tyre_strategy_races_on_three_compounds() {
    let race = indy(ScenarioFamily::TyreStrategy);
    let compounds: BTreeSet<u8> = race.records.iter().map(|r| r.compound).collect();
    assert_eq!(
        compounds,
        BTreeSet::from([1, 2, 3]),
        "standard F1-style set must exercise soft/medium/hard"
    );
    // Mandatory-change rule: every finisher runs at least two compounds.
    for id in race.finishers() {
        let used: BTreeSet<u8> = race.car_records(id).iter().map(|r| r.compound).collect();
        assert!(used.len() >= 2, "car {id} ran a single compound");
    }
}

#[test]
fn caution_regime_doubles_the_caution_load() {
    let heavy = indy(ScenarioFamily::CautionRegime);
    let baseline = indy(ScenarioFamily::IndyCar);
    assert!(
        heavy.caution_lap_count() >= baseline.caution_lap_count(),
        "2.5x hazard plus a scheduled caution must not reduce caution laps \
         ({} vs {})",
        heavy.caution_lap_count(),
        baseline.caution_lap_count()
    );
    // The scheduled competition caution fires regardless of crash luck.
    let sched = 200 / 3;
    assert!(
        heavy
            .records
            .iter()
            .any(|r| r.lap >= sched && r.lap < sched + 6 && r.track_status == TrackStatus::Yellow),
        "scheduled caution did not appear"
    );
}

#[test]
fn wet_dry_sweeps_weather_and_fuel_pressure() {
    let race = indy(ScenarioFamily::WetDry);
    let max_wet = race
        .records
        .iter()
        .map(|r| r.track_wetness)
        .fold(0.0f32, f32::max);
    assert!(max_wet >= 0.5, "showers never wet the track ({max_wet})");
    assert!(
        race.records.iter().any(|r| r.track_wetness == 0.0),
        "race must also see dry running"
    );
    let compounds: BTreeSet<u8> = race.records.iter().map(|r| r.compound).collect();
    assert!(
        compounds.contains(&rpf_racesim::scenario::WET_COMPOUND),
        "no car crossed over to wet tyres: {compounds:?}"
    );
    let max_fuel = race
        .records
        .iter()
        .map(|r| r.fuel_target)
        .fold(0.0f32, f32::max);
    assert!(
        max_fuel > 0.1,
        "fuel-saving pressure never materialised ({max_fuel})"
    );
}
