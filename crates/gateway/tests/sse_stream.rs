//! SSE `/races/{race}/stream` behaviour over real sockets: a live client
//! receives per-lap updates as they are published (the acceptance bar is
//! at least two), a late subscriber replays the history it missed, events
//! are filtered per race, and closing the bus terminates every stream
//! with an `end` event followed by EOF.

mod common;

use common::{
    direct, fast_gateway_cfg, read_http_head, read_sse_frame, roomy_serve_cfg, sse_fields,
    with_stack, EchoBackend,
};
use rpf_gateway::routes::lap_payload;
use rpf_gateway::{serve_http, LapBus, LapUpdate};
use rpf_serve::ServeRequest;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn update(race: usize, lap: u64) -> LapUpdate {
    LapUpdate {
        race,
        lap,
        data: format!("{{\"race\":{race},\"lap\":{lap}}}"),
    }
}

fn subscribe(addr: std::net::SocketAddr, race: usize) -> (TcpStream, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .expect("timeout");
    stream
        .write_all(format!("GET /races/{race}/stream HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("subscribe");
    let mut buf = Vec::new();
    let head = read_http_head(&mut stream, &mut buf).expect("response head");
    assert!(head.starts_with("HTTP/1.1 200 "), "{head}");
    assert!(head.contains("Content-Type: text/event-stream"), "{head}");
    (stream, buf)
}

/// Field value from an SSE frame, or a panic naming the frame.
fn field<'f>(fields: &'f [(String, String)], name: &str) -> &'f str {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("no `{name}` field in {fields:?}"))
}

#[test]
fn live_client_receives_at_least_two_lap_updates() {
    let bus = LapBus::new();
    serve_http(EchoBackend, 2, &bus, &fast_gateway_cfg(), None, |gw| {
        let (mut sub, mut buf) = subscribe(gw.addr(), 0);
        // Publish after the subscription is established, interleaving an
        // event for another race that must NOT reach this client.
        bus.publish(update(0, 1));
        bus.publish(update(1, 99));
        bus.publish(update(0, 2));
        bus.publish(update(0, 3));

        let mut laps = Vec::new();
        let mut ids = Vec::new();
        while laps.len() < 3 {
            let frame = read_sse_frame(&mut sub, &mut buf).expect("live event");
            let fields = sse_fields(&frame);
            assert_eq!(field(&fields, "event"), "lap");
            let data = field(&fields, "data").to_string();
            assert!(
                !data.contains("\"lap\":99"),
                "race-1 event leaked into the race-0 stream: {data}"
            );
            ids.push(field(&fields, "id").parse::<usize>().expect("numeric id"));
            laps.push(data);
        }
        assert_eq!(
            laps,
            vec![
                "{\"race\":0,\"lap\":1}",
                "{\"race\":0,\"lap\":2}",
                "{\"race\":0,\"lap\":3}"
            ]
        );
        // Event ids are the bus log sequence numbers: strictly increasing,
        // with a gap where the race-1 event sat between lap 1 and lap 2.
        assert_eq!(ids, vec![0, 2, 3]);
        assert!(gw.metrics().sse_events.value() >= 3);
        assert_eq!(gw.metrics().sse_clients.value(), 1);
    })
    .expect("gateway runs");
}

#[test]
fn late_subscriber_replays_missed_events() {
    let bus = LapBus::new();
    // Everything is published before the subscriber ever connects.
    bus.publish(update(0, 1));
    bus.publish(update(0, 2));
    serve_http(EchoBackend, 1, &bus, &fast_gateway_cfg(), None, |gw| {
        let (mut sub, mut buf) = subscribe(gw.addr(), 0);
        let a = read_sse_frame(&mut sub, &mut buf).expect("replayed event");
        let b = read_sse_frame(&mut sub, &mut buf).expect("replayed event");
        assert_eq!(field(&sse_fields(&a), "data"), "{\"race\":0,\"lap\":1}");
        assert_eq!(field(&sse_fields(&b), "data"), "{\"race\":0,\"lap\":2}");
    })
    .expect("gateway runs");
}

#[test]
fn closing_the_bus_ends_streams_with_a_terminal_event_then_eof() {
    let bus = LapBus::new();
    serve_http(EchoBackend, 1, &bus, &fast_gateway_cfg(), None, |gw| {
        let (mut sub, mut buf) = subscribe(gw.addr(), 0);
        bus.publish(update(0, 1));
        let first = read_sse_frame(&mut sub, &mut buf).expect("lap event");
        assert_eq!(field(&sse_fields(&first), "event"), "lap");

        bus.close();
        let last = read_sse_frame(&mut sub, &mut buf).expect("terminal event");
        assert_eq!(field(&sse_fields(&last), "event"), "end");
        // After the terminal frame the server closes the connection.
        let mut rest = Vec::new();
        sub.read_to_end(&mut rest).expect("EOF");
        assert!(buf.is_empty() && rest.is_empty(), "bytes after end frame");
    })
    .expect("gateway runs");
}

#[test]
fn out_of_range_race_stream_is_a_404_not_a_hang() {
    let bus = LapBus::new();
    serve_http(EchoBackend, 2, &bus, &fast_gateway_cfg(), None, |gw| {
        let mut client =
            rpf_gateway::HttpClient::connect(gw.addr(), Duration::from_secs(3)).expect("connect");
        let resp = client.get("/races/7/stream").expect("request");
        assert_eq!(resp.status, 404, "{}", resp.body_str());
    })
    .expect("gateway runs");
}

/// Full stack: per-lap payloads rendered from real engine forecasts reach
/// a live wire client while the same gateway serves POST /forecast.
#[test]
fn real_stack_streams_forecast_derived_payloads() {
    let bus = LapBus::new();
    with_stack(&roomy_serve_cfg(), &fast_gateway_cfg(), &bus, |gw| {
        let (mut sub, mut buf) = subscribe(gw.addr(), 0);
        for lap in [50u64, 51] {
            let req = ServeRequest::new(0, lap as usize, 2, 2);
            let forecast = direct(&req).expect("valid request");
            bus.publish(lap_payload(0, lap, &forecast));
        }
        for lap in [50u64, 51] {
            let frame = read_sse_frame(&mut sub, &mut buf).expect("lap event");
            let fields = sse_fields(&frame);
            assert_eq!(field(&fields, "event"), "lap");
            let data = field(&fields, "data");
            assert!(
                data.contains(&format!("\"lap\":{lap}")) && data.contains("\"mean_final_rank\":["),
                "unexpected payload: {data}"
            );
        }
    });
}
