//! Shared fixture for gateway integration tests: the same tiny trained
//! RankNet + unseen-race pattern the serving tests use, plus wire-side
//! helpers (stub backends and a full engine→serve→gateway stack runner).
//!
//! Not every test binary uses every helper.
#![allow(dead_code)]

use ranknet_core::engine::{EngineForecast, ForecastEngine};
use ranknet_core::features::{extract_sequences, RaceContext};
use ranknet_core::ranknet::{RankNet, RankNetVariant};
use ranknet_core::RankNetConfig;
use rpf_gateway::{GatewayConfig, GatewayHandle, LapBus};
use rpf_racesim::{simulate_race, Event, EventConfig};
use rpf_serve::loadgen::Submitter;
use rpf_serve::{ServeConfig, ServeRequest, ServeResponse, ServeResult, SubmitError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

pub fn race_ctx(seed: u64) -> RaceContext {
    extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2017),
        seed,
    ))
}

pub fn fixture() -> &'static (RankNet, Vec<RaceContext>) {
    static FIX: OnceLock<(RankNet, Vec<RaceContext>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let cfg = RankNetConfig {
            max_epochs: 1,
            ..RankNetConfig::tiny()
        };
        let train = vec![race_ctx(101)];
        let (model, _) = RankNet::fit(train.clone(), train, cfg, RankNetVariant::Oracle, 40);
        (model, vec![race_ctx(102), race_ctx(103)])
    })
}

/// Engine seed shared by the served and the reference engines.
pub const ENGINE_SEED: u64 = 5;

/// Flatten a forecast to bit patterns so comparisons are exact.
pub fn bits(f: &EngineForecast) -> Vec<u32> {
    f.samples
        .iter()
        .flat_map(|car| car.iter().flat_map(|path| path.iter().map(|v| v.to_bits())))
        .collect()
}

/// The reference answer: a direct engine call on a fresh engine with the
/// same seed, completely outside the serving layer and the wire.
pub fn direct(req: &ServeRequest) -> Result<EngineForecast, ranknet_core::EngineError> {
    let (model, contexts) = fixture();
    if req.race >= contexts.len() {
        return Err(ranknet_core::EngineError::RaceOutOfRange {
            race: req.race,
            n_contexts: contexts.len(),
        });
    }
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
    engine.try_forecast_keyed(
        req.race,
        &contexts[req.race],
        req.origin,
        req.horizon,
        req.n_samples,
    )
}

/// Assert a wire outcome matches the direct reference bit-for-bit.
pub fn assert_parity(req: &ServeRequest, outcome: &ServeResult) {
    match outcome {
        Ok(resp) => {
            assert!(
                resp.fallback.is_none(),
                "unexpected fallback {:?} for {req:?}",
                resp.fallback
            );
            let reference = direct(req).expect("direct call must accept what serving accepted");
            assert_eq!(
                bits(&reference),
                bits(&resp.forecast),
                "wire forecast diverged from direct call for {req:?}"
            );
        }
        Err(e) => {
            let reference = direct(req);
            assert!(
                reference.is_err(),
                "wire rejected {req:?} as {e:?} but the direct call accepted it"
            );
        }
    }
}

/// A serving config that never rejects under test loads.
pub fn roomy_serve_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 8,
        max_delay: Duration::from_micros(200),
        queue_capacity: 256,
    }
}

/// A gateway config with short timeouts so fault tests stay fast.
pub fn fast_gateway_cfg() -> GatewayConfig {
    GatewayConfig {
        conn_workers: 4,
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        pending_conns: 64,
        ..GatewayConfig::default()
    }
}

/// Run the full engine→serve→gateway stack and hand `body` the gateway
/// handle. Returns the body's value.
pub fn with_stack<R: Send>(
    serve_cfg: &ServeConfig,
    gw_cfg: &GatewayConfig,
    bus: &LapBus,
    body: impl FnOnce(&GatewayHandle<'_>) -> R + Send,
) -> R {
    let (model, contexts) = fixture();
    let refs: Vec<&RaceContext> = contexts.iter().collect();
    let engine = ForecastEngine::new(model, ENGINE_SEED).with_threads(1);
    let ((out, _gw_snap), _serve_snap) = rpf_serve::serve(&engine, &refs, serve_cfg, |client| {
        rpf_gateway::serve_http(client, refs.len(), bus, gw_cfg, None, body)
            .expect("gateway binds loopback")
    });
    out
}

/// Stub backend: answers instantly with a canned forecast (no model), so
/// wire-protocol tests don't pay for training or inference.
#[derive(Clone, Copy)]
pub struct EchoBackend;

/// A tiny deterministic response the echo backend serves for any request.
pub fn canned_response(id: u64) -> ServeResponse {
    ServeResponse {
        id,
        forecast: EngineForecast {
            samples: vec![vec![vec![1.5, 2.25], vec![3.5, 4.75]]],
            degraded: false,
            degraded_trajectories: 0,
            model_version: 7,
        },
        fallback: None,
        batch_size: 1,
    }
}

static ECHO_IDS: AtomicU64 = AtomicU64::new(0);

impl Submitter for EchoBackend {
    type Pending = u64;

    fn submit(&self, _req: ServeRequest) -> Result<u64, SubmitError> {
        Ok(ECHO_IDS.fetch_add(1, Ordering::Relaxed))
    }

    fn wait(id: u64) -> Result<ServeResult, SubmitError> {
        Ok(Ok(canned_response(id)))
    }
}

/// Stub backend: rejects every submission with `QueueFull`, for
/// deterministic 429 accounting.
#[derive(Clone, Copy)]
pub struct RejectAll {
    pub capacity: usize,
}

/// Uninhabited pending type for backends that reject at submit.
pub enum Never {}

impl Submitter for RejectAll {
    type Pending = Never;

    fn submit(&self, _req: ServeRequest) -> Result<Never, SubmitError> {
        Err(SubmitError::QueueFull {
            capacity: self.capacity,
        })
    }

    fn wait(pending: Never) -> Result<ServeResult, SubmitError> {
        match pending {}
    }
}

/// Stub backend: answers like [`EchoBackend`] but only after the
/// [`SLOW_DELAY_MS`] delay, for shutdown-drain and saturation scenarios.
#[derive(Clone, Copy)]
pub struct SlowBackend;

impl Submitter for SlowBackend {
    type Pending = u64;

    fn submit(&self, _req: ServeRequest) -> Result<u64, SubmitError> {
        Ok(ECHO_IDS.fetch_add(1, Ordering::Relaxed))
    }

    fn wait(id: u64) -> Result<ServeResult, SubmitError> {
        // The delay is stored globally per test binary via SLOW_DELAY_MS
        // because `wait` is associated (no &self); set it before serving.
        std::thread::sleep(Duration::from_millis(SLOW_DELAY_MS.load(Ordering::Relaxed)));
        Ok(Ok(canned_response(id)))
    }
}

/// Delay used by [`SlowBackend::wait`], in milliseconds.
pub static SLOW_DELAY_MS: AtomicU64 = AtomicU64::new(50);

/// Read an HTTP response head (everything up to the `\r\n\r\n`) off a raw
/// stream, leaving any following bytes (the start of the streamed body) in
/// `buf`. Returns `None` on EOF or timeout.
pub fn read_http_head(stream: &mut std::net::TcpStream, buf: &mut Vec<u8>) -> Option<String> {
    use std::io::Read;
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..pos]).to_string();
            buf.drain(..pos + 4);
            return Some(head);
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
}

/// Read one SSE frame (everything up to a blank line) off a raw stream,
/// carrying partial bytes in `buf` between calls. Returns `None` on EOF
/// or timeout.
pub fn read_sse_frame(stream: &mut std::net::TcpStream, buf: &mut Vec<u8>) -> Option<String> {
    use std::io::Read;
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(pos) = buf.windows(2).position(|w| w == b"\n\n") {
            let frame = String::from_utf8_lossy(&buf[..pos]).to_string();
            buf.drain(..pos + 2);
            return Some(frame);
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
}

/// Split an SSE frame into its `field: value` lines.
pub fn sse_fields(frame: &str) -> Vec<(String, String)> {
    frame
        .lines()
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// A canned valid forecast request body.
pub fn valid_body() -> String {
    "{\"race\":0,\"origin\":50,\"horizon\":2,\"n_samples\":2}".to_string()
}

/// A canned valid request as raw HTTP bytes.
pub fn valid_request_bytes() -> Vec<u8> {
    let body = valid_body();
    format!(
        "POST /forecast HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}
