//! Soak smoke (<10 s): the deterministic load generator drives the full
//! engine→serve→gateway stack over real sockets with a merged
//! burst/ramp/uniform arrival script, then the test checks conservation
//! (every scripted request has exactly one outcome), bit-level parity of
//! every response against direct engine calls, and that the gateway's own
//! metrics — read both from the handle and from a wire scrape — account
//! for every request.

mod common;

use common::{assert_parity, fast_gateway_cfg, roomy_serve_cfg, with_stack};
use rpf_gateway::{HttpClient, HttpSubmitter, LapBus};
use rpf_nn::RngStreams;
use rpf_serve::loadgen::{self, burst, merge, ramp, schedule, uniform, LoadMix};
use rpf_serve::FallbackReason;
use std::time::Duration;

#[test]
fn open_loop_soak_conserves_requests_and_keeps_parity() {
    const TOTAL: usize = 26;
    let bus = LapBus::new();
    let (report, handle_requests, handle_200, scrape) =
        with_stack(&roomy_serve_cfg(), &fast_gateway_cfg(), &bus, |gw| {
            let submitter = HttpSubmitter::new(gw.addr());
            let mix = LoadMix::standard(2, (40, 100));
            let streams = RngStreams::new(0x50AC);
            // Thundering herd + steady trickle + accelerating ramp, merged
            // into one time-sorted script. Indices are disjoint per part so
            // the request populations don't collide in stream space.
            let script = merge(vec![
                schedule(&burst(Duration::from_millis(5), 8), &mix, &streams, 0),
                schedule(
                    &uniform(Duration::ZERO, Duration::from_millis(2), 10),
                    &mix,
                    &streams,
                    100,
                ),
                schedule(
                    &ramp(Duration::ZERO, Duration::from_millis(30), 8),
                    &mix,
                    &streams,
                    200,
                ),
            ]);
            assert_eq!(script.len(), TOTAL);
            let report = loadgen::run_open_loop(submitter, &script);

            // Handle-side accounting before the scrape adds a request of
            // its own.
            let handle_requests = gw.metrics().requests.value();
            let handle_200 = gw.metrics().status_count(200);

            let mut client =
                HttpClient::connect(gw.addr(), Duration::from_secs(3)).expect("connect");
            let scrape = client
                .get("/metrics")
                .expect("scrape")
                .body_str()
                .to_string();
            (report, handle_requests, handle_200, scrape)
        });

    // Conservation: the roomy queue admits everything, and every scripted
    // request produced exactly one outcome.
    assert!(
        report.rejected.is_empty(),
        "unexpected rejections: {:?}",
        report.rejected
    );
    assert_eq!(report.outcomes.len(), TOTAL);
    assert_eq!(report.submitted(), TOTAL);

    // Parity: each wire response is bit-identical to a direct engine call.
    for (req, outcome) in &report.outcomes {
        assert_parity(req, outcome);
    }

    // Metrics accounting, from the handle and over the wire. The scrape
    // request itself is counted at parse time, so the scraped body shows
    // one more request than the load run but the same number of 200s.
    assert_eq!(handle_requests, TOTAL as u64);
    assert_eq!(handle_200, TOTAL as u64);
    let requests_line = format!("rpf_gateway_requests_total {}", TOTAL + 1);
    let status_line = format!("rpf_gateway_responses_total{{status=\"200\"}} {TOTAL}");
    assert!(scrape.contains(&requests_line), "{scrape}");
    assert!(scrape.contains(&status_line), "{scrape}");
}

#[test]
fn expired_deadlines_surface_as_fallbacks_through_the_submitter() {
    let bus = LapBus::new();
    let report = with_stack(&roomy_serve_cfg(), &fast_gateway_cfg(), &bus, |gw| {
        let submitter = HttpSubmitter::new(gw.addr());
        let mix = LoadMix {
            deadline: Some(Duration::ZERO),
            ..LoadMix::standard(2, (40, 100))
        };
        let streams = RngStreams::new(0xDEAD);
        let script = schedule(&burst(Duration::ZERO, 6), &mix, &streams, 0);
        loadgen::run_open_loop(submitter, &script)
    });
    assert!(report.rejected.is_empty(), "{:?}", report.rejected);
    assert_eq!(report.outcomes.len(), 6);
    for (req, outcome) in &report.outcomes {
        let resp = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{req:?} rejected: {e:?}"));
        // An already-expired deadline still gets an answer — the CurRank
        // fallback — and the degraded markers survive the wire.
        assert_eq!(resp.fallback, Some(FallbackReason::DeadlineExpired));
        assert!(resp.forecast.degraded);
        assert!(resp.forecast.degraded_trajectories > 0);
    }
}
