//! Wire-level equivalence: JSON forecast bodies served over TCP must be
//! bit-identical (modulo serialization) to direct
//! `ForecastEngine::try_forecast_keyed` calls — across keep-alive reuse
//! on one connection, concurrent clients on many connections, and the
//! serving layer's own closed-loop driver running over [`HttpSubmitter`].
//! "Modulo serialization" is exact here: floats travel as their shortest
//! round-trip decimal, so `to_bits` equality is asserted, not approximate
//! equality.

mod common;

use common::{assert_parity, bits, direct, fast_gateway_cfg, roomy_serve_cfg, with_stack};
use rpf_gateway::routes::{parse_error_body, parse_forecast_response, render_forecast_body};
use rpf_gateway::{HttpClient, HttpSubmitter, LapBus};
use rpf_nn::RngStreams;
use rpf_serve::loadgen::{self, LoadMix};
use rpf_serve::{ServeError, ServeRequest, ServeResult};
use std::time::Duration;

/// POST one request over an existing keep-alive client and classify the
/// response the way the in-process API would.
fn wire_call(client: &mut HttpClient, req: &ServeRequest) -> ServeResult {
    let resp = client
        .post_json("/forecast", &render_forecast_body(req))
        .expect("wire exchange");
    match resp.status {
        200 => Ok(parse_forecast_response(&resp.body_str()).expect("schema-valid 200 body")),
        status => match parse_error_body(status, &resp.body_str()) {
            Ok(serve_err) => Err(serve_err),
            Err(_) => panic!("unexpected status {status}: {}", resp.body_str()),
        },
    }
}

#[test]
fn keepalive_reuse_matches_direct_calls_bit_for_bit() {
    let bus = LapBus::new();
    with_stack(&roomy_serve_cfg(), &fast_gateway_cfg(), &bus, |gw| {
        let mut client = HttpClient::connect(gw.addr(), Duration::from_secs(10)).expect("connect");
        // A dozen requests down one connection, valid and invalid mixed —
        // responses must arrive in order and match the direct reference.
        let requests = vec![
            ServeRequest::new(0, 50, 2, 2),
            ServeRequest::new(1, 60, 1, 4),
            ServeRequest::new(0, 50, 2, 2), // duplicate: identical bits again
            ServeRequest::new(9, 50, 1, 1), // race out of range -> 400
            ServeRequest::new(0, 80, 3, 2),
            ServeRequest::new(1, 45, 1, 1),
            ServeRequest::new(0, 50, 0, 1), // zero horizon -> 400
            ServeRequest::new(1, 100, 2, 2),
            ServeRequest::new(0, 31, 1, 2),
            ServeRequest::new(0, 50, 1, 0), // zero samples -> 400
            ServeRequest::new(1, 70, 2, 4),
            ServeRequest::new(0, 90, 1, 2),
        ];
        for req in &requests {
            let outcome = wire_call(&mut client, req);
            assert_parity(req, &outcome);
        }
        // The typed rejections came back as the exact engine errors.
        match wire_call(&mut client, &ServeRequest::new(9, 50, 1, 1)) {
            Err(ServeError::Invalid(ranknet_core::EngineError::RaceOutOfRange {
                race: 9,
                n_contexts: 2,
            })) => {}
            other => panic!("wrong typed rejection: {other:?}"),
        }
    });
}

#[test]
fn concurrent_keepalive_clients_all_match_direct_calls() {
    let bus = LapBus::new();
    with_stack(&roomy_serve_cfg(), &fast_gateway_cfg(), &bus, |gw| {
        let addr = gw.addr();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|c| {
                    s.spawn(move || {
                        let mut client =
                            HttpClient::connect(addr, Duration::from_secs(10)).expect("connect");
                        let mix = LoadMix::standard(2, (40, 100));
                        let streams = RngStreams::new(0xA11CE + c as u64);
                        for i in 0..6 {
                            let req = mix.request_at(&streams, i);
                            let outcome = wire_call(&mut client, &req);
                            assert_parity(&req, &outcome);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client thread");
            }
        });
    });
}

#[test]
fn closed_loop_driver_over_http_submitter_matches_direct() {
    let bus = LapBus::new();
    let report = with_stack(&roomy_serve_cfg(), &fast_gateway_cfg(), &bus, |gw| {
        let submitter = HttpSubmitter::new(gw.addr());
        let mix = LoadMix::standard(2, (40, 100));
        let streams = RngStreams::new(0x50C4E7);
        loadgen::run_closed_loop(submitter, 3, 5, &mix, &streams)
    });
    assert!(
        report.rejected.is_empty(),
        "roomy queue must admit everything: {:?}",
        report.rejected
    );
    assert_eq!(report.outcomes.len(), 15);
    for (req, outcome) in &report.outcomes {
        assert_parity(req, outcome);
    }
}

/// A deadline of zero forces the CurRank fallback; the flag and the
/// fallback forecast must survive the wire round-trip exactly.
#[test]
fn forced_fallback_survives_the_wire() {
    let bus = LapBus::new();
    with_stack(&roomy_serve_cfg(), &fast_gateway_cfg(), &bus, |gw| {
        let mut client = HttpClient::connect(gw.addr(), Duration::from_secs(10)).expect("connect");
        let req = ServeRequest::new(0, 50, 2, 2).with_deadline(Duration::ZERO);
        let resp = client
            .post_json("/forecast", &render_forecast_body(&req))
            .expect("wire exchange");
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        let served = parse_forecast_response(&resp.body_str()).expect("valid body");
        assert_eq!(
            served.fallback,
            Some(rpf_serve::FallbackReason::DeadlineExpired)
        );
        assert!(served.forecast.degraded);
        // The fallback is the deterministic CurRank persistence forecast;
        // pin it against the model-free builder.
        let (_, contexts) = common::fixture();
        let reference = ranknet_core::engine::currank_forecast(&contexts[0], 50, 2, 2)
            .expect("currank accepts the valid request");
        assert_eq!(bits(&reference), bits(&served.forecast));
        let _ = direct; // shared helper, used by the other tests
    });
}
