//! Wire-level golden test for `GET /metrics`: the bytes served over TCP
//! are exactly the exporter output of the snapshot the gateway was given
//! — `MetricsSnapshot::render` for the plain format, `render_prometheus`
//! for the default exposition — and the *complete* HTTP response (status
//! line, headers, body) is pinned against a checked-in golden file.
//! Response serialization is deterministic by design (fixed header order,
//! no date stamp), which is what makes pinning full responses possible.
//!
//! The snapshot source is the test's own fixed fixture: `serve_http`'s
//! `metrics_source` hook replaces the gateway's live (timing-dependent)
//! counters with a constant, so the served bytes are a pure function of
//! the exporter code. Regenerate after deliberate exporter/response
//! changes with `UPDATE_GOLDEN=1 cargo test -p rpf-gateway --test
//! wire_golden`.

mod common;

use common::EchoBackend;
use rpf_gateway::{serve_http, GatewayConfig, HttpClient, LapBus};
use rpf_obs::{MetricsSnapshot, Registry, LATENCY_EDGES_NS};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn check_golden(path: &PathBuf, rendered: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(path, rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        golden, rendered,
        "gateway /metrics wire bytes diverged from the golden snapshot; \
         if the exporter/response change is deliberate, regenerate with \
         UPDATE_GOLDEN=1"
    );
}

/// A fixed cross-layer snapshot, standing in for the merged
/// engine+serve+gateway registries of a real deployment. Every value is a
/// constant, so the rendered bytes are too.
fn fixture_snapshot() -> MetricsSnapshot {
    let r = Registry::new();
    r.counter("engine_calls").add(7);
    r.counter("engine_cache_hits").add(4);
    r.counter("serve_submitted").add(21);
    r.counter("serve_ok_responses").add(19);
    r.counter("serve_rejected_queue_full").add(2);
    r.counter("gateway_requests").add(23);
    r.counter("gateway_responses{status=\"200\"}").add(19);
    r.counter("gateway_responses{status=\"429\"}").add(2);
    r.counter("gateway_parse_errors").add(1);
    r.gauge("serve_queue_depth_max").set(3);
    let h = r.histogram("gateway_request_latency_ns", &LATENCY_EDGES_NS);
    for v in [40_000u64, 90_000, 400_000, 1_200_000, 40_000_000] {
        h.observe(v);
    }
    r.snapshot()
}

fn gw_cfg() -> GatewayConfig {
    GatewayConfig {
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        ..GatewayConfig::default()
    }
}

/// Full raw exchange: one request, read to EOF (server closes).
fn raw_exchange(addr: std::net::SocketAddr, request: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .expect("timeout");
    stream.write_all(request.as_bytes()).expect("request");
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    out
}

#[test]
fn metrics_wire_bytes_equal_snapshot_render_exactly() {
    let snap = fixture_snapshot();
    let source = {
        let snap = snap.clone();
        move |_own: MetricsSnapshot| snap.clone()
    };
    let bus = LapBus::new();
    serve_http(EchoBackend, 1, &bus, &gw_cfg(), Some(&source), |gw| {
        // Default format: the Prometheus exposition, byte-for-byte.
        let mut client = HttpClient::connect(gw.addr(), Duration::from_secs(3)).expect("connect");
        let resp = client.get("/metrics").expect("scrape");
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.header("content-type"),
            Some("text/plain; version=0.0.4")
        );
        assert_eq!(
            resp.body_str(),
            snap.render_prometheus(),
            "prometheus body must be the exporter output, untouched"
        );

        // Plain format: exactly `MetricsSnapshot::render` output.
        let resp = client.get("/metrics?format=plain").expect("scrape");
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body_str(),
            snap.render(),
            "plain body must be MetricsSnapshot::render output, untouched"
        );

        // The complete response — status line, every header, body —
        // pinned against the golden file.
        let full = raw_exchange(
            gw.addr(),
            "GET /metrics HTTP/1.1\r\nHost: g\r\nConnection: close\r\n\r\n",
        );
        let full = String::from_utf8(full).expect("ascii response");
        check_golden(&golden_path("gateway_metrics.http"), &full);

        let full_plain = raw_exchange(
            gw.addr(),
            "GET /metrics?format=plain HTTP/1.1\r\nHost: g\r\nConnection: close\r\n\r\n",
        );
        let full_plain = String::from_utf8(full_plain).expect("ascii response");
        check_golden(&golden_path("gateway_metrics_plain.http"), &full_plain);
    })
    .expect("gateway runs");
}

/// Without a source hook the gateway serves its own live registry — the
/// request being served is itself counted, so the scrape must mention the
/// gateway's own counters.
#[test]
fn metrics_without_source_serves_live_gateway_counters() {
    let bus = LapBus::new();
    serve_http(EchoBackend, 1, &bus, &gw_cfg(), None, |gw| {
        let mut client = HttpClient::connect(gw.addr(), Duration::from_secs(3)).expect("connect");
        client.get("/healthz").expect("probe");
        let resp = client.get("/metrics").expect("scrape");
        let body = resp.body_str().to_string();
        assert!(
            body.contains("rpf_gateway_requests_total 2"),
            "scrape must see the probe and itself: {body}"
        );
    })
    .expect("gateway runs");
}
