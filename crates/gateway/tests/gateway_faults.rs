//! Gateway fault matrix: every row is a way a client or the backend can
//! misbehave, and the assertion is that the gateway's response, counters
//! and worker pool all stay correct.
//!
//! - slow-loris: a client that trickles a partial request past the read
//!   timeout gets a 408 and the connection back, and a worker is freed;
//! - mid-response disconnect: a client that vanishes while the gateway is
//!   streaming to it is detected, counted, and its worker freed;
//! - queue-full burst: every rejected submission maps to a 429 carrying
//!   the queue capacity and a Retry-After, with exact accounting;
//! - shutdown drain: requests accepted before shutdown are answered even
//!   when the backend is slow — accepted-implies-answered extends to the
//!   wire.

mod common;

use common::{
    fast_gateway_cfg, read_http_head, read_sse_frame, sse_fields, valid_body, EchoBackend,
    RejectAll, SlowBackend, SLOW_DELAY_MS,
};
use rpf_gateway::{serve_http, GatewayConfig, HttpClient, LapBus, LapUpdate};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Poll a counter until it reaches `want` or ~3 s elapse. Worker-side
/// increments can lag the client-visible effect by a scheduling quantum,
/// so counter assertions are bounded-wait, not instantaneous.
fn wait_for(read: impl Fn() -> u64, want: u64, what: &str) -> u64 {
    for _ in 0..300 {
        let got = read();
        if got >= want {
            return got;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("{what} never reached {want} (last value {})", read());
}

#[test]
fn slow_loris_gets_408_and_frees_the_worker() {
    let bus = LapBus::new();
    serve_http(EchoBackend, 1, &bus, &fast_gateway_cfg(), None, |gw| {
        let mut loris = TcpStream::connect(gw.addr()).expect("connect");
        loris
            .set_read_timeout(Some(Duration::from_secs(3)))
            .expect("timeout");
        // A torn request head, then silence: the 300 ms read timeout must
        // fire and answer 408 rather than hold the worker forever.
        loris.write_all(b"POST /fore").expect("partial head");
        let mut raw = Vec::new();
        loris.read_to_end(&mut raw).expect("read 408 then EOF");
        let text = String::from_utf8_lossy(&raw);
        assert!(
            text.starts_with("HTTP/1.1 408 "),
            "expected 408 Request Timeout, got: {text}"
        );
        assert!(text.contains("read_timeout"), "{text}");
        assert!(
            text.contains("Connection: close"),
            "a timed-out connection must not be kept alive: {text}"
        );
        wait_for(|| gw.metrics().read_timeouts.value(), 1, "read_timeouts");
        assert_eq!(gw.metrics().status_count(408), 1);

        // The worker is free again: an ordinary request still round-trips.
        let mut client = HttpClient::connect(gw.addr(), Duration::from_secs(3)).expect("connect");
        let resp = client.post_json("/forecast", &valid_body()).expect("post");
        assert_eq!(resp.status, 200, "{}", resp.body_str());
    })
    .expect("gateway runs");
}

#[test]
fn idle_keepalive_timeout_closes_silently_without_a_408() {
    let bus = LapBus::new();
    serve_http(EchoBackend, 1, &bus, &fast_gateway_cfg(), None, |gw| {
        // A connection that goes idle *between* requests (empty parse
        // buffer) is not a slow loris: it is closed without a 408 and
        // without counting a read timeout.
        let mut idle = TcpStream::connect(gw.addr()).expect("connect");
        idle.set_read_timeout(Some(Duration::from_secs(3)))
            .expect("timeout");
        let mut raw = Vec::new();
        idle.read_to_end(&mut raw).expect("EOF");
        assert!(raw.is_empty(), "idle close must write nothing: {raw:?}");
        assert_eq!(gw.metrics().read_timeouts.value(), 0);
        assert_eq!(gw.metrics().status_count(408), 0);
    })
    .expect("gateway runs");
}

#[test]
fn client_disconnect_mid_stream_is_counted_and_frees_the_worker() {
    let bus = LapBus::new();
    let cfg = GatewayConfig {
        // 2 workers: one will be burned by the doomed subscriber; proving
        // a later request is served proves the worker came back.
        conn_workers: 2,
        ..fast_gateway_cfg()
    };
    serve_http(EchoBackend, 1, &bus, &cfg, None, |gw| {
        let mut sub = TcpStream::connect(gw.addr()).expect("connect");
        sub.set_read_timeout(Some(Duration::from_secs(3)))
            .expect("timeout");
        sub.write_all(b"GET /races/0/stream HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("subscribe");
        bus.publish(LapUpdate {
            race: 0,
            lap: 1,
            data: "{\"lap\":1}".to_string(),
        });
        // Read the response head plus the first event so the stream is
        // known-established, then vanish without a goodbye.
        let mut buf = Vec::new();
        let head = read_http_head(&mut sub, &mut buf).expect("response head");
        assert!(head.starts_with("HTTP/1.1 200 "), "{head}");
        let frame = read_sse_frame(&mut sub, &mut buf).expect("first event");
        assert!(
            sse_fields(&frame).iter().any(|(k, _)| k == "data"),
            "{frame}"
        );
        drop(sub);

        // Keep publishing until the gateway notices the dead socket (the
        // first writes after a disconnect can land in OS buffers).
        wait_for(
            || {
                bus.publish(LapUpdate {
                    race: 0,
                    lap: 2,
                    data: "{\"lap\":2}".to_string(),
                });
                gw.metrics().client_disconnects.value()
            },
            1,
            "client_disconnects",
        );

        // The subscriber's worker is free again.
        let mut client = HttpClient::connect(gw.addr(), Duration::from_secs(3)).expect("connect");
        let resp = client.post_json("/forecast", &valid_body()).expect("post");
        assert_eq!(resp.status, 200, "{}", resp.body_str());
    })
    .expect("gateway runs");
}

#[test]
fn queue_full_burst_maps_to_429_with_exact_accounting() {
    const BURST: usize = 12;
    let bus = LapBus::new();
    serve_http(
        RejectAll { capacity: 16 },
        1,
        &bus,
        &fast_gateway_cfg(),
        None,
        |gw| {
            let addr = gw.addr();
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..BURST)
                    .map(|_| {
                        s.spawn(move || {
                            let mut client =
                                HttpClient::connect(addr, Duration::from_secs(3)).expect("connect");
                            client.post_json("/forecast", &valid_body()).expect("post")
                        })
                    })
                    .collect();
                for h in handles {
                    let resp = h.join().expect("client thread");
                    assert_eq!(resp.status, 429, "{}", resp.body_str());
                    assert_eq!(
                        resp.header("retry-after"),
                        Some("1"),
                        "429 must carry Retry-After"
                    );
                    let body = resp.body_str();
                    assert!(
                        body.contains("queue_full") && body.contains("\"capacity\":16"),
                        "429 body must name the reason and capacity: {body}"
                    );
                }
            });
            // Full accounting: every burst request was parsed, answered
            // 429, and nothing else claimed a status.
            assert_eq!(gw.metrics().requests.value(), BURST as u64);
            assert_eq!(gw.metrics().status_count(429), BURST as u64);
            assert_eq!(gw.metrics().status_count(200), 0);
            assert_eq!(gw.metrics().status_count(503), 0);
            assert_eq!(gw.metrics().parse_errors.value(), 0);
        },
    )
    .expect("gateway runs");
}

#[test]
fn shutdown_drains_accepted_requests_even_with_a_slow_backend() {
    const CLIENTS: usize = 6;
    SLOW_DELAY_MS.store(150, Ordering::Relaxed);
    let bus = LapBus::new();
    let (handles, _snap) = serve_http(SlowBackend, 1, &bus, &fast_gateway_cfg(), None, |gw| {
        let addr = gw.addr();
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client =
                        HttpClient::connect(addr, Duration::from_secs(10)).expect("connect");
                    client.post_json("/forecast", &valid_body()).expect("post")
                })
            })
            .collect();
        // Give every client time to connect and write its request —
        // the backend answers only after 150 ms, so none is done yet
        // when the region starts shutting down.
        std::thread::sleep(Duration::from_millis(60));
        handles
    })
    .expect("gateway runs");
    // serve_http has returned: the gateway is fully shut down. Every
    // request accepted before the drain must still have been answered.
    for h in handles {
        let resp = h.join().expect("client thread");
        assert_eq!(
            resp.status,
            200,
            "accepted-implies-answered violated: {}",
            resp.body_str()
        );
    }
    SLOW_DELAY_MS.store(50, Ordering::Relaxed);
}
