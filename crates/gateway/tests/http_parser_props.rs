//! Property and fuzz suite for the HTTP front door: torn reads at every
//! byte boundary, pipelined keep-alive requests, and oversized/malformed
//! input must produce typed 4xx outcomes — never a panic, never a hung
//! connection. The pure-parser half runs the exhaustive boundary sweeps;
//! the wire half replays the same shapes over real sockets against a
//! model-free stub backend.

mod common;

use common::{valid_request_bytes, EchoBackend};
use proptest::prelude::*;
use rpf_gateway::http::{try_parse, HttpError, HttpLimits};
use rpf_gateway::{serve_http, GatewayConfig, HttpClient, LapBus};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn limits() -> HttpLimits {
    HttpLimits::default()
}

// ---------------------------------------------------------------------------
// Pure parser: exhaustive boundary sweeps
// ---------------------------------------------------------------------------

#[test]
fn torn_reads_at_every_byte_boundary_are_incomplete_never_errors() {
    let raw = valid_request_bytes();
    for split in 0..raw.len() {
        match try_parse(&raw[..split], &limits()) {
            Ok(None) => {}
            other => panic!("prefix of {split} bytes parsed as {other:?}"),
        }
    }
    let (req, consumed) = try_parse(&raw, &limits())
        .expect("full request is valid")
        .expect("full request is complete");
    assert_eq!(consumed, raw.len());
    assert_eq!(req.method, "POST");
    assert_eq!(req.path(), "/forecast");
}

#[test]
fn byte_by_byte_accumulation_converges_to_one_parse() {
    let raw = valid_request_bytes();
    let mut buf: Vec<u8> = Vec::new();
    let mut parsed = 0;
    for &b in &raw {
        buf.push(b);
        if let Some((req, consumed)) = try_parse(&buf, &limits()).expect("never malformed") {
            assert_eq!(consumed, buf.len(), "parse must land exactly on the end");
            assert_eq!(req.path(), "/forecast");
            buf.drain(..consumed);
            parsed += 1;
        }
    }
    assert_eq!(parsed, 1);
    assert!(buf.is_empty());
}

#[test]
fn pipelined_requests_parse_in_sequence_with_exact_consumption() {
    let mut raw = Vec::new();
    raw.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: a\r\n\r\n");
    raw.extend_from_slice(&valid_request_bytes());
    raw.extend_from_slice(b"GET /metrics HTTP/1.1\r\nHost: c\r\n\r\n");

    let mut buf = raw.clone();
    let mut paths = Vec::new();
    while !buf.is_empty() {
        let (req, consumed) = try_parse(&buf, &limits())
            .expect("pipelined stream is valid")
            .expect("complete request at the front");
        paths.push(req.path().to_string());
        buf.drain(..consumed);
    }
    assert_eq!(paths, vec!["/healthz", "/forecast", "/metrics"]);
}

#[test]
fn oversized_heads_and_bodies_map_to_431_and_413() {
    let tight = HttpLimits {
        max_header_bytes: 128,
        max_body_bytes: 32,
        max_headers: 4,
    };
    // Unterminated head growing past the cap.
    let mut creeping = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
    creeping.extend(std::iter::repeat_n(b'a', 256));
    assert_eq!(
        try_parse(&creeping, &tight),
        Err(HttpError::HeadersTooLarge)
    );
    // Terminated head over the cap.
    let mut fat = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
    fat.extend(std::iter::repeat_n(b'a', 120));
    fat.extend_from_slice(b"\r\n\r\n");
    assert_eq!(try_parse(&fat, &tight), Err(HttpError::HeadersTooLarge));
    // Too many header fields.
    let many = b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\nD: 4\r\nE: 5\r\n\r\n";
    assert_eq!(try_parse(many, &tight), Err(HttpError::HeadersTooLarge));
    // Declared body over the cap rejects before any body byte arrives.
    let big = b"POST / HTTP/1.1\r\nContent-Length: 33\r\n\r\n";
    assert_eq!(try_parse(big, &tight), Err(HttpError::BodyTooLarge));
    for e in [
        HttpError::HeadersTooLarge,
        HttpError::BodyTooLarge,
        HttpError::Malformed("x"),
    ] {
        assert!(matches!(e.status(), 400 | 413 | 431));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup: the parser returns *something* — complete,
    /// incomplete, or a typed error — and never panics.
    #[test]
    fn random_bytes_never_panic(raw in prop::collection::vec(0usize..256, 0..512)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let _ = try_parse(&bytes, &limits());
        let tight = HttpLimits { max_header_bytes: 64, max_body_bytes: 16, max_headers: 2 };
        let _ = try_parse(&bytes, &tight);
    }

    /// A single corrupted byte in a valid request never panics, and if it
    /// still parses, consumption stays within the buffer.
    #[test]
    fn single_byte_corruption_never_panics(pos in 0usize..120, byte in 0usize..256) {
        let mut raw = valid_request_bytes();
        let pos = pos % raw.len();
        raw[pos] = byte as u8;
        if let Ok(Some((_req, consumed))) = try_parse(&raw, &limits()) {
            prop_assert!(consumed <= raw.len());
        }
    }

    /// Splitting the stream at two random points and feeding the pieces
    /// incrementally always reassembles the same request.
    #[test]
    fn double_tear_reassembles(a in 0usize..150, b in 0usize..150) {
        let raw = valid_request_bytes();
        let (a, b) = (a % raw.len(), b % raw.len());
        let (lo, hi) = (a.min(b), a.max(b));
        let mut buf = Vec::new();
        for piece in [&raw[..lo], &raw[lo..hi], &raw[hi..]] {
            buf.extend_from_slice(piece);
        }
        let (req, consumed) = try_parse(&buf, &limits())
            .expect("valid")
            .expect("complete");
        prop_assert_eq!(consumed, raw.len());
        prop_assert_eq!(req.path(), "/forecast");
    }
}

// ---------------------------------------------------------------------------
// Wire level: the same shapes against a live gateway
// ---------------------------------------------------------------------------

fn wire_cfg() -> GatewayConfig {
    GatewayConfig {
        read_timeout: Duration::from_millis(400),
        write_timeout: Duration::from_millis(400),
        max_header_bytes: 1024,
        max_body_bytes: 512,
        ..GatewayConfig::default()
    }
}

/// Read everything until the server closes, with a client-side timeout so
/// a hung connection fails the test instead of wedging it.
fn read_to_eof(stream: &mut TcpStream) -> Vec<u8> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(3)));
    let mut out = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    out
}

fn status_of(bytes: &[u8]) -> Option<u16> {
    let head = String::from_utf8_lossy(bytes);
    head.split(' ').nth(1).and_then(|s| s.parse().ok())
}

#[test]
fn wire_torn_reads_still_get_200_at_many_boundaries() {
    let bus = LapBus::new();
    let (_, _snap) = serve_http(EchoBackend, 1, &bus, &wire_cfg(), None, |gw| {
        let raw = valid_request_bytes();
        // Every 7th boundary plus the edges: 20-odd connections, each
        // delivering the request in two separately-flushed writes.
        let splits: Vec<usize> = (1..raw.len())
            .step_by(7)
            .chain([1, raw.len() - 1])
            .collect();
        for split in splits {
            let mut stream = TcpStream::connect(gw.addr()).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            stream.write_all(&raw[..split]).expect("first half");
            std::thread::sleep(Duration::from_millis(2));
            stream.write_all(&raw[split..]).expect("second half");
            let mut client_buf = Vec::new();
            let mut chunk = [0u8; 2048];
            stream
                .set_read_timeout(Some(Duration::from_secs(3)))
                .expect("timeout");
            // Read until the JSON body closes (Content-Length delimited;
            // one response is well under 2 KiB).
            let n = stream.read(&mut chunk).expect("response");
            client_buf.extend_from_slice(&chunk[..n]);
            assert_eq!(
                status_of(&client_buf),
                Some(200),
                "split {split}: {:?}",
                String::from_utf8_lossy(&client_buf)
            );
        }
    })
    .expect("gateway runs");
}

#[test]
fn wire_pipelined_keepalive_answers_in_order_on_one_connection() {
    let bus = LapBus::new();
    let (_, snap) = serve_http(EchoBackend, 1, &bus, &wire_cfg(), None, |gw| {
        let mut stream = TcpStream::connect(gw.addr()).expect("connect");
        // Three pipelined requests in a single write.
        let mut burst = Vec::new();
        burst.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: a\r\n\r\n");
        burst.extend_from_slice(&valid_request_bytes());
        burst.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: c\r\nConnection: close\r\n\r\n");
        stream.write_all(&burst).expect("pipelined write");
        let all = read_to_eof(&mut stream);
        let text = String::from_utf8_lossy(&all);
        let statuses: Vec<&str> = text.split("HTTP/1.1 ").skip(1).map(|s| &s[..3]).collect();
        assert_eq!(statuses, vec!["200", "200", "200"], "{text}");
        // First two keep the connection, the final close-flagged one ends it.
        assert_eq!(text.matches("Connection: keep-alive").count(), 2, "{text}");
        assert_eq!(text.matches("Connection: close").count(), 1, "{text}");
    })
    .expect("gateway runs");
    assert_eq!(
        snap.counters
            .iter()
            .find(|c| c.name == "gateway_requests")
            .map(|c| c.value),
        Some(3)
    );
}

#[test]
fn wire_malformed_and_oversized_get_typed_4xx_and_a_close() {
    let bus = LapBus::new();
    serve_http(EchoBackend, 1, &bus, &wire_cfg(), None, |gw| {
        let cases: Vec<(Vec<u8>, u16)> = vec![
            (b"BOGUS\r\n\r\n".to_vec(), 400),
            (b"GET / HTTP/9.9\r\n\r\n".to_vec(), 400),
            (
                b"POST /forecast HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_vec(),
                400,
            ),
            (
                b"POST /forecast HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
                400,
            ),
            (
                format!(
                    "POST /forecast HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    10_000
                )
                .into_bytes(),
                413,
            ),
            (
                {
                    let mut v = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
                    v.extend(std::iter::repeat_n(b'a', 4096));
                    v
                },
                431,
            ),
        ];
        for (raw, want) in cases {
            let mut stream = TcpStream::connect(gw.addr()).expect("connect");
            stream.write_all(&raw).expect("write");
            let all = read_to_eof(&mut stream);
            assert_eq!(
                status_of(&all),
                Some(want),
                "for {:?}",
                String::from_utf8_lossy(&raw[..raw.len().min(60)])
            );
            // read_to_eof returning proves the server closed the
            // connection rather than leaving it hanging.
        }
    })
    .expect("gateway runs");
}

#[test]
fn wire_random_garbage_never_hangs_the_gateway() {
    let bus = LapBus::new();
    serve_http(EchoBackend, 1, &bus, &wire_cfg(), None, |gw| {
        // Deterministic pseudo-garbage (no Date/now in tests either).
        let mut state: u64 = 0x9e3779b97f4a7c15;
        for round in 0..16 {
            let mut garbage = Vec::new();
            for _ in 0..(round * 17 + 5) {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                garbage.push((state >> 33) as u8);
            }
            let mut stream = TcpStream::connect(gw.addr()).expect("connect");
            let _ = stream.write_all(&garbage);
            let _ = read_to_eof(&mut stream);
        }
        // The gateway still serves after the garbage storm.
        let mut client = HttpClient::connect(gw.addr(), Duration::from_secs(3)).expect("connect");
        let resp = client.get("/healthz").expect("healthz");
        assert_eq!(resp.status, 200);
    })
    .expect("gateway runs");
}
