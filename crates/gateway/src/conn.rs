//! Per-connection loop: incremental reads, keep-alive dispatch, slow-
//! client timeouts, and the SSE streaming tail.
//!
//! The loop owns a single growable buffer. Each pass either parses one
//! complete request off the front (pipelined requests are simply what is
//! left in the buffer afterwards) or reads more bytes. Timeouts split by
//! intent: a read timeout with a *partial request* buffered is a slow-
//! loris client and gets 408 before the close; a timeout on an *empty*
//! buffer is an idle keep-alive connection and closes silently.

use crate::http::{self, HttpError, Response};
use crate::listener::GatewayCtx;
use crate::routes::{self, Handled};
use crate::sse;
use rpf_serve::loadgen::Submitter;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// How often an SSE loop re-checks shutdown while waiting for lap events.
const SSE_POLL: Duration = Duration::from_millis(25);

pub(crate) fn handle_connection<S: Submitter>(mut stream: TcpStream, ctx: &GatewayCtx<'_, S>) {
    let m = ctx.metrics;
    let _ = stream.set_read_timeout(Some(ctx.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(ctx.cfg.write_timeout));
    let _ = stream.set_nodelay(true);

    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut served = 0usize;
    loop {
        match http::try_parse(&buf, &ctx.cfg.limits()) {
            Ok(Some((req, consumed))) => {
                buf.drain(..consumed);
                m.bytes_in.add(consumed as u64);
                m.requests.inc();
                served += 1;
                let started = Instant::now();
                // During drain every response closes its connection, so
                // workers finish their queue instead of idling on
                // keep-alive sockets while `serve_http` waits to join.
                let draining = ctx.shutdown.load(Ordering::Acquire);
                let keep = req.keep_alive() && !draining && served < ctx.cfg.max_requests_per_conn;
                match routes::dispatch(&req, ctx) {
                    Handled::Plain(resp) => {
                        m.record_status(resp.status);
                        let bytes = resp.to_bytes(!keep);
                        m.request_latency_ns
                            .observe(started.elapsed().as_nanos() as u64);
                        if stream.write_all(&bytes).is_err() {
                            m.client_disconnects.inc();
                            break;
                        }
                        m.bytes_out.add(bytes.len() as u64);
                        if !keep {
                            break;
                        }
                    }
                    Handled::Sse { race } => {
                        m.record_status(200);
                        m.request_latency_ns
                            .observe(started.elapsed().as_nanos() as u64);
                        stream_lap_events(&mut stream, race, ctx);
                        break;
                    }
                }
            }
            Ok(None) => match stream.read(&mut chunk) {
                Ok(0) => {
                    if !buf.is_empty() {
                        m.client_disconnects.inc();
                    }
                    break;
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) => {
                    if buf.is_empty() {
                        // Idle keep-alive expiry: nothing was promised.
                        break;
                    }
                    // Slow-loris: a request started arriving and stalled.
                    m.read_timeouts.inc();
                    m.record_status(408);
                    let resp = Response::json(
                        408,
                        "{\"error\":{\"kind\":\"read_timeout\",\"message\":\"request not completed in time\"}}"
                            .to_string(),
                    );
                    let _ = stream.write_all(&resp.to_bytes(true));
                    break;
                }
                Err(_) => {
                    m.client_disconnects.inc();
                    break;
                }
            },
            Err(parse_err) => {
                m.parse_errors.inc();
                m.record_status(parse_err.status());
                let _ = stream.write_all(&reject_response(&parse_err).to_bytes(true));
                break;
            }
        }
    }
    m.conns_closed.inc();
}

/// SO_RCVTIMEO expiry surfaces as `WouldBlock` on unix and `TimedOut` on
/// windows; treat both as the timeout.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// 400/413/431 for a request the parser refused.
fn reject_response(e: &HttpError) -> Response {
    let mut body = String::from("{\"error\":{\"kind\":\"bad_http\",\"message\":");
    crate::json::write_str(&mut body, e.message());
    body.push_str("}}");
    Response::json(e.status(), body)
}

/// The SSE tail: stream lap updates for `race` until the bus closes, the
/// gateway shuts down, or the client disappears. The connection never
/// returns to request parsing — SSE responses are unbounded, so the
/// stream is `Connection: close` by construction.
fn stream_lap_events<S: Submitter>(stream: &mut TcpStream, race: usize, ctx: &GatewayCtx<'_, S>) {
    let m = ctx.metrics;
    m.sse_clients.inc();
    let head = routes::sse_head();
    if stream.write_all(&head).is_err() {
        m.client_disconnects.inc();
        return;
    }
    m.bytes_out.add(head.len() as u64);

    let mut cursor = 0usize;
    loop {
        if ctx.shutdown.load(Ordering::Acquire) {
            // Shutdown mid-stream: best-effort terminal frame.
            let _ = stream.write_all(sse::end_frame().as_bytes());
            return;
        }
        let (fresh, next, closed) = ctx.bus.wait_after(race, cursor, SSE_POLL);
        cursor = next;
        for (seq, update) in fresh {
            let frame = sse::frame(seq, &update);
            if stream.write_all(frame.as_bytes()).is_err() {
                m.client_disconnects.inc();
                return;
            }
            m.sse_events.inc();
            m.bytes_out.add(frame.len() as u64);
        }
        if closed {
            let _ = stream.write_all(sse::end_frame().as_bytes());
            return;
        }
    }
}
