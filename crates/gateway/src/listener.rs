//! The gateway region: a bound listener, an acceptor thread, and a pool
//! of connection workers, all scoped to a body closure exactly like
//! [`rpf_serve::serve`] — when the body returns, the gateway drains and
//! every thread joins before [`serve_http`] returns.
//!
//! # Backpressure and shutdown
//!
//! Two queues bound the gateway's memory: the OS accept backlog and the
//! internal handoff queue ([`GatewayConfig::pending_conns`]). Handoff
//! overflow sheds the connection with an immediate 503 — the socket never
//! reaches a worker — while forecast-queue overflow inside `rpf-serve`
//! comes back through the submitter as [`SubmitError::QueueFull`] and
//! maps to 429. The two are deliberately distinct: 503 means "the edge
//! itself is saturated, go away", 429 means "your request was parsed and
//! the forecast queue is full, retry shortly".
//!
//! On shutdown the acceptor stops immediately; workers finish the
//! connections already handed to them, stamping `Connection: close` on
//! every in-flight response. A request that reached the backend keeps the
//! serving layer's accepted-implies-answered guarantee because the
//! gateway region nests *inside* the serving region — `serve()`'s own
//! drain starts only after the gateway has fully stopped.

use crate::conn::handle_connection;
use crate::http::HttpLimits;
use crate::metrics::GatewayMetrics;
use crate::sse::LapBus;
use rpf_obs::MetricsSnapshot;
use rpf_serve::loadgen::Submitter;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Gateway tuning. Defaults suit tests and small deployments; every field
/// is a hard bound on something a client could otherwise grow.
#[derive(Clone, Copy, Debug)]
pub struct GatewayConfig {
    /// Connection handler threads (the gateway's concurrency limit).
    pub conn_workers: usize,
    /// Slow-client read timeout: maximum wait for request bytes. A
    /// partial request hitting it gets 408 and the connection closes; an
    /// idle keep-alive connection just closes.
    pub read_timeout: Duration,
    /// Slow-client write timeout: maximum wait for the socket to accept
    /// response bytes.
    pub write_timeout: Duration,
    /// Maximum request-head bytes (431 beyond).
    pub max_header_bytes: usize,
    /// Maximum request-body bytes (413 beyond).
    pub max_body_bytes: usize,
    /// Maximum header fields per request (431 beyond).
    pub max_headers: usize,
    /// Accepted connections waiting for a worker; overflow sheds with 503.
    pub pending_conns: usize,
    /// Requests served per connection before the gateway forces a close
    /// (bounds how long one client can pin a worker via keep-alive).
    pub max_requests_per_conn: usize,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            conn_workers: 4,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            max_header_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
            max_headers: 64,
            pending_conns: 64,
            max_requests_per_conn: 1024,
        }
    }
}

impl GatewayConfig {
    /// Clamp degenerate values to workable minimums.
    pub fn normalized(&self) -> GatewayConfig {
        let mut cfg = *self;
        cfg.conn_workers = cfg.conn_workers.max(1);
        cfg.read_timeout = cfg.read_timeout.max(Duration::from_millis(1));
        cfg.write_timeout = cfg.write_timeout.max(Duration::from_millis(1));
        cfg.max_header_bytes = cfg.max_header_bytes.max(64);
        cfg.max_headers = cfg.max_headers.max(1);
        cfg.pending_conns = cfg.pending_conns.max(1);
        cfg.max_requests_per_conn = cfg.max_requests_per_conn.max(1);
        cfg
    }

    pub(crate) fn limits(&self) -> HttpLimits {
        HttpLimits {
            max_header_bytes: self.max_header_bytes,
            max_body_bytes: self.max_body_bytes,
            max_headers: self.max_headers,
        }
    }
}

/// Everything a connection handler needs, shared across worker threads.
pub(crate) struct GatewayCtx<'g, S: Submitter> {
    pub backend: S,
    pub bus: &'g LapBus,
    pub metrics: &'g GatewayMetrics,
    /// Number of served races; SSE streams outside `0..n_races` are 404.
    pub n_races: usize,
    pub cfg: GatewayConfig,
    pub shutdown: &'g AtomicBool,
    pub metrics_source: Option<&'g (dyn Fn(MetricsSnapshot) -> MetricsSnapshot + Sync)>,
}

/// The body closure's view of a running gateway.
pub struct GatewayHandle<'g> {
    addr: SocketAddr,
    metrics: &'g GatewayMetrics,
}

impl GatewayHandle<'_> {
    /// The bound loopback address (`127.0.0.1:<os-assigned port>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live gateway counters (for assertions and the demo's progress
    /// output; `/metrics` serves the same numbers over the wire).
    pub fn metrics(&self) -> &GatewayMetrics {
        self.metrics
    }
}

/// Bounded handoff queue between the acceptor and the workers.
struct ConnQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    cap: usize,
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            cap,
        }
    }

    /// Queue state is plain data; recover a poisoned lock.
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Hand a connection to the workers; gives it back on overflow or
    /// after close.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.lock();
        if state.closed || state.conns.len() >= self.cap {
            return Err(stream);
        }
        state.conns.push_back(stream);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Next connection, blocking; `None` once closed *and* drained, so
    /// every accepted connection still gets served during shutdown.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.lock();
        loop {
            if let Some(stream) = state.conns.pop_front() {
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }
}

/// Run an HTTP gateway region over `backend` for the duration of `body`.
///
/// Binds `127.0.0.1:0` (the handle reports the OS-assigned port), spawns
/// the acceptor and `cfg.conn_workers` connection handlers, runs `body`,
/// then shuts down: stop accepting, serve what was already accepted with
/// `Connection: close`, join every thread. Returns the body's value and a
/// final snapshot of the gateway's own metrics registry.
///
/// `metrics_source` shapes what `GET /metrics` serves: it receives the
/// gateway's own snapshot and returns the one to render — the place to
/// merge in engine and serving-layer registries (see `examples/
/// gateway_demo.rs`), or to substitute a fixture in golden tests. `None`
/// serves the gateway's own counters.
pub fn serve_http<S, R>(
    backend: S,
    n_races: usize,
    bus: &LapBus,
    cfg: &GatewayConfig,
    metrics_source: Option<&(dyn Fn(MetricsSnapshot) -> MetricsSnapshot + Sync)>,
    body: impl FnOnce(&GatewayHandle<'_>) -> R,
) -> std::io::Result<(R, MetricsSnapshot)>
where
    S: Submitter,
{
    let cfg = cfg.normalized();
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
    let addr = listener.local_addr()?;
    let metrics = GatewayMetrics::new();
    let shutdown = AtomicBool::new(false);
    let queue = ConnQueue::new(cfg.pending_conns);
    let ctx = GatewayCtx {
        backend,
        bus,
        metrics: &metrics,
        n_races,
        cfg,
        shutdown: &shutdown,
        metrics_source,
    };

    let out = std::thread::scope(|s| {
        s.spawn(|| acceptor_loop(&listener, &queue, &ctx));
        for _ in 0..cfg.conn_workers {
            s.spawn(|| {
                while let Some(stream) = queue.pop() {
                    handle_connection(stream, &ctx);
                }
            });
        }
        let handle = GatewayHandle {
            addr,
            metrics: &metrics,
        };
        // The guard initiates shutdown when dropped — including when
        // `body` panics. Without it, an unwinding body would skip the
        // shutdown sequence and `thread::scope` would join an acceptor
        // still blocked in accept(), turning the panic into a deadlock.
        let guard = ShutdownGuard {
            shutdown: &shutdown,
            queue: &queue,
            addr,
        };
        let out = body(&handle);
        drop(guard);
        out
    });
    Ok((out, metrics.snapshot()))
}

/// Runs the shutdown sequence on drop so it happens on both the normal
/// and the unwinding exit path out of the body closure: raise the flag,
/// unblock the acceptor's blocking accept() with a throwaway connection,
/// and close the handoff queue so idle workers exit.
struct ShutdownGuard<'a> {
    shutdown: &'a AtomicBool,
    queue: &'a ConnQueue,
    addr: SocketAddr,
}

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        self.queue.close();
    }
}

fn acceptor_loop<S: Submitter>(listener: &TcpListener, queue: &ConnQueue, ctx: &GatewayCtx<'_, S>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if ctx.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if ctx.shutdown.load(Ordering::Acquire) {
            // The wake-up connection (or a client racing shutdown):
            // nothing was promised, drop it.
            return;
        }
        match queue.push(stream) {
            Ok(()) => ctx.metrics.conns_accepted.inc(),
            Err(stream) => shed(stream, ctx),
        }
    }
}

/// Handoff queue overflow: answer 503 from the acceptor thread and close,
/// so saturation is visible to the client instantly instead of as a hang.
fn shed<S: Submitter>(mut stream: TcpStream, ctx: &GatewayCtx<'_, S>) {
    ctx.metrics.conns_rejected.inc();
    ctx.metrics.record_status(503);
    let resp = crate::http::Response::json(
        503,
        "{\"error\":{\"kind\":\"overloaded\",\"message\":\"gateway connection queue full\"}}"
            .to_string(),
    );
    let _ = stream.set_write_timeout(Some(ctx.cfg.write_timeout));
    let _ = stream.write_all(&resp.to_bytes(true));
}
