//! Gateway-side observability: connection/request counters, per-status
//! tallies, and a request latency histogram, all on a plain
//! [`rpf_obs::Registry`] so the numbers flow through both exporters
//! (`render` / `render_prometheus` / `to_jsonl`) unchanged.
//!
//! Status tallies use the inline-label convention the Prometheus exporter
//! already understands (`gateway_responses{status="429"}`), so per-status
//! counts land as labelled samples of one metric family in the exposition
//! while staying ordinary named counters everywhere else.

use rpf_obs::{Counter, Histogram, Registry, LATENCY_EDGES_NS};

/// Status codes the gateway can emit, pre-registered so snapshot order is
/// stable regardless of which responses a run actually produced.
pub const STATUSES: [u16; 11] = [200, 400, 404, 405, 408, 413, 429, 431, 500, 501, 503];

/// All gateway metrics, registered once against an owned registry.
pub struct GatewayMetrics {
    registry: Registry,
    /// Connections the acceptor handed to a worker.
    pub conns_accepted: Counter,
    /// Connections shed with an immediate 503 because the handoff queue
    /// was full.
    pub conns_rejected: Counter,
    /// Connections fully closed (any reason).
    pub conns_closed: Counter,
    /// Complete requests parsed off a socket.
    pub requests: Counter,
    /// Requests rejected by the HTTP parser (any 4xx parse error).
    pub parse_errors: Counter,
    /// Connections that hit the read timeout mid-request (408).
    pub read_timeouts: Counter,
    /// Clients that vanished while the gateway was reading or writing.
    pub client_disconnects: Counter,
    /// Payload bytes read off sockets.
    pub bytes_in: Counter,
    /// Response bytes written to sockets.
    pub bytes_out: Counter,
    /// SSE subscriptions served.
    pub sse_clients: Counter,
    /// SSE events written to subscribers.
    pub sse_events: Counter,
    /// Wall time from request parsed to response written.
    pub request_latency_ns: Histogram,
    status: Vec<(u16, Counter)>,
}

impl Default for GatewayMetrics {
    fn default() -> GatewayMetrics {
        GatewayMetrics::new()
    }
}

impl GatewayMetrics {
    pub fn new() -> GatewayMetrics {
        let registry = Registry::new();
        let status = STATUSES
            .iter()
            .map(|&code| (code, registry.counter(status_counter_name(code))))
            .collect();
        GatewayMetrics {
            conns_accepted: registry.counter("gateway_conns_accepted"),
            conns_rejected: registry.counter("gateway_conns_rejected"),
            conns_closed: registry.counter("gateway_conns_closed"),
            requests: registry.counter("gateway_requests"),
            parse_errors: registry.counter("gateway_parse_errors"),
            read_timeouts: registry.counter("gateway_read_timeouts"),
            client_disconnects: registry.counter("gateway_client_disconnects"),
            bytes_in: registry.counter("gateway_bytes_in"),
            bytes_out: registry.counter("gateway_bytes_out"),
            sse_clients: registry.counter("gateway_sse_clients"),
            sse_events: registry.counter("gateway_sse_events"),
            request_latency_ns: registry.histogram("gateway_request_latency_ns", &LATENCY_EDGES_NS),
            status,
            registry,
        }
    }

    /// Count a response by status code.
    pub fn record_status(&self, code: u16) {
        if let Some((_, c)) = self.status.iter().find(|(s, _)| *s == code) {
            c.inc();
        }
    }

    /// Current tally for one status code.
    pub fn status_count(&self, code: u16) -> u64 {
        self.status
            .iter()
            .find(|(s, _)| *s == code)
            .map(|(_, c)| c.value())
            .unwrap_or(0)
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Plain-data copy of every gateway metric.
    pub fn snapshot(&self) -> rpf_obs::MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// Registry name for a status tally, in the inline-label form both
/// exporters understand.
fn status_counter_name(code: u16) -> &'static str {
    match code {
        200 => "gateway_responses{status=\"200\"}",
        400 => "gateway_responses{status=\"400\"}",
        404 => "gateway_responses{status=\"404\"}",
        405 => "gateway_responses{status=\"405\"}",
        408 => "gateway_responses{status=\"408\"}",
        413 => "gateway_responses{status=\"413\"}",
        429 => "gateway_responses{status=\"429\"}",
        431 => "gateway_responses{status=\"431\"}",
        500 => "gateway_responses{status=\"500\"}",
        501 => "gateway_responses{status=\"501\"}",
        503 => "gateway_responses{status=\"503\"}",
        _ => "gateway_responses{status=\"other\"}",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_tallies_flow_through_the_prometheus_exporter() {
        let m = GatewayMetrics::new();
        m.record_status(200);
        m.record_status(200);
        m.record_status(429);
        m.requests.add(3);
        m.request_latency_ns.observe(1_000);
        assert_eq!(m.status_count(200), 2);
        assert_eq!(m.status_count(429), 1);
        assert_eq!(m.status_count(503), 0);

        // The exporter namespaces with `rpf_` and suffixes counters with
        // `_total`; the inline label must survive both rewrites.
        let prom = m.snapshot().render_prometheus();
        assert!(
            prom.contains("rpf_gateway_responses_total{status=\"200\"} 2"),
            "{prom}"
        );
        assert!(
            prom.contains("rpf_gateway_responses_total{status=\"429\"} 1"),
            "{prom}"
        );
        assert!(prom.contains("rpf_gateway_requests_total 3"), "{prom}");
        assert!(
            prom.contains("rpf_gateway_request_latency_ns_bucket"),
            "{prom}"
        );
    }

    #[test]
    fn unknown_status_is_ignored_not_a_panic() {
        let m = GatewayMetrics::new();
        m.record_status(999);
        assert_eq!(m.status_count(999), 0);
    }
}
