//! Route dispatch and the wire schema.
//!
//! Every JSON codec here is paired with its inverse and used from both
//! sides of the socket: the server renders with `render_*`, the HTTP
//! submitter in [`crate::client`] parses with `parse_*`. The equivalence
//! tests lean on that symmetry — a forecast response rendered, shipped
//! over TCP, and parsed back must reconstruct the exact `ServeResponse`
//! bits (floats via the shortest-round-trip form, see [`crate::json`]).
//!
//! # Status mapping
//!
//! | condition                              | status |
//! |----------------------------------------|--------|
//! | forecast served (incl. fallback)       | 200    |
//! | malformed HTTP, JSON, or engine reject | 400    |
//! | unknown path / unknown race stream     | 404    |
//! | wrong method on a known path           | 405    |
//! | read timeout mid-request (conn.rs)     | 408    |
//! | body over `max_body_bytes`             | 413    |
//! | [`SubmitError::QueueFull`]             | 429    |
//! | head over `max_header_bytes`           | 431    |
//! | [`SubmitError::ShuttingDown`]          | 503    |

use crate::http::{HttpRequest, Response};
use crate::json::{self, Json};
use crate::listener::GatewayCtx;
use crate::sse;
use ranknet_core::engine::{EngineError, EngineForecast};
use rpf_serve::loadgen::Submitter;
use rpf_serve::{FallbackReason, ServeError, ServeRequest, ServeResponse, SubmitError};
use std::time::Duration;

/// Outcome of dispatch: either a complete response, or a handoff to the
/// SSE streaming loop (which owns the socket from then on).
pub(crate) enum Handled {
    Plain(Response),
    Sse { race: usize },
}

pub(crate) fn dispatch<S: Submitter>(req: &HttpRequest, ctx: &GatewayCtx<'_, S>) -> Handled {
    let path = req.path();
    match (req.method.as_str(), path) {
        ("POST", "/forecast") => Handled::Plain(forecast(req, ctx)),
        ("GET", "/forecast") => Handled::Plain(
            Response::json(405, error_body("method_not_allowed", &[]))
                .with_header("Allow", "POST".to_string()),
        ),
        ("GET", "/metrics") => Handled::Plain(metrics(req, ctx)),
        ("GET", "/healthz") => Handled::Plain(Response::text(200, "ok\n")),
        ("GET", _) if path.starts_with("/races/") => match stream_race(path, ctx.n_races) {
            Some(race) => Handled::Sse { race },
            None => Handled::Plain(Response::json(404, error_body("unknown_race", &[]))),
        },
        _ => Handled::Plain(Response::json(404, error_body("not_found", &[]))),
    }
}

/// `/races/{race}/stream` → race index, when it names a served race.
fn stream_race(path: &str, n_races: usize) -> Option<usize> {
    let rest = path.strip_prefix("/races/")?;
    let race: usize = rest.strip_suffix("/stream")?.parse().ok()?;
    (race < n_races).then_some(race)
}

fn forecast<S: Submitter>(req: &HttpRequest, ctx: &GatewayCtx<'_, S>) -> Response {
    let serve_req = match parse_forecast_body(&req.body) {
        Ok(r) => r,
        Err(msg) => {
            return Response::json(400, error_body("bad_request", &[("message", &msg)]));
        }
    };
    match ctx.backend.submit(serve_req).and_then(S::wait) {
        Ok(Ok(resp)) => Response::json(200, render_forecast_response(&resp)),
        Ok(Err(ServeError::Invalid(e))) => Response::json(400, render_engine_error(&e)),
        Err(e) => submit_error_response(&e),
    }
}

/// 429/503 for an admission rejection, with the capacity echoed so a
/// client can size its retry behaviour.
pub(crate) fn submit_error_response(e: &SubmitError) -> Response {
    match e {
        SubmitError::QueueFull { capacity } => Response::json(
            429,
            error_body("queue_full", &[("capacity", &capacity.to_string())]),
        )
        .with_header("Retry-After", "1".to_string()),
        SubmitError::ShuttingDown => Response::json(503, error_body("shutting_down", &[])),
    }
}

fn metrics<S: Submitter>(req: &HttpRequest, ctx: &GatewayCtx<'_, S>) -> Response {
    let own = ctx.metrics.snapshot();
    let snap = match ctx.metrics_source {
        Some(source) => source(own),
        None => own,
    };
    if req.query() == Some("format=plain") {
        Response::text(200, snap.render())
    } else {
        Response::new(200, "text/plain; version=0.0.4", snap.render_prometheus())
    }
}

// ---------------------------------------------------------------------------
// Wire schema: forecast request body
// ---------------------------------------------------------------------------

/// Parse a `POST /forecast` body into a typed [`ServeRequest`].
///
/// Numeric fields: `race`, `origin`, `horizon`, `n_samples` (required);
/// an optional deadline as `deadline_ns` (exact) or `deadline_ms`.
pub fn parse_forecast_body(body: &[u8]) -> Result<ServeRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("invalid json: {e}"))?;
    let field = |name: &str| -> Result<usize, String> {
        doc.get(name)
            .and_then(Json::as_u64)
            .map(|v| v as usize)
            .ok_or_else(|| format!("missing or non-integer field '{name}'"))
    };
    let mut req = ServeRequest::new(
        field("race")?,
        field("origin")?,
        field("horizon")?,
        field("n_samples")?,
    );
    if let Some(ns) = doc.get("deadline_ns") {
        let ns = ns
            .as_u64()
            .ok_or_else(|| "non-integer deadline_ns".to_string())?;
        req.deadline = Some(Duration::from_nanos(ns));
    } else if let Some(ms) = doc.get("deadline_ms") {
        let ms = ms
            .as_u64()
            .ok_or_else(|| "non-integer deadline_ms".to_string())?;
        req.deadline = Some(Duration::from_millis(ms));
    }
    Ok(req)
}

/// Render a [`ServeRequest`] as a `POST /forecast` body (client side).
pub fn render_forecast_body(req: &ServeRequest) -> String {
    let mut out = format!(
        "{{\"race\":{},\"origin\":{},\"horizon\":{},\"n_samples\":{}",
        req.race, req.origin, req.horizon, req.n_samples
    );
    if let Some(d) = req.deadline {
        out.push_str(&format!(",\"deadline_ns\":{}", d.as_nanos()));
    }
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// Wire schema: forecast response
// ---------------------------------------------------------------------------

fn fallback_str(f: FallbackReason) -> &'static str {
    match f {
        FallbackReason::DeadlineExpired => "deadline_expired",
        FallbackReason::WorkerPanic => "worker_panic",
        FallbackReason::ShardFailure => "shard_failure",
    }
}

fn fallback_from(s: &str) -> Option<FallbackReason> {
    match s {
        "deadline_expired" => Some(FallbackReason::DeadlineExpired),
        "worker_panic" => Some(FallbackReason::WorkerPanic),
        "shard_failure" => Some(FallbackReason::ShardFailure),
        _ => None,
    }
}

/// Render a served forecast. Sample values use the shortest decimal that
/// round-trips to the same `f32` bits.
pub fn render_forecast_response(resp: &ServeResponse) -> String {
    let mut out = format!(
        "{{\"id\":{},\"model_version\":{},\"degraded\":{},\"degraded_trajectories\":{},",
        resp.id,
        resp.forecast.model_version,
        resp.forecast.degraded,
        resp.forecast.degraded_trajectories
    );
    match resp.fallback {
        Some(f) => {
            out.push_str("\"fallback\":");
            json::write_str(&mut out, fallback_str(f));
            out.push(',');
        }
        None => out.push_str("\"fallback\":null,"),
    }
    out.push_str(&format!("\"batch_size\":{},\"samples\":[", resp.batch_size));
    for (c, car) in resp.forecast.samples.iter().enumerate() {
        if c > 0 {
            out.push(',');
        }
        out.push('[');
        for (s, path) in car.iter().enumerate() {
            if s > 0 {
                out.push(',');
            }
            out.push('[');
            for (i, &v) in path.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_f32(&mut out, v);
            }
            out.push(']');
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

/// Parse a 200 body back into the [`ServeResponse`] it was rendered from
/// (client side of the equivalence tests and the HTTP submitter).
pub fn parse_forecast_response(body: &str) -> Result<ServeResponse, String> {
    let doc = json::parse(body).map_err(|e| format!("invalid response json: {e}"))?;
    let int = |name: &str| -> Result<u64, String> {
        doc.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing field '{name}'"))
    };
    let samples = doc
        .get("samples")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing field 'samples'".to_string())?
        .iter()
        .map(|car| {
            car.as_arr()
                .ok_or_else(|| "bad car entry".to_string())?
                .iter()
                .map(|path| {
                    path.as_arr()
                        .ok_or_else(|| "bad sample path".to_string())?
                        .iter()
                        .map(|v| {
                            v.as_f64()
                                .map(|f| f as f32)
                                .ok_or_else(|| "bad sample value".to_string())
                        })
                        .collect::<Result<Vec<f32>, String>>()
                })
                .collect::<Result<Vec<Vec<f32>>, String>>()
        })
        .collect::<Result<Vec<Vec<Vec<f32>>>, String>>()?;
    let fallback = match doc.get("fallback") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_str()
                .and_then(fallback_from)
                .ok_or_else(|| "bad fallback value".to_string())?,
        ),
    };
    Ok(ServeResponse {
        id: int("id")?,
        forecast: EngineForecast {
            samples,
            degraded: doc
                .get("degraded")
                .and_then(Json::as_bool)
                .ok_or_else(|| "missing field 'degraded'".to_string())?,
            degraded_trajectories: int("degraded_trajectories")?,
            model_version: int("model_version")?,
        },
        fallback,
        batch_size: int("batch_size")? as usize,
    })
}

// ---------------------------------------------------------------------------
// Wire schema: errors
// ---------------------------------------------------------------------------

/// `{"error":{"kind":...,"message":...,<extra>}}`.
fn error_body(kind: &str, extra: &[(&str, &str)]) -> String {
    let mut out = String::from("{\"error\":{\"kind\":");
    json::write_str(&mut out, kind);
    for (name, value) in extra {
        out.push(',');
        json::write_str(&mut out, name);
        out.push(':');
        // Extras are numbers or plain strings; numbers pass through bare.
        if value.bytes().all(|b| b.is_ascii_digit()) && !value.is_empty() {
            out.push_str(value);
        } else {
            json::write_str(&mut out, value);
        }
    }
    out.push_str("}}");
    out
}

/// Render an engine rejection with every typed field, so the client can
/// reconstruct the exact [`EngineError`].
pub fn render_engine_error(e: &EngineError) -> String {
    match e {
        EngineError::RaceOutOfRange { race, n_contexts } => error_body(
            "race_out_of_range",
            &[
                ("race", &race.to_string()),
                ("n_contexts", &n_contexts.to_string()),
                ("message", &e.to_string()),
            ],
        ),
        EngineError::BadOrigin { origin } => error_body(
            "bad_origin",
            &[("origin", &origin.to_string()), ("message", &e.to_string())],
        ),
        EngineError::BadHorizon => error_body("bad_horizon", &[("message", &e.to_string())]),
        EngineError::BadSampleCount => {
            error_body("bad_sample_count", &[("message", &e.to_string())])
        }
        EngineError::NonFiniteFeature { car, lap } => error_body(
            "non_finite_feature",
            &[
                ("car", &car.to_string()),
                ("lap", &lap.to_string()),
                ("message", &e.to_string()),
            ],
        ),
    }
}

/// Parse an error body back to its typed form, when it has one.
///
/// Returns `Ok(Err(ServeError))` for engine rejections, `Err(SubmitError)`
/// for admission rejections, mirroring the in-process submit/wait split.
pub fn parse_error_body(status: u16, body: &str) -> Result<ServeError, ParseErrorOutcome> {
    let doc = match json::parse(body) {
        Ok(d) => d,
        Err(_) => return Err(ParseErrorOutcome::Unrecognized),
    };
    let err = match doc.get("error") {
        Some(e) => e,
        None => return Err(ParseErrorOutcome::Unrecognized),
    };
    let kind = err.get("kind").and_then(Json::as_str).unwrap_or("");
    let int = |name: &str| err.get(name).and_then(Json::as_u64).unwrap_or(0) as usize;
    match (status, kind) {
        (400, "race_out_of_range") => Ok(ServeError::Invalid(EngineError::RaceOutOfRange {
            race: int("race"),
            n_contexts: int("n_contexts"),
        })),
        (400, "bad_origin") => Ok(ServeError::Invalid(EngineError::BadOrigin {
            origin: int("origin"),
        })),
        (400, "bad_horizon") => Ok(ServeError::Invalid(EngineError::BadHorizon)),
        (400, "bad_sample_count") => Ok(ServeError::Invalid(EngineError::BadSampleCount)),
        (400, "non_finite_feature") => Ok(ServeError::Invalid(EngineError::NonFiniteFeature {
            car: int("car"),
            lap: int("lap"),
        })),
        (429, _) => Err(ParseErrorOutcome::Submit(SubmitError::QueueFull {
            capacity: int("capacity"),
        })),
        (503, _) => Err(ParseErrorOutcome::Submit(SubmitError::ShuttingDown)),
        _ => Err(ParseErrorOutcome::Unrecognized),
    }
}

/// Client-side classification of a non-200 response.
pub enum ParseErrorOutcome {
    /// A typed admission rejection (429/503).
    Submit(SubmitError),
    /// Anything the wire schema does not define.
    Unrecognized,
}

/// Build one SSE preamble + streaming loop is in `conn.rs`; the response
/// head for a stream is fixed:
pub(crate) fn sse_head() -> Vec<u8> {
    b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n"
        .to_vec()
}

/// Render the default per-lap SSE payload for a forecast: mean predicted
/// rank per car at the horizon end, plus identity fields. Deployments can
/// publish richer payloads; the demo and tests use this one.
pub fn lap_payload(race: usize, lap: u64, forecast: &EngineForecast) -> sse::LapUpdate {
    let mut data = format!("{{\"race\":{race},\"lap\":{lap},\"mean_final_rank\":[");
    for (c, car) in forecast.samples.iter().enumerate() {
        if c > 0 {
            data.push(',');
        }
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for path in car {
            if let Some(&last) = path.last() {
                sum += last as f64;
                n += 1;
            }
        }
        let mean = if n > 0 { sum / n as f64 } else { 0.0 };
        json::write_f32(&mut data, mean as f32);
    }
    data.push_str("]}");
    sse::LapUpdate { race, lap, data }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecast_body_round_trips_including_deadline() {
        let req = ServeRequest::new(1, 50, 2, 4).with_deadline(Duration::from_micros(1500));
        let body = render_forecast_body(&req);
        assert_eq!(parse_forecast_body(body.as_bytes()), Ok(req));
        let plain = ServeRequest::new(0, 60, 1, 2);
        assert_eq!(
            parse_forecast_body(render_forecast_body(&plain).as_bytes()),
            Ok(plain)
        );
    }

    #[test]
    fn forecast_body_rejects_missing_fields() {
        assert!(parse_forecast_body(b"{}").is_err());
        assert!(parse_forecast_body(b"{\"race\":0}").is_err());
        assert!(parse_forecast_body(b"not json").is_err());
        assert!(
            parse_forecast_body(b"{\"race\":-1,\"origin\":5,\"horizon\":1,\"n_samples\":1}")
                .is_err()
        );
    }

    #[test]
    fn forecast_response_round_trips_bit_exactly() {
        let resp = ServeResponse {
            id: 7,
            forecast: EngineForecast {
                samples: vec![
                    vec![vec![1.5, 2.25], vec![3.3333333, 4.0]],
                    vec![vec![0.1, f32::MAX]],
                ],
                degraded: true,
                degraded_trajectories: 1,
                model_version: 3,
            },
            fallback: Some(FallbackReason::DeadlineExpired),
            batch_size: 5,
        };
        let body = render_forecast_response(&resp);
        let back = parse_forecast_response(&body).expect("parses");
        assert_eq!(back.id, resp.id);
        assert_eq!(back.batch_size, resp.batch_size);
        assert_eq!(back.fallback, resp.fallback);
        assert_eq!(back.forecast.degraded, resp.forecast.degraded);
        assert_eq!(
            back.forecast.degraded_trajectories,
            resp.forecast.degraded_trajectories
        );
        assert_eq!(back.forecast.model_version, resp.forecast.model_version);
        let flat = |f: &EngineForecast| -> Vec<u32> {
            f.samples
                .iter()
                .flatten()
                .flatten()
                .map(|v| v.to_bits())
                .collect()
        };
        assert_eq!(flat(&back.forecast), flat(&resp.forecast));
    }

    #[test]
    fn engine_errors_round_trip_typed() {
        for e in [
            EngineError::RaceOutOfRange {
                race: 9,
                n_contexts: 2,
            },
            EngineError::BadOrigin { origin: 0 },
            EngineError::BadHorizon,
            EngineError::BadSampleCount,
            EngineError::NonFiniteFeature { car: 3, lap: 41 },
        ] {
            let body = render_engine_error(&e);
            match parse_error_body(400, &body) {
                Ok(ServeError::Invalid(back)) => assert_eq!(back, e),
                _ => panic!("failed to round-trip {e:?} via {body}"),
            }
        }
    }

    #[test]
    fn admission_errors_round_trip_typed() {
        let resp = submit_error_response(&SubmitError::QueueFull { capacity: 16 });
        assert_eq!(resp.status, 429);
        let body = String::from_utf8(resp.body).expect("utf8");
        match parse_error_body(429, &body) {
            Err(ParseErrorOutcome::Submit(SubmitError::QueueFull { capacity: 16 })) => {}
            _ => panic!("bad 429 round trip: {body}"),
        }
        let resp = submit_error_response(&SubmitError::ShuttingDown);
        assert_eq!(resp.status, 503);
        let body = String::from_utf8(resp.body).expect("utf8");
        match parse_error_body(503, &body) {
            Err(ParseErrorOutcome::Submit(SubmitError::ShuttingDown)) => {}
            _ => panic!("bad 503 round trip: {body}"),
        }
    }

    #[test]
    fn stream_paths_parse_and_bound_check() {
        assert_eq!(stream_race("/races/0/stream", 2), Some(0));
        assert_eq!(stream_race("/races/1/stream", 2), Some(1));
        assert_eq!(stream_race("/races/2/stream", 2), None);
        assert_eq!(stream_race("/races/x/stream", 2), None);
        assert_eq!(stream_race("/races/0", 2), None);
    }
}
