//! Minimal hand-rolled JSON: a recursive-descent parser and the few
//! serialization helpers the gateway needs. Std-only like the rest of the
//! workspace — the vendored `serde_json` stub stays a stub.
//!
//! # Float round-trip
//!
//! Forecast sample values are `f32`. Rust's `Display` for floats prints
//! the shortest decimal that parses back to the same bits (Ryū), so
//! [`write_f32`] + [`Json::as_f64`]` as f32` is a bit-exact round trip for
//! every finite value; the wire equivalence tests pin exactly that. Non-
//! finite values serialize as `null` (JSON has no NaN/Inf) — the engine
//! never emits them.

/// A parsed JSON value. Object keys keep their document order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric member as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parse error with the byte offset where parsing failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub at: usize,
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

/// Maximum nesting depth, bounding parser recursion on hostile input.
const MAX_DEPTH: usize = 64;

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            at: pos,
            msg: "trailing bytes after document",
        });
    }
    Ok(value)
}

fn err(at: usize, msg: &'static str) -> JsonError {
    JsonError { at, msg }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "bad literal"))
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or(err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are rejected rather than paired; the
                        // gateway never emits them.
                        let c = char::from_u32(code).ok_or(err(*pos, "bad \\u escape"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(err(*pos, "control byte in string")),
            Some(_) => {
                // Multi-byte UTF-8 is passed through; the document came in
                // as &str so the bytes are valid.
                let start = *pos;
                let mut end = *pos + 1;
                while end < bytes.len() && bytes[end] & 0xc0 == 0x80 {
                    end += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..end]).map_err(|_| err(start, "bad utf8"))?,
                );
                *pos = end;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while matches!(bytes.get(*pos), Some(b) if b.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(err(start, "expected number"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(bytes.get(*pos), Some(b) if b.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(err(start, "bad fraction"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(bytes.get(*pos), Some(b) if b.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(err(start, "bad exponent"));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    let n: f64 = text.parse().map_err(|_| err(start, "bad number"))?;
    Ok(Json::Num(n))
}

/// Append `v` as the shortest decimal that round-trips to the same `f32`
/// bits. Non-finite values become `null`.
pub fn write_f32(out: &mut String, v: f32) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Append `s` as a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"race": 0, "xs": [1, 2.5, -3e2], "s": "a\"b", "t": true, "n": null}"#;
        let v = parse(doc).expect("valid");
        assert_eq!(v.get("race").and_then(Json::as_u64), Some(0));
        let xs = v.get("xs").and_then(Json::as_arr).expect("arr");
        assert_eq!(xs[1].as_f64(), Some(2.5));
        assert_eq!(xs[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b"));
        assert_eq!(v.get("t").and_then(Json::as_bool), Some(true));
        assert!(v.get("n").map(Json::is_null).unwrap_or(false));
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "{", "[1,", "{\"a\"}", "{\"a\":}", "01e", "\"\\x\"", "1 2", "nul", "[1]]",
        ] {
            assert!(parse(doc).is_err(), "accepted {doc:?}");
        }
    }

    #[test]
    fn depth_bound_rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(32) + &"]".repeat(32);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn f32_round_trips_bit_exactly() {
        for v in [
            0.0f32,
            -0.0,
            1.5,
            3.3333333,
            f32::MIN_POSITIVE,
            f32::MAX,
            -1.0e-7,
            0.1,
        ] {
            let mut s = String::new();
            write_f32(&mut s, v);
            let parsed = parse(&s).expect("valid").as_f64().expect("num") as f32;
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v} via {s}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "tab\there \"quoted\" back\\slash\nnewline ünïcode";
        let mut s = String::new();
        write_str(&mut s, original);
        assert_eq!(parse(&s).expect("valid").as_str(), Some(original));
    }
}
