//! Incremental HTTP/1.1 request parsing and response serialization.
//!
//! The parser is a pure function over a byte buffer: [`try_parse`] either
//! finds one complete request at the front of the buffer (returning how
//! many bytes it consumed), reports that more bytes are needed, or rejects
//! with a typed error that maps to a 4xx status. Because it never consumes
//! partial requests and never keeps internal state, torn reads are safe by
//! construction — the connection loop appends whatever the socket
//! delivered and re-parses — and pipelined requests fall out for free: the
//! leftover bytes after `consumed` are simply the front of the next
//! request.
//!
//! Bounds are explicit and enforced before buffering: a head that exceeds
//! [`HttpLimits::max_header_bytes`] without terminating rejects with 431,
//! a declared `Content-Length` above [`HttpLimits::max_body_bytes`]
//! rejects with 413 *before* the body is read, so a hostile client cannot
//! make the gateway allocate unbounded memory.

/// Parser bounds. Everything a client can grow is capped.
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Maximum bytes in the request line + headers (incl. terminator).
    pub max_header_bytes: usize,
    /// Maximum declared `Content-Length`.
    pub max_body_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
}

impl Default for HttpLimits {
    fn default() -> HttpLimits {
        HttpLimits {
            max_header_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
            max_headers: 64,
        }
    }
}

/// Why a request was rejected. [`HttpError::status`] gives the response
/// code the connection loop sends before closing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically invalid request (bad request line, bad header field,
    /// bad or duplicate `Content-Length`, unsupported transfer coding).
    Malformed(&'static str),
    /// The head grew past [`HttpLimits::max_header_bytes`] without
    /// terminating, or carries more than [`HttpLimits::max_headers`]
    /// fields.
    HeadersTooLarge,
    /// Declared `Content-Length` exceeds [`HttpLimits::max_body_bytes`].
    BodyTooLarge,
}

impl HttpError {
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
        }
    }

    pub fn message(&self) -> &'static str {
        match self {
            HttpError::Malformed(m) => m,
            HttpError::HeadersTooLarge => "request head too large",
            HttpError::BodyTooLarge => "request body too large",
        }
    }
}

/// One parsed request. Header names are lowercased; values are trimmed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    pub method: String,
    /// Request target as sent (path plus optional `?query`).
    pub target: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header value under `name` (lowercase), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Path component of the target (query stripped).
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((p, _)) => p,
            None => &self.target,
        }
    }

    /// Query string, if present.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Whether the connection persists after this exchange: HTTP/1.1
    /// defaults to keep-alive unless `Connection: close`; HTTP/1.0
    /// defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Try to parse one complete request from the front of `buf`.
///
/// * `Ok(Some((req, consumed)))` — a full request; the caller drains
///   `consumed` bytes (any remainder is the next pipelined request).
/// * `Ok(None)` — incomplete; read more bytes and call again.
/// * `Err(e)` — reject with `e.status()` and close.
pub fn try_parse(
    buf: &[u8],
    limits: &HttpLimits,
) -> Result<Option<(HttpRequest, usize)>, HttpError> {
    let head_len = match find_terminator(buf) {
        Some(end) => end,
        None => {
            // No terminator yet. If the head alone already exceeds the
            // cap it never will fit — reject instead of buffering more.
            if buf.len() > limits.max_header_bytes {
                return Err(HttpError::HeadersTooLarge);
            }
            return Ok(None);
        }
    };
    if head_len + 4 > limits.max_header_bytes {
        return Err(HttpError::HeadersTooLarge);
    }
    let head =
        std::str::from_utf8(&buf[..head_len]).map_err(|_| HttpError::Malformed("non-utf8 head"))?;

    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let (method, target, http11) = parse_request_line(request_line)?;

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = parse_header_line(line)?;
        if name == "content-length" {
            if content_length.is_some() {
                return Err(HttpError::Malformed("duplicate content-length"));
            }
            let n: usize = value
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
            if n > limits.max_body_bytes {
                return Err(HttpError::BodyTooLarge);
            }
            content_length = Some(n);
        }
        if name == "transfer-encoding" {
            return Err(HttpError::Malformed("transfer-encoding unsupported"));
        }
        headers.push((name, value));
    }

    let body_len = content_length.unwrap_or(0);
    let total = head_len + 4 + body_len;
    if buf.len() < total {
        return Ok(None);
    }
    let body = buf[head_len + 4..total].to_vec();
    Ok(Some((
        HttpRequest {
            method,
            target,
            http11,
            headers,
            body,
        },
        total,
    )))
}

/// Offset of the `\r\n\r\n` head terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_request_line(line: &str) -> Result<(String, String, bool), HttpError> {
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::Malformed("bad request line")),
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("bad method"));
    }
    if !target.starts_with('/') || target.bytes().any(|b| b <= b' ' || b == 0x7f) {
        return Err(HttpError::Malformed("bad request target"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::Malformed("bad http version")),
    };
    Ok((method.to_string(), target.to_string(), http11))
}

fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let (name, value) = line
        .split_once(':')
        .ok_or(HttpError::Malformed("header missing colon"))?;
    if name.is_empty() || !name.bytes().all(is_token_byte) {
        return Err(HttpError::Malformed("bad header name"));
    }
    let value = value.trim_matches(|c| c == ' ' || c == '\t');
    if value.bytes().any(|b| b < 0x20 || b == 0x7f) {
        return Err(HttpError::Malformed("control byte in header value"));
    }
    Ok((name.to_ascii_lowercase(), value.to_string()))
}

/// RFC 7230 `tchar`.
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// A response under construction. Serialization is deterministic (fixed
/// header order, no date stamp), so full response bytes can be pinned by
/// golden tests.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers, emitted after `Content-Length` in insertion order.
    pub extra: Vec<(&'static str, String)>,
}

impl Response {
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type,
            body: body.into(),
            extra: Vec::new(),
        }
    }

    pub fn json(status: u16, body: String) -> Response {
        Response::new(status, "application/json", body)
    }

    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status, "text/plain; charset=utf-8", body)
    }

    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.extra.push((name, value));
        self
    }

    /// Serialize, stamping the connection disposition.
    pub fn to_bytes(&self, close: bool) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )
        .into_bytes();
        for (name, value) in &self.extra {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(if close {
            b"Connection: close\r\n\r\n"
        } else {
            b"Connection: keep-alive\r\n\r\n"
        });
        out.extend_from_slice(&self.body);
        out
    }
}

/// Canonical reason phrase for every status the gateway emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(raw: &[u8]) -> (HttpRequest, usize) {
        try_parse(raw, &HttpLimits::default())
            .expect("valid")
            .expect("complete")
    }

    #[test]
    fn parses_a_minimal_get() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let (req, used) = parse_all(raw);
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/healthz");
        assert!(req.http11);
        assert!(req.keep_alive());
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(used, raw.len());
        assert!(req.body.is_empty());
    }

    #[test]
    fn post_body_waits_for_content_length() {
        let raw = b"POST /forecast HTTP/1.1\r\nContent-Length: 4\r\n\r\nab";
        assert_eq!(try_parse(raw, &HttpLimits::default()), Ok(None));
        let full = b"POST /forecast HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let (req, used) = parse_all(full);
        assert_eq!(req.body, b"abcd");
        assert_eq!(used, full.len());
    }

    #[test]
    fn connection_close_and_http10_defaults() {
        let (req, _) = parse_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive());
        let (req, _) = parse_all(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive());
        let (req, _) = parse_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(req.keep_alive());
    }

    #[test]
    fn limits_reject_oversized_heads_and_bodies() {
        let limits = HttpLimits {
            max_header_bytes: 64,
            max_body_bytes: 8,
            max_headers: 4,
        };
        let long = vec![b'a'; 100];
        assert_eq!(try_parse(&long, &limits), Err(HttpError::HeadersTooLarge));
        let big = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
        assert_eq!(try_parse(big, &limits), Err(HttpError::BodyTooLarge));
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        let limits = HttpLimits::default();
        for raw in [
            b"GET /\r\n\r\n".to_vec(),
            b"GET / HTTP/2\r\n\r\n".to_vec(),
            b"get / HTTP/1.1\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1\r\nNoColon\r\n\r\n".to_vec(),
            b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n".to_vec(),
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
        ] {
            match try_parse(&raw, &limits) {
                Err(HttpError::Malformed(_)) => {}
                other => panic!("{:?} for {:?}", other, String::from_utf8_lossy(&raw)),
            }
        }
    }

    #[test]
    fn response_bytes_are_deterministic() {
        let r = Response::text(200, "ok\n").with_header("Cache-Control", "no-cache".to_string());
        let bytes = r.to_bytes(false);
        let s = String::from_utf8(bytes).expect("ascii");
        assert_eq!(
            s,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: 3\r\nCache-Control: no-cache\r\nConnection: keep-alive\r\n\r\nok\n"
        );
    }
}
