//! Client side of the wire: a small blocking HTTP/1.1 client and
//! [`HttpSubmitter`], which implements [`rpf_serve::Submitter`] over TCP
//! so the serving layer's load generators (`run_open_loop`,
//! `run_closed_loop`) drive real sockets unchanged.
//!
//! [`HttpSubmitter`] opens one connection per request: the open-loop
//! driver keeps many requests in flight at once, and a blocking client
//! cannot multiplex one keep-alive socket. Keep-alive reuse is exercised
//! through [`HttpClient`] directly (one sequential client per
//! connection), which is what the equivalence tests do.

use crate::http::reason;
use crate::routes::{self, ParseErrorOutcome};
use rpf_serve::loadgen::Submitter;
use rpf_serve::{ServeRequest, ServeResult, SubmitError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response as read off the socket.
#[derive(Clone, Debug)]
pub struct WireResponse {
    pub status: u16,
    /// Lowercased header names, trimmed values, document order.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl WireResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// Blocking HTTP/1.1 client over one keep-alive connection.
pub struct HttpClient {
    stream: TcpStream,
    /// Bytes read past the previous response (keep-alive leftovers).
    buf: Vec<u8>,
}

impl HttpClient {
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// `GET path` and read the full response.
    pub fn get(&mut self, path: &str) -> std::io::Result<WireResponse> {
        self.send_request("GET", path, None)?;
        self.read_response()
    }

    /// `POST path` with a JSON body and read the full response.
    pub fn post_json(&mut self, path: &str, body: &str) -> std::io::Result<WireResponse> {
        self.send_request("POST", path, Some(body))?;
        self.read_response()
    }

    /// Write one request head (+ optional body) without reading anything.
    pub fn send_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<()> {
        let mut req = format!("{method} {path} HTTP/1.1\r\nHost: rpf\r\n");
        match body {
            Some(b) => {
                req.push_str(&format!(
                    "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{b}",
                    b.len()
                ));
            }
            None => req.push_str("\r\n"),
        }
        self.stream.write_all(req.as_bytes())
    }

    /// Read one complete response (head + `Content-Length` body). Bytes
    /// beyond it stay buffered for the next call, so a keep-alive
    /// connection can read back-to-back responses.
    pub fn read_response(&mut self) -> std::io::Result<WireResponse> {
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                let name = name.to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().unwrap_or(0);
                }
                headers.push((name, value));
            }
        }
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(WireResponse {
            status,
            headers,
            body,
        })
    }

    /// The underlying socket (raw writes and SSE reads in tests).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// One-line summary of a response for demos: `200 OK (123 bytes)`.
pub fn describe(resp: &WireResponse) -> String {
    format!(
        "{} {} ({} bytes)",
        resp.status,
        reason(resp.status),
        resp.body.len()
    )
}

/// [`Submitter`] over HTTP: `submit` connects and writes the request,
/// `wait` reads and classifies the response, so admission rejections the
/// gateway mapped to 429/503 come back as the original typed
/// [`SubmitError`] — load reports over the wire line up with in-process
/// ones. Transport failures (gateway gone, timeout) also surface as
/// [`SubmitError::ShuttingDown`], the closest admission verdict.
#[derive(Clone, Copy, Debug)]
pub struct HttpSubmitter {
    pub addr: SocketAddr,
    pub timeout: Duration,
}

impl HttpSubmitter {
    pub fn new(addr: SocketAddr) -> HttpSubmitter {
        HttpSubmitter {
            addr,
            timeout: Duration::from_secs(10),
        }
    }
}

/// An in-flight HTTP submission: the socket with the request written.
pub struct HttpPending {
    client: HttpClient,
}

impl Submitter for HttpSubmitter {
    type Pending = HttpPending;

    fn submit(&self, req: ServeRequest) -> Result<HttpPending, SubmitError> {
        let mut client =
            HttpClient::connect(self.addr, self.timeout).map_err(|_| SubmitError::ShuttingDown)?;
        let body = routes::render_forecast_body(&req);
        client
            .send_request("POST", "/forecast", Some(&body))
            .map_err(|_| SubmitError::ShuttingDown)?;
        Ok(HttpPending { client })
    }

    fn wait(mut pending: HttpPending) -> Result<ServeResult, SubmitError> {
        let resp = pending
            .client
            .read_response()
            .map_err(|_| SubmitError::ShuttingDown)?;
        if resp.status == 200 {
            return routes::parse_forecast_response(&resp.body_str())
                .map(Ok)
                .map_err(|_| SubmitError::ShuttingDown);
        }
        match routes::parse_error_body(resp.status, &resp.body_str()) {
            Ok(serve_err) => Ok(Err(serve_err)),
            Err(ParseErrorOutcome::Submit(e)) => Err(e),
            Err(ParseErrorOutcome::Unrecognized) => Err(SubmitError::ShuttingDown),
        }
    }
}
