//! Server-sent events: a per-race lap update bus and the SSE framing.
//!
//! Publishers (the race-state side of a deployment, or a test harness)
//! push [`LapUpdate`]s onto a [`LapBus`]; each `/races/{race}/stream`
//! subscriber holds a cursor into the bus log and is woken by a condvar
//! whenever anything new lands. The log is append-only and retained for
//! the bus lifetime — a live race is a few hundred laps, so a late
//! subscriber replaying from the start is a feature (it sees every lap),
//! not a leak.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// One per-lap forecast update, already rendered to a JSON payload.
#[derive(Clone, Debug, PartialEq)]
pub struct LapUpdate {
    /// Race index the update belongs to (matches the context slice).
    pub race: usize,
    /// Lap number the update describes.
    pub lap: u64,
    /// JSON object payload for the SSE `data:` line. Must not contain
    /// newlines (enforced at publish by replacing them with spaces).
    pub data: String,
}

struct BusState {
    events: Vec<LapUpdate>,
    closed: bool,
}

/// Broadcast log of lap updates, one per publish, in publish order.
pub struct LapBus {
    state: Mutex<BusState>,
    wakeup: Condvar,
}

impl Default for LapBus {
    fn default() -> LapBus {
        LapBus::new()
    }
}

impl LapBus {
    pub fn new() -> LapBus {
        LapBus {
            state: Mutex::new(BusState {
                events: Vec::new(),
                closed: false,
            }),
            wakeup: Condvar::new(),
        }
    }

    /// Bus state is plain data; recover a poisoned lock instead of
    /// propagating — a panicking publisher must not take streaming down.
    fn lock(&self) -> MutexGuard<'_, BusState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Append one update and wake every subscriber.
    pub fn publish(&self, mut update: LapUpdate) {
        if update.data.contains('\n') {
            update.data = update.data.replace('\n', " ");
        }
        let mut state = self.lock();
        state.events.push(update);
        drop(state);
        self.wakeup.notify_all();
    }

    /// Mark the stream finished (race over); subscribers drain what is
    /// left and receive a terminal `end` event.
    pub fn close(&self) {
        self.lock().closed = true;
        self.wakeup.notify_all();
    }

    /// Number of updates published so far (any race).
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collect updates for `race` past log position `cursor`, blocking up
    /// to `timeout` for news. Returns the matching updates tagged with
    /// their log sequence numbers (the SSE `id:`), the advanced cursor,
    /// and whether the bus is closed. A timeout returns empty-handed with
    /// the cursor unchanged — the caller's poll loop decides whether to
    /// keep waiting (it also needs to notice gateway shutdown and dead
    /// clients, which is why this never blocks indefinitely).
    pub fn wait_after(
        &self,
        race: usize,
        cursor: usize,
        timeout: Duration,
    ) -> (Vec<(usize, LapUpdate)>, usize, bool) {
        let mut state = self.lock();
        if state.events.len() <= cursor && !state.closed {
            let (guard, _timed_out) = self
                .wakeup
                .wait_timeout(state, timeout)
                .unwrap_or_else(|p| p.into_inner());
            state = guard;
        }
        let start = cursor.min(state.events.len());
        let fresh: Vec<(usize, LapUpdate)> = state.events[start..]
            .iter()
            .enumerate()
            .filter(|(_, u)| u.race == race)
            .map(|(i, u)| (start + i, u.clone()))
            .collect();
        (fresh, state.events.len(), state.closed)
    }
}

/// Render one update as an SSE frame: `id:` carries the log sequence
/// number so a reconnecting client knows what it has seen.
pub fn frame(seq: usize, update: &LapUpdate) -> String {
    format!("id: {}\nevent: lap\ndata: {}\n\n", seq, update.data)
}

/// Terminal frame after [`LapBus::close`].
pub fn end_frame() -> &'static str {
    "event: end\ndata: {}\n\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn up(race: usize, lap: u64) -> LapUpdate {
        LapUpdate {
            race,
            lap,
            data: format!("{{\"lap\":{lap}}}"),
        }
    }

    #[test]
    fn subscribers_see_only_their_race_in_order() {
        let bus = LapBus::new();
        bus.publish(up(0, 50));
        bus.publish(up(1, 50));
        bus.publish(up(0, 51));
        let (got, cursor, closed) = bus.wait_after(0, 0, Duration::from_millis(1));
        assert_eq!(
            got.iter().map(|(_, u)| u.lap).collect::<Vec<_>>(),
            vec![50, 51]
        );
        assert_eq!(
            got.iter().map(|(seq, _)| *seq).collect::<Vec<_>>(),
            vec![0, 2],
            "ids are log positions, so race-1 traffic leaves a gap"
        );
        assert_eq!(cursor, 3);
        assert!(!closed);
        // Nothing new past the cursor.
        let (got, _, _) = bus.wait_after(0, cursor, Duration::from_millis(1));
        assert!(got.is_empty());
    }

    #[test]
    fn close_wakes_and_flags_subscribers() {
        let bus = LapBus::new();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| bus.wait_after(0, 0, Duration::from_secs(5)));
            std::thread::sleep(Duration::from_millis(20));
            bus.close();
            let (got, _, closed) = waiter.join().expect("no panic");
            assert!(got.is_empty());
            assert!(closed, "close must wake the blocked subscriber");
        });
    }

    #[test]
    fn newlines_in_payloads_cannot_break_framing() {
        let bus = LapBus::new();
        bus.publish(LapUpdate {
            race: 0,
            lap: 1,
            data: "bad\npayload".to_string(),
        });
        let (got, _, _) = bus.wait_after(0, 0, Duration::from_millis(1));
        assert_eq!(got[0].1.data, "bad payload");
        assert_eq!(
            frame(got[0].0, &got[0].1),
            "id: 0\nevent: lap\ndata: bad payload\n\n"
        );
    }
}
