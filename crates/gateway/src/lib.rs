//! # rpf-gateway — the network edge of the RankNet serving stack
//!
//! A std-only, thread-pool HTTP/1.1 server fronting [`rpf_serve`]: JSON
//! forecast queries in, bit-deterministic forecasts out, plus the
//! observability and streaming surfaces a live-race deployment needs.
//! Nothing here touches the determinism contract — the gateway is a
//! transport, and the wire equivalence tests pin that a forecast served
//! over TCP reconstructs the exact bits of a direct engine call.
//!
//! ## Endpoints
//!
//! | endpoint                 | behaviour                                  |
//! |--------------------------|--------------------------------------------|
//! | `POST /forecast`         | JSON body → typed [`rpf_serve::ServeRequest`] → 200 forecast, 400 typed reject, 429 queue full, 503 shutting down |
//! | `GET /metrics`           | Prometheus exposition (`?format=plain` for the human-readable render) |
//! | `GET /races/{r}/stream`  | SSE per-lap forecast updates from a [`LapBus`] |
//! | `GET /healthz`           | liveness probe                             |
//!
//! ## Shape
//!
//! [`serve_http`] mirrors [`rpf_serve::serve`]: a scoped region that owns
//! its threads (acceptor + connection workers) and fully drains before it
//! returns. The backend is anything implementing
//! [`rpf_serve::Submitter`] — the flat [`rpf_serve::ServeClient`], the
//! sharded router client, or a test stub — so the gateway nests directly
//! inside a serving region:
//!
//! ```text
//! serve(&engine, &contexts, &cfg, |client| {
//!     serve_http(client, contexts.len(), &bus, &gw_cfg, None, |gw| {
//!         // gw.addr() now answers real sockets
//!     })
//! })
//! ```
//!
//! Because the gateway region nests inside the serving region, gateway
//! drain finishes first and the serving layer's accepted-implies-answered
//! guarantee extends to the wire: any request the gateway admitted to the
//! backend is answered before `serve_http` returns.
//!
//! [`HttpSubmitter`] closes the loop from the client side: it implements
//! the same [`rpf_serve::Submitter`] trait *over* the socket, so the
//! serving layer's deterministic load generators drive the full TCP stack
//! without modification.

pub mod client;
mod conn;
pub mod http;
pub mod json;
mod listener;
pub mod metrics;
pub mod routes;
pub mod sse;

pub use client::{describe, HttpClient, HttpPending, HttpSubmitter, WireResponse};
pub use listener::{serve_http, GatewayConfig, GatewayHandle};
pub use metrics::GatewayMetrics;
pub use sse::{LapBus, LapUpdate};
