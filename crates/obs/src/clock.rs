//! Time sources for spans and latency measurement.
//!
//! Everything in this crate that reads time does so through the [`Clock`]
//! trait, for one reason: wall-clock output can never be golden-tested. A
//! [`VirtualClock`] advanced by the test itself makes span durations and
//! latency buckets an exact function of the script — the same trick the
//! serving layer's `replay` module uses for its scheduler golden test.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (but fixed per instance) origin.
    fn now_ns(&self) -> u64;
}

/// The production clock: monotonic nanoseconds since construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A clock the caller advances by hand. Deterministic by construction:
/// `now_ns` returns exactly what the last `set`/`advance` left behind, so
/// any span or latency derived from it is reproducible bit-for-bit.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    pub fn starting_at(ns: u64) -> VirtualClock {
        VirtualClock {
            now: AtomicU64::new(ns),
        }
    }

    /// Move time forward by `ns` nanoseconds; returns the new now.
    pub fn advance(&self, ns: u64) -> u64 {
        self.now.fetch_add(ns, Ordering::Relaxed) + ns
    }

    /// Jump to an absolute instant (must not move backwards for spans to
    /// stay well-formed; this is not enforced).
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_moves_only_when_told() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance(150), 150);
        assert_eq!(c.now_ns(), 150);
        c.set(42);
        assert_eq!(c.now_ns(), 42);
        let s = VirtualClock::starting_at(1_000);
        assert_eq!(s.now_ns(), 1_000);
    }
}
