//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms behind sharded atomics, with mergeable per-thread handles.
//!
//! Design constraints, in order:
//!
//! 1. **Lock-cheap recording.** A counter increment is one relaxed
//!    `fetch_add` on a cache-line-padded shard picked by thread, so worker
//!    threads hammering the same counter do not bounce a cache line between
//!    cores. No lock is ever taken on the hot path.
//! 2. **Mergeable per-thread handles.** A [`LocalCounter`] /
//!    [`LocalHistogram`] batches increments in plain (non-atomic) fields
//!    and folds them into the shared shards on `flush` (or drop). The
//!    merge invariant — concurrent recording through any interleaving of
//!    local handles and direct calls totals exactly the same as sequential
//!    recording — is pinned by the proptests in `tests/registry_props.rs`.
//! 3. **Deterministic snapshots.** Metrics render in registration order,
//!    and histogram bucket boundaries are fixed at registration, so a
//!    snapshot of a deterministic workload is golden-testable.
//!
//! Registration takes a lock (cold path, once per metric name); recording
//! never does.

use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shards per counter. More shards cost memory (one cache line each);
/// fewer cost contention. Eight covers the worker counts this workspace
/// actually runs (serve defaults to 2–4 workers, benches go to 8).
const COUNTER_SHARDS: usize = 8;

/// One cache line per shard so two threads' increments never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a stable slot at first use; `slot % SHARDS` picks
    /// its shard. Round-robin assignment spreads concurrent recorders
    /// evenly without any per-record coordination.
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// This thread's shard among `n` — shared with the span tracer so both
/// layers spread threads the same way.
#[inline]
pub(crate) fn thread_shard(n: usize) -> usize {
    THREAD_SLOT.with(|s| *s) % n.max(1)
}

#[inline]
fn shard_index() -> usize {
    thread_shard(COUNTER_SHARDS)
}

/// A monotone counter. Cloning shares the underlying cells.
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[PaddedU64; COUNTER_SHARDS]>,
}

impl Counter {
    pub fn new() -> Counter {
        Counter {
            shards: Arc::new(Default::default()),
        }
    }

    #[inline]
    pub fn add(&self, v: u64) {
        self.shards[shard_index()].0.fetch_add(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zero every shard (between profiled runs; not linearizable against
    /// concurrent adds, like any multi-cell reset).
    pub fn reset(&self) {
        for s in self.shards.iter() {
            s.0.store(0, Ordering::Relaxed);
        }
    }

    /// A per-thread batching handle; increments accumulate in a plain
    /// field and merge into the shared shards on [`LocalCounter::flush`]
    /// or drop.
    pub fn local(&self) -> LocalCounter {
        LocalCounter {
            counter: self.clone(),
            pending: 0,
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// Mergeable per-thread counter handle (see [`Counter::local`]).
pub struct LocalCounter {
    counter: Counter,
    pending: u64,
}

impl LocalCounter {
    #[inline]
    pub fn add(&mut self, v: u64) {
        self.pending += v;
    }

    #[inline]
    pub fn inc(&mut self) {
        self.pending += 1;
    }

    /// Fold the pending total into the shared counter.
    pub fn flush(&mut self) {
        if self.pending > 0 {
            self.counter.add(self.pending);
            self.pending = 0;
        }
    }
}

impl Drop for LocalCounter {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A last-value / high-water-mark cell. Single atomic: gauges are written
/// rarely (queue depth on admission, not per element).
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.set(0);
    }
}

struct HistogramCells {
    /// Fixed upper edges; bucket `i` counts `value <= edges[i]` that
    /// missed every earlier bucket, and a final bucket catches overflow.
    edges: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: PaddedU64,
    sum: PaddedU64,
}

/// Which bucket a value lands in: the first edge that is `>= value`, or
/// the trailing overflow bucket. `value == edge` belongs to that edge's
/// bucket — the boundary rule the golden test pins.
#[inline]
pub fn bucket_index(edges: &[u64], value: u64) -> usize {
    edges
        .iter()
        .position(|&e| value <= e)
        .unwrap_or(edges.len())
}

/// A fixed-bucket histogram. Edges are set at construction and never
/// change, so snapshots are comparable across runs and machines.
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

impl Histogram {
    pub fn new(edges: &[u64]) -> Histogram {
        Histogram {
            cells: Arc::new(HistogramCells {
                edges: edges.to_vec(),
                buckets: (0..edges.len() + 1).map(|_| AtomicU64::new(0)).collect(),
                count: PaddedU64::default(),
                sum: PaddedU64::default(),
            }),
        }
    }

    #[inline]
    pub fn observe(&self, value: u64) {
        let c = &self.cells;
        c.buckets[bucket_index(&c.edges, value)].fetch_add(1, Ordering::Relaxed);
        c.count.0.fetch_add(1, Ordering::Relaxed);
        c.sum.0.fetch_add(value, Ordering::Relaxed);
    }

    pub fn edges(&self) -> &[u64] {
        &self.cells.edges
    }

    /// Per-bucket counts (non-cumulative), overflow bucket last.
    pub fn buckets(&self) -> Vec<u64> {
        self.cells
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    pub fn count(&self) -> u64 {
        self.cells.count.0.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.cells.sum.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        for b in &self.cells.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.cells.count.0.store(0, Ordering::Relaxed);
        self.cells.sum.0.store(0, Ordering::Relaxed);
    }

    /// A per-thread batching handle mirroring [`Counter::local`].
    pub fn local(&self) -> LocalHistogram {
        LocalHistogram {
            histogram: self.clone(),
            buckets: vec![0; self.cells.buckets.len()],
            count: 0,
            sum: 0,
        }
    }
}

/// Mergeable per-thread histogram handle (see [`Histogram::local`]).
pub struct LocalHistogram {
    histogram: Histogram,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl LocalHistogram {
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_index(&self.histogram.cells.edges, value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    pub fn flush(&mut self) {
        if self.count == 0 {
            return;
        }
        let c = &self.histogram.cells;
        for (shared, local) in c.buckets.iter().zip(self.buckets.iter_mut()) {
            if *local > 0 {
                shared.fetch_add(*local, Ordering::Relaxed);
                *local = 0;
            }
        }
        c.count.0.fetch_add(self.count, Ordering::Relaxed);
        c.sum.0.fetch_add(self.sum, Ordering::Relaxed);
        self.count = 0;
        self.sum = 0;
    }
}

impl Drop for LocalHistogram {
    fn drop(&mut self) {
        self.flush();
    }
}

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: &'static str,
    handle: Handle,
}

/// A named collection of metrics. Cloning shares the underlying metrics;
/// registration is idempotent (the same name always returns a handle to
/// the same cells, so two subsystems can safely ask for one counter).
#[derive(Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Entries are plain data; recover a poisoned lock instead of
    /// propagating — a panicking registrant must not take metrics down.
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Register (or look up) a counter under `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut entries = self.lock();
        for e in entries.iter() {
            if e.name == name {
                if let Handle::Counter(c) = &e.handle {
                    return c.clone();
                }
            }
        }
        let c = Counter::new();
        entries.push(Entry {
            name,
            handle: Handle::Counter(c.clone()),
        });
        c
    }

    /// Register (or look up) a gauge under `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let mut entries = self.lock();
        for e in entries.iter() {
            if e.name == name {
                if let Handle::Gauge(g) = &e.handle {
                    return g.clone();
                }
            }
        }
        let g = Gauge::new();
        entries.push(Entry {
            name,
            handle: Handle::Gauge(g.clone()),
        });
        g
    }

    /// Register (or look up) a fixed-bucket histogram under `name`. The
    /// edges of an existing histogram win; callers must agree on them.
    pub fn histogram(&self, name: &'static str, edges: &[u64]) -> Histogram {
        let mut entries = self.lock();
        for e in entries.iter() {
            if e.name == name {
                if let Handle::Histogram(h) = &e.handle {
                    return h.clone();
                }
            }
        }
        let h = Histogram::new(edges);
        entries.push(Entry {
            name,
            handle: Handle::Histogram(h.clone()),
        });
        h
    }

    /// Zero every registered metric (between profiled runs).
    pub fn reset(&self) {
        for e in self.lock().iter() {
            match &e.handle {
                Handle::Counter(c) => c.reset(),
                Handle::Gauge(g) => g.reset(),
                Handle::Histogram(h) => h.reset(),
            }
        }
    }

    /// A plain copy of every metric, in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for e in self.lock().iter() {
            match &e.handle {
                Handle::Counter(c) => snap.counters.push(CounterSample {
                    name: e.name.to_string(),
                    value: c.value(),
                }),
                Handle::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: e.name.to_string(),
                    value: g.value(),
                }),
                Handle::Histogram(h) => snap.histograms.push(HistogramSample {
                    name: e.name.to_string(),
                    edges: h.edges().to_vec(),
                    buckets: h.buckets(),
                    count: h.count(),
                    sum: h.sum(),
                }),
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_totals_across_shards_and_locals() {
        let c = Counter::new();
        c.add(5);
        c.inc();
        let mut l = c.local();
        l.add(10);
        assert_eq!(c.value(), 6, "local not flushed yet");
        l.flush();
        assert_eq!(c.value(), 16);
        {
            let mut l2 = c.local();
            l2.add(4);
        } // drop flushes
        assert_eq!(c.value(), 20);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.add(4);
        assert_eq!(a.value(), 7);
        assert_eq!(r.snapshot().counters.len(), 1);
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let g = Gauge::new();
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.value(), 5);
        g.set(1);
        assert_eq!(g.value(), 1);
    }

    #[test]
    fn histogram_boundary_rule_value_equal_edge_lands_in_bucket() {
        let h = Histogram::new(&[10, 100, 1000]);
        h.observe(10); // == first edge -> bucket 0
        h.observe(11); // -> bucket 1
        h.observe(1000); // == last edge -> bucket 2
        h.observe(1001); // -> overflow
        assert_eq!(h.buckets(), vec![1, 1, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10 + 11 + 1000 + 1001);
    }

    #[test]
    fn local_histogram_merges_exactly() {
        let h = Histogram::new(&[10, 100]);
        let mut l = h.local();
        l.observe(5);
        l.observe(50);
        l.observe(500);
        assert_eq!(h.count(), 0);
        l.flush();
        assert_eq!(h.buckets(), vec![1, 1, 1]);
        h.observe(5);
        assert_eq!(h.buckets(), vec![2, 1, 1]);
    }

    #[test]
    fn snapshot_preserves_registration_order() {
        let r = Registry::new();
        r.counter("b_second");
        r.counter("a_first_registered_wins_order");
        r.gauge("depth");
        r.histogram("lat", &[1, 2]);
        let s = r.snapshot();
        assert_eq!(s.counters[0].name, "b_second");
        assert_eq!(s.counters[1].name, "a_first_registered_wins_order");
        assert_eq!(s.gauges[0].name, "depth");
        assert_eq!(s.histograms[0].edges, vec![1, 2]);
    }
}
