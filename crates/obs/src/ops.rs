//! Operator-level profiling: time, call and FLOP attribution per kernel
//! class, reproducing the paper's operator-breakdown table from real runs.
//!
//! The tensor crate's kernels call [`record`] (via thin forwarding shims
//! in `rpf_tensor::counters`) with a class, work estimates and the start
//! instant they already took for their own counters. Profiling is **off by
//! default**: the disabled path is a single relaxed load and a branch, and
//! the bench gate in `rpf-bench` pins that the no-op path adds <1% to the
//! decode benchmark.
//!
//! Attribution is by *class*, not call site. A fused LSTM gate kernel is
//! one `LstmGatesFused` entry; the gaussian output head installs a
//! [`class_scope`] so the matmuls and softplus it issues are attributed to
//! `GaussianHead` instead of their raw kernel classes — classes partition
//! time, nothing is double-counted.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Kernel classes of the inference graph, mirroring the paper's operator
/// breakdown (matmul, fused LSTM gates/state, output head, scalar ops).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Preallocated-output GEMM — the decode hot path.
    MatmulInto,
    /// FMA-contracted lock-step GEMM (batched decode backend).
    MatmulBatched,
    /// Allocating GEMM variants (training path).
    Matmul,
    /// Fused LSTM gate bias+activation kernel.
    LstmGatesFused,
    /// Fused LSTM cell/hidden state update.
    LstmStateUpdate,
    /// Gaussian output head (mu/sigma projections + softplus + floor).
    GaussianHead,
    /// Elementwise scalar kernels (add, mul, activations) outside a scope.
    Scalar,
    /// Anything unclassified.
    Other,
}

pub const OP_CLASSES: [OpClass; 8] = [
    OpClass::MatmulInto,
    OpClass::MatmulBatched,
    OpClass::Matmul,
    OpClass::LstmGatesFused,
    OpClass::LstmStateUpdate,
    OpClass::GaussianHead,
    OpClass::Scalar,
    OpClass::Other,
];

impl OpClass {
    pub fn name(self) -> &'static str {
        match self {
            OpClass::MatmulInto => "matmul_into",
            OpClass::MatmulBatched => "matmul_batched",
            OpClass::Matmul => "matmul",
            OpClass::LstmGatesFused => "lstm_gates_fused",
            OpClass::LstmStateUpdate => "lstm_state_update",
            OpClass::GaussianHead => "gaussian_head",
            OpClass::Scalar => "scalar",
            OpClass::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            OpClass::MatmulInto => 0,
            OpClass::MatmulBatched => 1,
            OpClass::Matmul => 2,
            OpClass::LstmGatesFused => 3,
            OpClass::LstmStateUpdate => 4,
            OpClass::GaussianHead => 5,
            OpClass::Scalar => 6,
            OpClass::Other => 7,
        }
    }
}

struct OpCell {
    calls: AtomicU64,
    flops: AtomicU64,
    bytes: AtomicU64,
    nanos: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_CELL: OpCell = OpCell {
    calls: AtomicU64::new(0),
    flops: AtomicU64::new(0),
    bytes: AtomicU64::new(0),
    nanos: AtomicU64::new(0),
};

static CELLS: [OpCell; 8] = [ZERO_CELL; 8];

/// Global profiling switch; off by default so the hot path stays a single
/// relaxed load + branch in every shipped configuration.
static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Per-thread class override installed by [`class_scope`]; `usize::MAX`
    /// means "no override". A `Cell<usize>` keeps the disabled check free
    /// of thread-local reads (the scope is only consulted when enabled).
    static SCOPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// RAII guard redirecting this thread's op attribution to one class (see
/// module docs: the gaussian head claims its constituent kernels).
pub struct ClassScope {
    prev: usize,
}

pub fn class_scope(class: OpClass) -> ClassScope {
    let prev = SCOPE.with(|s| s.replace(class.index()));
    ClassScope { prev }
}

impl Drop for ClassScope {
    fn drop(&mut self) {
        let prev = self.prev;
        SCOPE.with(|s| s.set(prev));
    }
}

/// Record one kernel invocation that started at `started`. The disabled
/// path returns before reading the clock or any thread-local.
#[inline]
pub fn record(class: OpClass, flops: u64, bytes: u64, started: Instant) {
    if !enabled() {
        return;
    }
    record_nanos(class, flops, bytes, started.elapsed().as_nanos() as u64);
}

/// Deterministic entry point: like [`record`] but with an explicit
/// duration, for tests that must not read the wall clock.
pub fn record_nanos(class: OpClass, flops: u64, bytes: u64, nanos: u64) {
    if !enabled() {
        return;
    }
    let idx = SCOPE.with(|s| s.get());
    let idx = if idx == usize::MAX {
        class.index()
    } else {
        idx
    };
    let cell = &CELLS[idx];
    cell.calls.fetch_add(1, Ordering::Relaxed);
    cell.flops.fetch_add(flops, Ordering::Relaxed);
    cell.bytes.fetch_add(bytes, Ordering::Relaxed);
    cell.nanos.fetch_add(nanos, Ordering::Relaxed);
}

/// One class's accumulated totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    pub calls: u64,
    pub flops: u64,
    pub bytes: u64,
    pub nanos: u64,
}

impl OpStats {
    /// Effective GFLOP/s over the attributed time.
    pub fn gflops(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            self.flops as f64 / self.nanos as f64
        }
    }
}

pub fn stats(class: OpClass) -> OpStats {
    let cell = &CELLS[class.index()];
    OpStats {
        calls: cell.calls.load(Ordering::Relaxed),
        flops: cell.flops.load(Ordering::Relaxed),
        bytes: cell.bytes.load(Ordering::Relaxed),
        nanos: cell.nanos.load(Ordering::Relaxed),
    }
}

/// Every class's totals in declaration order (including zero rows, so the
/// breakdown table has a stable shape).
pub fn all_stats() -> Vec<(OpClass, OpStats)> {
    OP_CLASSES.iter().map(|&c| (c, stats(c))).collect()
}

/// Zero every cell (between profiled runs).
pub fn reset() {
    for cell in &CELLS {
        cell.calls.store(0, Ordering::Relaxed);
        cell.flops.store(0, Ordering::Relaxed);
        cell.bytes.store(0, Ordering::Relaxed);
        cell.nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The cells are process-global; serialize tests that touch them.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_record_is_a_no_op() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        set_enabled(false);
        record_nanos(OpClass::MatmulInto, 100, 10, 5);
        assert_eq!(stats(OpClass::MatmulInto), OpStats::default());
    }

    #[test]
    fn enabled_record_accumulates() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        set_enabled(true);
        record_nanos(OpClass::MatmulInto, 100, 16, 5);
        record_nanos(OpClass::MatmulInto, 200, 16, 7);
        set_enabled(false);
        let s = stats(OpClass::MatmulInto);
        assert_eq!((s.calls, s.flops, s.bytes, s.nanos), (2, 300, 32, 12));
    }

    #[test]
    fn class_scope_redirects_and_restores() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        set_enabled(true);
        {
            let _scope = class_scope(OpClass::GaussianHead);
            record_nanos(OpClass::MatmulInto, 50, 8, 3);
            record_nanos(OpClass::Scalar, 10, 8, 1);
        }
        record_nanos(OpClass::Scalar, 1, 1, 1);
        set_enabled(false);
        let head = stats(OpClass::GaussianHead);
        assert_eq!((head.calls, head.flops, head.nanos), (2, 60, 4));
        assert_eq!(stats(OpClass::MatmulInto), OpStats::default());
        let scalar = stats(OpClass::Scalar);
        assert_eq!((scalar.calls, scalar.nanos), (1, 1));
    }

    #[test]
    fn gflops_is_flops_per_nano() {
        let s = OpStats {
            calls: 1,
            flops: 2_000,
            bytes: 0,
            nanos: 1_000,
        };
        assert!((s.gflops() - 2.0).abs() < 1e-12);
    }
}
