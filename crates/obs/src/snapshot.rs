//! The unified snapshot type and its exporters.
//!
//! A [`MetricsSnapshot`] is plain owned data — counters, gauges,
//! histograms, operator stats and span totals copied out at one instant —
//! so engine, serving and training registries can each snapshot and then
//! [`MetricsSnapshot::merge`] into one view. Three exporters:
//!
//! * [`render`](MetricsSnapshot::render) — stable fixed-width plain text,
//!   the golden-test format (deterministic input → byte-identical output);
//! * [`render_prometheus`](MetricsSnapshot::render_prometheus) — text
//!   exposition format 0.0.4 (cumulative `_bucket{le=...}` histograms,
//!   `# TYPE` headers), scrape-ready;
//! * [`to_jsonl`](MetricsSnapshot::to_jsonl) — one JSON object per line
//!   for append-only machine-readable logs across runs.

use crate::ops;

/// One counter's value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSample {
    pub name: String,
    pub value: u64,
}

/// One gauge's value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSample {
    pub name: String,
    pub value: u64,
}

/// One histogram at snapshot time: fixed upper edges, non-cumulative
/// per-bucket counts with the overflow bucket last, plus count and sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSample {
    pub name: String,
    pub edges: Vec<u64>,
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistogramSample {
    /// Upper-edge quantile estimate: the edge of the first bucket whose
    /// cumulative count reaches `q * count` (the overflow bucket reports
    /// `u64::MAX`). Coarse by design — fixed buckets trade precision for
    /// mergeability — but monotone in `q` and deterministic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.edges.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Mean of observed values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One operator class's accumulated profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpSample {
    pub class: &'static str,
    pub calls: u64,
    pub flops: u64,
    pub bytes: u64,
    pub nanos: u64,
}

/// One span name's loss-free aggregate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanSample {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
}

/// Everything the observability layer knows, as plain data.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSample>,
    pub gauges: Vec<GaugeSample>,
    pub histograms: Vec<HistogramSample>,
    pub ops: Vec<OpSample>,
    pub spans: Vec<SpanSample>,
}

impl MetricsSnapshot {
    /// Capture the global operator-profiling cells into a snapshot (only
    /// non-empty classes; shape is stable because class order is).
    pub fn with_ops(mut self) -> MetricsSnapshot {
        self.ops = ops::all_stats()
            .into_iter()
            .filter(|(_, s)| s.calls > 0)
            .map(|(c, s)| OpSample {
                class: c.name(),
                calls: s.calls,
                flops: s.flops,
                bytes: s.bytes,
                nanos: s.nanos,
            })
            .collect();
        self
    }

    /// Attach span totals from a tracer.
    pub fn with_spans(mut self, spans: Vec<SpanSample>) -> MetricsSnapshot {
        self.spans = spans;
        self
    }

    /// Fold `other` into `self`, preserving order: same-named entries add
    /// (histograms must agree on edges), new names append. This is how
    /// engine + serve + train registries become one exposition.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|m| m.name == c.name) {
                Some(m) => m.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|m| m.name == g.name) {
                Some(m) => m.value = m.value.max(g.value),
                None => self.gauges.push(g.clone()),
            }
        }
        for h in &other.histograms {
            match self
                .histograms
                .iter_mut()
                .find(|m| m.name == h.name && m.edges == h.edges)
            {
                Some(m) => {
                    for (a, b) in m.buckets.iter_mut().zip(h.buckets.iter()) {
                        *a += b;
                    }
                    m.count += h.count;
                    m.sum += h.sum;
                }
                None => self.histograms.push(h.clone()),
            }
        }
        for o in &other.ops {
            match self.ops.iter_mut().find(|m| m.class == o.class) {
                Some(m) => {
                    m.calls += o.calls;
                    m.flops += o.flops;
                    m.bytes += o.bytes;
                    m.nanos += o.nanos;
                }
                None => self.ops.push(*o),
            }
        }
        for s in &other.spans {
            match self.spans.iter_mut().find(|m| m.name == s.name) {
                Some(m) => {
                    m.count += s.count;
                    m.total_ns += s.total_ns;
                }
                None => self.spans.push(*s),
            }
        }
    }

    fn op_total_nanos(&self) -> u64 {
        self.ops.iter().map(|o| o.nanos).sum()
    }

    /// Stable fixed-width plain text, one entry per line — the golden
    /// format. Bucket lines use `name<=edge` / `name_overflow` labels,
    /// matching the serving metrics render style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: String| out.push_str(&format!("{k:<36} {v}\n"));
        for c in &self.counters {
            line(&c.name, c.value.to_string());
        }
        for g in &self.gauges {
            line(&g.name, g.value.to_string());
        }
        for h in &self.histograms {
            line(&format!("{}_count", h.name), h.count.to_string());
            line(&format!("{}_sum", h.name), h.sum.to_string());
            for (i, &count) in h.buckets.iter().enumerate() {
                let label = match h.edges.get(i) {
                    Some(e) => format!("{}<={e}", h.name),
                    None => format!("{}_overflow", h.name),
                };
                line(&label, count.to_string());
            }
        }
        let total = self.op_total_nanos();
        for o in &self.ops {
            let share = if total == 0 {
                0.0
            } else {
                o.nanos as f64 / total as f64
            };
            line(
                &format!("op_{}", o.class),
                format!(
                    "calls={} flops={} bytes={} nanos={} share={:.3}",
                    o.calls, o.flops, o.bytes, o.nanos, share
                ),
            );
        }
        for s in &self.spans {
            line(
                &format!("span_{}", s.name),
                format!("count={} total_ns={}", s.count, s.total_ns),
            );
        }
        out
    }

    /// Prometheus text exposition (format 0.0.4). Metric names get an
    /// `rpf_` prefix; histograms emit cumulative `_bucket{le="..."}`
    /// series ending in `+Inf`, plus `_count`/`_sum`; operator profiles
    /// become `rpf_op_*_total{class="..."}` plus the derived
    /// `rpf_op_time_share` gauge — the paper's operator-breakdown table
    /// as scrape output.
    ///
    /// A sample name may embed a label set as `base{key="value"}` (the
    /// sharded serving layer emits `serve_submitted{shard="0"}` and
    /// friends): labels stay inside the braces — suffixes like `_total`
    /// and `_bucket` attach to the *base* name, a histogram's `le` label
    /// merges into the existing set, and the `# TYPE` header is emitted
    /// once per base name across all of its label variants.
    pub fn render_prometheus(&self) -> String {
        use std::collections::HashSet;
        let mut out = String::new();
        let mut typed: HashSet<String> = HashSet::new();
        for c in &self.counters {
            let (base, labels) = split_labels(&c.name);
            let name = format!("rpf_{base}_total");
            if typed.insert(name.clone()) {
                out.push_str(&format!("# TYPE {name} counter\n"));
            }
            out.push_str(&format!("{name}{} {}\n", brace(labels), c.value));
        }
        for g in &self.gauges {
            let (base, labels) = split_labels(&g.name);
            let name = format!("rpf_{base}");
            if typed.insert(name.clone()) {
                out.push_str(&format!("# TYPE {name} gauge\n"));
            }
            out.push_str(&format!("{name}{} {}\n", brace(labels), g.value));
        }
        for h in &self.histograms {
            let (base, labels) = split_labels(&h.name);
            let name = format!("rpf_{base}");
            if typed.insert(name.clone()) {
                out.push_str(&format!("# TYPE {name} histogram\n"));
            }
            let mut cumulative = 0u64;
            for (i, &count) in h.buckets.iter().enumerate() {
                cumulative += count;
                let le = match h.edges.get(i) {
                    Some(e) => e.to_string(),
                    None => "+Inf".to_string(),
                };
                let le_labels = match labels {
                    Some(l) => format!("{{{l},le=\"{le}\"}}"),
                    None => format!("{{le=\"{le}\"}}"),
                };
                out.push_str(&format!("{name}_bucket{le_labels} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_count{} {}\n", brace(labels), h.count));
            out.push_str(&format!("{name}_sum{} {}\n", brace(labels), h.sum));
        }
        if !self.ops.is_empty() {
            let total = self.op_total_nanos();
            for (metric, kind) in [
                ("rpf_op_calls_total", "counter"),
                ("rpf_op_flops_total", "counter"),
                ("rpf_op_bytes_total", "counter"),
                ("rpf_op_nanos_total", "counter"),
                ("rpf_op_time_share", "gauge"),
            ] {
                out.push_str(&format!("# TYPE {metric} {kind}\n"));
                for o in &self.ops {
                    let value = match metric {
                        "rpf_op_calls_total" => o.calls.to_string(),
                        "rpf_op_flops_total" => o.flops.to_string(),
                        "rpf_op_bytes_total" => o.bytes.to_string(),
                        "rpf_op_nanos_total" => o.nanos.to_string(),
                        _ => {
                            let share = if total == 0 {
                                0.0
                            } else {
                                o.nanos as f64 / total as f64
                            };
                            format!("{share:.6}")
                        }
                    };
                    out.push_str(&format!("{metric}{{class=\"{}\"}} {value}\n", o.class));
                }
            }
        }
        if !self.spans.is_empty() {
            for (metric, field) in [
                ("rpf_span_count_total", 0usize),
                ("rpf_span_nanos_total", 1),
            ] {
                out.push_str(&format!("# TYPE {metric} counter\n"));
                for s in &self.spans {
                    let value = if field == 0 { s.count } else { s.total_ns };
                    out.push_str(&format!("{metric}{{name=\"{}\"}} {value}\n", s.name));
                }
            }
        }
        out
    }

    /// One JSON object per line (kind-tagged), hand-serialized so the
    /// exporter carries no dependency. Append-only friendly: each line is
    /// independently parseable.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            out.push_str(&format!(
                "{{\"kind\":\"counter\",\"name\":{},\"value\":{}}}\n",
                json_str(&c.name),
                c.value
            ));
        }
        for g in &self.gauges {
            out.push_str(&format!(
                "{{\"kind\":\"gauge\",\"name\":{},\"value\":{}}}\n",
                json_str(&g.name),
                g.value
            ));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "{{\"kind\":\"histogram\",\"name\":{},\"edges\":{},\"buckets\":{},\"count\":{},\"sum\":{}}}\n",
                json_str(&h.name),
                json_u64s(&h.edges),
                json_u64s(&h.buckets),
                h.count,
                h.sum
            ));
        }
        for o in &self.ops {
            out.push_str(&format!(
                "{{\"kind\":\"op\",\"class\":{},\"calls\":{},\"flops\":{},\"bytes\":{},\"nanos\":{}}}\n",
                json_str(o.class),
                o.calls,
                o.flops,
                o.bytes,
                o.nanos
            ));
        }
        for s in &self.spans {
            out.push_str(&format!(
                "{{\"kind\":\"span\",\"name\":{},\"count\":{},\"total_ns\":{}}}\n",
                json_str(s.name),
                s.count,
                s.total_ns
            ));
        }
        out
    }
}

/// JSON string escape for the name fields (metric names are ASCII
/// identifiers, but escape defensively).
/// Split a sample name into `(base, labels)` at the first `{`: a name
/// like `serve_submitted{shard="0"}` carries its label set inline so
/// merged snapshots can hold the same metric under many label variants.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

/// Re-brace a label set for exposition (empty string when unlabelled).
fn brace(labels: Option<&str>) -> String {
    match labels {
        Some(l) => format!("{{{l}}}"),
        None => String::new(),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_u64s(values: &[u64]) -> String {
    let inner: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", inner.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> HistogramSample {
        HistogramSample {
            name: "lat".into(),
            edges: vec![10, 100, 1000],
            buckets: vec![5, 3, 1, 1],
            count: 10,
            sum: 500,
        }
    }

    #[test]
    fn quantile_walks_cumulative_counts() {
        let h = hist();
        assert_eq!(h.quantile(0.0), 10); // rank clamps to 1
        assert_eq!(h.quantile(0.5), 10); // 5 of 10 in first bucket
        assert_eq!(h.quantile(0.8), 100); // 8th lands in second bucket
        assert_eq!(h.quantile(0.9), 1000);
        assert_eq!(h.quantile(1.0), u64::MAX); // overflow bucket
        assert!((h.mean() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = HistogramSample {
            name: "empty".into(),
            edges: vec![1],
            buckets: vec![0, 0],
            count: 0,
            sum: 0,
        };
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_adds_matching_and_appends_new() {
        let mut a = MetricsSnapshot {
            counters: vec![CounterSample {
                name: "x".into(),
                value: 2,
            }],
            gauges: vec![GaugeSample {
                name: "depth".into(),
                value: 3,
            }],
            histograms: vec![hist()],
            ops: vec![],
            spans: vec![],
        };
        let b = MetricsSnapshot {
            counters: vec![
                CounterSample {
                    name: "x".into(),
                    value: 5,
                },
                CounterSample {
                    name: "y".into(),
                    value: 1,
                },
            ],
            gauges: vec![GaugeSample {
                name: "depth".into(),
                value: 7,
            }],
            histograms: vec![hist()],
            ops: vec![OpSample {
                class: "matmul_into",
                calls: 1,
                flops: 10,
                bytes: 4,
                nanos: 2,
            }],
            spans: vec![SpanSample {
                name: "decode",
                count: 4,
                total_ns: 40,
            }],
        };
        a.merge(&b);
        assert_eq!(a.counters[0].value, 7);
        assert_eq!(a.counters[1].name, "y");
        assert_eq!(a.gauges[0].value, 7, "gauges merge by max");
        assert_eq!(a.histograms[0].count, 20);
        assert_eq!(a.histograms[0].buckets, vec![10, 6, 2, 2]);
        assert_eq!(a.ops.len(), 1);
        assert_eq!(a.spans[0].count, 4);
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_in_inf() {
        let snap = MetricsSnapshot {
            histograms: vec![hist()],
            ..Default::default()
        };
        let text = snap.render_prometheus();
        assert!(text.contains("# TYPE rpf_lat histogram"));
        assert!(text.contains("rpf_lat_bucket{le=\"10\"} 5"));
        assert!(text.contains("rpf_lat_bucket{le=\"100\"} 8"));
        assert!(text.contains("rpf_lat_bucket{le=\"1000\"} 9"));
        assert!(text.contains("rpf_lat_bucket{le=\"+Inf\"} 10"));
        assert!(text.contains("rpf_lat_count 10"));
        assert!(text.contains("rpf_lat_sum 500"));
    }

    #[test]
    fn prometheus_renders_inline_labels_with_one_type_header() {
        let snap = MetricsSnapshot {
            counters: vec![
                CounterSample {
                    name: "serve_submitted".to_string(),
                    value: 9,
                },
                CounterSample {
                    name: "serve_submitted{shard=\"0\"}".to_string(),
                    value: 4,
                },
                CounterSample {
                    name: "serve_submitted{shard=\"1\"}".to_string(),
                    value: 5,
                },
            ],
            gauges: vec![GaugeSample {
                name: "queue_depth{shard=\"1\"}".to_string(),
                value: 3,
            }],
            histograms: vec![HistogramSample {
                name: "lat{shard=\"0\"}".to_string(),
                edges: vec![10, 100],
                buckets: vec![1, 2, 3],
                count: 6,
                sum: 60,
            }],
            ..Default::default()
        };
        let text = snap.render_prometheus();
        // Suffixes attach to the base name, labels stay braced.
        assert!(text.contains("rpf_serve_submitted_total 9"));
        assert!(text.contains("rpf_serve_submitted_total{shard=\"0\"} 4"));
        assert!(text.contains("rpf_serve_submitted_total{shard=\"1\"} 5"));
        assert!(text.contains("rpf_queue_depth{shard=\"1\"} 3"));
        // `le` merges into the existing label set.
        assert!(text.contains("rpf_lat_bucket{shard=\"0\",le=\"10\"} 1"));
        assert!(text.contains("rpf_lat_bucket{shard=\"0\",le=\"+Inf\"} 6"));
        assert!(text.contains("rpf_lat_count{shard=\"0\"} 6"));
        // One TYPE header per base name across every label variant.
        assert_eq!(text.matches("# TYPE rpf_serve_submitted_total").count(), 1);
    }

    #[test]
    fn op_time_share_sums_to_one() {
        let snap = MetricsSnapshot {
            ops: vec![
                OpSample {
                    class: "matmul_into",
                    calls: 1,
                    flops: 0,
                    bytes: 0,
                    nanos: 750,
                },
                OpSample {
                    class: "scalar",
                    calls: 1,
                    flops: 0,
                    bytes: 0,
                    nanos: 250,
                },
            ],
            ..Default::default()
        };
        let text = snap.render_prometheus();
        assert!(text.contains("rpf_op_time_share{class=\"matmul_into\"} 0.750000"));
        assert!(text.contains("rpf_op_time_share{class=\"scalar\"} 0.250000"));
    }

    #[test]
    fn jsonl_lines_are_independent_objects() {
        let snap = MetricsSnapshot {
            counters: vec![CounterSample {
                name: "x".into(),
                value: 1,
            }],
            histograms: vec![hist()],
            ..Default::default()
        };
        let text = snap.to_jsonl();
        for l in text.lines() {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        assert!(text.contains("\"kind\":\"histogram\""));
        assert!(text.contains("\"edges\":[10,100,1000]"));
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn render_is_stable_plain_text() {
        let snap = MetricsSnapshot {
            counters: vec![CounterSample {
                name: "engine_calls".into(),
                value: 3,
            }],
            histograms: vec![hist()],
            ..Default::default()
        };
        let text = snap.render();
        assert!(text.contains("engine_calls"));
        assert!(text.contains("lat<=10"));
        assert!(text.contains("lat_overflow"));
    }
}
