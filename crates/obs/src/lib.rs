//! `rpf-obs` — unified observability for the rank-position-forecasting
//! stack: one registry, one snapshot type, three concerns.
//!
//! * [`registry`] — named counters / gauges / fixed-bucket histograms on
//!   sharded atomics, with mergeable per-thread handles. Engine, serving
//!   and training each own a [`Registry`]; snapshots
//!   [`merge`](MetricsSnapshot::merge) into one view.
//! * [`span`] — start/stop span tracing with interned names and
//!   per-thread-shard ring buffers, on an injectable [`Clock`] so test
//!   output is deterministic (virtual clock, as in `serve::replay`).
//! * [`ops`] — operator-level kernel profiling (calls / FLOPs / bytes /
//!   nanos per kernel class), off by default with a provably-near-zero
//!   disabled path, reproducing the paper's operator-breakdown table.
//! * [`snapshot`] — the plain-data [`MetricsSnapshot`] plus exporters:
//!   stable plain text, Prometheus text exposition, and JSONL.
//!
//! The crate is dependency-free and never panics on poisoned locks; it is
//! covered by the workspace's no-unwrap gate.

pub mod clock;
pub mod ops;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use clock::{Clock, VirtualClock, WallClock};
pub use registry::{Counter, Gauge, Histogram, LocalCounter, LocalHistogram, Registry};
pub use snapshot::{
    CounterSample, GaugeSample, HistogramSample, MetricsSnapshot, OpSample, SpanSample,
};
pub use span::{span_name, SpanGuard, SpanName, Tracer};

/// Latency histogram edges shared across the stack (powers-of-ten ladder,
/// 10 µs … 1 s, overflow beyond). Identical to the serving layer's ladder
/// so serve and engine latency histograms merge.
pub const LATENCY_EDGES_NS: [u64; 11] = [
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
];

/// Batch-size histogram edges (powers of two, overflow beyond).
pub const BATCH_EDGES: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// Epoch/phase duration edges in nanoseconds (1 ms … 100 s ladder), for
/// the training loop's epoch histogram.
pub const DURATION_EDGES_NS: [u64; 6] = [
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
];

/// Shadow-evaluation rank-divergence edges in milli-rank units
/// (`1000 × mean |live − candidate|` over a forecast pair; see
/// `ranknet_core::lifecycle::rank_divergence_milli`). The ladder spans
/// "bit-close" (≤1 = a rounding wiggle) through "moves cars whole
/// positions" (≥4000), with overflow beyond.
pub const DIVERGENCE_EDGES_MILLI: [u64; 8] = [1, 10, 50, 100, 250, 500, 1_000, 4_000];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_edges_match_the_serving_ladder_shape() {
        assert!(LATENCY_EDGES_NS.windows(2).all(|w| w[0] < w[1]));
        assert!(BATCH_EDGES.windows(2).all(|w| w[0] < w[1]));
        assert!(DURATION_EDGES_NS.windows(2).all(|w| w[0] < w[1]));
        assert!(DIVERGENCE_EDGES_MILLI.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn end_to_end_registry_to_prometheus() {
        let r = Registry::new();
        let c = r.counter("demo_requests");
        let h = r.histogram("demo_latency_ns", &LATENCY_EDGES_NS);
        c.add(3);
        h.observe(20_000);
        let snap = r.snapshot();
        let text = snap.render_prometheus();
        assert!(text.contains("rpf_demo_requests_total 3"));
        assert!(text.contains("rpf_demo_latency_ns_bucket{le=\"50000\"} 1"));
        assert!(text.contains("rpf_demo_latency_ns_bucket{le=\"+Inf\"} 1"));
    }
}
