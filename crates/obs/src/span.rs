//! Structured span tracing: start/stop intervals with interned names,
//! recorded into per-thread-shard ring buffers.
//!
//! A span is two clock reads and one shard-local push — cheap enough to
//! wrap engine phases (encode / covariates / decode), but not kernels;
//! per-kernel attribution is the [`crate::ops`] layer's job. Names are
//! interned once into a global `&'static str` table so the hot path moves
//! a `u16`, never a string.
//!
//! All time flows through the injected [`Clock`], so a tracer driven by a
//! [`crate::clock::VirtualClock`] produces bit-for-bit reproducible spans
//! under test — the same determinism trick as `serve::replay`.

use crate::clock::{Clock, WallClock};
use crate::snapshot::SpanSample;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Ring capacity per shard. Old spans are overwritten; `recent()` is a
/// flight-recorder view, `totals()` the loss-free aggregate.
const RING_CAPACITY: usize = 256;

/// Shards (each its own mutex + ring). Matches the registry's shard count
/// so a thread contends with at most `threads / 8` peers.
const SPAN_SHARDS: usize = 8;

/// An interned span name: an index into the global name table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanName(u16);

static NAME_TABLE: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Intern `name`, returning a copyable id. Idempotent; the table only
/// ever grows (names are `'static`, typically literals).
pub fn span_name(name: &'static str) -> SpanName {
    let mut table = NAME_TABLE.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(i) = table.iter().position(|&n| n == name) {
        return SpanName(i as u16);
    }
    let id = table.len().min(u16::MAX as usize) as u16;
    if (id as usize) == table.len() {
        table.push(name);
    }
    SpanName(id)
}

fn resolve(name: SpanName) -> &'static str {
    let table = NAME_TABLE.lock().unwrap_or_else(|p| p.into_inner());
    table.get(name.0 as usize).copied().unwrap_or("<unknown>")
}

/// A finished span: interned name plus `[start, end)` in clock time.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    pub name: SpanName,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    pub fn name_str(&self) -> &'static str {
        resolve(self.name)
    }
}

#[derive(Default)]
struct SpanShard {
    /// Fixed-capacity ring; `next` is the overwrite cursor.
    ring: Vec<SpanRecord>,
    next: usize,
    /// Loss-free (count, total_ns) per interned name id.
    totals: Vec<(u64, u64)>,
}

impl SpanShard {
    fn push(&mut self, rec: SpanRecord) {
        if self.ring.len() < RING_CAPACITY {
            self.ring.push(rec);
        } else {
            self.ring[self.next] = rec;
        }
        self.next = (self.next + 1) % RING_CAPACITY;
        let id = rec.name.0 as usize;
        if self.totals.len() <= id {
            self.totals.resize(id + 1, (0, 0));
        }
        self.totals[id].0 += 1;
        self.totals[id].1 += rec.duration_ns();
    }
}

/// The span collector. Disabled by default: a disabled tracer's
/// [`Tracer::span`] is one relaxed load and returns an inert guard.
pub struct Tracer {
    clock: Arc<dyn Clock>,
    enabled: AtomicBool,
    shards: Vec<Mutex<SpanShard>>,
}

impl Tracer {
    /// A wall-clock tracer, disabled until [`Tracer::set_enabled`].
    pub fn new() -> Tracer {
        Tracer::with_clock(Arc::new(WallClock::new()))
    }

    /// A tracer on an explicit clock (a `VirtualClock` for tests).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Tracer {
        Tracer {
            clock,
            enabled: AtomicBool::new(false),
            shards: (0..SPAN_SHARDS).map(|_| Mutex::default()).collect(),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Start a span; it records itself when the guard drops. Inert (no
    /// clock read, nothing recorded) while the tracer is disabled.
    pub fn span<'t>(&'t self, name: SpanName) -> SpanGuard<'t> {
        if !self.enabled() {
            return SpanGuard {
                tracer: self,
                name,
                start_ns: 0,
                live: false,
            };
        }
        SpanGuard {
            tracer: self,
            name,
            start_ns: self.clock.now_ns(),
            live: true,
        }
    }

    fn shard(&self) -> &Mutex<SpanShard> {
        // Reuse the registry's round-robin thread slot for shard choice.
        &self.shards[crate::registry::thread_shard(SPAN_SHARDS)]
    }

    fn record(&self, name: SpanName, start_ns: u64, end_ns: u64) {
        let mut shard = self.shard().lock().unwrap_or_else(|p| p.into_inner());
        shard.push(SpanRecord {
            name,
            start_ns,
            end_ns,
        });
    }

    /// Flight-recorder view: the retained spans from every shard, sorted
    /// by start time. At most `SPAN_SHARDS * RING_CAPACITY` entries.
    pub fn recent(&self) -> Vec<SpanRecord> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            all.extend(shard.ring.iter().copied());
        }
        all.sort_by_key(|r| (r.start_ns, r.end_ns));
        all
    }

    /// Loss-free per-name aggregates (count, total ns), in interning
    /// order — the golden-testable summary.
    pub fn totals(&self) -> Vec<SpanSample> {
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            if merged.len() < shard.totals.len() {
                merged.resize(shard.totals.len(), (0, 0));
            }
            for (i, &(c, ns)) in shard.totals.iter().enumerate() {
                merged[i].0 += c;
                merged[i].1 += ns;
            }
        }
        merged
            .into_iter()
            .enumerate()
            .filter(|&(_, (c, _))| c > 0)
            .map(|(i, (count, total_ns))| SpanSample {
                name: resolve(SpanName(i as u16)),
                count,
                total_ns,
            })
            .collect()
    }

    /// Drop all retained spans and aggregates.
    pub fn reset(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            shard.ring.clear();
            shard.next = 0;
            shard.totals.clear();
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// RAII guard returned by [`Tracer::span`]; records on drop.
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    name: SpanName,
    start_ns: u64,
    live: bool,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.live {
            let end = self.tracer.clock.now_ns();
            self.tracer.record(self.name, self.start_ns, end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn interning_is_idempotent() {
        let a = span_name("obs_test_span_a");
        let b = span_name("obs_test_span_a");
        assert_eq!(a, b);
        assert_eq!(resolve(a), "obs_test_span_a");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        {
            let _g = t.span(span_name("obs_test_noop"));
        }
        assert!(t.recent().is_empty());
        assert!(t.totals().is_empty());
    }

    #[test]
    fn virtual_clock_spans_are_deterministic() {
        let clock = Arc::new(VirtualClock::new());
        let t = Tracer::with_clock(clock.clone());
        t.set_enabled(true);
        let name = span_name("obs_test_decode");
        {
            let _g = t.span(name);
            clock.advance(1_500);
        }
        {
            let _g = t.span(name);
            clock.advance(500);
        }
        let recent = t.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].duration_ns(), 1_500);
        assert_eq!(recent[1].duration_ns(), 500);
        let totals = t.totals();
        let s = totals
            .iter()
            .find(|s| s.name == "obs_test_decode")
            .map(|s| (s.count, s.total_ns));
        assert_eq!(s, Some((2, 2_000)));
        t.reset();
        assert!(t.recent().is_empty());
    }

    #[test]
    fn ring_overwrites_but_totals_do_not_lose() {
        let clock = Arc::new(VirtualClock::new());
        let t = Tracer::with_clock(clock.clone());
        t.set_enabled(true);
        let name = span_name("obs_test_flood");
        let n = (RING_CAPACITY * 2) as u64;
        for _ in 0..n {
            let _g = t.span(name);
            clock.advance(10);
        }
        // Single-threaded → one shard → ring holds at most RING_CAPACITY.
        assert!(t.recent().len() <= RING_CAPACITY);
        let totals = t.totals();
        let s = totals.iter().find(|s| s.name == "obs_test_flood");
        assert_eq!(s.map(|s| (s.count, s.total_ns)), Some((n, n * 10)));
    }
}
