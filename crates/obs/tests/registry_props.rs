//! Property suite for the metrics registry's one load-bearing invariant:
//! recording is *order- and thread-oblivious*. Any interleaving of the
//! same multiset of events — raw handles or batching local handles,
//! across any number of threads — must produce exactly the totals of a
//! single-threaded sequential replay. This is what makes the sharded
//! atomics + flush-on-drop design safe to thread through hot kernels.

use proptest::prelude::*;
use rpf_obs::{Registry, LATENCY_EDGES_NS};
use std::sync::Arc;

/// One recorded event: a counter bump and a histogram observation.
#[derive(Clone, Copy, Debug)]
struct Event {
    add: u64,
    observe_ns: u64,
}

fn apply_sequential(events: &[Event]) -> rpf_obs::MetricsSnapshot {
    let registry = Registry::new();
    let counter = registry.counter("requests");
    let hist = registry.histogram("latency_ns", &LATENCY_EDGES_NS);
    for e in events {
        counter.add(e.add);
        hist.observe(e.observe_ns);
    }
    registry.snapshot()
}

/// Split the events round-robin across `threads` workers, each recording
/// through its own batching local handles, and flush by drop.
fn apply_concurrent(events: &[Event], threads: usize) -> rpf_obs::MetricsSnapshot {
    let registry = Registry::new();
    let counter = registry.counter("requests");
    let hist = registry.histogram("latency_ns", &LATENCY_EDGES_NS);
    let chunks: Vec<Vec<Event>> = (0..threads)
        .map(|t| {
            events
                .iter()
                .copied()
                .skip(t)
                .step_by(threads)
                .collect::<Vec<_>>()
        })
        .collect();
    let shared: Arc<Vec<Vec<Event>>> = Arc::new(chunks);
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let counter = counter.clone();
            let hist = hist.clone();
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut local_counter = counter.local();
                let mut local_hist = hist.local();
                for e in &shared[t] {
                    local_counter.add(e.add);
                    local_hist.observe(e.observe_ns);
                }
                // Handles flush on drop here; no explicit flush call, so
                // the property also covers the Drop path.
            })
        })
        .collect();
    for h in handles {
        h.join().expect("recorder thread panicked");
    }
    registry.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn concurrent_recording_merges_to_sequential_totals(
        raw in prop::collection::vec((0u64..10_000, 0u64..2_000_000_000), 1..200),
        threads in 1usize..8,
    ) {
        let events: Vec<Event> = raw
            .iter()
            .map(|&(add, observe_ns)| Event { add, observe_ns })
            .collect();

        let seq = apply_sequential(&events);
        let conc = apply_concurrent(&events, threads);

        // Counters: same total regardless of sharding and interleaving.
        prop_assert_eq!(seq.counters.len(), 1);
        prop_assert_eq!(conc.counters.len(), 1);
        prop_assert_eq!(seq.counters[0].value, conc.counters[0].value);
        let expected: u64 = events.iter().map(|e| e.add).sum();
        prop_assert_eq!(seq.counters[0].value, expected);

        // Histograms: same count, same sum, same per-bucket tallies.
        prop_assert_eq!(seq.histograms.len(), 1);
        prop_assert_eq!(conc.histograms.len(), 1);
        let (sh, ch) = (&seq.histograms[0], &conc.histograms[0]);
        prop_assert_eq!(sh.count, ch.count);
        prop_assert_eq!(sh.sum, ch.sum);
        prop_assert_eq!(&sh.edges, &ch.edges);
        prop_assert_eq!(&sh.buckets, &ch.buckets);
        prop_assert_eq!(sh.count, events.len() as u64);
    }

    /// Merging per-thread snapshots of disjoint registries is equivalent
    /// to recording everything into one registry: `merge` is the offline
    /// counterpart of the sharded-atomics aggregation.
    #[test]
    fn snapshot_merge_equals_single_registry(
        raw in prop::collection::vec((0u64..10_000, 0u64..2_000_000_000), 1..100),
        split in 1usize..100,
    ) {
        let events: Vec<Event> = raw
            .iter()
            .map(|&(add, observe_ns)| Event { add, observe_ns })
            .collect();
        let cut = split.min(events.len());

        let combined = apply_sequential(&events);
        let mut merged = apply_sequential(&events[..cut]);
        merged.merge(&apply_sequential(&events[cut..]));

        prop_assert_eq!(combined.counters[0].value, merged.counters[0].value);
        let (a, b) = (&combined.histograms[0], &merged.histograms[0]);
        prop_assert_eq!(a.count, b.count);
        prop_assert_eq!(a.sum, b.sum);
        prop_assert_eq!(&a.buckets, &b.buckets);
    }
}
