//! Golden test for the exporter formats and the shared bucket layouts.
//! The Prometheus exposition, the plain-text render and the JSONL line
//! for one fully-populated deterministic snapshot are pinned byte-for-
//! byte, and the three shared edge tables are pinned as values — dashboards
//! and the bench-snapshot parser depend on both staying put.
//!
//! Regenerate (after deliberate format changes only) with:
//! `UPDATE_GOLDEN=1 cargo test -p rpf-obs --test export_golden`

use rpf_obs::{
    MetricsSnapshot, OpSample, Registry, SpanSample, BATCH_EDGES, DIVERGENCE_EDGES_MILLI,
    DURATION_EDGES_NS, LATENCY_EDGES_NS,
};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        golden, rendered,
        "{name} diverged from the golden file; if the format change is \
         deliberate, regenerate with UPDATE_GOLDEN=1"
    );
}

/// A snapshot exercising every sample kind with fixed values: one
/// observation per latency bucket edge (plus one overflow), a batch-size
/// histogram, counters, a gauge, two op classes and two spans.
fn pinned_snapshot() -> MetricsSnapshot {
    let registry = Registry::new();
    let requests = registry.counter("demo_requests");
    let errors = registry.counter("demo_errors");
    let depth = registry.gauge("demo_queue_depth_max");
    let latency = registry.histogram("demo_latency_ns", &LATENCY_EDGES_NS);
    let batch = registry.histogram("demo_batch_size", &BATCH_EDGES);
    let epoch = registry.histogram("demo_epoch_ns", &DURATION_EDGES_NS);
    // Model-lifecycle metrics (DESIGN.md §14): the serving layer registers
    // these same shapes, so their export formats are pinned here too.
    let swaps = registry.counter("demo_swaps");
    let rollbacks = registry.counter("demo_rollbacks");
    let version = registry.gauge("rpf_model_version");
    let divergence = registry.histogram("demo_shadow_divergence_milli", &DIVERGENCE_EDGES_MILLI);

    requests.add(42);
    errors.inc();
    depth.set_max(7);
    swaps.add(3);
    rollbacks.inc();
    version.set(12);
    for &edge in DIVERGENCE_EDGES_MILLI.iter() {
        divergence.observe(edge);
    }
    divergence.observe(DIVERGENCE_EDGES_MILLI[DIVERGENCE_EDGES_MILLI.len() - 1] + 1);
    // One sample landing exactly ON each edge (inclusive upper bound, so
    // each occupies its own bucket) and one past the last edge.
    for &edge in LATENCY_EDGES_NS.iter() {
        latency.observe(edge);
    }
    latency.observe(LATENCY_EDGES_NS[LATENCY_EDGES_NS.len() - 1] + 1);
    for size in [1u64, 2, 3, 8, 33] {
        batch.observe(size);
    }
    epoch.observe(2_500_000); // 2.5 ms epoch
    epoch.observe(40_000_000_000); // 40 s epoch

    let mut snap = registry.snapshot();
    snap.ops = vec![
        OpSample {
            class: "matmul_into",
            calls: 10,
            flops: 4_000_000,
            bytes: 120_000,
            nanos: 750_000,
        },
        OpSample {
            class: "matmul_batched",
            calls: 4,
            flops: 8_000_000,
            bytes: 96_000,
            nanos: 500_000,
        },
        OpSample {
            class: "lstm_gates_fused",
            calls: 5,
            flops: 1_000_000,
            bytes: 60_000,
            nanos: 250_000,
        },
    ];
    snap.spans = vec![
        SpanSample {
            name: "engine_encode",
            count: 3,
            total_ns: 300_000,
        },
        SpanSample {
            name: "engine_decode",
            count: 3,
            total_ns: 900_000,
        },
    ];
    snap
}

/// The shared edge tables are part of the exporter contract: serving's
/// golden metrics replay, the bench-snapshot JSON and any scrape-side
/// dashboards all assume these exact boundaries.
#[test]
fn bucket_boundaries_are_pinned() {
    assert_eq!(
        LATENCY_EDGES_NS,
        [
            10_000,
            50_000,
            100_000,
            500_000,
            1_000_000,
            5_000_000,
            10_000_000,
            50_000_000,
            100_000_000,
            500_000_000,
            1_000_000_000
        ]
    );
    assert_eq!(BATCH_EDGES, [1, 2, 4, 8, 16, 32]);
    assert_eq!(
        DIVERGENCE_EDGES_MILLI,
        [1, 10, 50, 100, 250, 500, 1_000, 4_000]
    );
    assert_eq!(
        DURATION_EDGES_NS,
        [
            1_000_000,
            10_000_000,
            100_000_000,
            1_000_000_000,
            10_000_000_000,
            100_000_000_000
        ]
    );
}

/// Edge semantics pinned alongside the boundaries: a value equal to an
/// edge lands IN that edge's bucket, one past it spills to the next.
#[test]
fn edge_values_land_in_their_own_bucket() {
    use rpf_obs::registry::bucket_index;
    for (i, &edge) in LATENCY_EDGES_NS.iter().enumerate() {
        assert_eq!(bucket_index(&LATENCY_EDGES_NS, edge), i);
        assert_eq!(bucket_index(&LATENCY_EDGES_NS, edge + 1), i + 1);
    }
    assert_eq!(
        bucket_index(&LATENCY_EDGES_NS, 0),
        0,
        "zero belongs to the first bucket"
    );
}

#[test]
fn prometheus_exposition_matches_golden() {
    check_golden("exposition.prom", &pinned_snapshot().render_prometheus());
}

#[test]
fn text_render_matches_golden() {
    check_golden("render.txt", &pinned_snapshot().render());
}

#[test]
fn jsonl_line_matches_golden() {
    check_golden("snapshot.jsonl", &pinned_snapshot().to_jsonl());
}
