//! Round-trip validation of the capacity planner (DESIGN.md §15): the
//! shard count the analytic M/M/1 inverse picks must agree — within one
//! shard — with the minimal count found by actually simulating the fleet
//! on the serving crate's deterministic virtual-clock replay.
//!
//! The traffic is deliberately *bursty* (back-to-back burst windows, not a
//! uniform trickle): a uniform arrival stream has zero queueing delay in a
//! deterministic simulator, which would validate nothing about the
//! planner's queueing term.

use rpf_nn::RngStreams;
use rpf_perfmodel::{predicted_p99_ns, shards_for, Demand, ShardProfile, Target};
use rpf_serve::loadgen::{self, MultiRaceMix};
use rpf_serve::{replay_sharded, ServeConfig, ServiceModel};
use std::time::Duration;

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        workers: 1,
        max_batch: 8,
        max_delay: Duration::from_micros(500),
        // Nothing may be rejected: the plan-vs-simulation comparison is
        // about latency under load, not admission control.
        queue_capacity: 65_536,
    }
}

fn svc() -> ServiceModel {
    ServiceModel {
        batch_overhead_ns: 200_000,
        per_request_ns: 100_000,
    }
}

/// Profile one shard at saturation: a single deep burst keeps every batch
/// full, so `completed / makespan` is the shard's sustained service rate.
fn profile_one_shard() -> ShardProfile {
    let streams = RngStreams::new(0x9A7E);
    let mix = MultiRaceMix::new(4, (50, 100), 1.0);
    let script: Vec<(u64, rpf_serve::ServeRequest)> = mix
        .schedule(&loadgen::burst(Duration::ZERO, 256), &streams, 0)
        .into_iter()
        .map(|(t, req)| (t.as_nanos() as u64, req))
        .collect();
    let run = replay_sharded(&serve_cfg(), 1, &script, &svc());
    let merged = run.merged();
    assert_eq!(merged.completed, 256, "saturation run must complete fully");
    ShardProfile::from_trace(merged.completed, run.makespan_ns)
}

/// The demand trace: 32 windows of 64-request bursts every 4 ms — the
/// same 16k req/s the `Demand` below declares, arriving in bursts.
fn demand_script() -> Vec<(u64, rpf_serve::ServeRequest)> {
    let streams = RngStreams::new(0xD31A);
    let mix = MultiRaceMix::new(4, (50, 100), 1.0);
    let mut windows = Vec::new();
    for w in 0..32u64 {
        let t0 = Duration::from_millis(4 * w);
        windows.push(mix.schedule(&loadgen::burst(t0, 64), &streams.child(w), w * 1_000));
    }
    loadgen::merge(windows)
        .into_iter()
        .map(|(t, req)| (t.as_nanos() as u64, req))
        .collect()
}

/// Minimal shard count whose simulated p99 meets `p99_ns`, scanning the
/// replay at 1, 2, ... shards.
fn minimal_shards_by_replay(script: &[(u64, rpf_serve::ServeRequest)], p99_ns: u64) -> u64 {
    for shards in 1..=16usize {
        let run = replay_sharded(&serve_cfg(), shards, script, &svc());
        let merged = run.merged();
        assert_eq!(
            merged.rejected_queue_full, 0,
            "queue sized to never clip at {shards} shards"
        );
        if run.p99_ns() <= p99_ns {
            return shards as u64;
        }
    }
    panic!("no shard count up to 16 met the target — scenario mis-sized");
}

/// The headline round-trip: plan a fleet for 16k req/s against a profiled
/// shard, then confirm by simulation that the planned count is within one
/// shard of the minimal count that actually meets the p99 budget.
#[test]
fn planned_shard_count_is_confirmed_by_replay_within_one_shard() {
    let profile = profile_one_shard();
    // ~8k req/s with full batches (100 µs/req + 200 µs / 8 amortised).
    assert!(
        (6_000.0..10_000.0).contains(&profile.service_rps),
        "unexpected shard service rate {:.0} req/s",
        profile.service_rps
    );

    let demand = Demand {
        users: 1_600,
        rps_per_user: 10.0, // 16k req/s offered — ~2x one shard
    };
    let target = Target {
        p99_ns: 10_000_000, // 10 ms
        max_utilisation: 0.85,
    };
    let plan = shards_for(&profile, &demand, &target);
    assert!(
        plan.feasible,
        "a 10 ms budget is far above the service time"
    );
    assert!(plan.shards >= 2, "16k req/s cannot fit one ~8k req/s shard");
    assert!(plan.predicted_p99_ns <= target.p99_ns as f64);

    let simulated = minimal_shards_by_replay(&demand_script(), target.p99_ns);
    let diff = plan.shards.abs_diff(simulated);
    assert!(
        diff <= 1,
        "planner said {} shards, replay needed {} — off by {diff}",
        plan.shards,
        simulated
    );

    // The forward model agrees with the replay at the planned count too.
    let run = replay_sharded(&serve_cfg(), plan.shards as usize, &demand_script(), &svc());
    assert!(
        run.p99_ns() as f64 <= 2.0 * plan.predicted_p99_ns + profile.service_ns() * 10.0,
        "simulated p99 {} ns wildly exceeds the model's {} ns",
        run.p99_ns(),
        plan.predicted_p99_ns
    );
}

/// Monotonicity against the simulator's notion of load: growing the user
/// base never shrinks the planned fleet, and the planned fleet always
/// keeps utilisation under the cap.
#[test]
fn more_users_never_plan_fewer_shards() {
    let profile = profile_one_shard();
    let target = Target {
        p99_ns: 10_000_000,
        max_utilisation: 0.85,
    };
    let mut last = 0u64;
    for users in (200..=6_400).step_by(200) {
        let demand = Demand {
            users,
            rps_per_user: 10.0,
        };
        let plan = shards_for(&profile, &demand, &target);
        assert!(
            plan.shards >= last,
            "{users} users planned {} shards after {} at fewer users",
            plan.shards,
            last
        );
        assert!(
            plan.utilisation <= target.max_utilisation + 1e-9,
            "planned fleet runs hotter than the cap: {}",
            plan.utilisation
        );
        assert!(plan.predicted_p99_ns.is_finite());
        assert_eq!(
            predicted_p99_ns(&profile, plan.shards, demand.offered_rps()),
            plan.predicted_p99_ns
        );
        last = plan.shards;
    }
    assert!(last >= 8, "6.4k users at 10 req/s must need a real fleet");
}
