//! Device models calibrated to the published specs of Table VIII hardware.

use crate::workload::{KernelCounts, LstmWorkload, WorkloadCounts};
use serde::Serialize;

/// Which execution mode a device estimate describes (Fig 10's four series).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum DeviceKind {
    /// Host CPU, operation-by-operation.
    Cpu,
    /// GPU, operation-by-operation (like the CPU/VE implementations).
    Gpu,
    /// GPU with cuDNN-style fused LSTM kernels.
    GpuCudnn,
    /// NEC SX-Aurora Vector Engine, operation-by-operation, hybrid with the
    /// host CPU.
    VectorEngine,
}

/// An analytic device: roofline peaks plus offload costs.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Device {
    pub kind: DeviceKind,
    pub name: &'static str,
    /// Peak arithmetic throughput for dense kernels, FLOP/s (f32).
    pub peak_flops: f64,
    /// Peak for low-intensity scalar/pointwise kernels, FLOP/s.
    pub scalar_flops: f64,
    /// Sustained memory bandwidth, byte/s.
    pub mem_bw: f64,
    /// Fixed cost per kernel launch (driver/offload latency), seconds.
    pub launch_overhead: f64,
    /// Host<->device transfer bandwidth, byte/s (0 = no transfer needed).
    pub transfer_bw: f64,
    /// Fraction of bytes that must cross the host link in hybrid mode
    /// (weights and recurrent state stay device-resident, so this is small).
    pub transfer_fraction: f64,
    /// Bandwidth seen by cache-resident pointwise kernels, byte/s.
    pub cache_bw: f64,
    /// Per-launch work (FLOPs) at which a kernel reaches half its peak —
    /// models vectorization ramp-up / occupancy.
    pub startup_flops: f64,
}

impl Device {
    /// Table VIII: Intel Xeon E5-2670 v3 (12 cores, AVX2).
    pub fn cpu() -> Device {
        Device {
            kind: DeviceKind::Cpu,
            name: "CPU (Xeon E5-2670 v3)",
            peak_flops: 880e9, // 12c x 2.3GHz x 32 f32 FLOP/cycle
            scalar_flops: 55e9,
            mem_bw: 68e9,
            launch_overhead: 0.15e-6, // a function call, not an offload
            transfer_bw: 0.0,
            transfer_fraction: 0.0,
            cache_bw: 220e9, // L3-resident pointwise traffic
            startup_flops: 3.0e5,
        }
    }

    /// Table VIII: NVIDIA V100-SXM2-16GB.
    pub fn gpu() -> Device {
        Device {
            kind: DeviceKind::Gpu,
            name: "GPU (V100)",
            peak_flops: 15.7e12,
            scalar_flops: 1.2e12,
            mem_bw: 900e9,
            launch_overhead: 6e-6, // CUDA launch + driver
            transfer_bw: 12e9,     // PCIe gen3 effective
            transfer_fraction: 0.03,
            cache_bw: 3000e9,     // shared-memory/L2 resident pointwise traffic
            startup_flops: 2.0e7, // needs large tiles for full occupancy
        }
    }

    /// V100 with cuDNN fused kernels: same silicon, cheaper launches (ops
    /// are streamed/combined) and fewer transfers.
    pub fn gpu_cudnn() -> Device {
        Device {
            kind: DeviceKind::GpuCudnn,
            name: "GPU cuDNN (V100)",
            launch_overhead: 4e-6,
            transfer_fraction: 0.02,
            startup_flops: 8.0e6, // fused kernels reach occupancy sooner
            ..Self::gpu()
        }
    }

    /// Table VIII: NEC SX-Aurora Vector Engine.
    pub fn vector_engine() -> Device {
        Device {
            kind: DeviceKind::VectorEngine,
            name: "VE (SX-Aurora)",
            peak_flops: 4.9e12, // f32
            scalar_flops: 0.6e12,
            mem_bw: 1200e9,
            launch_overhead: 7e-6, // VEO call overhead
            transfer_bw: 10e9,
            transfer_fraction: 0.015,
            cache_bw: 2400e9,     // vector-register / LLC resident traffic
            startup_flops: 6.0e6, // long vectors needed to fill the pipes
        }
    }

    /// All four Fig 10 series.
    pub fn all() -> Vec<Device> {
        vec![
            Self::cpu(),
            Self::gpu(),
            Self::gpu_cudnn(),
            Self::vector_engine(),
        ]
    }

    /// Time for one kernel class on this device: roofline time + launch
    /// overhead + host transfer share.
    pub fn kernel_time(&self, k: &KernelCounts, dense: bool) -> f64 {
        if k.launches == 0 {
            return 0.0;
        }
        let peak = if dense {
            self.peak_flops
        } else {
            self.scalar_flops
        };
        // Vectorization / occupancy ramp: tiny launches run far below peak.
        let per_launch = k.flops as f64 / k.launches as f64;
        let eff = per_launch / (per_launch + self.startup_flops);
        let compute = k.flops as f64 / (peak * eff);
        // GEMMs stream weights from DRAM; pointwise kernels chew on
        // just-produced cache-resident data.
        let bw = if dense { self.mem_bw } else { self.cache_bw };
        let memory = k.bytes as f64 / bw;
        let transfer = if self.transfer_bw > 0.0 {
            k.bytes as f64 * self.transfer_fraction / self.transfer_bw
        } else {
            0.0
        };
        compute.max(memory) + transfer + k.launches as f64 * self.launch_overhead
    }

    /// Total time of one training step of the workload on this device.
    pub fn step_time(&self, w: &LstmWorkload) -> f64 {
        let counts: WorkloadCounts = match self.kind {
            DeviceKind::GpuCudnn => w.step_counts_fused(),
            _ => w.step_counts(),
        };
        self.kernel_time(&counts.matmul, true)
            + self.kernel_time(&counts.mul, false)
            + self.kernel_time(&counts.add, false)
            + self.kernel_time(&counts.sigmoid, false)
            + self.kernel_time(&counts.tanh, false)
    }

    /// Fig 10's metric: microseconds per training sample.
    pub fn us_per_sample(&self, w: &LstmWorkload) -> f64 {
        self.step_time(w) * 1e6 / w.batch as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(batch: usize) -> LstmWorkload {
        LstmWorkload::default().with_batch(batch)
    }

    #[test]
    fn fig10_all_devices_speed_up_with_batch() {
        for d in Device::all() {
            let small = d.us_per_sample(&wl(32));
            let large = d.us_per_sample(&wl(3200));
            assert!(
                large < small,
                "{}: large batch must be cheaper per sample ({small} vs {large})",
                d.name
            );
        }
    }

    #[test]
    fn fig10_cpu_beats_accelerators_at_small_batch() {
        // §IV-J: "GPU or VE is faster than CPU only when the performance
        // gain from offload can offset the overhead."
        let cpu = Device::cpu().us_per_sample(&wl(32));
        let gpu = Device::gpu().us_per_sample(&wl(32));
        let ve = Device::vector_engine().us_per_sample(&wl(32));
        assert!(
            cpu < gpu,
            "CPU {cpu} should beat op-by-op GPU {gpu} at batch 32"
        );
        assert!(cpu < ve, "CPU {cpu} should beat VE {ve} at batch 32");
    }

    #[test]
    fn fig10_ve_overtakes_cpu_at_large_batch() {
        // "With increasing the batch size, VE starts to perform better than
        // CPU."
        let cpu = Device::cpu().us_per_sample(&wl(3200));
        let ve = Device::vector_engine().us_per_sample(&wl(3200));
        assert!(ve < cpu, "VE {ve} should beat CPU {cpu} at batch 3200");
    }

    #[test]
    fn fig10_cudnn_is_always_best_on_gpu() {
        // "CudnnRNN optimized approach always show the best performance."
        for batch in [32usize, 64, 128, 256, 640, 1600, 3200] {
            let fused = Device::gpu_cudnn().us_per_sample(&wl(batch));
            let plain = Device::gpu().us_per_sample(&wl(batch));
            assert!(
                fused < plain,
                "batch {batch}: cuDNN {fused} vs plain {plain}"
            );
        }
    }

    #[test]
    fn fig10_large_batch_speedup_is_order_of_magnitude() {
        // "large batch size=3200 is more than 10x faster" (per sample).
        let d = Device::cpu();
        let speedup = d.us_per_sample(&wl(32)) / d.us_per_sample(&wl(3200));
        assert!(speedup > 1.5, "CPU speedup {speedup}");
        let g = Device::gpu();
        let gpu_speedup = g.us_per_sample(&wl(32)) / g.us_per_sample(&wl(3200));
        assert!(
            gpu_speedup > 10.0,
            "GPU speedup {gpu_speedup} should be the largest"
        );
        assert!(gpu_speedup > speedup, "GPU gains most from batching");
    }

    #[test]
    fn kernel_time_monotone_in_work() {
        let d = Device::cpu();
        let small = KernelCounts {
            launches: 10,
            flops: 1_000_000,
            bytes: 100_000,
        };
        let large = KernelCounts {
            launches: 10,
            flops: 100_000_000,
            bytes: 10_000_000,
        };
        assert!(d.kernel_time(&large, true) > d.kernel_time(&small, true));
        assert_eq!(d.kernel_time(&KernelCounts::default(), true), 0.0);
    }
}
