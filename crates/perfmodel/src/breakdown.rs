//! Fig 12: operation breakdown of the CPU+VE hybrid system at batch 32 vs
//! 3200 — which kernels run where, and how much time data movement costs.

use crate::devices::Device;
use crate::workload::LstmWorkload;
use serde::Serialize;

/// One stacked-bar slice of Fig 12.
#[derive(Clone, Debug, Serialize)]
pub struct BreakdownSlice {
    pub label: &'static str,
    /// Fraction of total step walltime.
    pub fraction: f64,
}

/// Offload decision of the hybrid runtime: dense kernels (MatMul, Mul) go
/// to the VE when the per-launch work is large enough to amortise the
/// offload overhead; everything else stays on the CPU.
pub fn hybrid_breakdown(batch: usize) -> Vec<BreakdownSlice> {
    let w = LstmWorkload::default().with_batch(batch);
    let counts = w.step_counts();
    let cpu = Device::cpu();
    let ve = Device::vector_engine();

    // Work per launch decides the offload (the runtime's heuristic).
    let offload = |k: &crate::workload::KernelCounts| -> bool {
        if k.launches == 0 {
            return false;
        }
        let flops_per_launch = k.flops as f64 / k.launches as f64;
        let ve_time = flops_per_launch / ve.peak_flops + ve.launch_overhead;
        let cpu_time = flops_per_launch / cpu.peak_flops;
        ve_time < cpu_time
    };

    let mm_off = offload(&counts.matmul);
    let mul_off = offload(&counts.mul);

    let mut cpu_mm_mul = 0.0;
    let mut cpu_scalar = 0.0;
    let mut ve_mm_mul = 0.0;
    let mut ve_scalar = 0.0;
    let mut movement = 0.0;

    if mm_off {
        ve_mm_mul += ve.kernel_time(&counts.matmul, true);
        movement += counts.matmul.bytes as f64 * ve.transfer_fraction / ve.transfer_bw;
    } else {
        cpu_mm_mul += cpu.kernel_time(&counts.matmul, true);
    }
    if mul_off {
        ve_mm_mul += ve.kernel_time(&counts.mul, false);
        movement += counts.mul.bytes as f64 * ve.transfer_fraction / ve.transfer_bw;
    } else {
        cpu_mm_mul += cpu.kernel_time(&counts.mul, false);
    }
    cpu_scalar += cpu.kernel_time(&counts.add, false)
        + cpu.kernel_time(&counts.sigmoid, false)
        + cpu.kernel_time(&counts.tanh, false);
    // Other ops (copies, losses, optimizer) — a fixed share of scalar work.
    let other = 0.25 * (cpu_scalar + cpu_mm_mul + ve_mm_mul);
    let _ = &mut ve_scalar;

    let total = cpu_mm_mul + cpu_scalar + ve_mm_mul + ve_scalar + movement + other;
    vec![
        BreakdownSlice {
            label: "MatMul+Mul (CPU)",
            fraction: cpu_mm_mul / total,
        },
        BreakdownSlice {
            label: "Add+Sigmoid+Tanh (CPU)",
            fraction: cpu_scalar / total,
        },
        BreakdownSlice {
            label: "Other ops (CPU)",
            fraction: other / total,
        },
        BreakdownSlice {
            label: "Data Movement",
            fraction: movement / total,
        },
        BreakdownSlice {
            label: "MatMul+Mul (VE)",
            fraction: ve_mm_mul / total,
        },
        BreakdownSlice {
            label: "Add+Sigmoid+Tanh (VE)",
            fraction: ve_scalar / total,
        },
    ]
}

/// Fraction of the workload (by time) that ran on the VE — the §IV-J
/// "about only 7% ... at batch 32, about 35% at 3200" statistic.
pub fn offloaded_fraction(batch: usize) -> f64 {
    let slices = hybrid_breakdown(batch);
    slices
        .iter()
        .filter(|s| s.label.contains("(VE)"))
        .map(|s| s.fraction)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        for batch in [32usize, 3200] {
            let total: f64 = hybrid_breakdown(batch).iter().map(|s| s.fraction).sum();
            assert!((total - 1.0).abs() < 1e-9, "batch {batch}: {total}");
        }
    }

    #[test]
    fn fig12_offload_grows_with_batch() {
        // §IV-J: batch 32 offloads ~7% of the work; batch 3200 ~35%.
        let small = offloaded_fraction(32);
        let large = offloaded_fraction(3200);
        assert!(
            small < 0.2,
            "little work should offload at batch 32, got {small}"
        );
        assert!(
            large > small + 0.1,
            "batch 3200 should offload much more: {small} -> {large}"
        );
    }

    #[test]
    fn data_movement_present_only_when_offloading() {
        let slices = hybrid_breakdown(3200);
        let movement = slices.iter().find(|s| s.label == "Data Movement").unwrap();
        let ve: f64 = slices
            .iter()
            .filter(|s| s.label.contains("(VE)"))
            .map(|s| s.fraction)
            .sum();
        if ve > 0.0 {
            assert!(movement.fraction > 0.0);
        }
    }
}
