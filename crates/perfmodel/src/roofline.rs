//! The roofline chart of Fig 11: attainable GFLOP/s vs arithmetic
//! intensity, with the five LSTM kernels plotted at batch 32 and 3200.

use crate::devices::Device;
use crate::workload::LstmWorkload;
use serde::Serialize;

/// One plotted kernel: its position on the roofline chart.
#[derive(Clone, Debug, Serialize)]
pub struct RooflinePoint {
    pub kernel: &'static str,
    pub batch: usize,
    /// FLOP per byte.
    pub arithmetic_intensity: f64,
    /// Achieved GFLOP/s under the device model.
    pub gflops: f64,
}

/// A CPU roofline: memory-level bandwidth ceilings and compute peaks.
#[derive(Clone, Debug, Serialize)]
pub struct Roofline {
    /// `(label, bandwidth byte/s)` from DRAM up through the cache levels.
    pub bandwidths: Vec<(&'static str, f64)>,
    /// `(label, peak FLOP/s)`: scalar add peak and vector FMA peak.
    pub peaks: Vec<(&'static str, f64)>,
}

impl Roofline {
    /// The paper's CPU platform (Fig 11 ceilings).
    pub fn cpu() -> Roofline {
        Roofline {
            bandwidths: vec![("DRAM", 68e9), ("L3", 220e9), ("L2", 750e9)],
            peaks: vec![("Scalar Add Peak", 27.6e9), ("DP Vector FMA Peak", 441.6e9)],
        }
    }

    /// Attainable FLOP/s at a given arithmetic intensity under a bandwidth
    /// ceiling and the top compute peak.
    pub fn attainable(&self, ai: f64, bandwidth: f64) -> f64 {
        let peak = self.peaks.iter().map(|(_, p)| *p).fold(0.0, f64::max);
        (ai * bandwidth).min(peak)
    }

    /// Fig 11's points: each kernel of the workload at the given batch
    /// size, with achieved throughput estimated as the DRAM-roofline value
    /// degraded by launch overhead.
    pub fn points(&self, device: &Device, batch: usize) -> Vec<RooflinePoint> {
        let w = LstmWorkload::default().with_batch(batch);
        let counts = w.step_counts();
        counts
            .iter()
            .map(|(kernel, k)| {
                let dense = kernel == "MatMul";
                let t = device.kernel_time(&k, dense);
                RooflinePoint {
                    kernel,
                    batch,
                    arithmetic_intensity: k.arithmetic_intensity(),
                    gflops: if t > 0.0 {
                        k.flops as f64 / t / 1e9
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceilings_are_ordered() {
        let r = Roofline::cpu();
        // Cache bandwidths increase toward the core.
        let b: Vec<f64> = r.bandwidths.iter().map(|(_, v)| *v).collect();
        assert!(b[0] < b[1] && b[1] < b[2]);
        // Vector peak above scalar peak.
        assert!(r.peaks[1].1 > r.peaks[0].1);
    }

    #[test]
    fn attainable_is_roofline_shaped() {
        let r = Roofline::cpu();
        let dram = r.bandwidths[0].1;
        // Memory bound at low AI: linear in AI.
        let low = r.attainable(0.01, dram);
        assert!((low - 0.01 * dram).abs() / low < 1e-9);
        // Compute bound at high AI: flat at the peak.
        let high = r.attainable(1e6, dram);
        assert!((high - 441.6e9).abs() / high < 1e-9);
    }

    #[test]
    fn fig11_points_move_up_with_batch_size() {
        // "The position changes from the red dots to green dots, mostly
        // higher GigaOPS values and some with higher AIs, are the reasons
        // why the larger batch size had better performance."
        let r = Roofline::cpu();
        let cpu = Device::cpu();
        let small = r.points(&cpu, 32);
        let large = r.points(&cpu, 3200);
        for (s, l) in small.iter().zip(&large) {
            assert_eq!(s.kernel, l.kernel);
            assert!(
                l.gflops >= s.gflops * 0.99,
                "{}: {} -> {} GFLOPS should not fall",
                s.kernel,
                s.gflops,
                l.gflops
            );
        }
        // MatMul specifically gains arithmetic intensity.
        let mm_s = &small[0];
        let mm_l = &large[0];
        assert!(mm_l.arithmetic_intensity > mm_s.arithmetic_intensity);
        assert!(mm_l.gflops > mm_s.gflops * 2.0, "GEMM should gain a lot");
    }

    #[test]
    fn pointwise_kernels_stay_memory_bound() {
        let r = Roofline::cpu();
        let cpu = Device::cpu();
        for p in r.points(&cpu, 3200) {
            if p.kernel != "MatMul" {
                // Low AI: achieved flops stay far below the vector peak.
                assert!(
                    p.gflops < 441.6,
                    "{} at {} GFLOPS should be memory bound",
                    p.kernel,
                    p.gflops
                );
            }
        }
    }
}
