//! Analytic operator counts of one LSTM training step — the workload model
//! that drives every device estimate.

use serde::Serialize;

/// FLOPs, bytes and launch counts of one kernel class for one training
/// step (forward + backward).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct KernelCounts {
    pub launches: u64,
    pub flops: u64,
    pub bytes: u64,
}

impl KernelCounts {
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }
}

/// The RankNet LSTM training workload (paper Table IV: 2 layers, 40 units,
/// encoder 60 + decoder 2).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LstmWorkload {
    pub batch: usize,
    pub input_dim: usize,
    pub hidden: usize,
    pub layers: usize,
    pub seq_len: usize,
}

impl Default for LstmWorkload {
    fn default() -> Self {
        LstmWorkload {
            batch: 32,
            input_dim: 16,
            hidden: 40,
            layers: 2,
            seq_len: 62,
        }
    }
}

impl LstmWorkload {
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Per-kernel counts for one full training step (forward + backward ≈
    /// 3× the forward arithmetic, the standard estimate).
    pub fn step_counts(&self) -> WorkloadCounts {
        let b = self.batch as u64;
        let h = self.hidden as u64;
        let f = 4u64; // f32 bytes
        let mut mm = KernelCounts::default();
        let mut mul = KernelCounts::default();
        let mut add = KernelCounts::default();
        let mut sig = KernelCounts::default();
        let mut tanh = KernelCounts::default();

        for layer in 0..self.layers {
            let in_dim = if layer == 0 { self.input_dim as u64 } else { h };
            for _step in 0..self.seq_len {
                // x W_ih and h W_hh.
                mm.launches += 2;
                mm.flops += 2 * b * in_dim * 4 * h + 2 * b * h * 4 * h;
                mm.bytes += f * (b * in_dim + in_dim * 4 * h + b * 4 * h)
                    + f * (b * h + h * 4 * h + b * 4 * h);
                // gates add (two adds: gx+gh, +bias), cell adds.
                add.launches += 3;
                add.bytes += 3 * f * 3 * b * 4 * h / 4 + f * 3 * b * h;
                add.flops += 2 * b * 4 * h + b * h;
                // elementwise products: f⊙c, i⊙g, o⊙tanh(c).
                mul.launches += 3;
                mul.flops += 3 * b * h;
                mul.bytes += 3 * f * 3 * b * h;
                // activations: 3 sigmoids (i, f, o), 2 tanh (g, c).
                sig.launches += 3;
                sig.flops += 3 * 10 * b * h;
                sig.bytes += 3 * f * 2 * b * h;
                tanh.launches += 2;
                tanh.flops += 2 * 10 * b * h;
                tanh.bytes += 2 * f * 2 * b * h;
            }
        }

        // Backward ≈ 2× forward work over the same kernel mix.
        for k in [&mut mm, &mut mul, &mut add, &mut sig, &mut tanh] {
            k.launches *= 3;
            k.flops *= 3;
            k.bytes *= 3;
        }

        WorkloadCounts {
            matmul: mm,
            mul,
            add,
            sigmoid: sig,
            tanh,
        }
    }

    /// cuDNN-style fusion (§IV-J): GEMMs are combined/streamed (fewer,
    /// larger launches) and pointwise ops fuse into them — "only 39% MatMul
    /// operations and 1% scalar left".
    pub fn step_counts_fused(&self) -> WorkloadCounts {
        let base = self.step_counts();
        let scalar_launches =
            ((base.mul.launches + base.add.launches + base.sigmoid.launches + base.tanh.launches)
                as f64
                * 0.01) as u64;
        // Same arithmetic, dramatically fewer launches; pointwise bytes
        // vanish into the GEMM epilogues.
        WorkloadCounts {
            matmul: KernelCounts {
                launches: (base.matmul.launches as f64 * 0.39) as u64,
                flops: base.matmul.flops,
                bytes: base.matmul.bytes,
            },
            add: KernelCounts {
                launches: scalar_launches.max(1),
                flops: base.mul.flops + base.add.flops + base.sigmoid.flops + base.tanh.flops,
                // Fused pointwise work reads/writes registers, not DRAM.
                bytes: (base.mul.bytes + base.add.bytes) / 8,
            },
            ..Default::default()
        }
    }
}

/// All five kernel classes of §IV-J.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct WorkloadCounts {
    pub matmul: KernelCounts,
    pub mul: KernelCounts,
    pub add: KernelCounts,
    pub sigmoid: KernelCounts,
    pub tanh: KernelCounts,
}

impl WorkloadCounts {
    pub fn total_flops(&self) -> u64 {
        self.matmul.flops + self.mul.flops + self.add.flops + self.sigmoid.flops + self.tanh.flops
    }

    pub fn total_launches(&self) -> u64 {
        self.matmul.launches
            + self.mul.launches
            + self.add.launches
            + self.sigmoid.launches
            + self.tanh.launches
    }

    pub fn iter(&self) -> impl Iterator<Item = (&'static str, KernelCounts)> {
        [
            ("MatMul", self.matmul),
            ("Mul", self.mul),
            ("Add", self.add),
            ("Sigmoid", self.sigmoid),
            ("Tanh", self.tanh),
        ]
        .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_dominates_flops() {
        // §IV-J: "MatMul alone account for about half" of walltime; in
        // FLOPs it dominates even more.
        let w = LstmWorkload::default();
        let c = w.step_counts();
        assert!(c.matmul.flops > c.total_flops() / 2);
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let small = LstmWorkload::default().with_batch(32).step_counts();
        let large = LstmWorkload::default().with_batch(3200).step_counts();
        let ratio = large.total_flops() as f64 / small.total_flops() as f64;
        assert!((ratio - 100.0).abs() < 1.0, "ratio {ratio}");
        // Launch count is batch-independent: same number of kernels, each
        // bigger — the core reason large batches amortise offload overhead.
        assert_eq!(small.total_launches(), large.total_launches());
    }

    #[test]
    fn matmul_intensity_grows_with_batch() {
        // Fig 11: at batch 3200 the GEMM moves right (higher AI).
        let small = LstmWorkload::default().with_batch(32).step_counts();
        let large = LstmWorkload::default().with_batch(3200).step_counts();
        assert!(large.matmul.arithmetic_intensity() > small.matmul.arithmetic_intensity());
        // Pointwise kernels stay at O(1) intensity regardless of batch.
        let ai_small = small.mul.arithmetic_intensity();
        let ai_large = large.mul.arithmetic_intensity();
        assert!((ai_small - ai_large).abs() < 0.1);
    }

    #[test]
    fn fusion_slashes_launches_but_keeps_flops() {
        let w = LstmWorkload::default();
        let base = w.step_counts();
        let fused = w.step_counts_fused();
        assert!(fused.total_launches() < base.total_launches() / 2);
        // Arithmetic is conserved (within rounding).
        let ratio = fused.total_flops() as f64 / base.total_flops() as f64;
        assert!((ratio - 1.0).abs() < 0.05, "flops ratio {ratio}");
    }

    #[test]
    fn scalar_kernels_nearly_vanish_under_fusion() {
        // §IV-J: "only 39% MatMul operations and 1% scalar ... left".
        let w = LstmWorkload::default().with_batch(32);
        let base = w.step_counts();
        let fused = w.step_counts_fused();
        let frac_mm = fused.matmul.launches as f64 / base.matmul.launches as f64;
        assert!(
            (frac_mm - 0.39).abs() < 0.02,
            "matmul launch fraction {frac_mm}"
        );
        let base_scalar =
            base.mul.launches + base.add.launches + base.sigmoid.launches + base.tanh.launches;
        let fused_scalar = fused.add.launches;
        assert!(fused_scalar as f64 / base_scalar as f64 <= 0.011);
    }
}
