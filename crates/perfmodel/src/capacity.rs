//! Shard-count capacity planning: "how many race shards for N users at
//! p99 below X ms?" (DESIGN.md §15).
//!
//! The paper's systems section sizes *one* device against the roofline
//! (Fig 11); this module generalizes that single-device analysis into a
//! fleet-sizing tool for the sharded serving layer. A shard is profiled
//! as a single-server queue with service rate `μ` (req/s) and a fixed
//! latency floor; under offered load `λ` per shard (utilisation
//! `ρ = λ/μ`) the M/M/1 sojourn-time tail gives
//!
//! ```text
//! p99 ≈ floor + ln(100) · S / (1 − ρ),    S = 1/μ
//! ```
//!
//! because `P(T > t) = e^{−t(μ−λ)}`, so the 99th percentile sits at
//! `ln(100)` mean sojourn times. The planner inverts that analytically:
//! the largest utilisation that still meets a target `T` is
//!
//! ```text
//! ρ_max = 1 − ln(100) · S / (T − floor)
//! ```
//!
//! and the shard count is `ceil(λ_total / (ρ_max · μ))`. The inverse is
//! exact with respect to the forward model (unit-tested below), and the
//! round-trip against the deterministic virtual-clock replay — plan a
//! shard count, replay the trace at that count, check the simulated p99 —
//! lives in `tests/capacity.rs`. Real traffic is burstier than D/D/1 and
//! smoother than M/M/1, so the planner exposes `max_utilisation` as a
//! safety cap on top of the analytic bound.
//!
//! A profile can come from three places, in decreasing order of truth:
//! measured loadgen traces ([`ShardProfile::from_trace`]), a scraped
//! latency histogram ([`ShardProfile::from_latency_histogram`]), or the
//! calibrated device roofline ([`ShardProfile::from_device`]).

use crate::devices::Device;
use crate::workload::LstmWorkload;
use serde::Serialize;

/// `ln(100)`: the 99th-percentile multiplier of an exponential tail.
pub const LN_100: f64 = 4.605_170_185_988_092;

/// One shard's measured (or modelled) serving capability.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ShardProfile {
    /// Sustained service rate of one shard, requests/second.
    pub service_rps: f64,
    /// Load-independent latency floor (routing, admission, batch hold),
    /// nanoseconds.
    pub floor_ns: f64,
}

impl ShardProfile {
    /// Profile from a measured trace: `completed` requests finished in
    /// `busy_ns` of shard-busy time (a loadgen run against one shard at
    /// saturation, or a virtual-clock replay's makespan).
    pub fn from_trace(completed: u64, busy_ns: u64) -> ShardProfile {
        let service_rps = if busy_ns == 0 {
            0.0
        } else {
            completed as f64 * 1e9 / busy_ns as f64
        };
        ShardProfile {
            service_rps,
            floor_ns: 0.0,
        }
    }

    /// Profile from a *lightly loaded* shard's latency histogram (e.g. the
    /// scraped `serve_latency_ns`): with no queueing, the mean latency is
    /// the service time, so `μ = 1e9 / mean`. The mean is reconstructed
    /// from bucket midpoints (the serving histograms carry no exact sum);
    /// the overflow bucket is pessimistically priced at twice the last
    /// edge.
    pub fn from_latency_histogram(h: &rpf_obs::HistogramSample) -> ShardProfile {
        let mut weighted = 0.0f64;
        let mut count = 0.0f64;
        for (i, &n) in h.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let mid = match (
                i.checked_sub(1).and_then(|p| h.edges.get(p)),
                h.edges.get(i),
            ) {
                (Some(&lo), Some(&hi)) => (lo + hi) as f64 / 2.0,
                (None, Some(&hi)) => hi as f64 / 2.0,
                _ => h.edges.last().map_or(0.0, |&e| e as f64 * 2.0),
            };
            weighted += mid * n as f64;
            count += n as f64;
        }
        let mean_ns = if count == 0.0 { 0.0 } else { weighted / count };
        ShardProfile {
            service_rps: if mean_ns == 0.0 { 0.0 } else { 1e9 / mean_ns },
            floor_ns: 0.0,
        }
    }

    /// Profile from the calibrated device roofline: one request is one
    /// sample through the decode pipeline, so a shard on `device` serves
    /// `1 / us_per_sample` requests per microsecond — the link from
    /// Fig 10/11's single-device analysis to fleet sizing.
    pub fn from_device(device: &Device, workload: &LstmWorkload) -> ShardProfile {
        let us = device.us_per_sample(workload);
        ShardProfile {
            service_rps: if us <= 0.0 { 0.0 } else { 1e6 / us },
            floor_ns: 0.0,
        }
    }

    /// Attach a latency floor (routing + admission + batch hold).
    pub fn with_floor_ns(mut self, floor_ns: f64) -> ShardProfile {
        self.floor_ns = floor_ns;
        self
    }

    /// Mean service time, nanoseconds.
    pub fn service_ns(&self) -> f64 {
        if self.service_rps <= 0.0 {
            f64::INFINITY
        } else {
            1e9 / self.service_rps
        }
    }
}

/// The offered load: `users` each issuing `rps_per_user` requests/second.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Demand {
    pub users: u64,
    pub rps_per_user: f64,
}

impl Demand {
    pub fn offered_rps(&self) -> f64 {
        self.users as f64 * self.rps_per_user
    }
}

/// The service objective.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Target {
    /// p99 latency budget, nanoseconds.
    pub p99_ns: u64,
    /// Utilisation safety cap in `(0, 1]` — real traffic is burstier than
    /// the analytic model assumes, so never plan a shard hotter than this.
    pub max_utilisation: f64,
}

/// The planner's answer.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct CapacityPlan {
    /// Shards needed (≥ 1 when feasible).
    pub shards: u64,
    /// Per-shard utilisation at that count.
    pub utilisation: f64,
    /// Forward-model p99 at that count, nanoseconds.
    pub predicted_p99_ns: f64,
    /// `false` when no shard count can meet the target (the zero-load
    /// latency `floor + ln(100)·S` already exceeds the budget).
    pub feasible: bool,
}

/// Forward model: p99 sojourn time of one shard under `offered_rps`
/// spread over `shards`. Infinite at or beyond saturation.
pub fn predicted_p99_ns(profile: &ShardProfile, shards: u64, offered_rps: f64) -> f64 {
    if shards == 0 || profile.service_rps <= 0.0 {
        return f64::INFINITY;
    }
    let rho = offered_rps / shards as f64 / profile.service_rps;
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    profile.floor_ns + LN_100 * profile.service_ns() / (1.0 - rho)
}

/// The analytic inverse: fewest shards meeting `target` under `demand`.
///
/// When infeasible (budget below the zero-load latency) the plan reports
/// `feasible: false` with the shard count that at least keeps every shard
/// under the utilisation cap — the least-bad fleet.
pub fn shards_for(profile: &ShardProfile, demand: &Demand, target: &Target) -> CapacityPlan {
    let offered = demand.offered_rps();
    let cap = target.max_utilisation.clamp(f64::MIN_POSITIVE, 1.0);
    if profile.service_rps <= 0.0 {
        return CapacityPlan {
            shards: 0,
            utilisation: 0.0,
            predicted_p99_ns: f64::INFINITY,
            feasible: false,
        };
    }
    let s_ns = profile.service_ns();
    let headroom = target.p99_ns as f64 - profile.floor_ns;
    // p99(ρ→0) = floor + ln(100)·S: below that no fleet size helps.
    let feasible = headroom > LN_100 * s_ns;
    let rho_max = if feasible {
        (1.0 - LN_100 * s_ns / headroom).min(cap)
    } else {
        cap
    };
    let shards = if offered <= 0.0 {
        1
    } else {
        (offered / (rho_max * profile.service_rps)).ceil().max(1.0) as u64
    };
    CapacityPlan {
        shards,
        utilisation: offered / shards as f64 / profile.service_rps,
        predicted_p99_ns: predicted_p99_ns(profile, shards, offered),
        feasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ShardProfile {
        // 10k req/s per shard, 50 µs floor.
        ShardProfile {
            service_rps: 10_000.0,
            floor_ns: 50_000.0,
        }
    }

    fn target() -> Target {
        Target {
            p99_ns: 2_000_000, // 2 ms
            max_utilisation: 0.9,
        }
    }

    #[test]
    fn inverse_is_consistent_with_the_forward_model() {
        let p = profile();
        let t = target();
        for users in [100u64, 1_000, 10_000, 100_000] {
            let d = Demand {
                users,
                rps_per_user: 0.5,
            };
            let plan = shards_for(&p, &d, &t);
            assert!(plan.feasible);
            assert!(
                plan.predicted_p99_ns <= t.p99_ns as f64 + 1e-6,
                "{users} users: planned {} shards but p99 {} > target {}",
                plan.shards,
                plan.predicted_p99_ns,
                t.p99_ns
            );
            assert!(plan.utilisation <= t.max_utilisation + 1e-12);
            // Minimality: one shard fewer must break the target or the cap.
            if plan.shards > 1 {
                let fewer = plan.shards - 1;
                let p99 = predicted_p99_ns(&p, fewer, d.offered_rps());
                let rho = d.offered_rps() / fewer as f64 / p.service_rps;
                assert!(
                    p99 > t.p99_ns as f64 || rho > t.max_utilisation,
                    "{users} users: {fewer} shards would also meet the target"
                );
            }
        }
    }

    #[test]
    fn more_users_never_need_fewer_shards() {
        let p = profile();
        let t = target();
        let mut last = 0u64;
        for users in (0..40).map(|i| 1_000u64 * (i + 1)) {
            let plan = shards_for(
                &p,
                &Demand {
                    users,
                    rps_per_user: 1.0,
                },
                &t,
            );
            assert!(
                plan.shards >= last,
                "{users} users planned {} shards after {last}",
                plan.shards
            );
            last = plan.shards;
        }
    }

    #[test]
    fn tighter_budget_never_needs_fewer_shards() {
        let p = profile();
        let d = Demand {
            users: 50_000,
            rps_per_user: 1.0,
        };
        let mut last = u64::MAX;
        for p99_ms in [50u64, 20, 10, 5, 3] {
            let plan = shards_for(
                &p,
                &d,
                &Target {
                    p99_ns: p99_ms * 1_000_000,
                    max_utilisation: 0.95,
                },
            );
            assert!(plan.feasible);
            assert!(
                plan.shards <= last,
                "tightening the budget shrank the fleet"
            );
            last = plan.shards;
        }
    }

    #[test]
    fn impossible_budget_reports_infeasible() {
        let p = profile();
        // Zero-load p99 = 50µs + 4.6 * 100µs ≈ 510µs: a 200µs budget is
        // unreachable at any fleet size.
        let plan = shards_for(
            &p,
            &Demand {
                users: 1_000,
                rps_per_user: 1.0,
            },
            &Target {
                p99_ns: 200_000,
                max_utilisation: 0.9,
            },
        );
        assert!(!plan.feasible);
        assert!(plan.utilisation <= 0.9 + 1e-12, "still respects the cap");
    }

    #[test]
    fn zero_rate_profile_is_unplannable() {
        let plan = shards_for(
            &ShardProfile {
                service_rps: 0.0,
                floor_ns: 0.0,
            },
            &Demand {
                users: 10,
                rps_per_user: 1.0,
            },
            &target(),
        );
        assert!(!plan.feasible);
        assert_eq!(plan.shards, 0);
    }

    #[test]
    fn profiles_from_trace_histogram_and_device_agree_on_form() {
        let t = ShardProfile::from_trace(1_000, 1_000_000_000);
        assert!((t.service_rps - 1_000.0).abs() < 1e-9);
        assert_eq!(ShardProfile::from_trace(5, 0).service_rps, 0.0);

        // All mass in the 100–1000ns bucket → mean 550ns → ~1.8M req/s.
        let h = rpf_obs::HistogramSample {
            name: "serve_latency_ns".to_string(),
            edges: vec![100, 1_000],
            buckets: vec![0, 10, 0],
            count: 10,
            sum: 0,
        };
        let p = ShardProfile::from_latency_histogram(&h);
        assert!((p.service_rps - 1e9 / 550.0).abs() < 1.0);

        let d = ShardProfile::from_device(&Device::cpu(), &LstmWorkload::default().with_batch(32));
        assert!(d.service_rps > 0.0);

        let floored = p.with_floor_ns(42.0);
        assert_eq!(floored.floor_ns, 42.0);
        assert_eq!(floored.service_rps, p.service_rps);
    }

    #[test]
    fn p99_grows_with_load_and_saturates_to_infinity() {
        let p = profile();
        let a = predicted_p99_ns(&p, 4, 10_000.0);
        let b = predicted_p99_ns(&p, 4, 30_000.0);
        assert!(b > a, "more load must mean a fatter tail");
        assert!(
            predicted_p99_ns(&p, 1, 10_000.0).is_infinite(),
            "ρ=1 saturates"
        );
        assert!(predicted_p99_ns(&p, 0, 1.0).is_infinite());
    }
}
