//! Analytic device performance models for the paper's systems study
//! (§IV-J: Fig 10 training throughput, Fig 11 roofline, Fig 12 operator
//! breakdown, Table VIII hardware).
//!
//! The paper measured an Intel Xeon CPU, an NVIDIA V100 (with and without
//! cuDNN's fused LSTM kernels) and an NEC SX-Aurora Vector Engine. We have
//! none of that hardware, so this crate substitutes a calibrated analytic
//! model driven by the *exact operator counts* of the LSTM workload:
//!
//! * each kernel invocation costs `max(flops / peak, bytes / bandwidth)`
//!   plus a per-launch overhead (the offload cost the paper identifies as
//!   the reason accelerators lose at small batch sizes),
//! * offloadable kernels (MatMul / Mul above a size threshold) move to the
//!   accelerator in hybrid mode, paying PCIe-style transfer for their
//!   operands — reproducing Fig 12's "only ~7% offloaded at batch 32 vs
//!   ~35% at 3200",
//! * cuDNN mode fuses pointwise kernels into the GEMMs and batches the
//!   gate multiplications, cutting launches to "39% MatMul operations and
//!   1% scalar" (§IV-J).
//!
//! The CPU numbers in the benchmark harness are *measured* from the real
//! Rust implementation; the accelerator curves come from these models. The
//! claims being reproduced are the crossover shapes, not absolute times.

pub mod breakdown;
pub mod capacity;
pub mod devices;
pub mod roofline;
pub mod workload;

pub use breakdown::{hybrid_breakdown, BreakdownSlice};
pub use capacity::{predicted_p99_ns, shards_for, CapacityPlan, Demand, ShardProfile, Target};
pub use devices::{Device, DeviceKind};
pub use roofline::{Roofline, RooflinePoint};
pub use workload::{KernelCounts, LstmWorkload};
