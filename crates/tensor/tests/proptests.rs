//! Property-based tests of the matrix algebra laws the rest of the
//! reproduction silently relies on.

use proptest::prelude::*;
use rpf_tensor::matmul::{matmul, matmul_at, matmul_bt, matmul_naive};
use rpf_tensor::ops;
use rpf_tensor::Matrix;

fn mat(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..12, 1usize..12)
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        let scale = x.abs().max(y.abs()).max(1.0);
        assert!((x - y).abs() <= tol * scale, "{x} vs {y}");
    }
}

proptest! {
    #[test]
    fn matmul_agrees_with_naive((m, k, n) in dims(), seed in 0u64..1000) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s >> 16) as u32 as f32 / u32::MAX as f32) - 0.5
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        assert_close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_transposed_variants_consistent((m, k, n) in dims(), seed in 0u64..1000) {
        let mut s = seed.wrapping_add(7);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as u32 as f32 / u32::MAX as f32) - 0.5
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let c = matmul(&a, &b);
        assert_close(&matmul_bt(&a, &b.transpose()), &c, 1e-4);
        assert_close(&matmul_at(&a.transpose(), &b), &c, 1e-4);
    }

    #[test]
    fn matmul_distributes_over_add(a in mat(4, 5), b in mat(4, 5), c in mat(5, 3)) {
        let lhs = matmul(&ops::add(&a, &b), &c);
        let rhs = ops::add(&matmul(&a, &c), &matmul(&b, &c));
        assert_close(&lhs, &rhs, 1e-3);
    }

    #[test]
    fn transpose_is_involution(a in mat(6, 9)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_commutes(a in mat(3, 7), b in mat(3, 7)) {
        prop_assert_eq!(ops::add(&a, &b), ops::add(&b, &a));
    }

    #[test]
    fn mul_commutes(a in mat(3, 7), b in mat(3, 7)) {
        prop_assert_eq!(ops::mul(&a, &b), ops::mul(&b, &a));
    }

    #[test]
    fn sigmoid_bounded(a in mat(4, 4)) {
        let s = ops::sigmoid(&a);
        prop_assert!(s.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn tanh_bounded(a in mat(4, 4)) {
        let t = ops::tanh(&a);
        prop_assert!(t.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn softplus_nonnegative(a in mat(4, 4)) {
        let s = ops::softplus(&a);
        prop_assert!(s.as_slice().iter().all(|&v| v >= 0.0 && v.is_finite()));
    }

    #[test]
    fn softmax_rows_are_distributions(a in mat(5, 6)) {
        let s = ops::softmax_rows(&a);
        for r in 0..5 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn hstack_then_slice_roundtrips(a in mat(3, 4), b in mat(3, 2)) {
        let h = Matrix::hstack(&[&a, &b]);
        prop_assert_eq!(h.slice_cols(0, 4), a);
        prop_assert_eq!(h.slice_cols(4, 6), b);
    }

    #[test]
    fn sum_rows_matches_total(a in mat(6, 3)) {
        let by_col = ops::sum_rows(&a);
        let total: f32 = by_col.as_slice().iter().sum();
        prop_assert!((total - a.sum()).abs() < 1e-3 * (1.0 + a.sum().abs()));
    }
}
