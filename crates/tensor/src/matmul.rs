//! Blocked, parallel dense matrix multiplication.
//!
//! This is the hot kernel of the whole reproduction — the paper measures
//! that `MatMul` alone accounts for about half the LSTM training walltime
//! (§IV-J). The implementation here uses the classic i-k-j loop order so the
//! inner loop is a unit-stride AXPY that the compiler auto-vectorizes, plus
//! row-parallelism over the output via [`crate::par`].

use crate::counters::{self, Kernel};
use crate::matrix::Matrix;
use std::time::Instant;

/// `C = A * B`. Panics on inner-dimension mismatch.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions differ ({:?} x {:?})",
        a.shape(),
        b.shape()
    );
    let started = Instant::now();
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);

    {
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        // Parallelise over blocks of output rows; each worker owns a disjoint
        // slice of C, so no synchronisation is needed.
        crate::par::par_chunks_mut(c.as_mut_slice(), n, |start, c_chunk| {
            let row0 = start / n;
            let rows_here = c_chunk.len() / n;
            for (local_i, c_row) in c_chunk.chunks_mut(n).enumerate() {
                let i = row0 + local_i;
                let a_row = &a_data[i * k..(i + 1) * k];
                for (kk, &a_ik) in a_row.iter().enumerate() {
                    if a_ik == 0.0 {
                        continue; // common with one-hot / padded inputs
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    // Unit-stride AXPY: c_row += a_ik * b_row
                    for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                        *c_v += a_ik * b_v;
                    }
                }
            }
            let _ = rows_here;
        });
    }

    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    let bytes = 4 * ((m * k) as u64 + (k * n) as u64 + (m * n) as u64);
    counters::record_timed(Kernel::MatMul, flops, bytes, started);
    c
}

/// Reference triple-loop multiply used to validate [`matmul`] in tests.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul_naive: inner dimensions differ");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.get(i, kk) * b.get(kk, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

/// `C = A * B^T` without materialising the transpose.
///
/// Used by the autodiff backward pass (`dA = dC * B^T`), where allocating the
/// transpose per step would double the matmul memory traffic.
pub fn matmul_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_bt: inner dimensions differ ({:?} x {:?}^T)",
        a.shape(),
        b.shape()
    );
    let started = Instant::now();
    let (m, k) = a.shape();
    let n = b.rows();
    let mut c = Matrix::zeros(m, n);
    {
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        crate::par::par_chunks_mut(c.as_mut_slice(), n, |start, c_chunk| {
            let row0 = start / n;
            for (local_i, c_row) in c_chunk.chunks_mut(n).enumerate() {
                let i = row0 + local_i;
                let a_row = &a_data[i * k..(i + 1) * k];
                for (j, c_v) in c_row.iter_mut().enumerate() {
                    let b_row = &b_data[j * k..(j + 1) * k];
                    // Dot product of two contiguous rows: also vectorizes.
                    let mut acc = 0.0f32;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    *c_v = acc;
                }
            }
        });
    }
    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    let bytes = 4 * ((m * k) as u64 + (k * n) as u64 + (m * n) as u64);
    counters::record_timed(Kernel::MatMul, flops, bytes, started);
    c
}

/// `C = A^T * B` without materialising the transpose.
///
/// Used by the autodiff backward pass (`dB = A^T * dC`).
pub fn matmul_at(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at: inner dimensions differ ({:?}^T x {:?})",
        a.shape(),
        b.shape()
    );
    let started = Instant::now();
    let (k, m) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    {
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        // C[i,j] = sum_kk A[kk,i] * B[kk,j]: accumulate rank-1 updates.
        // Sequential over kk, so we parallelise only when C itself is large;
        // each worker recomputes its row range over all kk.
        crate::par::par_chunks_mut(c.as_mut_slice(), n, |start, c_chunk| {
            let row0 = start / n;
            let rows_here = c_chunk.len() / n;
            for kk in 0..k {
                let a_row = &a_data[kk * m..(kk + 1) * m];
                let b_row = &b_data[kk * n..(kk + 1) * n];
                for local_i in 0..rows_here {
                    let a_v = a_row[row0 + local_i];
                    if a_v == 0.0 {
                        continue;
                    }
                    let c_row = &mut c_chunk[local_i * n..(local_i + 1) * n];
                    for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                        *c_v += a_v * b_v;
                    }
                }
            }
        });
    }
    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    let bytes = 4 * ((m * k) as u64 + (k * n) as u64 + (m * n) as u64);
    counters::record_timed(Kernel::MatMul, flops, bytes, started);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
        // Tiny LCG so tests don't need the rand crate wired through here.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 8) as f32 / (1 << 24) as f32) - 0.5
        })
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = pseudo_random_matrix(7, 5, 1);
        let b = pseudo_random_matrix(5, 9, 2);
        assert_close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_matches_naive_large_parallel_path() {
        let a = pseudo_random_matrix(150, 80, 3);
        let b = pseudo_random_matrix(80, 170, 4);
        assert_close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-3);
    }

    #[test]
    fn matmul_identity() {
        let a = pseudo_random_matrix(6, 6, 5);
        let i = Matrix::eye(6);
        assert_close(&matmul(&a, &i), &a, 1e-6);
        assert_close(&matmul(&i, &a), &a, 1e-6);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = pseudo_random_matrix(12, 7, 6);
        let b = pseudo_random_matrix(9, 7, 7);
        assert_close(&matmul_bt(&a, &b), &matmul_naive(&a, &b.transpose()), 1e-4);
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = pseudo_random_matrix(7, 12, 8);
        let b = pseudo_random_matrix(7, 9, 9);
        assert_close(&matmul_at(&a, &b), &matmul_naive(&a.transpose(), &b), 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_shapes_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn zero_sized_edges() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 4);
        assert_eq!(matmul(&a, &b).shape(), (0, 4));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }
}
