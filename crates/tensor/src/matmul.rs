//! Blocked, parallel dense matrix multiplication.
//!
//! This is the hot kernel of the whole reproduction — the paper measures
//! that `MatMul` alone accounts for about half the LSTM training walltime
//! (§IV-J). The implementation here uses the classic i-k-j loop order so the
//! inner loop is a unit-stride AXPY that the compiler auto-vectorizes, plus
//! row-parallelism over the output via [`crate::par`].

use crate::counters::{self, Kernel};
use crate::matrix::Matrix;
use rpf_obs::ops::OpClass;
use std::time::Instant;

/// `C = A * B`. Panics on inner-dimension mismatch.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions differ ({:?} x {:?})",
        a.shape(),
        b.shape()
    );
    let started = Instant::now();
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);

    {
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        // Parallelise over blocks of output rows; each worker owns a disjoint
        // slice of C, so no synchronisation is needed.
        crate::par::par_chunks_mut(c.as_mut_slice(), n, |start, c_chunk| {
            let row0 = start / n;
            let rows_here = c_chunk.len() / n;
            for (local_i, c_row) in c_chunk.chunks_mut(n).enumerate() {
                let i = row0 + local_i;
                let a_row = &a_data[i * k..(i + 1) * k];
                for (kk, &a_ik) in a_row.iter().enumerate() {
                    if a_ik == 0.0 {
                        continue; // common with one-hot / padded inputs
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    // Unit-stride AXPY: c_row += a_ik * b_row
                    for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                        *c_v += a_ik * b_v;
                    }
                }
            }
            let _ = rows_here;
        });
    }

    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    let bytes = 4 * ((m * k) as u64 + (k * n) as u64 + (m * n) as u64);
    counters::record_timed(Kernel::MatMul, flops, bytes, started);
    c
}

/// Register-tile width for [`matmul_into`]: one output row is produced in
/// slabs of `TILE` columns whose partial sums live in a stack array that LLVM
/// keeps in vector registers across the whole `k` loop, instead of streaming
/// the output row through memory once per `k` step like [`matmul`] does.
const TILE: usize = 32;

/// Ragged-tail columns `j0..n` of one output row, in the same i-k-j AXPY
/// element order (and with the same zero-skip) as [`matmul`].
#[inline(always)]
fn tail_axpy(a_row: &[f32], b_data: &[f32], c_tail: &mut [f32], j0: usize, n: usize) {
    for (kk, &a_ik) in a_row.iter().enumerate() {
        if a_ik == 0.0 {
            continue;
        }
        let b_tail = &b_data[kk * n + j0..(kk + 1) * n];
        for (c_v, &b_v) in c_tail.iter_mut().zip(b_tail) {
            *c_v += a_ik * b_v;
        }
    }
}

/// One `TILE`-wide slab update for a single row: `acc += a_rk * b_slab`.
#[inline(always)]
fn slab_axpy(acc: &mut [f32; TILE], a_rk: f32, b_slab: &[f32]) {
    for (c_v, &b_v) in acc.iter_mut().zip(b_slab) {
        *c_v += a_rk * b_v;
    }
}

/// Four output rows at once, each accumulated in `TILE`-wide register slabs
/// held in *individually named* stack arrays — LLVM reliably promotes those
/// to vector registers, where an `[[f32; TILE]; R]` indexed by a loop
/// variable spills. Sharing each B slab load across the rows quadruples the
/// independent accumulator chains (hiding vector-add latency) without
/// re-reading B.
///
/// Per element the accumulation is still `Σ_k a[i,k]·b[k,j]` in ascending `k`
/// with separate mul/add. The `a_ik == 0.0` skip only changes results when a
/// zero is actually present (it can flip a `-0.0` or suppress a NaN from an
/// inf in B), so fully-dense row groups — the overwhelmingly common case for
/// decoder activations — take a branch-free inner loop; rows containing
/// zeros take the literal skipping loop. Either way the result is
/// bit-identical to [`matmul`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_rows4(
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    b_data: &[f32],
    c0: &mut [f32],
    c1: &mut [f32],
    c2: &mut [f32],
    c3: &mut [f32],
    k: usize,
    n: usize,
) {
    let dense = a0
        .iter()
        .chain(a1.iter())
        .chain(a2.iter())
        .chain(a3.iter())
        .all(|&v| v != 0.0);
    let mut j0 = 0;
    while j0 + TILE <= n {
        let mut acc0 = [0.0f32; TILE];
        let mut acc1 = [0.0f32; TILE];
        let mut acc2 = [0.0f32; TILE];
        let mut acc3 = [0.0f32; TILE];
        if dense {
            for kk in 0..k {
                let b_slab = &b_data[kk * n + j0..kk * n + j0 + TILE];
                slab_axpy(&mut acc0, a0[kk], b_slab);
                slab_axpy(&mut acc1, a1[kk], b_slab);
                slab_axpy(&mut acc2, a2[kk], b_slab);
                slab_axpy(&mut acc3, a3[kk], b_slab);
            }
        } else {
            for kk in 0..k {
                let b_slab = &b_data[kk * n + j0..kk * n + j0 + TILE];
                if a0[kk] != 0.0 {
                    slab_axpy(&mut acc0, a0[kk], b_slab);
                }
                if a1[kk] != 0.0 {
                    slab_axpy(&mut acc1, a1[kk], b_slab);
                }
                if a2[kk] != 0.0 {
                    slab_axpy(&mut acc2, a2[kk], b_slab);
                }
                if a3[kk] != 0.0 {
                    slab_axpy(&mut acc3, a3[kk], b_slab);
                }
            }
        }
        c0[j0..j0 + TILE].copy_from_slice(&acc0);
        c1[j0..j0 + TILE].copy_from_slice(&acc1);
        c2[j0..j0 + TILE].copy_from_slice(&acc2);
        c3[j0..j0 + TILE].copy_from_slice(&acc3);
        j0 += TILE;
    }
    if j0 < n {
        tail_axpy(a0, b_data, &mut c0[j0..], j0, n);
        tail_axpy(a1, b_data, &mut c1[j0..], j0, n);
        tail_axpy(a2, b_data, &mut c2[j0..], j0, n);
        tail_axpy(a3, b_data, &mut c3[j0..], j0, n);
    }
}

/// Single-row variant of [`micro_rows4`], for the 1–3 leftover rows.
#[inline(always)]
fn micro_rows1(a_row: &[f32], b_data: &[f32], c_row: &mut [f32], k: usize, n: usize) {
    let dense = a_row.iter().all(|&v| v != 0.0);
    let mut j0 = 0;
    while j0 + TILE <= n {
        let mut acc = [0.0f32; TILE];
        if dense {
            for kk in 0..k {
                let b_slab = &b_data[kk * n + j0..kk * n + j0 + TILE];
                slab_axpy(&mut acc, a_row[kk], b_slab);
            }
        } else {
            for kk in 0..k {
                if a_row[kk] != 0.0 {
                    let b_slab = &b_data[kk * n + j0..kk * n + j0 + TILE];
                    slab_axpy(&mut acc, a_row[kk], b_slab);
                }
            }
        }
        c_row[j0..j0 + TILE].copy_from_slice(&acc);
        j0 += TILE;
    }
    if j0 < n {
        tail_axpy(a_row, b_data, &mut c_row[j0..], j0, n);
    }
}

/// `out = A·b` for a single output column (`n == 1`) — the Gaussian-head
/// mu/sigma projections in the decode loop hit this shape every step. The
/// generic tile path degrades into a store-forwarding chain here (each `k`
/// step reloads and restores the same output scalar), so instead every
/// output element is accumulated in a register, eight rows at a time so the
/// eight independent add chains overlap. Element order is unchanged from
/// [`matmul`]: ascending `k`, separate mul/add, zero-skip on `a[i,k]`.
#[inline(always)]
fn col_rows8(a_data: &[f32], b: &[f32], c: &mut [f32], row0: usize, k: usize) {
    let rows_here = c.len();
    let mut li = 0;
    while li + 8 <= rows_here {
        let base = (row0 + li) * k;
        let a0 = &a_data[base..base + k];
        let a1 = &a_data[base + k..base + 2 * k];
        let a2 = &a_data[base + 2 * k..base + 3 * k];
        let a3 = &a_data[base + 3 * k..base + 4 * k];
        let a4 = &a_data[base + 4 * k..base + 5 * k];
        let a5 = &a_data[base + 5 * k..base + 6 * k];
        let a6 = &a_data[base + 6 * k..base + 7 * k];
        let a7 = &a_data[base + 7 * k..base + 8 * k];
        let all8 = &a_data[base..base + 8 * k];
        let mut s0 = 0.0f32;
        let mut s1 = 0.0f32;
        let mut s2 = 0.0f32;
        let mut s3 = 0.0f32;
        let mut s4 = 0.0f32;
        let mut s5 = 0.0f32;
        let mut s6 = 0.0f32;
        let mut s7 = 0.0f32;
        if all8.iter().all(|&v| v != 0.0) {
            for kk in 0..k {
                let b_v = b[kk];
                s0 += a0[kk] * b_v;
                s1 += a1[kk] * b_v;
                s2 += a2[kk] * b_v;
                s3 += a3[kk] * b_v;
                s4 += a4[kk] * b_v;
                s5 += a5[kk] * b_v;
                s6 += a6[kk] * b_v;
                s7 += a7[kk] * b_v;
            }
        } else {
            for kk in 0..k {
                let b_v = b[kk];
                if a0[kk] != 0.0 {
                    s0 += a0[kk] * b_v;
                }
                if a1[kk] != 0.0 {
                    s1 += a1[kk] * b_v;
                }
                if a2[kk] != 0.0 {
                    s2 += a2[kk] * b_v;
                }
                if a3[kk] != 0.0 {
                    s3 += a3[kk] * b_v;
                }
                if a4[kk] != 0.0 {
                    s4 += a4[kk] * b_v;
                }
                if a5[kk] != 0.0 {
                    s5 += a5[kk] * b_v;
                }
                if a6[kk] != 0.0 {
                    s6 += a6[kk] * b_v;
                }
                if a7[kk] != 0.0 {
                    s7 += a7[kk] * b_v;
                }
            }
        }
        c[li] = s0;
        c[li + 1] = s1;
        c[li + 2] = s2;
        c[li + 3] = s3;
        c[li + 4] = s4;
        c[li + 5] = s5;
        c[li + 6] = s6;
        c[li + 7] = s7;
        li += 8;
    }
    while li < rows_here {
        let a_row = &a_data[(row0 + li) * k..(row0 + li + 1) * k];
        let mut s = 0.0f32;
        for kk in 0..k {
            let a_v = a_row[kk];
            if a_v != 0.0 {
                s += a_v * b[kk];
            }
        }
        c[li] = s;
        li += 1;
    }
}

/// `out = A * B` into a caller-owned buffer, resized (allocation-free after
/// warm-up) via [`Matrix::reset_zeroed`]. This is the serving-path kernel:
/// the preallocated output makes register tiling cheap, so the inner loop
/// accumulates `TILE`-wide column slabs in registers rather than re-loading
/// and re-storing the output row on every `k` step.
///
/// For any given `(A, B)` the result is **bit-identical** to `matmul(a, b)`:
/// each output element still accumulates `a[i,k] * b[k,j]` over `k` in
/// ascending order with separate mul/add (never FMA), and the `a_ik == 0.0`
/// skip is preserved — only the order across *columns* changes, which no
/// element observes. The identity is pinned by
/// `matmul_into_bit_identical_to_matmul`, and it is what lets the tape-free
/// inference runtime share parity tests with the training graph. Panics on
/// inner-dimension mismatch.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_into: inner dimensions differ ({:?} x {:?})",
        a.shape(),
        b.shape()
    );
    let started = Instant::now();
    let (m, k) = a.shape();
    let n = b.cols();
    if n == 1 {
        out.reset_for_overwrite(m, 1);
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        crate::par::par_chunks_mut(out.as_mut_slice(), 1, |start, c_chunk| {
            col_rows8(a_data, b_data, c_chunk, start, k);
        });
        let flops = 2 * (m as u64) * (k as u64);
        let bytes = 4 * ((m * k) as u64 + k as u64 + m as u64);
        counters::record_timed_for(OpClass::MatmulInto, Kernel::MatMul, flops, bytes, started);
        return;
    }
    if n.is_multiple_of(TILE) {
        // Every element lands in a register slab that is stored wholesale,
        // so the O(m·n) pre-zeroing memset would be pure overwritten waste.
        out.reset_for_overwrite(m, n);
    } else {
        out.reset_zeroed(m, n);
    }

    {
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        crate::par::par_chunks_mut(out.as_mut_slice(), n, |start, c_chunk| {
            let row0 = start / n;
            let rows_here = c_chunk.len() / n;
            let mut li = 0;
            let mut rest = &mut c_chunk[..rows_here * n];
            while li + 4 <= rows_here {
                let i = row0 + li;
                let (quad, r) = rest.split_at_mut(4 * n);
                rest = r;
                let (c0, q) = quad.split_at_mut(n);
                let (c1, q) = q.split_at_mut(n);
                let (c2, c3) = q.split_at_mut(n);
                micro_rows4(
                    &a_data[i * k..(i + 1) * k],
                    &a_data[(i + 1) * k..(i + 2) * k],
                    &a_data[(i + 2) * k..(i + 3) * k],
                    &a_data[(i + 3) * k..(i + 4) * k],
                    b_data,
                    c0,
                    c1,
                    c2,
                    c3,
                    k,
                    n,
                );
                li += 4;
            }
            while li < rows_here {
                let i = row0 + li;
                let (c_row, r) = rest.split_at_mut(n);
                rest = r;
                micro_rows1(&a_data[i * k..(i + 1) * k], b_data, c_row, k, n);
                li += 1;
            }
        });
    }

    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    let bytes = 4 * ((m * k) as u64 + (k * n) as u64 + (m * n) as u64);
    counters::record_timed_for(OpClass::MatmulInto, Kernel::MatMul, flops, bytes, started);
}

/// Reference triple-loop multiply used to validate [`matmul`] in tests.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul_naive: inner dimensions differ");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.get(i, kk) * b.get(kk, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

/// `C = A * B^T` without materialising the transpose.
///
/// Used by the autodiff backward pass (`dA = dC * B^T`), where allocating the
/// transpose per step would double the matmul memory traffic.
pub fn matmul_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_bt: inner dimensions differ ({:?} x {:?}^T)",
        a.shape(),
        b.shape()
    );
    let started = Instant::now();
    let (m, k) = a.shape();
    let n = b.rows();
    let mut c = Matrix::zeros(m, n);
    {
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        crate::par::par_chunks_mut(c.as_mut_slice(), n, |start, c_chunk| {
            let row0 = start / n;
            for (local_i, c_row) in c_chunk.chunks_mut(n).enumerate() {
                let i = row0 + local_i;
                let a_row = &a_data[i * k..(i + 1) * k];
                for (j, c_v) in c_row.iter_mut().enumerate() {
                    let b_row = &b_data[j * k..(j + 1) * k];
                    // Dot product of two contiguous rows: also vectorizes.
                    let mut acc = 0.0f32;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    *c_v = acc;
                }
            }
        });
    }
    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    let bytes = 4 * ((m * k) as u64 + (k * n) as u64 + (m * n) as u64);
    counters::record_timed(Kernel::MatMul, flops, bytes, started);
    c
}

/// `C = A^T * B` without materialising the transpose.
///
/// Used by the autodiff backward pass (`dB = A^T * dC`).
pub fn matmul_at(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at: inner dimensions differ ({:?}^T x {:?})",
        a.shape(),
        b.shape()
    );
    let started = Instant::now();
    let (k, m) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    {
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        // C[i,j] = sum_kk A[kk,i] * B[kk,j]: accumulate rank-1 updates.
        // Sequential over kk, so we parallelise only when C itself is large;
        // each worker recomputes its row range over all kk.
        crate::par::par_chunks_mut(c.as_mut_slice(), n, |start, c_chunk| {
            let row0 = start / n;
            let rows_here = c_chunk.len() / n;
            for kk in 0..k {
                let a_row = &a_data[kk * m..(kk + 1) * m];
                let b_row = &b_data[kk * n..(kk + 1) * n];
                for local_i in 0..rows_here {
                    let a_v = a_row[row0 + local_i];
                    if a_v == 0.0 {
                        continue;
                    }
                    let c_row = &mut c_chunk[local_i * n..(local_i + 1) * n];
                    for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                        *c_v += a_v * b_v;
                    }
                }
            }
        });
    }
    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    let bytes = 4 * ((m * k) as u64 + (k * n) as u64 + (m * n) as u64);
    counters::record_timed(Kernel::MatMul, flops, bytes, started);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
        // Tiny LCG so tests don't need the rand crate wired through here.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 8) as f32 / (1 << 24) as f32) - 0.5
        })
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = pseudo_random_matrix(7, 5, 1);
        let b = pseudo_random_matrix(5, 9, 2);
        assert_close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_matches_naive_large_parallel_path() {
        let a = pseudo_random_matrix(150, 80, 3);
        let b = pseudo_random_matrix(80, 170, 4);
        assert_close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-3);
    }

    #[test]
    fn matmul_identity() {
        let a = pseudo_random_matrix(6, 6, 5);
        let i = Matrix::eye(6);
        assert_close(&matmul(&a, &i), &a, 1e-6);
        assert_close(&matmul(&i, &a), &a, 1e-6);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = pseudo_random_matrix(12, 7, 6);
        let b = pseudo_random_matrix(9, 7, 7);
        assert_close(&matmul_bt(&a, &b), &matmul_naive(&a, &b.transpose()), 1e-4);
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = pseudo_random_matrix(7, 12, 8);
        let b = pseudo_random_matrix(7, 9, 9);
        assert_close(&matmul_at(&a, &b), &matmul_naive(&a.transpose(), &b), 1e-4);
    }

    #[test]
    fn matmul_into_bit_identical_to_matmul() {
        for (m, k, n, seed) in [
            (7, 5, 9, 10),
            (150, 80, 170, 11),
            (1, 33, 1, 12),
            // n == 1 with enough rows to exercise the 8-row column kernel
            // and its scalar remainder.
            (43, 40, 1, 13),
        ] {
            let mut a = pseudo_random_matrix(m, k, seed);
            // Plant exact zeros so the sparse zero-skip paths are exercised,
            // not just the dense branch-free ones.
            for (idx, v) in a.as_mut_slice().iter_mut().enumerate() {
                if idx % 7 == 0 {
                    *v = 0.0;
                }
            }
            let b = pseudo_random_matrix(k, n, seed + 100);
            let fresh = matmul(&a, &b);
            // A dirty, differently-shaped scratch buffer must not leak in.
            let mut out = pseudo_random_matrix(3, 3, 99);
            matmul_into(&a, &b, &mut out);
            assert_eq!(out.shape(), fresh.shape());
            for (x, y) in out.as_slice().iter().zip(fresh.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            // Re-using the now-warm buffer is also exact.
            matmul_into(&a, &b, &mut out);
            assert_eq!(&out, &fresh);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_shapes_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn zero_sized_edges() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 4);
        assert_eq!(matmul(&a, &b).shape(), (0, 4));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }
}
