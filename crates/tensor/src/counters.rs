//! Per-kernel FLOP / byte / walltime accounting.
//!
//! The paper's systems evaluation (Fig 11 roofline, Fig 12 operator
//! breakdown) is driven by counts of the five kernels inside an LSTM cell.
//! Rather than an external profiler, every kernel in this crate reports its
//! arithmetic work and memory traffic here through relaxed atomics, which is
//! cheap enough to leave permanently enabled (one fetch-add per kernel call,
//! not per element).

use rpf_obs::ops::OpClass;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The kernel classes the paper profiles (§IV-J): the operations identified
/// from the architecture of an LSTM cell, plus `Other` for everything else.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Dense matrix multiplication (`gemm`).
    MatMul,
    /// Elementwise product.
    Mul,
    /// Elementwise / broadcast addition.
    Add,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Any other kernel (copies, softmax, comparisons, ...).
    Other,
}

impl Kernel {
    pub const ALL: [Kernel; 6] = [
        Kernel::MatMul,
        Kernel::Mul,
        Kernel::Add,
        Kernel::Sigmoid,
        Kernel::Tanh,
        Kernel::Other,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Kernel::MatMul => "MatMul",
            Kernel::Mul => "Mul",
            Kernel::Add => "Add",
            Kernel::Sigmoid => "Sigmoid",
            Kernel::Tanh => "Tanh",
            Kernel::Other => "Other",
        }
    }

    fn index(self) -> usize {
        match self {
            Kernel::MatMul => 0,
            Kernel::Mul => 1,
            Kernel::Add => 2,
            Kernel::Sigmoid => 3,
            Kernel::Tanh => 4,
            Kernel::Other => 5,
        }
    }
}

#[derive(Default)]
struct Cell {
    calls: AtomicU64,
    flops: AtomicU64,
    bytes: AtomicU64,
    nanos: AtomicU64,
}

static CELLS: [Cell; 6] = [
    Cell {
        calls: AtomicU64::new(0),
        flops: AtomicU64::new(0),
        bytes: AtomicU64::new(0),
        nanos: AtomicU64::new(0),
    },
    Cell {
        calls: AtomicU64::new(0),
        flops: AtomicU64::new(0),
        bytes: AtomicU64::new(0),
        nanos: AtomicU64::new(0),
    },
    Cell {
        calls: AtomicU64::new(0),
        flops: AtomicU64::new(0),
        bytes: AtomicU64::new(0),
        nanos: AtomicU64::new(0),
    },
    Cell {
        calls: AtomicU64::new(0),
        flops: AtomicU64::new(0),
        bytes: AtomicU64::new(0),
        nanos: AtomicU64::new(0),
    },
    Cell {
        calls: AtomicU64::new(0),
        flops: AtomicU64::new(0),
        bytes: AtomicU64::new(0),
        nanos: AtomicU64::new(0),
    },
    Cell {
        calls: AtomicU64::new(0),
        flops: AtomicU64::new(0),
        bytes: AtomicU64::new(0),
        nanos: AtomicU64::new(0),
    },
];

/// Record one kernel invocation. `flops` is fused-multiply-adds counted as
/// two operations; `bytes` is the minimum memory traffic (reads + writes).
#[inline]
pub fn record(kernel: Kernel, flops: u64, bytes: u64) {
    let cell = &CELLS[kernel.index()];
    cell.calls.fetch_add(1, Ordering::Relaxed);
    cell.flops.fetch_add(flops, Ordering::Relaxed);
    cell.bytes.fetch_add(bytes, Ordering::Relaxed);
}

/// The operator class a bare kernel maps to when the call site does not
/// name one: GEMMs profile as `matmul`, elementwise kernels as `scalar`.
/// Sites on the paper's breakdown table (preallocated decode GEMM, fused
/// LSTM kernels, the gaussian head) use the `_for` variants instead.
fn default_class(kernel: Kernel) -> OpClass {
    match kernel {
        Kernel::MatMul => OpClass::Matmul,
        Kernel::Mul | Kernel::Add | Kernel::Sigmoid | Kernel::Tanh => OpClass::Scalar,
        Kernel::Other => OpClass::Other,
    }
}

/// Record a kernel invocation with its measured walltime.
#[inline]
pub fn record_timed(kernel: Kernel, flops: u64, bytes: u64, started: Instant) {
    record_timed_for(default_class(kernel), kernel, flops, bytes, started);
}

/// Record a kernel invocation under an explicit operator class for the
/// `rpf-obs` profile (kernel counters tally under `kernel` as always; the
/// elapsed time is read once and shared with the obs layer).
#[inline]
pub fn record_timed_for(class: OpClass, kernel: Kernel, flops: u64, bytes: u64, started: Instant) {
    let elapsed = started.elapsed().as_nanos() as u64;
    let cell = &CELLS[kernel.index()];
    cell.calls.fetch_add(1, Ordering::Relaxed);
    cell.flops.fetch_add(flops, Ordering::Relaxed);
    cell.bytes.fetch_add(bytes, Ordering::Relaxed);
    cell.nanos.fetch_add(elapsed, Ordering::Relaxed);
    rpf_obs::ops::record_nanos(class, flops, bytes, elapsed);
}

/// Record one *fused* kernel invocation whose work spans several kernel
/// classes, attributing the measured walltime proportionally to each part's
/// FLOP share. A fused LSTM gate activation, for example, is three sigmoid
/// blocks and one tanh block executed in a single pass; lumping it under one
/// variant would skew the Fig 12 operator breakdown, so each `(kernel,
/// flops, bytes)` part gets its own call/flop/byte tally and a time slice
/// `elapsed * part_flops / total_flops` (the last part absorbs rounding
/// remainder so the total is preserved).
pub fn record_timed_split(parts: &[(Kernel, u64, u64)], started: Instant) {
    let elapsed = started.elapsed().as_nanos() as u64;
    let class = parts
        .first()
        .map(|&(k, _, _)| default_class(k))
        .unwrap_or(OpClass::Other);
    split_into_cells(parts, elapsed);
    record_split_ops(class, parts, elapsed);
}

/// Like [`record_timed_split`], but the fused kernel profiles as one
/// `class` entry in `rpf-obs` (e.g. the whole fused gate pass is a single
/// `lstm_gates_fused` row) while the kernel counters still split by FLOP
/// share for the Fig 12 table.
pub fn record_timed_split_for(class: OpClass, parts: &[(Kernel, u64, u64)], started: Instant) {
    let elapsed = started.elapsed().as_nanos() as u64;
    split_into_cells(parts, elapsed);
    record_split_ops(class, parts, elapsed);
}

/// One obs entry for a fused kernel: summed work, total elapsed.
fn record_split_ops(class: OpClass, parts: &[(Kernel, u64, u64)], elapsed: u64) {
    let flops: u64 = parts.iter().map(|&(_, f, _)| f).sum();
    let bytes: u64 = parts.iter().map(|&(_, _, b)| b).sum();
    rpf_obs::ops::record_nanos(class, flops, bytes, elapsed);
}

fn split_into_cells(parts: &[(Kernel, u64, u64)], elapsed: u64) {
    let total_flops: u64 = parts.iter().map(|&(_, f, _)| f).sum();
    let mut remaining = elapsed;
    for (i, &(kernel, flops, bytes)) in parts.iter().enumerate() {
        let share = if total_flops == 0 {
            elapsed / parts.len().max(1) as u64
        } else {
            ((elapsed as u128 * flops as u128) / total_flops as u128) as u64
        };
        let nanos = if i == parts.len() - 1 {
            remaining
        } else {
            share.min(remaining)
        };
        remaining -= nanos;
        let cell = &CELLS[kernel.index()];
        cell.calls.fetch_add(1, Ordering::Relaxed);
        cell.flops.fetch_add(flops, Ordering::Relaxed);
        cell.bytes.fetch_add(bytes, Ordering::Relaxed);
        cell.nanos.fetch_add(nanos, Ordering::Relaxed);
    }
}

/// Snapshot of a kernel's accumulated statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelStats {
    pub calls: u64,
    pub flops: u64,
    pub bytes: u64,
    pub nanos: u64,
}

impl KernelStats {
    /// Arithmetic intensity in FLOP per byte (the roofline x-axis).
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }

    /// Achieved GFLOP/s over the recorded walltime (the roofline y-axis).
    pub fn gflops(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            self.flops as f64 / self.nanos as f64
        }
    }
}

/// Read the current statistics for one kernel.
pub fn stats(kernel: Kernel) -> KernelStats {
    let cell = &CELLS[kernel.index()];
    KernelStats {
        calls: cell.calls.load(Ordering::Relaxed),
        flops: cell.flops.load(Ordering::Relaxed),
        bytes: cell.bytes.load(Ordering::Relaxed),
        nanos: cell.nanos.load(Ordering::Relaxed),
    }
}

/// Read statistics for all kernels in [`Kernel::ALL`] order.
pub fn all_stats() -> Vec<(Kernel, KernelStats)> {
    Kernel::ALL.iter().map(|&k| (k, stats(k))).collect()
}

/// Reset every counter to zero (used between profiled runs).
pub fn reset() {
    for cell in &CELLS {
        cell.calls.store(0, Ordering::Relaxed);
        cell.flops.store(0, Ordering::Relaxed);
        cell.bytes.store(0, Ordering::Relaxed);
        cell.nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counters are process-global; serialize the tests that reset them.
    static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn record_and_read() {
        let _g = LOCK.lock();
        reset();
        record(Kernel::MatMul, 100, 40);
        record(Kernel::MatMul, 50, 10);
        let s = stats(Kernel::MatMul);
        assert_eq!(s.calls, 2);
        assert_eq!(s.flops, 150);
        assert_eq!(s.bytes, 50);
        assert_eq!(s.arithmetic_intensity(), 3.0);
        reset();
        assert_eq!(stats(Kernel::MatMul), KernelStats::default());
    }

    #[test]
    fn timed_records_nanos() {
        let _g = LOCK.lock();
        reset();
        let t = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        record_timed(Kernel::Tanh, 10, 10, t);
        assert!(stats(Kernel::Tanh).nanos >= 1_000_000);
        reset();
    }

    #[test]
    fn timed_split_attributes_by_flop_share() {
        let _g = LOCK.lock();
        reset();
        let t = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        record_timed_split(
            &[
                (Kernel::Sigmoid, 30, 16),
                (Kernel::Tanh, 10, 8),
                (Kernel::Mul, 4, 12),
                (Kernel::Add, 2, 12),
            ],
            t,
        );
        let sig = stats(Kernel::Sigmoid);
        let tanh = stats(Kernel::Tanh);
        let mul = stats(Kernel::Mul);
        let add = stats(Kernel::Add);
        assert_eq!(sig.calls, 1);
        assert_eq!(sig.flops, 30);
        assert_eq!(sig.bytes, 16);
        assert_eq!(tanh.flops, 10);
        assert_eq!(mul.bytes, 12);
        // The sigmoid block did 3x the tanh FLOPs, so it should get roughly
        // 3x the time slice; totals must add up to the elapsed window.
        assert!(sig.nanos > tanh.nanos);
        let total = sig.nanos + tanh.nanos + mul.nanos + add.nanos;
        assert!(total >= 1_000_000, "split nanos lost: {total}");
        reset();
    }

    #[test]
    fn timed_split_zero_flops_splits_evenly() {
        let _g = LOCK.lock();
        reset();
        let t = Instant::now();
        record_timed_split(&[(Kernel::Other, 0, 8), (Kernel::Other, 0, 8)], t);
        let s = stats(Kernel::Other);
        assert_eq!(s.calls, 2);
        assert_eq!(s.bytes, 16);
        reset();
    }

    #[test]
    fn kernel_names_unique() {
        let names: std::collections::HashSet<_> = Kernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), Kernel::ALL.len());
    }

    #[test]
    fn empty_stats_have_zero_intensity() {
        let s = KernelStats::default();
        assert_eq!(s.arithmetic_intensity(), 0.0);
        assert_eq!(s.gflops(), 0.0);
    }
}
