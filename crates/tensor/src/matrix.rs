//! The dense row-major `f32` matrix type.

use std::fmt;

/// A dense, row-major `f32` matrix.
///
/// ```
/// use rpf_tensor::Matrix;
/// use rpf_tensor::matmul::matmul;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::eye(2);
/// assert_eq!(matmul(&a, &b), a);
/// assert_eq!(a.row(1), &[3.0, 4.0]);
/// ```
///
/// All shape mismatches panic: in this codebase a shape error is always a
/// programming bug (the network architecture is static), so failing fast with
/// the offending shapes in the message is the right trade-off.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create a matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Build a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing row-major buffer. Panics if the length does not match.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: buffer length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// A 1xN row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// An Nx1 column vector from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// The identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major buffer.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline(always)]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "get({r},{c}) out of {:?}",
            self.shape()
        );
        self.data[r * self.cols + c]
    }

    #[inline(always)]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "set({r},{c}) out of {:?}",
            self.shape()
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline(always)]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` out into a `Vec`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on larger matrices.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Reshape without copying the buffer. Panics if the element count changes.
    pub fn reshape(mut self, rows: usize, cols: usize) -> Matrix {
        assert_eq!(
            self.data.len(),
            rows * cols,
            "reshape: {:?} -> {rows}x{cols}",
            self.shape()
        );
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Stack matrices vertically (they must share a column count).
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in parts {
            assert_eq!(m.cols, cols, "vstack: column mismatch {} vs {cols}", m.cols);
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Stack matrices horizontally (they must share a row count).
    pub fn hstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hstack of nothing");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut offset = 0;
        for m in parts {
            assert_eq!(m.rows, rows, "hstack: row mismatch {} vs {rows}", m.rows);
            for r in 0..rows {
                out.data[r * cols + offset..r * cols + offset + m.cols].copy_from_slice(m.row(r));
            }
            offset += m.cols;
        }
        out
    }

    /// Extract columns `[start, end)` into a new matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "slice_cols {start}..{end} of {:?}",
            self.shape()
        );
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Extract rows `[start, end)` into a new matrix.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "slice_rows {start}..{end} of {:?}",
            self.shape()
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Gather a new matrix whose row `i` is `self.row(indices[i])`.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(
                idx < self.rows,
                "gather_rows: index {idx} out of {} rows",
                self.rows
            );
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Reshape in place to `rows x cols` with every element zeroed, reusing
    /// the existing allocation when capacity allows. This is the reset
    /// primitive for inference scratch buffers: after a warm-up pass the
    /// buffer never reallocates, so a decode step is allocation-free.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        self.data.clear();
        self.data.resize(n, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Resize to `rows x cols` *without* clearing: retained elements keep
    /// whatever stale values they held, and only newly-grown slots are
    /// zeroed. Strictly for kernels that overwrite every element before the
    /// buffer is observed (e.g. the register-tiled `matmul_into` when the
    /// width is a whole number of tiles) — everyone else wants
    /// [`Matrix::reset_zeroed`].
    pub fn reset_for_overwrite(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        self.data.resize(n, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:9.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_row_major_order() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(5, 7, |r, c| (r * 7 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (7, 5));
        assert_eq!(t.get(3, 4), m.get(4, 3));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_blocked_matches_naive_on_large() {
        let m = Matrix::from_fn(70, 45, |r, c| (r as f32).sin() + c as f32);
        let t = m.transpose();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                assert_eq!(t.get(c, r), m.get(r, c));
            }
        }
    }

    #[test]
    fn hstack_vstack() {
        let a = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
        let b = Matrix::full(2, 3, 9.0);
        let h = Matrix::hstack(&[&a, &b]);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h.row(0), &[0.0, 1.0, 9.0, 9.0, 9.0]);
        assert_eq!(h.row(1), &[2.0, 3.0, 9.0, 9.0, 9.0]);

        let c = Matrix::full(1, 2, 7.0);
        let v = Matrix::vstack(&[&a, &c]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[7.0, 7.0]);
    }

    #[test]
    fn slice_cols_and_rows() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let s = m.slice_cols(1, 3);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[9.0, 10.0]);
        let s = m.slice_rows(1, 2);
        assert_eq!(s.shape(), (1, 4));
        assert_eq!(s.row(0), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn gather_rows_copies_in_order() {
        let m = Matrix::from_fn(4, 2, |r, _| r as f32);
        let g = m.gather_rows(&[3, 0, 3]);
        assert_eq!(g.col(0), vec![3.0, 0.0, 3.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let m = Matrix::from_fn(2, 6, |r, c| (r * 6 + c) as f32);
        let r = m.clone().reshape(3, 4);
        assert_eq!(r.as_slice(), m.as_slice());
        assert_eq!(r.shape(), (3, 4));
    }

    #[test]
    fn reset_zeroed_reuses_capacity_and_clears() {
        let mut m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32 + 1.0);
        m.reset_zeroed(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        // Growing within a previously-seen size also works.
        m.reset_zeroed(4, 4);
        assert_eq!(m.shape(), (4, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stats() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert!((m.frob_norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert!(!m.has_non_finite());
        let bad = Matrix::from_vec(1, 2, vec![1.0, f32::NAN]);
        assert!(bad.has_non_finite());
    }
}

// Serde support: serialized as `{rows, cols, data}` with a length check on
// deserialization so corrupted files fail loudly instead of mis-shaping.
impl serde::Serialize for Matrix {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut s = serializer.serialize_struct("Matrix", 3)?;
        s.serialize_field("rows", &self.rows)?;
        s.serialize_field("cols", &self.cols)?;
        s.serialize_field("data", &self.data)?;
        s.end()
    }
}

impl<'de> serde::Deserialize<'de> for Matrix {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        struct Raw {
            rows: usize,
            cols: usize,
            data: Vec<f32>,
        }
        let raw = Raw::deserialize(deserializer)?;
        if raw.data.len() != raw.rows * raw.cols {
            return Err(serde::de::Error::custom(format!(
                "matrix data length {} != {}x{}",
                raw.data.len(),
                raw.rows,
                raw.cols
            )));
        }
        Ok(Matrix {
            rows: raw.rows,
            cols: raw.cols,
            data: raw.data,
        })
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn corrupted_length_rejected() {
        let bad = r#"{"rows":2,"cols":2,"data":[1.0,2.0,3.0]}"#;
        assert!(serde_json::from_str::<Matrix>(bad).is_err());
    }
}
