//! Minimal data-parallel helpers built on `crossbeam` scoped threads.
//!
//! The guides for this domain recommend rayon-style chunked data parallelism;
//! since the dependency budget names `crossbeam`, we implement the one
//! pattern we need — "split a mutable slice into chunks and process them on a
//! small scoped pool" — directly. Work below [`PAR_THRESHOLD`] elements runs
//! sequentially: thread spawn + join costs more than the work itself for the
//! small per-timestep LSTM matrices.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Below this many "work units" (caller-defined, usually output elements),
/// parallel helpers run sequentially.
pub const PAR_THRESHOLD: usize = 16 * 1024;

/// Number of worker threads to use: the machine's parallelism, capped so
/// tiny machines and CI runners behave.
pub fn num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16);
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Apply `f` to disjoint chunks of `out`, in parallel when the slice is
/// large enough. `f` receives `(chunk_start_index, chunk)`.
///
/// The chunk boundaries are aligned to `row_len` so callers that process
/// whole rows never see a split row.
pub fn par_chunks_mut<F>(out: &mut [f32], row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let row_len = row_len.max(1);
    let n = out.len();
    let threads = num_threads();
    if n < PAR_THRESHOLD || threads == 1 {
        f(0, out);
        return;
    }
    let rows = n / row_len;
    let rows_per = rows.div_ceil(threads).max(1);
    let chunk = rows_per * row_len;
    crossbeam::scope(|s| {
        let mut offset = 0;
        for piece in out.chunks_mut(chunk) {
            let start = offset;
            offset += piece.len();
            let f = &f;
            s.spawn(move |_| f(start, piece));
        }
    })
    .expect("worker thread panicked");
}

/// Run `f(i)` for every `i in 0..n`, in parallel when `n * work_hint` is
/// large. Each index is processed exactly once; `f` must be safe to call
/// concurrently for distinct indices.
pub fn par_for<F>(n: usize, work_hint: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = num_threads();
    if n == 0 {
        return;
    }
    if n.saturating_mul(work_hint.max(1)) < PAR_THRESHOLD || threads == 1 || n == 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let counter = AtomicUsize::new(0);
    crossbeam::scope(|s| {
        for _ in 0..threads.min(n) {
            let counter = &counter;
            let f = &f;
            s.spawn(move |_| loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    })
    .expect("worker thread panicked");
}

/// Map `f` over `0..n` collecting results in order, parallel for large `n`.
pub fn par_map<T, F>(n: usize, work_hint: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    {
        let slots: Vec<parking_lot::Mutex<&mut T>> =
            out.iter_mut().map(parking_lot::Mutex::new).collect();
        par_for(n, work_hint, |i| {
            **slots[i].lock() = f(i);
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_chunks_mut_covers_everything_once() {
        let mut v = vec![0.0f32; 100_000];
        par_chunks_mut(&mut v, 10, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x += (start + i) as f32;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as f32);
        }
    }

    #[test]
    fn par_chunks_mut_small_is_sequential_and_correct() {
        let mut v = vec![1.0f32; 7];
        par_chunks_mut(&mut v, 3, |_, chunk| {
            for x in chunk {
                *x *= 2.0;
            }
        });
        assert!(v.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn par_for_runs_each_index_once() {
        let hits: Vec<AtomicU64> = (0..5000).map(|_| AtomicU64::new(0)).collect();
        par_for(5000, 100_000, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn par_for_zero_is_noop() {
        par_for(0, 1_000_000, |_| panic!("should not run"));
    }

    #[test]
    fn par_map_order() {
        let v = par_map(1000, 1_000_000, |i| i * i);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * i);
        }
    }

    #[test]
    fn num_threads_is_stable_and_positive() {
        let a = num_threads();
        let b = num_threads();
        assert!((1..=16).contains(&a));
        assert_eq!(a, b);
    }
}
