//! Elementwise and broadcast kernels (`Mul`, `Add`, `Sigmoid`, `Tanh`, ...).
//!
//! Each op reports its work to [`crate::counters`] so the systems experiments
//! can reconstruct the paper's operator breakdown. Transcendental kernels
//! count the polynomial cost the paper's roofline uses (~10 flops/element).

use crate::counters::{self, Kernel};
use crate::matrix::Matrix;
use std::time::Instant;

fn assert_same_shape(a: &Matrix, b: &Matrix, op: &str) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "{op}: shape mismatch {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
}

/// Elementwise addition: `a + b`.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    assert_same_shape(a, b, "add");
    let started = Instant::now();
    let mut out = a.clone();
    for (o, &x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o += x;
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, n, 12 * n, started);
    out
}

/// Elementwise subtraction: `a - b`.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    assert_same_shape(a, b, "sub");
    let started = Instant::now();
    let mut out = a.clone();
    for (o, &x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o -= x;
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, n, 12 * n, started);
    out
}

/// Elementwise (Hadamard) product: `a ⊙ b`.
pub fn mul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_same_shape(a, b, "mul");
    let started = Instant::now();
    let mut out = a.clone();
    for (o, &x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o *= x;
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Mul, n, 12 * n, started);
    out
}

/// Scale every element by `s`.
pub fn scale(a: &Matrix, s: f32) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        *o *= s;
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Mul, n, 8 * n, started);
    out
}

/// Add scalar `s` to every element.
pub fn add_scalar(a: &Matrix, s: f32) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        *o += s;
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, n, 8 * n, started);
    out
}

/// Broadcast-add a 1xC row vector to every row of `a`.
pub fn add_row(a: &Matrix, row: &Matrix) -> Matrix {
    assert_eq!(row.rows(), 1, "add_row: rhs must be a row vector");
    assert_eq!(row.cols(), a.cols(), "add_row: width mismatch");
    let started = Instant::now();
    let mut out = a.clone();
    let r = row.as_slice();
    let cols = a.cols();
    for out_row in out.as_mut_slice().chunks_mut(cols) {
        for (o, &x) in out_row.iter_mut().zip(r) {
            *o += x;
        }
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, n, 12 * n, started);
    out
}

/// Logistic sigmoid `1 / (1 + e^-x)` applied elementwise.
pub fn sigmoid(a: &Matrix) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        *o = 1.0 / (1.0 + (-*o).exp());
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Sigmoid, 10 * n, 8 * n, started);
    out
}

/// Hyperbolic tangent applied elementwise.
pub fn tanh(a: &Matrix) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        *o = o.tanh();
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Tanh, 10 * n, 8 * n, started);
    out
}

/// ReLU `max(0, x)` applied elementwise.
pub fn relu(a: &Matrix) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        if *o < 0.0 {
            *o = 0.0;
        }
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Other, n, 8 * n, started);
    out
}

/// Numerically-stable softplus `log(1 + e^x)`, the paper's link function for
/// the Gaussian scale parameter sigma.
pub fn softplus(a: &Matrix) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        // For large x, log(1+e^x) = x + log(1+e^-x) avoids overflow.
        *o = if *o > 20.0 { *o } else { (1.0 + o.exp()).ln() };
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Other, 12 * n, 8 * n, started);
    out
}

/// Elementwise natural exponential.
pub fn exp(a: &Matrix) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        *o = o.exp();
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Other, 10 * n, 8 * n, started);
    out
}

/// Apply an arbitrary function elementwise (counted as `Other`).
pub fn map(a: &Matrix, f: impl Fn(f32) -> f32) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        *o = f(*o);
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Other, n, 8 * n, started);
    out
}

/// Column-wise sum, producing a 1xC row vector. (Backward pass of a
/// broadcast bias-add.)
pub fn sum_rows(a: &Matrix) -> Matrix {
    let started = Instant::now();
    let cols = a.cols();
    let mut out = Matrix::zeros(1, cols);
    for row in a.as_slice().chunks(cols) {
        for (o, &x) in out.as_mut_slice().iter_mut().zip(row) {
            *o += x;
        }
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, n, 8 * n, started);
    out
}

/// Row-wise softmax; each row sums to one. Used by the Transformer's
/// attention weights.
pub fn softmax_rows(a: &Matrix) -> Matrix {
    let started = Instant::now();
    let cols = a.cols();
    let mut out = a.clone();
    for row in out.as_mut_slice().chunks_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Other, 15 * n, 8 * n, started);
    out
}

/// In-place `a += s * b` (AXPY). The workhorse of the Adam optimizer update.
pub fn axpy(a: &mut Matrix, s: f32, b: &Matrix) {
    assert_same_shape(a, b, "axpy");
    let started = Instant::now();
    for (o, &x) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o += s * x;
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, 2 * n, 12 * n, started);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_mul() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(add(&a, &b).as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!(sub(&b, &a).as_slice(), &[9.0, 18.0, 27.0, 36.0]);
        assert_eq!(mul(&a, &b).as_slice(), &[10.0, 40.0, 90.0, 160.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        assert_eq!(scale(&a, 2.0).as_slice(), &[2.0, -4.0, 6.0]);
        assert_eq!(add_scalar(&a, 1.0).as_slice(), &[2.0, -1.0, 4.0]);
    }

    #[test]
    fn broadcast_row_add() {
        let a = Matrix::from_fn(3, 2, |_, _| 1.0);
        let r = Matrix::row_vector(&[10.0, 20.0]);
        let out = add_row(&a, &r);
        for i in 0..3 {
            assert_eq!(out.row(i), &[11.0, 21.0]);
        }
    }

    #[test]
    fn sigmoid_known_values() {
        let a = Matrix::from_vec(1, 3, vec![0.0, 100.0, -100.0]);
        let s = sigmoid(&a);
        assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((s.get(0, 1) - 1.0).abs() < 1e-6);
        assert!(s.get(0, 2).abs() < 1e-6);
    }

    #[test]
    fn tanh_and_relu() {
        let a = Matrix::from_vec(1, 3, vec![0.0, 1.0, -1.0]);
        let t = tanh(&a);
        assert_eq!(t.get(0, 0), 0.0);
        assert!((t.get(0, 1) - 0.761_594_2).abs() < 1e-5);
        let r = relu(&a);
        assert_eq!(r.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn softplus_stable_and_positive() {
        let a = Matrix::from_vec(1, 4, vec![-50.0, 0.0, 5.0, 500.0]);
        let s = softplus(&a);
        assert!(s.as_slice().iter().all(|&v| v >= 0.0 && v.is_finite()));
        assert!((s.get(0, 1) - 2.0f32.ln()).abs() < 1e-6);
        assert!((s.get(0, 3) - 500.0).abs() < 1e-3);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = softmax_rows(&a);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        // Monotone: bigger logit, bigger weight.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn sum_rows_matches_manual() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(sum_rows(&a).as_slice(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn axpy_in_place() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let b = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        axpy(&mut a, 0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = add(&Matrix::zeros(2, 2), &Matrix::zeros(2, 3));
    }
}
