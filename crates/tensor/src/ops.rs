//! Elementwise and broadcast kernels (`Mul`, `Add`, `Sigmoid`, `Tanh`, ...).
//!
//! Each op reports its work to [`crate::counters`] so the systems experiments
//! can reconstruct the paper's operator breakdown. Transcendental kernels
//! count the polynomial cost the paper's roofline uses (~10 flops/element).

use crate::counters::{self, Kernel};
use crate::matrix::Matrix;
use rpf_obs::ops::OpClass;
use std::time::Instant;

fn assert_same_shape(a: &Matrix, b: &Matrix, op: &str) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "{op}: shape mismatch {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
}

/// Elementwise addition: `a + b`.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    assert_same_shape(a, b, "add");
    let started = Instant::now();
    let mut out = a.clone();
    for (o, &x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o += x;
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, n, 12 * n, started);
    out
}

/// Elementwise subtraction: `a - b`.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    assert_same_shape(a, b, "sub");
    let started = Instant::now();
    let mut out = a.clone();
    for (o, &x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o -= x;
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, n, 12 * n, started);
    out
}

/// Elementwise (Hadamard) product: `a ⊙ b`.
pub fn mul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_same_shape(a, b, "mul");
    let started = Instant::now();
    let mut out = a.clone();
    for (o, &x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o *= x;
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Mul, n, 12 * n, started);
    out
}

/// Scale every element by `s`.
pub fn scale(a: &Matrix, s: f32) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        *o *= s;
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Mul, n, 8 * n, started);
    out
}

/// Add scalar `s` to every element.
pub fn add_scalar(a: &Matrix, s: f32) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        *o += s;
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, n, 8 * n, started);
    out
}

/// Broadcast-add a 1xC row vector to every row of `a`.
pub fn add_row(a: &Matrix, row: &Matrix) -> Matrix {
    assert_eq!(row.rows(), 1, "add_row: rhs must be a row vector");
    assert_eq!(row.cols(), a.cols(), "add_row: width mismatch");
    let started = Instant::now();
    let mut out = a.clone();
    let r = row.as_slice();
    let cols = a.cols();
    for out_row in out.as_mut_slice().chunks_mut(cols) {
        for (o, &x) in out_row.iter_mut().zip(r) {
            *o += x;
        }
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, n, 12 * n, started);
    out
}

/// Logistic sigmoid `1 / (1 + e^-x)` applied elementwise.
pub fn sigmoid(a: &Matrix) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        *o = crate::scalar::sigmoid(*o);
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Sigmoid, 10 * n, 8 * n, started);
    out
}

/// Hyperbolic tangent applied elementwise.
pub fn tanh(a: &Matrix) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        *o = crate::scalar::tanh(*o);
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Tanh, 10 * n, 8 * n, started);
    out
}

/// ReLU `max(0, x)` applied elementwise.
pub fn relu(a: &Matrix) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        if *o < 0.0 {
            *o = 0.0;
        }
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Other, n, 8 * n, started);
    out
}

/// Numerically-stable softplus `log(1 + e^x)`, the paper's link function for
/// the Gaussian scale parameter sigma.
pub fn softplus(a: &Matrix) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        // For large x, log(1+e^x) = x + log(1+e^-x) avoids overflow.
        *o = if *o > 20.0 { *o } else { (1.0 + o.exp()).ln() };
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Other, 12 * n, 8 * n, started);
    out
}

/// Elementwise natural exponential.
pub fn exp(a: &Matrix) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        *o = o.exp();
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Other, 10 * n, 8 * n, started);
    out
}

/// Apply an arbitrary function elementwise (counted as `Other`).
pub fn map(a: &Matrix, f: impl Fn(f32) -> f32) -> Matrix {
    let started = Instant::now();
    let mut out = a.clone();
    for o in out.as_mut_slice() {
        *o = f(*o);
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Other, n, 8 * n, started);
    out
}

/// Column-wise sum, producing a 1xC row vector. (Backward pass of a
/// broadcast bias-add.)
pub fn sum_rows(a: &Matrix) -> Matrix {
    let started = Instant::now();
    let cols = a.cols();
    let mut out = Matrix::zeros(1, cols);
    for row in a.as_slice().chunks(cols) {
        for (o, &x) in out.as_mut_slice().iter_mut().zip(row) {
            *o += x;
        }
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, n, 8 * n, started);
    out
}

/// Row-wise softmax; each row sums to one. Used by the Transformer's
/// attention weights.
pub fn softmax_rows(a: &Matrix) -> Matrix {
    let started = Instant::now();
    let cols = a.cols();
    let mut out = a.clone();
    for row in out.as_mut_slice().chunks_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Other, 15 * n, 8 * n, started);
    out
}

// ---------------------------------------------------------------------------
// In-place / fused kernels for the tape-free inference runtime.
//
// Each kernel below applies the *same elementwise formula in the same order*
// as its allocating counterpart above, so a serving path built from them is
// bit-identical to the training-graph forward pass (Rust never contracts
// separate mul/add expressions into FMAs, so `(f*c) + (i*g)` written as three
// ops rounds exactly like the tape's mul/mul/add sequence). Counter
// accounting skips the clone traffic the allocating versions pay: reads +
// writes only.
// ---------------------------------------------------------------------------

/// In-place elementwise addition: `a += b`.
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_same_shape(a, b, "add_assign");
    let started = Instant::now();
    for (o, &x) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o += x;
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, n, 12 * n, started);
}

/// In-place broadcast-add of a 1xC row vector to every row of `a`.
pub fn add_row_assign(a: &mut Matrix, row: &Matrix) {
    assert_eq!(row.rows(), 1, "add_row_assign: rhs must be a row vector");
    assert_eq!(row.cols(), a.cols(), "add_row_assign: width mismatch");
    let started = Instant::now();
    let r = row.as_slice();
    let cols = a.cols();
    for out_row in a.as_mut_slice().chunks_mut(cols) {
        for (o, &x) in out_row.iter_mut().zip(r) {
            *o += x;
        }
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, n, 12 * n, started);
}

/// In-place scalar addition: `a += s` elementwise.
pub fn add_scalar_assign(a: &mut Matrix, s: f32) {
    let started = Instant::now();
    for o in a.as_mut_slice() {
        *o += s;
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, n, 8 * n, started);
}

/// In-place logistic sigmoid, same formula as [`sigmoid`].
pub fn sigmoid_assign(a: &mut Matrix) {
    let started = Instant::now();
    for o in a.as_mut_slice() {
        *o = crate::scalar::sigmoid(*o);
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Sigmoid, 10 * n, 8 * n, started);
}

/// In-place hyperbolic tangent.
pub fn tanh_assign(a: &mut Matrix) {
    let started = Instant::now();
    for o in a.as_mut_slice() {
        *o = crate::scalar::tanh(*o);
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Tanh, 10 * n, 8 * n, started);
}

/// In-place ReLU.
pub fn relu_assign(a: &mut Matrix) {
    let started = Instant::now();
    for o in a.as_mut_slice() {
        if *o < 0.0 {
            *o = 0.0;
        }
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Other, n, 8 * n, started);
}

/// In-place numerically-stable softplus, same formula as [`softplus`].
pub fn softplus_assign(a: &mut Matrix) {
    let started = Instant::now();
    for o in a.as_mut_slice() {
        *o = if *o > 20.0 { *o } else { (1.0 + o.exp()).ln() };
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Other, 12 * n, 8 * n, started);
}

/// Fused LSTM gate activation, in place on a pre-activation `gates` buffer of
/// shape `(batch, 4*hidden)` laid out `[i f g o]`: sigmoid on the `i`/`f`/`o`
/// blocks, tanh on the `g` block. One pass over the buffer replaces four
/// slice-copy + activation kernels on the tape path; the time is attributed
/// per activation class via [`counters::record_timed_split`] so the Fig 12
/// operator breakdown stays honest.
pub fn lstm_gates_activate(gates: &mut Matrix, hidden: usize) {
    assert_eq!(
        gates.cols(),
        4 * hidden,
        "lstm_gates_activate: expected 4*hidden={} cols, got {}",
        4 * hidden,
        gates.cols()
    );
    let started = Instant::now();
    let cols = gates.cols();
    for row in gates.as_mut_slice().chunks_mut(cols) {
        let (ifg, o_blk) = row.split_at_mut(3 * hidden);
        let (if_blk, g_blk) = ifg.split_at_mut(2 * hidden);
        for v in if_blk {
            *v = crate::scalar::sigmoid(*v);
        }
        for v in g_blk {
            *v = crate::scalar::tanh(*v);
        }
        for v in o_blk {
            *v = crate::scalar::sigmoid(*v);
        }
    }
    let b = gates.rows() as u64;
    let h = hidden as u64;
    counters::record_timed_split_for(
        OpClass::LstmGatesFused,
        &[
            (Kernel::Sigmoid, 10 * 3 * b * h, 8 * 3 * b * h),
            (Kernel::Tanh, 10 * b * h, 8 * b * h),
        ],
        started,
    );
}

/// Fully fused LSTM gate pre-activation + activation, in place on the
/// `x·W_ih` product: `gates = act((gates + gh) + bias_row)` in a single pass,
/// where `act` is sigmoid on the `i`/`f`/`o` blocks and tanh on `g` (layout
/// `[i f g o]`, width `4*hidden`). Replaces the tape path's three separate
/// kernels (elementwise add, broadcast row add, activations) — elementwise
/// ops have no cross-element interaction, so collapsing the passes cannot
/// change any element's value: each still computes `act((ih + hh) + b)` with
/// the same scalar op order, and parity with the training graph holds
/// bit-for-bit. Saves two full read+write sweeps of the `(batch, 4*hidden)`
/// buffer per LSTM step on the serving path.
pub fn lstm_gates_fused(gates: &mut Matrix, gh: &Matrix, bias: &Matrix, hidden: usize) {
    assert_eq!(
        gates.shape(),
        gh.shape(),
        "lstm_gates_fused: gates/gh shape mismatch"
    );
    assert_eq!(
        gates.cols(),
        4 * hidden,
        "lstm_gates_fused: expected 4*hidden={} cols, got {}",
        4 * hidden,
        gates.cols()
    );
    assert_eq!(
        bias.shape(),
        (1, 4 * hidden),
        "lstm_gates_fused: bias shape {:?}",
        bias.shape()
    );
    let started = Instant::now();
    let cols = gates.cols();
    let b = bias.as_slice();
    let (b_if, b_rest) = b.split_at(2 * hidden);
    let (b_g, b_o) = b_rest.split_at(hidden);
    for (row, gh_row) in gates
        .as_mut_slice()
        .chunks_mut(cols)
        .zip(gh.as_slice().chunks(cols))
    {
        let (ifg, o_blk) = row.split_at_mut(3 * hidden);
        let (if_blk, g_blk) = ifg.split_at_mut(2 * hidden);
        let (gh_ifg, gh_o) = gh_row.split_at(3 * hidden);
        let (gh_if, gh_g) = gh_ifg.split_at(2 * hidden);
        for ((v, &hh), &bv) in if_blk.iter_mut().zip(gh_if).zip(b_if) {
            *v = crate::scalar::sigmoid((*v + hh) + bv);
        }
        for ((v, &hh), &bv) in g_blk.iter_mut().zip(gh_g).zip(b_g) {
            *v = crate::scalar::tanh((*v + hh) + bv);
        }
        for ((v, &hh), &bv) in o_blk.iter_mut().zip(gh_o).zip(b_o) {
            *v = crate::scalar::sigmoid((*v + hh) + bv);
        }
    }
    let bt = gates.rows() as u64;
    let h = hidden as u64;
    let n = bt * 4 * h;
    counters::record_timed_split_for(
        OpClass::LstmGatesFused,
        &[
            (Kernel::Add, 2 * n, 12 * n),
            (Kernel::Sigmoid, 10 * 3 * bt * h, 8 * 3 * bt * h),
            (Kernel::Tanh, 10 * bt * h, 8 * bt * h),
        ],
        started,
    );
}

/// Fused LSTM state update from *activated* gates (see
/// [`lstm_gates_activate`]): `c = f⊙c + i⊙g` then `h = o⊙tanh(c)`, written
/// into caller-owned `c` / `h` buffers of shape `(batch, hidden)`. The
/// per-element expressions are evaluated in the tape's op order (mul, mul,
/// add, tanh, mul) so results are bit-identical to the training graph.
pub fn lstm_state_update(gates: &Matrix, c: &mut Matrix, h: &mut Matrix, hidden: usize) {
    assert_eq!(gates.cols(), 4 * hidden, "lstm_state_update: gate width");
    assert_eq!(
        c.shape(),
        (gates.rows(), hidden),
        "lstm_state_update: c shape {:?}",
        c.shape()
    );
    assert_eq!(
        h.shape(),
        (gates.rows(), hidden),
        "lstm_state_update: h shape {:?}",
        h.shape()
    );
    let started = Instant::now();
    let gcols = gates.cols();
    for (row_idx, g_row) in gates.as_slice().chunks(gcols).enumerate() {
        let c_row = &mut c.as_mut_slice()[row_idx * hidden..(row_idx + 1) * hidden];
        let h_row = &mut h.as_mut_slice()[row_idx * hidden..(row_idx + 1) * hidden];
        // Split the gate row into its four blocks up front: zipped slice
        // iterators carry no bounds checks, so the loop auto-vectorizes
        // (indexed `g_row[j + k*hidden]` accesses defeat that).
        let (i_blk, rest) = g_row.split_at(hidden);
        let (f_blk, rest) = rest.split_at(hidden);
        let (g_blk, o_blk) = rest.split_at(hidden);
        for ((c_v, h_v), (((&i_v, &f_v), &g_v), &o_v)) in c_row
            .iter_mut()
            .zip(h_row.iter_mut())
            .zip(i_blk.iter().zip(f_blk).zip(g_blk).zip(o_blk))
        {
            let c_new = (f_v * *c_v) + (i_v * g_v);
            *c_v = c_new;
            *h_v = o_v * crate::scalar::tanh(c_new);
        }
    }
    let n = (gates.rows() * hidden) as u64;
    counters::record_timed_split_for(
        OpClass::LstmStateUpdate,
        &[
            (Kernel::Mul, 3 * n, 3 * 12 * n),
            (Kernel::Add, n, 12 * n),
            (Kernel::Tanh, 10 * n, 8 * n),
        ],
        started,
    );
}

/// In-place `a += s * b` (AXPY). The workhorse of the Adam optimizer update.
pub fn axpy(a: &mut Matrix, s: f32, b: &Matrix) {
    assert_same_shape(a, b, "axpy");
    let started = Instant::now();
    for (o, &x) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o += s * x;
    }
    let n = a.len() as u64;
    counters::record_timed(Kernel::Add, 2 * n, 12 * n, started);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_mul() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(add(&a, &b).as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!(sub(&b, &a).as_slice(), &[9.0, 18.0, 27.0, 36.0]);
        assert_eq!(mul(&a, &b).as_slice(), &[10.0, 40.0, 90.0, 160.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        assert_eq!(scale(&a, 2.0).as_slice(), &[2.0, -4.0, 6.0]);
        assert_eq!(add_scalar(&a, 1.0).as_slice(), &[2.0, -1.0, 4.0]);
    }

    #[test]
    fn broadcast_row_add() {
        let a = Matrix::from_fn(3, 2, |_, _| 1.0);
        let r = Matrix::row_vector(&[10.0, 20.0]);
        let out = add_row(&a, &r);
        for i in 0..3 {
            assert_eq!(out.row(i), &[11.0, 21.0]);
        }
    }

    #[test]
    fn sigmoid_known_values() {
        let a = Matrix::from_vec(1, 3, vec![0.0, 100.0, -100.0]);
        let s = sigmoid(&a);
        assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((s.get(0, 1) - 1.0).abs() < 1e-6);
        assert!(s.get(0, 2).abs() < 1e-6);
    }

    #[test]
    fn tanh_and_relu() {
        let a = Matrix::from_vec(1, 3, vec![0.0, 1.0, -1.0]);
        let t = tanh(&a);
        assert_eq!(t.get(0, 0), 0.0);
        assert!((t.get(0, 1) - 0.761_594_2).abs() < 1e-5);
        let r = relu(&a);
        assert_eq!(r.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn softplus_stable_and_positive() {
        let a = Matrix::from_vec(1, 4, vec![-50.0, 0.0, 5.0, 500.0]);
        let s = softplus(&a);
        assert!(s.as_slice().iter().all(|&v| v >= 0.0 && v.is_finite()));
        assert!((s.get(0, 1) - 2.0f32.ln()).abs() < 1e-6);
        assert!((s.get(0, 3) - 500.0).abs() < 1e-3);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = softmax_rows(&a);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        // Monotone: bigger logit, bigger weight.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn sum_rows_matches_manual() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(sum_rows(&a).as_slice(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn axpy_in_place() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let b = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        axpy(&mut a, 0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = add(&Matrix::zeros(2, 2), &Matrix::zeros(2, 3));
    }

    fn ramp(rows: usize, cols: usize, scale_by: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| ((r * cols + c) as f32 - 3.0) * scale_by)
    }

    #[test]
    fn in_place_ops_bit_match_allocating() {
        let a = ramp(3, 4, 0.37);
        let b = ramp(3, 4, -0.21);
        let row = Matrix::row_vector(&[0.5, -1.5, 2.5, 0.25]);

        let mut x = a.clone();
        add_assign(&mut x, &b);
        assert_eq!(&x, &add(&a, &b));

        let mut x = a.clone();
        add_row_assign(&mut x, &row);
        assert_eq!(&x, &add_row(&a, &row));

        let mut x = a.clone();
        add_scalar_assign(&mut x, 1e-3);
        assert_eq!(&x, &add_scalar(&a, 1e-3));

        let mut x = a.clone();
        relu_assign(&mut x);
        assert_eq!(&x, &relu(&a));

        let mut x = a.clone();
        sigmoid_assign(&mut x);
        assert_eq!(&x, &sigmoid(&a));

        let mut x = a.clone();
        tanh_assign(&mut x);
        assert_eq!(&x, &tanh(&a));

        let mut x = a.clone();
        softplus_assign(&mut x);
        assert_eq!(&x, &softplus(&a));
    }

    #[test]
    fn fused_lstm_gates_match_slice_activation_path() {
        let hidden = 5;
        let gates = ramp(3, 4 * hidden, 0.11);
        // The tape path: slice each block, activate, hstack back together.
        let i = sigmoid(&gates.slice_cols(0, hidden));
        let f = sigmoid(&gates.slice_cols(hidden, 2 * hidden));
        let g = tanh(&gates.slice_cols(2 * hidden, 3 * hidden));
        let o = sigmoid(&gates.slice_cols(3 * hidden, 4 * hidden));
        let reference = Matrix::hstack(&[&i, &f, &g, &o]);

        let mut fused = gates.clone();
        lstm_gates_activate(&mut fused, hidden);
        for (x, y) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fused_lstm_state_update_matches_tape_op_order() {
        let hidden = 4;
        let mut gates = ramp(2, 4 * hidden, 0.23);
        lstm_gates_activate(&mut gates, hidden);
        let c0 = ramp(2, hidden, 0.61);

        // Tape op order: c = add(mul(f, c0), mul(i, g)); h = mul(o, tanh(c)).
        let i = gates.slice_cols(0, hidden);
        let f = gates.slice_cols(hidden, 2 * hidden);
        let g = gates.slice_cols(2 * hidden, 3 * hidden);
        let o = gates.slice_cols(3 * hidden, 4 * hidden);
        let c_ref = add(&mul(&f, &c0), &mul(&i, &g));
        let h_ref = mul(&o, &tanh(&c_ref));

        let mut c = c0.clone();
        let mut h = Matrix::zeros(2, hidden);
        lstm_state_update(&gates, &mut c, &mut h, hidden);
        for (x, y) in c.as_slice().iter().zip(c_ref.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in h.as_slice().iter().zip(h_ref.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "lstm_gates_activate")]
    fn fused_gate_width_mismatch_panics() {
        let mut gates = Matrix::zeros(2, 10);
        lstm_gates_activate(&mut gates, 4);
    }
}
