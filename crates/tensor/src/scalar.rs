//! Scalar transcendental primitives shared by every elementwise kernel.
//!
//! There is exactly one `sigmoid` and one `tanh` in the workspace — both the
//! training-graph ops and the tape-free inference runtime route through the
//! functions here, which is what makes backend parity a *bit* guarantee
//! rather than a tolerance: two paths that apply the same scalar function in
//! the same order cannot drift.
//!
//! The implementations are branch-free polynomial forms (Cephes-style `expf`
//! with Cody–Waite range reduction) instead of `libm` calls so that LLVM can
//! auto-vectorize the elementwise loops in [`crate::ops`]. On the serving
//! path the LSTM gate activations are ~35% of decode walltime with `libm`;
//! the vectorized forms cut that several-fold while staying within ~2 ulp of
//! the reference, and — because training uses the same scalars — parity
//! between the tape and tape-free backends is unaffected.

/// Natural exponential, branch-free.
///
/// Inputs are clamped to `[-87.3, 88.7]`; beyond that range the exact result
/// underflows to `0` / exceeds `f32::MAX` anyway, and the clamp keeps the
/// `2^n` exponent construction in range. Accuracy is ~2 ulp over the clamped
/// domain. `NaN` propagates.
#[inline(always)]
// The literals below are kept digit-for-digit as published (Cephes
// coefficients, exact Cody–Waite split) so they can be checked against the
// reference; clippy would truncate them to the shortest roundtripping form.
#[allow(clippy::excessive_precision)]
pub fn exp(x: f32) -> f32 {
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    // 1.5 * 2^23: adding then subtracting rounds to the nearest integer for
    // |t| < 2^22 without an explicit `round` call (which does not lower to a
    // single vector instruction on every target).
    const MAGIC: f32 = 12_582_912.0;
    // Cody–Waite split of ln 2: the high part is exact in f32, so
    // `x - n*LN2_HI` is exact and the low part restores the residual.
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;

    let x = x.clamp(-87.3, 88.7);
    let t = x * LOG2_E + MAGIC;
    let n = t - MAGIC;
    let r = (x - n * LN2_HI) - n * LN2_LO;

    // Degree-5 minimax polynomial for (e^r - 1 - r) / r^2 on [-ln2/2, ln2/2]
    // (coefficients from Cephes `expf`).
    let p = 1.987_569_15e-4;
    let p = p * r + 1.398_199_95e-3;
    let p = p * r + 8.333_451_9e-3;
    let p = p * r + 4.166_579_6e-2;
    let p = p * r + 1.666_666_55e-1;
    let p = p * r + 5.000_000_1e-1;
    let z = (r * r) * p + r + 1.0;

    // Scale by 2^n through the exponent bits. The integer n is still sitting
    // in the low mantissa bits of `t` (= MAGIC + n with a fixed exponent), so
    // it can be moved into exponent position with pure integer ops on the bit
    // pattern: bits(t) = E | (0x40_0000 + n), and adding `127 - 0x40_0000`
    // then shifting left by 23 yields `(n + 127) << 23` — E's contribution
    // overflows out of the word entirely. This avoids a float→int cast, whose
    // saturating semantics (`fptosi.sat`) have no vector form on x86 and
    // would force LLVM to scalarize the whole loop. n ∈ [-126, 128] after the
    // clamp, so the construction never produces a subnormal exponent.
    let scale = f32::from_bits(t.to_bits().wrapping_add(0xFFC0_007F) << 23);
    z * scale
}

/// Logistic sigmoid `1 / (1 + e^-x)`.
#[inline(always)]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + exp(-x))
}

/// Hyperbolic tangent via `tanh x = sign(x) · (1 - 2t/(1+t))`, `t = e^-2|x|`.
///
/// The form only ever exponentiates non-positive arguments, so it cannot
/// overflow; saturation to ±1 falls out of `t → 0`.
#[inline(always)]
pub fn tanh(x: f32) -> f32 {
    let t = exp(-2.0 * x.abs());
    let m = 1.0 - 2.0 * (t / (1.0 + t));
    m.copysign(x)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exp_close_to_libm() {
        let mut worst = 0.0f32;
        let mut x = -87.0f32;
        while x < 88.0 {
            let got = super::exp(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x += 0.037;
        }
        assert!(worst < 1e-6, "worst relative error {worst}");
    }

    #[test]
    fn exp_edges() {
        // The input clamp floors deep-underflow results at exp(-87.3) — tiny
        // but not zero; downstream sigmoid/tanh saturate exactly regardless.
        assert!(super::exp(-1000.0) < 1.3e-38);
        assert!(super::exp(1000.0) >= f32::MAX);
        assert!(super::exp(f32::NAN).is_nan());
        assert_eq!(super::exp(0.0), 1.0);
    }

    #[test]
    fn sigmoid_close_to_reference() {
        let mut x = -30.0f32;
        while x < 30.0 {
            let got = super::sigmoid(x);
            let want = (1.0f64 / (1.0 + (-(x as f64)).exp())) as f32;
            assert!(
                (got - want).abs() < 1e-6,
                "sigmoid({x}) = {got}, want {want}"
            );
            x += 0.013;
        }
        assert_eq!(super::sigmoid(-100.0), 0.0);
        assert_eq!(super::sigmoid(100.0), 1.0);
    }

    #[test]
    fn tanh_close_to_reference() {
        let mut x = -20.0f32;
        while x < 20.0 {
            let got = super::tanh(x);
            let want = (x as f64).tanh() as f32;
            assert!((got - want).abs() < 1e-6, "tanh({x}) = {got}, want {want}");
            x += 0.011;
        }
        assert_eq!(super::tanh(0.0), 0.0);
        assert_eq!(super::tanh(50.0), 1.0);
        assert_eq!(super::tanh(-50.0), -1.0);
        // Sign of zero is preserved (matters for copysign-based forms).
        assert!(super::tanh(-0.0).is_sign_negative());
    }
}
