//! Lock-step batched decode kernels: FMA GEMM + fast-activation LSTM.
//!
//! The kernels in [`crate::matmul`] and [`crate::ops`] are bound by the
//! bitwise tape-parity contract: separate mul/add (never FMA), zero-skip,
//! and the shared libm-backed `sigmoid`/`tanh`. That contract caps the GEMM
//! at the non-FMA vector roofline and spends over a fifth of decode time in
//! scalar `exp` calls. The batched decode backend trades that contract for
//! a *tolerance-pinned* one (see `DESIGN.md` §13): results may differ from
//! the tape in the last few ulps per step, but must be **bit-deterministic
//! for a fixed batch layout** and — crucially — **row-independent**: every
//! output row is a pure function of its own input row and the weights, with
//! a fixed accumulation order, so rows decode to identical bits no matter
//! which other rows share the batch. Row independence is what lets the
//! serving layer fold coalesced requests into one GEMM without perturbing
//! any response.
//!
//! Three levers over the reference kernels:
//! - [`matmul_fma_into`]: ascending-`k` accumulation contracted to
//!   `f32::mul_add` (compiles to `vfmadd` under `-C target-cpu=native`),
//!   no zero-skip branch — double the per-cycle flops of mul+add.
//! - [`fast_tanh`] / [`fast_sigmoid`]: Padé-style rational approximation
//!   (the classic 13/6-degree float tanh) that auto-vectorizes, replacing
//!   the scalar libm `exp` in the gate/state kernels. Max error vs libm
//!   tanh is a few ulps on the clamped domain.
//! - [`dual_affine_into`]: the Gaussian head's mu/sigma projections fused
//!   into one pass over the hidden block (two interleaved FMA dot products
//!   per row) instead of two `n == 1` GEMVs.
//!
//! GEMM time is attributed to the `matmul_batched` operator class; the
//! fused gate/state kernels report under the same classes as their
//! reference counterparts so the operator-breakdown table stays comparable
//! across backends.

use crate::counters::{self, Kernel};
use crate::matrix::Matrix;
use rpf_obs::ops::OpClass;
use std::time::Instant;

/// Register-tile width, matching [`crate::matmul`]'s slab size. Measured
/// best on this kernel shape (`n` = 4·hidden = 160, small `k`): narrower
/// 16-wide slabs halve the work amortizing each A-element broadcast and
/// lose ~25% throughput despite the lower register pressure.
const TILE: usize = 32;

/// One `TILE`-wide FMA slab update for a single row: `acc = a_rk ⊛ b + acc`.
#[inline(always)]
fn slab_fma(acc: &mut [f32; TILE], a_rk: f32, b_slab: &[f32]) {
    for (c_v, &b_v) in acc.iter_mut().zip(b_slab) {
        *c_v = a_rk.mul_add(b_v, *c_v);
    }
}

/// Ragged-tail columns `j0..n` of one output row: per-element FMA dot in
/// ascending `k`, same element order as the tiled body. With `ACC` the
/// existing output element seeds the accumulation (`c += a·b`).
#[inline(always)]
fn tail_fma<const ACC: bool>(
    a_row: &[f32],
    b_data: &[f32],
    c_tail: &mut [f32],
    j0: usize,
    n: usize,
) {
    for (jj, c_v) in c_tail.iter_mut().enumerate() {
        let j = j0 + jj;
        let mut acc = if ACC { *c_v } else { 0.0f32 };
        for (kk, &a_ik) in a_row.iter().enumerate() {
            acc = a_ik.mul_add(b_data[kk * n + j], acc);
        }
        *c_v = acc;
    }
}

/// Seed a register slab: the existing output values when accumulating,
/// zeros when overwriting.
#[inline(always)]
fn seed_slab<const ACC: bool>(c_row: &[f32], j0: usize) -> [f32; TILE] {
    let mut acc = [0.0f32; TILE];
    if ACC {
        acc.copy_from_slice(&c_row[j0..j0 + TILE]);
    }
    acc
}

/// Four output rows at once in `TILE`-wide register slabs, FMA-contracted
/// and branch-free: unlike [`crate::matmul`]'s micro kernel there is no
/// dense/sparse split — a zero in A contributes an FMA with a zero
/// multiplicand, which keeps each row's bit pattern a pure function of its
/// own values (no data-dependent control flow).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn fma_rows4<const ACC: bool>(
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    b_data: &[f32],
    c0: &mut [f32],
    c1: &mut [f32],
    c2: &mut [f32],
    c3: &mut [f32],
    k: usize,
    n: usize,
) {
    let mut j0 = 0;
    while j0 + TILE <= n {
        let mut acc0 = seed_slab::<ACC>(c0, j0);
        let mut acc1 = seed_slab::<ACC>(c1, j0);
        let mut acc2 = seed_slab::<ACC>(c2, j0);
        let mut acc3 = seed_slab::<ACC>(c3, j0);
        for kk in 0..k {
            let b_slab = &b_data[kk * n + j0..kk * n + j0 + TILE];
            slab_fma(&mut acc0, a0[kk], b_slab);
            slab_fma(&mut acc1, a1[kk], b_slab);
            slab_fma(&mut acc2, a2[kk], b_slab);
            slab_fma(&mut acc3, a3[kk], b_slab);
        }
        c0[j0..j0 + TILE].copy_from_slice(&acc0);
        c1[j0..j0 + TILE].copy_from_slice(&acc1);
        c2[j0..j0 + TILE].copy_from_slice(&acc2);
        c3[j0..j0 + TILE].copy_from_slice(&acc3);
        j0 += TILE;
    }
    if j0 < n {
        tail_fma::<ACC>(a0, b_data, &mut c0[j0..], j0, n);
        tail_fma::<ACC>(a1, b_data, &mut c1[j0..], j0, n);
        tail_fma::<ACC>(a2, b_data, &mut c2[j0..], j0, n);
        tail_fma::<ACC>(a3, b_data, &mut c3[j0..], j0, n);
    }
}

/// Single-row variant of [`fma_rows4`] for the 1–3 leftover rows.
#[inline(always)]
fn fma_rows1<const ACC: bool>(
    a_row: &[f32],
    b_data: &[f32],
    c_row: &mut [f32],
    k: usize,
    n: usize,
) {
    let mut j0 = 0;
    while j0 + TILE <= n {
        let mut acc = seed_slab::<ACC>(c_row, j0);
        for kk in 0..k {
            let b_slab = &b_data[kk * n + j0..kk * n + j0 + TILE];
            slab_fma(&mut acc, a_row[kk], b_slab);
        }
        c_row[j0..j0 + TILE].copy_from_slice(&acc);
        j0 += TILE;
    }
    if j0 < n {
        tail_fma::<ACC>(a_row, b_data, &mut c_row[j0..], j0, n);
    }
}

/// Four output rows of the *paired* product `C = A1·B1 + A2·B2`: both
/// contractions accumulate into the same register slabs before the single
/// store, so the output buffer is written exactly once — the fused LSTM
/// pre-activation (`x·Wˣ + h·Wʰ`) never round-trips through memory between
/// the two products. Accumulation order per element is fixed: all of `k1`
/// ascending, then all of `k2` ascending.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn fma_rows4_pair(
    a1: [&[f32]; 4],
    b1_data: &[f32],
    k1: usize,
    a2: [&[f32]; 4],
    b2_data: &[f32],
    k2: usize,
    c_rows: [&mut [f32]; 4],
    n: usize,
) {
    let [c0, c1, c2, c3] = c_rows;
    let mut j0 = 0;
    while j0 + TILE <= n {
        let mut acc0 = [0.0f32; TILE];
        let mut acc1 = [0.0f32; TILE];
        let mut acc2 = [0.0f32; TILE];
        let mut acc3 = [0.0f32; TILE];
        for kk in 0..k1 {
            let b_slab = &b1_data[kk * n + j0..kk * n + j0 + TILE];
            slab_fma(&mut acc0, a1[0][kk], b_slab);
            slab_fma(&mut acc1, a1[1][kk], b_slab);
            slab_fma(&mut acc2, a1[2][kk], b_slab);
            slab_fma(&mut acc3, a1[3][kk], b_slab);
        }
        for kk in 0..k2 {
            let b_slab = &b2_data[kk * n + j0..kk * n + j0 + TILE];
            slab_fma(&mut acc0, a2[0][kk], b_slab);
            slab_fma(&mut acc1, a2[1][kk], b_slab);
            slab_fma(&mut acc2, a2[2][kk], b_slab);
            slab_fma(&mut acc3, a2[3][kk], b_slab);
        }
        c0[j0..j0 + TILE].copy_from_slice(&acc0);
        c1[j0..j0 + TILE].copy_from_slice(&acc1);
        c2[j0..j0 + TILE].copy_from_slice(&acc2);
        c3[j0..j0 + TILE].copy_from_slice(&acc3);
        j0 += TILE;
    }
    if j0 < n {
        for (i, c_row) in [c0, c1, c2, c3].into_iter().enumerate() {
            tail_fma::<false>(a1[i], b1_data, &mut c_row[j0..], j0, n);
            tail_fma::<true>(a2[i], b2_data, &mut c_row[j0..], j0, n);
        }
    }
}

/// Single-row variant of [`fma_rows4_pair`] for the 1–3 leftover rows.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn fma_rows1_pair(
    a1_row: &[f32],
    b1_data: &[f32],
    k1: usize,
    a2_row: &[f32],
    b2_data: &[f32],
    k2: usize,
    c_row: &mut [f32],
    n: usize,
) {
    let mut j0 = 0;
    while j0 + TILE <= n {
        let mut acc = [0.0f32; TILE];
        for kk in 0..k1 {
            let b_slab = &b1_data[kk * n + j0..kk * n + j0 + TILE];
            slab_fma(&mut acc, a1_row[kk], b_slab);
        }
        for kk in 0..k2 {
            let b_slab = &b2_data[kk * n + j0..kk * n + j0 + TILE];
            slab_fma(&mut acc, a2_row[kk], b_slab);
        }
        c_row[j0..j0 + TILE].copy_from_slice(&acc);
        j0 += TILE;
    }
    if j0 < n {
        tail_fma::<false>(a1_row, b1_data, &mut c_row[j0..], j0, n);
        tail_fma::<true>(a2_row, b2_data, &mut c_row[j0..], j0, n);
    }
}

/// Shared body of [`matmul_fma_into`] / [`matmul_fma_acc_into`].
#[inline(always)]
fn fma_gemm_body<const ACC: bool>(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let mut li = 0;
    let mut rest = out.as_mut_slice();
    while li + 4 <= m {
        let (quad, r) = rest.split_at_mut(4 * n);
        rest = r;
        let (c0, q) = quad.split_at_mut(n);
        let (c1, q) = q.split_at_mut(n);
        let (c2, c3) = q.split_at_mut(n);
        fma_rows4::<ACC>(
            &a_data[li * k..(li + 1) * k],
            &a_data[(li + 1) * k..(li + 2) * k],
            &a_data[(li + 2) * k..(li + 3) * k],
            &a_data[(li + 3) * k..(li + 4) * k],
            b_data,
            c0,
            c1,
            c2,
            c3,
            k,
            n,
        );
        li += 4;
    }
    while li < m {
        let (c_row, r) = rest.split_at_mut(n);
        rest = r;
        fma_rows1::<ACC>(&a_data[li * k..(li + 1) * k], b_data, c_row, k, n);
        li += 1;
    }
}

/// `out = A * B` with FMA contraction into a caller-owned buffer.
///
/// Contract: each output element is `Σ_k fma(a[i,k], b[k,j], ·)` over
/// ascending `k` with no zero-skip and no cross-row coupling — row `i` of
/// the output is bit-determined by row `i` of A and all of B, independent
/// of `m` and of the other rows. Not bit-identical to [`crate::matmul`]
/// (the rounding of a fused multiply-add differs from mul-then-add), but
/// within a couple of ulps per element; the batched decode parity suite
/// pins the end-to-end tolerance. Panics on inner-dimension mismatch.
pub fn matmul_fma_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_fma_into: inner dimensions differ ({:?} x {:?})",
        a.shape(),
        b.shape()
    );
    let started = Instant::now();
    let (m, k) = a.shape();
    let n = b.cols();
    // Every element is stored wholesale from a register slab or the tail
    // dot, so stale contents never leak through.
    out.reset_for_overwrite(m, n);
    fma_gemm_body::<false>(a, b, out);
    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    let bytes = 4 * ((m * k) as u64 + (k * n) as u64 + (m * n) as u64);
    counters::record_timed_for(
        OpClass::MatmulBatched,
        Kernel::MatMul,
        flops,
        bytes,
        started,
    );
}

/// `out = A1·B1 + A2·B2` in one register-tiled pass: the second product
/// accumulates into the same slabs as the first, so `out` is written
/// exactly once. This is the LSTM pre-activation kernel — `gates =
/// x·Wˣ + h·Wʰ` — where the two-call formulation (`matmul_fma_into` +
/// [`matmul_fma_acc_into`]) would stream the whole `[batch × 4·hidden]`
/// gate block through memory three times instead of once.
///
/// Per output element the accumulation order is fixed (all of `B1`'s inner
/// dimension ascending, then all of `B2`'s), each row depends only on its
/// own rows of A1/A2 and the weights, and there is no data-dependent
/// branching — the row-independence and fixed-layout bit-determinism
/// contracts hold as for the single-product kernels. Panics on any
/// dimension mismatch.
pub fn matmul_fma2_into(a1: &Matrix, b1: &Matrix, a2: &Matrix, b2: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a1.cols(),
        b1.rows(),
        "matmul_fma2_into: first inner dimensions differ ({:?} x {:?})",
        a1.shape(),
        b1.shape()
    );
    assert_eq!(
        a2.cols(),
        b2.rows(),
        "matmul_fma2_into: second inner dimensions differ ({:?} x {:?})",
        a2.shape(),
        b2.shape()
    );
    assert_eq!(
        a1.rows(),
        a2.rows(),
        "matmul_fma2_into: row counts differ ({:?} vs {:?})",
        a1.shape(),
        a2.shape()
    );
    assert_eq!(
        b1.cols(),
        b2.cols(),
        "matmul_fma2_into: output widths differ ({:?} vs {:?})",
        b1.shape(),
        b2.shape()
    );
    let started = Instant::now();
    let m = a1.rows();
    let (k1, k2) = (a1.cols(), a2.cols());
    let n = b1.cols();
    out.reset_for_overwrite(m, n);
    {
        let a1_data = a1.as_slice();
        let a2_data = a2.as_slice();
        let b1_data = b1.as_slice();
        let b2_data = b2.as_slice();
        let mut li = 0;
        let mut rest = out.as_mut_slice();
        let row1 = |r: usize| &a1_data[r * k1..(r + 1) * k1];
        let row2 = |r: usize| &a2_data[r * k2..(r + 1) * k2];
        while li + 4 <= m {
            let (quad, r) = rest.split_at_mut(4 * n);
            rest = r;
            let (c0, q) = quad.split_at_mut(n);
            let (c1, q) = q.split_at_mut(n);
            let (c2, c3) = q.split_at_mut(n);
            fma_rows4_pair(
                [row1(li), row1(li + 1), row1(li + 2), row1(li + 3)],
                b1_data,
                k1,
                [row2(li), row2(li + 1), row2(li + 2), row2(li + 3)],
                b2_data,
                k2,
                [c0, c1, c2, c3],
                n,
            );
            li += 4;
        }
        while li < m {
            let (c_row, r) = rest.split_at_mut(n);
            rest = r;
            fma_rows1_pair(row1(li), b1_data, k1, row2(li), b2_data, k2, c_row, n);
            li += 1;
        }
    }
    let flops = 2 * (m as u64) * (n as u64) * ((k1 + k2) as u64);
    let bytes = 4 * ((m * (k1 + k2)) as u64 + ((k1 + k2) * n) as u64 + (m * n) as u64);
    counters::record_timed_for(
        OpClass::MatmulBatched,
        Kernel::MatMul,
        flops,
        bytes,
        started,
    );
}

/// `out += A * B`, FMA-contracted like [`matmul_fma_into`] but seeding each
/// accumulator slab from the existing output element instead of zero. The
/// LSTM step uses this to fold the recurrent `h·Wʰ` product straight into
/// the `x·Wˣ` pre-activations, skipping a whole `[batch × 4·hidden]`
/// scratch write + re-read per layer-step — at decode batch sizes that
/// buffer is megabytes of pure traffic.
///
/// Row independence and fixed-layout bit-determinism hold exactly as for
/// the overwriting kernel: row `i` of the result depends only on row `i`
/// of A, row `i` of the prior `out`, and B, accumulated in a fixed order.
/// Panics on inner or output dimension mismatch.
pub fn matmul_fma_acc_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_fma_acc_into: inner dimensions differ ({:?} x {:?})",
        a.shape(),
        b.shape()
    );
    assert_eq!(
        out.shape(),
        (a.rows(), b.cols()),
        "matmul_fma_acc_into: output shape {:?} != {:?}",
        out.shape(),
        (a.rows(), b.cols())
    );
    let started = Instant::now();
    let (m, k) = a.shape();
    let n = b.cols();
    fma_gemm_body::<true>(a, b, out);
    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    let bytes = 4 * ((m * k) as u64 + (k * n) as u64 + 2 * (m * n) as u64);
    counters::record_timed_for(
        OpClass::MatmulBatched,
        Kernel::MatMul,
        flops,
        bytes,
        started,
    );
}

/// Rational-polynomial `tanh` (the classic 13/6-degree float fit, clamped
/// to ±9 where `tanh` saturates in f32): branch-free, so it vectorizes in
/// a loop where libm's `tanh` stays scalar. Max error vs libm is a few
/// ulps over the full domain.
#[inline(always)]
pub fn fast_tanh(x: f32) -> f32 {
    const A1: f32 = 4.893_524_6e-3;
    const A3: f32 = 6.372_619_3e-4;
    const A5: f32 = 1.485_722_3e-5;
    const A7: f32 = 5.122_297_1e-8;
    const A9: f32 = -8.604_672e-11;
    const A11: f32 = 2.000_188e-13;
    const A13: f32 = -2.760_768_5e-16;
    const B0: f32 = 4.893_525e-3;
    const B2: f32 = 2.268_434_6e-3;
    const B4: f32 = 1.185_347_1e-4;
    const B6: f32 = 1.198_258_4e-6;
    let x = x.clamp(-9.0, 9.0);
    let x2 = x * x;
    let mut p = x2.mul_add(A13, A11);
    p = x2.mul_add(p, A9);
    p = x2.mul_add(p, A7);
    p = x2.mul_add(p, A5);
    p = x2.mul_add(p, A3);
    p = x2.mul_add(p, A1);
    let p = x * p;
    let mut q = x2.mul_add(B6, B4);
    q = x2.mul_add(q, B2);
    q = x2.mul_add(q, B0);
    p / q
}

/// Logistic sigmoid via [`fast_tanh`]: `σ(x) = ½·tanh(x/2) + ½`. Inherits
/// the vectorizability and the few-ulp error bound.
#[inline(always)]
pub fn fast_sigmoid(x: f32) -> f32 {
    fast_tanh(0.5 * x).mul_add(0.5, 0.5)
}

/// One gate row `[i f g o]` activated in place: `v = act(v + bias)` with
/// sigmoid on the `i`/`f`/`o` blocks and tanh on `g`. Shared by the
/// sweeping kernel ([`lstm_gates_fused_batched`]) and the tile-fused step
/// ([`lstm_step_fused_batched`]) so both paths are bit-identical by
/// construction. Three simple two-stream loops — an element-interleaved
/// formulation (six streams per iteration) was tried and measured ~40%
/// slower because it defeats the auto-vectorizer.
#[inline(always)]
fn activate_gate_row(row: &mut [f32], b_if: &[f32], b_g: &[f32], b_o: &[f32], hidden: usize) {
    let (ifg, o_blk) = row.split_at_mut(3 * hidden);
    let (if_blk, g_blk) = ifg.split_at_mut(2 * hidden);
    for (v, &bv) in if_blk.iter_mut().zip(b_if) {
        *v = fast_sigmoid(*v + bv);
    }
    for (v, &bv) in g_blk.iter_mut().zip(b_g) {
        *v = fast_tanh(*v + bv);
    }
    for (v, &bv) in o_blk.iter_mut().zip(b_o) {
        *v = fast_sigmoid(*v + bv);
    }
}

/// One row of the LSTM state recurrence: `c = f⊙c + i⊙g`, `h = o⊙tanh(c)`
/// from an activated gate row. Shared by [`lstm_state_update_batched`] and
/// [`lstm_step_fused_batched`] — see [`activate_gate_row`].
#[inline(always)]
fn state_update_row(g_row: &[f32], c_row: &mut [f32], h_row: &mut [f32], hidden: usize) {
    let (i_blk, rest) = g_row.split_at(hidden);
    let (f_blk, rest) = rest.split_at(hidden);
    let (g_blk, o_blk) = rest.split_at(hidden);
    for ((c_v, h_v), (((&i_v, &f_v), &g_v), &o_v)) in c_row
        .iter_mut()
        .zip(h_row.iter_mut())
        .zip(i_blk.iter().zip(f_blk).zip(g_blk).zip(o_blk))
    {
        let c_new = f_v.mul_add(*c_v, i_v * g_v);
        *c_v = c_new;
        *h_v = o_v * fast_tanh(c_new);
    }
}

/// Batched counterpart of [`crate::ops::lstm_gates_fused`]:
/// `gates = act(gates + bias_row)` in one pass, gate layout `[i f g o]`,
/// with [`fast_sigmoid`]/[`fast_tanh`] in place of the libm activations.
/// Unlike the reference kernel there is no separate `gh` operand — the
/// recurrent product is already folded into `gates` by the paired GEMM
/// ([`matmul_fma2_into`]), so this sweep only broadcasts the bias and
/// applies the activation polynomials.
pub fn lstm_gates_fused_batched(gates: &mut Matrix, bias: &Matrix, hidden: usize) {
    assert_eq!(
        gates.cols(),
        4 * hidden,
        "lstm_gates_fused_batched: expected 4*hidden={} cols, got {}",
        4 * hidden,
        gates.cols()
    );
    assert_eq!(
        bias.shape(),
        (1, 4 * hidden),
        "lstm_gates_fused_batched: bias shape {:?}",
        bias.shape()
    );
    let started = Instant::now();
    let cols = gates.cols();
    let b = bias.as_slice();
    let (b_if, b_rest) = b.split_at(2 * hidden);
    let (b_g, b_o) = b_rest.split_at(hidden);
    for row in gates.as_mut_slice().chunks_mut(cols) {
        activate_gate_row(row, b_if, b_g, b_o, hidden);
    }
    let bt = gates.rows() as u64;
    let h = hidden as u64;
    let n = bt * 4 * h;
    counters::record_timed_split_for(
        OpClass::LstmGatesFused,
        &[
            (Kernel::Add, n, 8 * n),
            (Kernel::Sigmoid, 10 * 3 * bt * h, 8 * 3 * bt * h),
            (Kernel::Tanh, 10 * bt * h, 8 * bt * h),
        ],
        started,
    );
}

/// Batched mirror of [`crate::ops::lstm_state_update`]:
/// `c = f⊙c + i⊙g` then `h = o⊙tanh(c)` with [`fast_tanh`] and the inner
/// add contracted to an FMA, vectorized over each row.
pub fn lstm_state_update_batched(gates: &Matrix, c: &mut Matrix, h: &mut Matrix, hidden: usize) {
    assert_eq!(
        gates.cols(),
        4 * hidden,
        "lstm_state_update_batched: gate width"
    );
    assert_eq!(
        c.shape(),
        (gates.rows(), hidden),
        "lstm_state_update_batched: c shape {:?}",
        c.shape()
    );
    assert_eq!(
        h.shape(),
        (gates.rows(), hidden),
        "lstm_state_update_batched: h shape {:?}",
        h.shape()
    );
    let started = Instant::now();
    let gcols = gates.cols();
    for (row_idx, g_row) in gates.as_slice().chunks(gcols).enumerate() {
        let c_row = &mut c.as_mut_slice()[row_idx * hidden..(row_idx + 1) * hidden];
        let h_row = &mut h.as_mut_slice()[row_idx * hidden..(row_idx + 1) * hidden];
        state_update_row(g_row, c_row, h_row, hidden);
    }
    let n = (gates.rows() * hidden) as u64;
    counters::record_timed_split_for(
        OpClass::LstmStateUpdate,
        &[
            (Kernel::Mul, 3 * n, 3 * 12 * n),
            (Kernel::Add, n, 12 * n),
            (Kernel::Tanh, 10 * n, 8 * n),
        ],
        started,
    );
}

/// One whole batched LSTM layer-step, tile-fused: for each 4-row tile the
/// paired GEMM (`x·Wˣ + h·Wʰ`), the gate activation, and the state
/// recurrence run back-to-back on a tile-local gate buffer before the next
/// tile starts. The `[batch × 4·hidden]` pre-activation block — megabytes
/// at decode batch sizes, and pure traffic — is never materialised:
/// `tile_gates` holds only `4 × 4·hidden` floats, so pre-activations live
/// their whole life in L1. Compared to the three-kernel pipeline
/// ([`matmul_fma2_into`] → [`lstm_gates_fused_batched`] →
/// [`lstm_state_update_batched`]) this removes three full passes over the
/// gate block per layer-step; the arithmetic is the same code
/// ([`fma_rows4_pair`]/[`fma_rows1_pair`], [`activate_gate_row`],
/// [`state_update_row`]) in the same order, so the results are
/// bit-identical to the pipeline — the unit test below pins that.
///
/// `h` and `c` are updated in place. Row independence holds: tile `t`
/// reads only its own rows of `x` and `h` (the rows it then overwrites),
/// so outputs per row are a pure function of that row's inputs and the
/// weights regardless of batch size — the property the decode parity
/// suite's fold-invariance tests rely on. Whole-call operator time is
/// attributed to `matmul_batched` (the dominant phase) with the
/// activation/state arithmetic included in its kernel split; the separate
/// `lstm_gates_fused` / `lstm_state_update` classes stay empty on this
/// path.
#[allow(clippy::too_many_arguments)]
pub fn lstm_step_fused_batched(
    x: &Matrix,
    w_ih: &Matrix,
    w_hh: &Matrix,
    bias: &Matrix,
    h: &mut Matrix,
    c: &mut Matrix,
    hidden: usize,
    tile_gates: &mut Matrix,
) {
    let m = x.rows();
    let n = 4 * hidden;
    assert_eq!(
        w_ih.shape(),
        (x.cols(), n),
        "lstm_step_fused_batched: w_ih shape {:?} for input width {}",
        w_ih.shape(),
        x.cols()
    );
    assert_eq!(
        w_hh.shape(),
        (hidden, n),
        "lstm_step_fused_batched: w_hh shape {:?}",
        w_hh.shape()
    );
    assert_eq!(
        bias.shape(),
        (1, n),
        "lstm_step_fused_batched: bias shape {:?}",
        bias.shape()
    );
    assert_eq!(
        h.shape(),
        (m, hidden),
        "lstm_step_fused_batched: h shape {:?} for batch {}",
        h.shape(),
        m
    );
    assert_eq!(
        c.shape(),
        (m, hidden),
        "lstm_step_fused_batched: c shape {:?}",
        c.shape()
    );
    let started = Instant::now();
    let k1 = x.cols();
    let k2 = hidden;
    tile_gates.reset_for_overwrite(4, n);
    let x_data = x.as_slice();
    let b1_data = w_ih.as_slice();
    let b2_data = w_hh.as_slice();
    let b = bias.as_slice();
    let (b_if, b_rest) = b.split_at(2 * hidden);
    let (b_g, b_o) = b_rest.split_at(hidden);
    let x_row = |r: usize| &x_data[r * k1..(r + 1) * k1];
    let mut li = 0;
    while li + 4 <= m {
        {
            let hs = h.as_slice();
            let (t0, tr) = tile_gates.as_mut_slice().split_at_mut(n);
            let (t1, tr) = tr.split_at_mut(n);
            let (t2, t3) = tr.split_at_mut(n);
            fma_rows4_pair(
                [x_row(li), x_row(li + 1), x_row(li + 2), x_row(li + 3)],
                b1_data,
                k1,
                [
                    &hs[li * k2..(li + 1) * k2],
                    &hs[(li + 1) * k2..(li + 2) * k2],
                    &hs[(li + 2) * k2..(li + 3) * k2],
                    &hs[(li + 3) * k2..(li + 4) * k2],
                ],
                b2_data,
                k2,
                [t0, t1, t2, t3],
                n,
            );
        }
        for t_row in tile_gates.as_mut_slice().chunks_mut(n) {
            activate_gate_row(t_row, b_if, b_g, b_o, hidden);
        }
        let cs = c.as_mut_slice();
        let hs = h.as_mut_slice();
        for (r, t_row) in tile_gates.as_slice().chunks(n).enumerate() {
            let row = li + r;
            state_update_row(
                t_row,
                &mut cs[row * hidden..(row + 1) * hidden],
                &mut hs[row * hidden..(row + 1) * hidden],
                hidden,
            );
        }
        li += 4;
    }
    while li < m {
        {
            let hs = h.as_slice();
            let t0 = &mut tile_gates.as_mut_slice()[..n];
            fma_rows1_pair(
                x_row(li),
                b1_data,
                k1,
                &hs[li * k2..(li + 1) * k2],
                b2_data,
                k2,
                t0,
                n,
            );
        }
        activate_gate_row(&mut tile_gates.as_mut_slice()[..n], b_if, b_g, b_o, hidden);
        state_update_row(
            &tile_gates.as_slice()[..n],
            &mut c.as_mut_slice()[li * hidden..(li + 1) * hidden],
            &mut h.as_mut_slice()[li * hidden..(li + 1) * hidden],
            hidden,
        );
        li += 1;
    }
    let mm = m as u64;
    let hd = hidden as u64;
    let nn = n as u64;
    let kk = (k1 + k2) as u64;
    counters::record_timed_split_for(
        OpClass::MatmulBatched,
        &[
            (
                Kernel::MatMul,
                2 * mm * nn * kk,
                4 * (mm * kk + kk * nn + mm * nn),
            ),
            (Kernel::Add, mm * nn + mm * hd, 8 * mm * nn + 12 * mm * hd),
            (Kernel::Mul, 3 * mm * hd, 36 * mm * hd),
            (Kernel::Sigmoid, 30 * mm * hd, 24 * mm * hd),
            (Kernel::Tanh, 20 * mm * hd, 16 * mm * hd),
        ],
        started,
    );
}

/// Two fused affine column projections over the same input block:
/// `out0[i] = h[i]·w0 + b0`, `out1[i] = h[i]·w1 + b1`, with `w0`/`w1` of
/// shape `(k, 1)`. The Gaussian head's mu/sigma GEMV pair hits this every
/// decode step; fusing them halves the passes over the hidden block and
/// interleaves two independent FMA chains per row. Accumulation is
/// ascending-`k` FMA per output element, row-independent like
/// [`matmul_fma_into`].
pub fn dual_affine_into(
    h: &Matrix,
    w0: &Matrix,
    b0: f32,
    w1: &Matrix,
    b1: f32,
    out0: &mut Matrix,
    out1: &mut Matrix,
) {
    let (m, k) = h.shape();
    assert_eq!(
        w0.shape(),
        (k, 1),
        "dual_affine_into: w0 shape {:?}",
        w0.shape()
    );
    assert_eq!(
        w1.shape(),
        (k, 1),
        "dual_affine_into: w1 shape {:?}",
        w1.shape()
    );
    let started = Instant::now();
    out0.reset_for_overwrite(m, 1);
    out1.reset_for_overwrite(m, 1);
    let h_data = h.as_slice();
    let w0_data = w0.as_slice();
    let w1_data = w1.as_slice();
    let o0 = out0.as_mut_slice();
    let o1 = out1.as_mut_slice();
    for i in 0..m {
        let h_row = &h_data[i * k..(i + 1) * k];
        let mut s0 = 0.0f32;
        let mut s1 = 0.0f32;
        for (kk, &h_v) in h_row.iter().enumerate() {
            s0 = h_v.mul_add(w0_data[kk], s0);
            s1 = h_v.mul_add(w1_data[kk], s1);
        }
        o0[i] = s0 + b0;
        o1[i] = s1 + b1;
    }
    let flops = (4 * m * k + 2 * m) as u64;
    let bytes = 4 * (m * k + 2 * k + 2 * m) as u64;
    counters::record_timed_for(
        OpClass::MatmulBatched,
        Kernel::MatMul,
        flops,
        bytes,
        started,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul_naive;

    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 8) as f32 / (1 << 24) as f32) - 0.5
        })
    }

    #[test]
    fn matmul_fma_acc_adds_onto_existing_output() {
        for (m, k, n, seed) in [(7, 5, 9, 1), (100, 17, 160, 2), (5, 40, 23, 3)] {
            let a = pseudo_random_matrix(m, k, seed);
            let b = pseudo_random_matrix(k, n, seed + 50);
            let base = pseudo_random_matrix(m, n, seed + 90);
            let product = matmul_naive(&a, &b);
            let mut out = base.clone();
            matmul_fma_acc_into(&a, &b, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let want = base.get(i, j) + product.get(i, j);
                    let got = out.get(i, j);
                    assert!(
                        (got - want).abs() <= 1e-5 * (1.0 + want.abs()),
                        "({i},{j}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_fma2_matches_sum_of_products() {
        // Odd row counts exercise the 4-row body plus the 1-row remainder;
        // n = 37 exercises the ragged tail columns.
        for (m, k1, k2, n, seed) in [(9, 5, 11, 37, 1), (100, 16, 40, 160, 2), (3, 40, 40, 64, 3)] {
            let x = pseudo_random_matrix(m, k1, seed);
            let wx = pseudo_random_matrix(k1, n, seed + 10);
            let h = pseudo_random_matrix(m, k2, seed + 20);
            let wh = pseudo_random_matrix(k2, n, seed + 30);
            let px = matmul_naive(&x, &wx);
            let ph = matmul_naive(&h, &wh);
            let mut out = pseudo_random_matrix(2, 2, 77); // dirty scratch
            matmul_fma2_into(&x, &wx, &h, &wh, &mut out);
            assert_eq!(out.shape(), (m, n));
            for i in 0..m {
                for j in 0..n {
                    let want = px.get(i, j) + ph.get(i, j);
                    let got = out.get(i, j);
                    assert!(
                        (got - want).abs() <= 1e-5 * (1.0 + want.abs()),
                        "({i},{j}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_fma2_rows_are_batch_independent_and_deterministic() {
        let x = pseudo_random_matrix(10, 16, 51);
        let wx = pseudo_random_matrix(16, 50, 52);
        let h = pseudo_random_matrix(10, 24, 53);
        let wh = pseudo_random_matrix(24, 50, 54);
        let mut full = Matrix::zeros(0, 0);
        let mut again = Matrix::zeros(0, 0);
        matmul_fma2_into(&x, &wx, &h, &wh, &mut full);
        matmul_fma2_into(&x, &wx, &h, &wh, &mut again);
        for (u, v) in full.as_slice().iter().zip(again.as_slice()) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
        for i in 0..10 {
            let xi = Matrix::from_fn(1, 16, |_, c| x.get(i, c));
            let hi = Matrix::from_fn(1, 24, |_, c| h.get(i, c));
            let mut solo = Matrix::zeros(0, 0);
            matmul_fma2_into(&xi, &wx, &hi, &wh, &mut solo);
            for (u, v) in solo.as_slice().iter().zip(full.row(i)) {
                assert_eq!(u.to_bits(), v.to_bits(), "row {i} depends on batch");
            }
        }
    }

    #[test]
    fn matmul_fma_matches_naive_within_tolerance() {
        for (m, k, n, seed) in [
            (7, 5, 9, 1),
            (100, 17, 160, 2),
            (33, 40, 1, 3),
            (4, 32, 64, 4),
        ] {
            let mut a = pseudo_random_matrix(m, k, seed);
            // Exact zeros must flow through the (skip-free) FMA unchanged.
            for (idx, v) in a.as_mut_slice().iter_mut().enumerate() {
                if idx % 7 == 0 {
                    *v = 0.0;
                }
            }
            let b = pseudo_random_matrix(k, n, seed + 100);
            let reference = matmul_naive(&a, &b);
            let mut out = pseudo_random_matrix(3, 3, 99); // dirty scratch
            matmul_fma_into(&a, &b, &mut out);
            assert_eq!(out.shape(), reference.shape());
            for (x, y) in out.as_slice().iter().zip(reference.as_slice()) {
                assert!((x - y).abs() <= 1e-5 * (1.0 + y.abs()), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn matmul_fma_rows_are_batch_independent() {
        // Row i's bits must not depend on which other rows share the batch:
        // compute a 10-row product, then re-run each row as a 1-row product
        // and as part of a shuffled 3-row product.
        let a = pseudo_random_matrix(10, 21, 11);
        let b = pseudo_random_matrix(21, 50, 12);
        let mut full = Matrix::zeros(0, 0);
        matmul_fma_into(&a, &b, &mut full);
        for i in 0..10 {
            let single = Matrix::from_fn(1, 21, |_, c| a.get(i, c));
            let mut out = Matrix::zeros(0, 0);
            matmul_fma_into(&single, &b, &mut out);
            for (x, y) in out.as_slice().iter().zip(full.row(i)) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {i} depends on batch");
            }
            let trio = Matrix::from_fn(3, 21, |r, c| a.get([9 - i, i, (i + 3) % 10][r], c));
            let mut out3 = Matrix::zeros(0, 0);
            matmul_fma_into(&trio, &b, &mut out3);
            for (x, y) in out3.row(1).iter().zip(full.row(i)) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {i} depends on neighbours");
            }
        }
    }

    #[test]
    fn fast_activations_track_libm() {
        let mut worst_tanh = 0.0f32;
        let mut worst_sig = 0.0f32;
        for i in -4000..=4000 {
            let x = i as f32 * 0.005; // [-20, 20]
            worst_tanh = worst_tanh.max((fast_tanh(x) - x.tanh()).abs());
            worst_sig = worst_sig.max((fast_sigmoid(x) - crate::scalar::sigmoid(x)).abs());
        }
        assert!(worst_tanh < 2e-6, "fast_tanh max err {worst_tanh}");
        assert!(worst_sig < 2e-6, "fast_sigmoid max err {worst_sig}");
        assert_eq!(fast_tanh(f32::INFINITY), fast_tanh(9.0));
        assert!(fast_tanh(f32::NAN).is_nan() || fast_tanh(f32::NAN).abs() <= 1.0);
    }

    #[test]
    fn batched_lstm_kernels_track_reference() {
        let hidden = 16;
        let batch = 9;
        let mut gates_a = pseudo_random_matrix(batch, 4 * hidden, 21);
        let gh = pseudo_random_matrix(batch, 4 * hidden, 22);
        // The batched path folds gh into the pre-activations inside the
        // paired GEMM before the fused sweep; emulate that here so both
        // pipelines see the same pre-activation totals.
        let mut gates_b =
            Matrix::from_fn(batch, 4 * hidden, |r, c| gates_a.get(r, c) + gh.get(r, c));
        let bias = pseudo_random_matrix(1, 4 * hidden, 23);
        let mut c_a = pseudo_random_matrix(batch, hidden, 24);
        let mut c_b = c_a.clone();
        let mut h_a = Matrix::zeros(batch, hidden);
        let mut h_b = Matrix::zeros(batch, hidden);

        crate::ops::lstm_gates_fused(&mut gates_a, &gh, &bias, hidden);
        crate::ops::lstm_state_update(&gates_a, &mut c_a, &mut h_a, hidden);
        lstm_gates_fused_batched(&mut gates_b, &bias, hidden);
        lstm_state_update_batched(&gates_b, &mut c_b, &mut h_b, hidden);

        for (x, y) in c_a.as_slice().iter().zip(c_b.as_slice()) {
            assert!((x - y).abs() < 1e-5, "c {x} vs {y}");
        }
        for (x, y) in h_a.as_slice().iter().zip(h_b.as_slice()) {
            assert!((x - y).abs() < 1e-5, "h {x} vs {y}");
        }
    }

    #[test]
    fn fused_step_matches_three_kernel_pipeline_bitwise() {
        // Batch 9 exercises both the 4-row tile body and the 1-row
        // remainder; the fused step must be bit-identical to the
        // three-kernel pipeline it replaces.
        let hidden = 16;
        let batch = 9;
        let x = pseudo_random_matrix(batch, 7, 51);
        let w_ih = pseudo_random_matrix(7, 4 * hidden, 52);
        let w_hh = pseudo_random_matrix(hidden, 4 * hidden, 53);
        let bias = pseudo_random_matrix(1, 4 * hidden, 54);
        let h0 = pseudo_random_matrix(batch, hidden, 55);
        let c0 = pseudo_random_matrix(batch, hidden, 56);

        let mut h_a = h0.clone();
        let mut c_a = c0.clone();
        let mut gates = Matrix::zeros(0, 0);
        matmul_fma2_into(&x, &w_ih, &h_a, &w_hh, &mut gates);
        lstm_gates_fused_batched(&mut gates, &bias, hidden);
        lstm_state_update_batched(&gates, &mut c_a, &mut h_a, hidden);

        let mut h_b = h0.clone();
        let mut c_b = c0.clone();
        let mut tile = Matrix::zeros(0, 0);
        lstm_step_fused_batched(
            &x, &w_ih, &w_hh, &bias, &mut h_b, &mut c_b, hidden, &mut tile,
        );

        for (a, b) in h_a.as_slice().iter().zip(h_b.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "h {a} vs {b}");
        }
        for (a, b) in c_a.as_slice().iter().zip(c_b.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "c {a} vs {b}");
        }
    }

    #[test]
    fn dual_affine_matches_two_gemvs() {
        let h = pseudo_random_matrix(37, 40, 31);
        let w0 = pseudo_random_matrix(40, 1, 32);
        let w1 = pseudo_random_matrix(40, 1, 33);
        let r0 = matmul_naive(&h, &w0);
        let r1 = matmul_naive(&h, &w1);
        let mut out0 = Matrix::zeros(0, 0);
        let mut out1 = Matrix::zeros(0, 0);
        dual_affine_into(&h, &w0, 0.25, &w1, -0.5, &mut out0, &mut out1);
        for i in 0..37 {
            assert!((out0.get(i, 0) - (r0.get(i, 0) + 0.25)).abs() < 1e-5);
            assert!((out1.get(i, 0) - (r1.get(i, 0) - 0.5)).abs() < 1e-5);
        }
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        let a = pseudo_random_matrix(13, 19, 41);
        let b = pseudo_random_matrix(19, 37, 42);
        let mut x = Matrix::zeros(0, 0);
        let mut y = Matrix::zeros(0, 0);
        matmul_fma_into(&a, &b, &mut x);
        matmul_fma_into(&a, &b, &mut y);
        for (u, v) in x.as_slice().iter().zip(y.as_slice()) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }
}
