//! Dense `f32` matrix kernels for the RankNet reproduction.
//!
//! This crate is the computational substrate for everything above it:
//! the autodiff tape (`rpf-autodiff`), the neural network layers, and the
//! classical ML baselines. It provides:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with shape-checked ops,
//! * a blocked, cache-friendly matrix multiply that goes parallel via
//!   `crossbeam` scoped threads once the work is large enough,
//! * [`counters`] — per-kernel FLOP / byte / walltime accounting used to
//!   drive the paper's roofline chart (Fig 11) and operator breakdown
//!   (Fig 12) without external profilers.
//!
//! The kernel set mirrors the five operations the paper identifies inside an
//! LSTM cell: `MatMul`, elementwise `Mul`, `Add`, `Sigmoid` and `Tanh`.

pub mod batched;
pub mod counters;
pub mod matmul;
pub mod matrix;
pub mod ops;
pub mod par;
pub mod scalar;

pub use counters::{Kernel, KernelStats};
pub use matrix::Matrix;
