//! Forecasting baselines the paper compares RankNet against (Table III):
//!
//! * [`currank`] — the naive "rank positions will not change" baseline,
//! * [`arima`] — ARIMA(p,d,q) fitted by Hannan–Rissanen with Gaussian
//!   forecast intervals (the only classical baseline with uncertainty),
//! * [`forest`] — a CART random-forest regressor (trees trained in parallel
//!   with crossbeam),
//! * [`svr`] — ε-SVR with an RBF kernel trained by SMO (the paper's
//!   strongest classical baseline on TaskB),
//! * [`gbt`] — second-order gradient-boosted regression trees with
//!   regularised leaf weights, the XGBoost stand-in.
//!
//! All of them follow the approach of Tulabandhula & Rudin the paper cites:
//! pointwise regression on engineered features rather than sequence
//! modeling, which is exactly the limitation RankNet is built to beat.

pub mod arima;
pub mod currank;
pub mod forest;
pub mod gbt;
pub mod linalg;
pub mod svr;
pub mod tree;

pub use arima::Arima;
pub use currank::CurRank;
pub use forest::RandomForest;
pub use gbt::GradientBoostedTrees;
pub use svr::Svr;
pub use tree::RegressionTree;
