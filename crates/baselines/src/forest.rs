//! Random-forest regressor: bagged CART trees with per-split feature
//! subsampling, trained in parallel with crossbeam scoped threads (one tree
//! per task — the classic embarrassingly-parallel fit).
//!
//! Besides the point forecast (mean over trees), the spread of per-tree
//! predictions provides the quantiles used when the paper draws RF's
//! "forecast-90%" band in Fig 2.

use crate::tree::{RegressionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Forest hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct ForestConfig {
    pub n_trees: usize,
    pub tree: TreeConfig,
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            tree: TreeConfig {
                max_depth: 10,
                min_samples_leaf: 2,
                max_features: 0,
            },
            seed: 0,
        }
    }
}

/// A fitted random forest.
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fit on rows `x` with targets `y`.
    pub fn fit(x: &[Vec<f32>], y: &[f32], cfg: &ForestConfig) -> RandomForest {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "cannot fit a forest on no data");
        let n_features = x[0].len();
        let mtry = if cfg.tree.max_features == 0 {
            // Standard regression default: n/3, at least 1.
            (n_features / 3).max(1)
        } else {
            cfg.tree.max_features.min(n_features)
        };

        let n_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16);
        let trees: Vec<RegressionTree> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..n_threads)
                .map(|tid| {
                    s.spawn(move |_| {
                        let mut local = Vec::new();
                        let mut t = tid;
                        while t < cfg.n_trees {
                            local.push((t, fit_one_tree(x, y, cfg, mtry, t as u64)));
                            t += n_threads;
                        }
                        local
                    })
                })
                .collect();
            let mut tagged: Vec<(usize, RegressionTree)> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("tree worker panicked"))
                .collect();
            // Deterministic order regardless of thread interleaving.
            tagged.sort_by_key(|(i, _)| *i);
            tagged.into_iter().map(|(_, t)| t).collect()
        })
        .expect("forest training scope failed");

        RandomForest { trees }
    }

    /// Mean prediction over trees.
    pub fn predict(&self, row: &[f32]) -> f32 {
        self.tree_predictions(row).iter().sum::<f32>() / self.trees.len() as f32
    }

    /// Every tree's prediction (empirical forecast distribution).
    pub fn tree_predictions(&self, row: &[f32]) -> Vec<f32> {
        self.trees.iter().map(|t| t.predict(row)).collect()
    }

    /// Empirical quantile of the per-tree predictions.
    pub fn predict_quantile(&self, row: &[f32], q: f32) -> f32 {
        let mut p = self.tree_predictions(row);
        p.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pos = (q.clamp(0.0, 1.0) * (p.len() - 1) as f32).round() as usize;
        p[pos]
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

fn fit_one_tree(
    x: &[Vec<f32>],
    y: &[f32],
    cfg: &ForestConfig,
    mtry: usize,
    tree_index: u64,
) -> RegressionTree {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (tree_index.wrapping_mul(0x9E3779B9)));
    let n = x.len();
    // Bootstrap sample.
    let mut bx = Vec::with_capacity(n);
    let mut by = Vec::with_capacity(n);
    for _ in 0..n {
        let i = rng.gen_range(0..n);
        bx.push(x[i].clone());
        by.push(y[i]);
    }
    let n_features = x[0].len();
    let mut sampler = move |nf: usize| {
        debug_assert_eq!(nf, n_features);
        let mut feats: Vec<usize> = (0..nf).collect();
        // Partial Fisher–Yates: first `mtry` entries are a uniform sample.
        for k in 0..mtry.min(nf) {
            let j = rng.gen_range(k..nf);
            feats.swap(k, j);
        }
        feats.truncate(mtry.min(nf));
        feats
    };
    RegressionTree::fit_with_sampler(&bx, &by, &cfg.tree, &mut sampler)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn friedman_like(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 40) as f32 / (1u64 << 24) as f32
        };
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = next();
            let b = next();
            let c = next();
            x.push(vec![a, b, c]);
            y.push(10.0 * a + 5.0 * b * b + 2.0 * (c - 0.5).abs());
        }
        (x, y)
    }

    #[test]
    fn beats_mean_predictor() {
        let (x, y) = friedman_like(400, 1);
        let cfg = ForestConfig {
            n_trees: 40,
            ..Default::default()
        };
        let forest = RandomForest::fit(&x, &y, &cfg);
        let (xt, yt) = friedman_like(100, 2);
        let mean_y: f32 = y.iter().sum::<f32>() / y.len() as f32;
        let mut forest_sse = 0.0;
        let mut mean_sse = 0.0;
        for (row, &t) in xt.iter().zip(&yt) {
            let p = forest.predict(row);
            forest_sse += (p - t) * (p - t);
            mean_sse += (mean_y - t) * (mean_y - t);
        }
        assert!(
            forest_sse < 0.3 * mean_sse,
            "forest SSE {forest_sse} should be far below baseline {mean_sse}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = friedman_like(100, 3);
        let cfg = ForestConfig {
            n_trees: 8,
            ..Default::default()
        };
        let a = RandomForest::fit(&x, &y, &cfg);
        let b = RandomForest::fit(&x, &y, &cfg);
        for row in x.iter().take(10) {
            assert_eq!(a.predict(row), b.predict(row));
        }
    }

    #[test]
    fn quantiles_are_ordered() {
        let (x, y) = friedman_like(200, 4);
        let forest = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 30,
                ..Default::default()
            },
        );
        let row = &x[0];
        let q10 = forest.predict_quantile(row, 0.1);
        let q50 = forest.predict_quantile(row, 0.5);
        let q90 = forest.predict_quantile(row, 0.9);
        assert!(q10 <= q50 && q50 <= q90);
    }

    #[test]
    fn n_trees_respected() {
        let (x, y) = friedman_like(50, 5);
        let forest = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 13,
                ..Default::default()
            },
        );
        assert_eq!(forest.n_trees(), 13);
    }
}
