//! Small dense linear-algebra helpers for the classical baselines: ordinary
//! least squares via normal equations with partial-pivot Gaussian
//! elimination. Systems here are tiny (ARIMA orders ≤ 5), so numerical
//! sophistication beyond pivoting + ridge jitter is unnecessary.

/// Solve `A x = b` for square `A` (row-major `n x n`) by Gaussian
/// elimination with partial pivoting. Returns `None` if `A` is singular.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n);
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Pivot.
        let mut best = col;
        for r in col + 1..n {
            if m[r * n + col].abs() > m[best * n + col].abs() {
                best = r;
            }
        }
        if m[best * n + col].abs() < 1e-12 {
            return None;
        }
        if best != col {
            for c in 0..n {
                m.swap(col * n + c, best * n + c);
            }
            rhs.swap(col, best);
        }
        // Eliminate below.
        let pivot = m[col * n + col];
        for r in col + 1..n {
            let factor = m[r * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                m[r * n + c] -= factor * m[col * n + c];
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = rhs[r];
        for c in r + 1..n {
            acc -= m[r * n + c] * x[c];
        }
        x[r] = acc / m[r * n + r];
    }
    Some(x)
}

/// Ordinary least squares: minimise `||X beta - y||²` with a small ridge
/// term for stability. `x` is `rows x cols` row-major.
pub fn ols(x: &[f64], y: &[f64], rows: usize, cols: usize, ridge: f64) -> Option<Vec<f64>> {
    assert_eq!(x.len(), rows * cols);
    assert_eq!(y.len(), rows);
    // Normal equations: (XᵀX + ridge I) beta = Xᵀ y.
    let mut xtx = vec![0.0; cols * cols];
    let mut xty = vec![0.0; cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            xty[i] += row[i] * y[r];
            for j in i..cols {
                xtx[i * cols + j] += row[i] * row[j];
            }
        }
    }
    for i in 0..cols {
        for j in 0..i {
            xtx[i * cols + j] = xtx[j * cols + i];
        }
        xtx[i * cols + i] += ridge;
    }
    solve(&xtx, &xty, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x - y = 1  => x = 2, y = 1
        let a = [2.0, 1.0, 1.0, -1.0];
        let b = [5.0, 1.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = [0.0, 1.0, 1.0, 0.0];
        let b = [3.0, 7.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn singular_returns_none() {
        let a = [1.0, 2.0, 2.0, 4.0];
        let b = [1.0, 2.0];
        assert!(solve(&a, &b, 2).is_none());
    }

    #[test]
    fn ols_recovers_linear_model() {
        // y = 3 a - 2 b + 0.5 with design [a, b, 1].
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let a = (i as f64 * 0.37).sin();
            let b = (i as f64 * 0.11).cos();
            x.extend_from_slice(&[a, b, 1.0]);
            y.push(3.0 * a - 2.0 * b + 0.5);
        }
        let beta = ols(&x, &y, 50, 3, 1e-9).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-6);
        assert!((beta[1] + 2.0).abs() < 1e-6);
        assert!((beta[2] - 0.5).abs() < 1e-6);
    }
}
