//! ARIMA(p,d,q) fitted by the Hannan–Rissanen two-stage procedure.
//!
//! Stage 1 fits a long autoregression to estimate innovations; stage 2
//! regresses the (differenced) series on its own lags and the lagged
//! innovations. Forecasting iterates the recursion with innovations set to
//! zero and integrates `d` times; the innovation variance gives Gaussian
//! prediction intervals, which is how the paper's ARIMA baseline produces
//! the uncertainty bands of Fig 2c.

use crate::linalg::ols;

/// A fitted ARIMA model.
///
/// ```
/// use rpf_baselines::Arima;
///
/// // A linear trend: ARIMA(1,1,0) extrapolates it.
/// let series: Vec<f32> = (0..60).map(|i| i as f32 * 2.0).collect();
/// let model = Arima::fit(&series, 1, 1, 0).expect("enough data");
/// let (forecast, sd) = model.forecast(&series, 2);
/// assert!((forecast[0] - 120.0).abs() < 2.0);
/// assert!(sd[1] >= sd[0]); // uncertainty widens with horizon
/// ```
#[derive(Clone, Debug)]
pub struct Arima {
    pub p: usize,
    pub d: usize,
    pub q: usize,
    /// AR coefficients φ₁..φ_p on the differenced series.
    pub ar: Vec<f64>,
    /// MA coefficients θ₁..θ_q.
    pub ma: Vec<f64>,
    /// Intercept of the differenced series.
    pub intercept: f64,
    /// Innovation standard deviation.
    pub sigma: f64,
}

fn difference(series: &[f64], d: usize) -> Vec<f64> {
    let mut s = series.to_vec();
    for _ in 0..d {
        s = s.windows(2).map(|w| w[1] - w[0]).collect();
    }
    s
}

impl Arima {
    /// Fit ARIMA(p,d,q) to `series`. Returns `None` when the series is too
    /// short or degenerate for the requested orders.
    pub fn fit(series: &[f32], p: usize, d: usize, q: usize) -> Option<Arima> {
        let series: Vec<f64> = series.iter().map(|&v| v as f64).collect();
        if series.len() < d + p.max(q) * 3 + 8 {
            return None;
        }
        let w = difference(&series, d);
        let n = w.len();

        // Stage 1: long AR to estimate innovations.
        let m = (p + q + 3).min(n / 3).max(1);
        let mut resid = vec![0.0; n];
        {
            let rows = n - m;
            if rows < m + 2 {
                return None;
            }
            let mut x = Vec::with_capacity(rows * (m + 1));
            let mut y = Vec::with_capacity(rows);
            for t in m..n {
                for l in 1..=m {
                    x.push(w[t - l]);
                }
                x.push(1.0);
                y.push(w[t]);
            }
            let beta = ols(&x, &y, rows, m + 1, 1e-6)?;
            for t in m..n {
                let mut pred = beta[m];
                for l in 1..=m {
                    pred += beta[l - 1] * w[t - l];
                }
                resid[t] = w[t] - pred;
            }
        }

        // Stage 2: regress w_t on lags of w and lagged innovations.
        let start = m.max(p).max(q);
        let rows = n.checked_sub(start)?;
        if rows < p + q + 2 {
            return None;
        }
        let cols = p + q + 1;
        let mut x = Vec::with_capacity(rows * cols);
        let mut y = Vec::with_capacity(rows);
        for t in start..n {
            for l in 1..=p {
                x.push(w[t - l]);
            }
            for l in 1..=q {
                x.push(resid[t - l]);
            }
            x.push(1.0);
            y.push(w[t]);
        }
        let beta = ols(&x, &y, rows, cols, 1e-6)?;
        let ar = beta[..p].to_vec();
        let ma = beta[p..p + q].to_vec();
        let intercept = beta[p + q];

        // Innovation variance from stage-2 residuals.
        let mut sse = 0.0;
        for (r, t) in (start..n).enumerate() {
            let row = &x[r * cols..(r + 1) * cols];
            let pred: f64 = row.iter().zip(&beta).map(|(a, b)| a * b).sum();
            sse += (w[t] - pred) * (w[t] - pred);
        }
        let sigma = (sse / rows as f64).sqrt().max(1e-9);

        Some(Arima {
            p,
            d,
            q,
            ar,
            ma,
            intercept,
            sigma,
        })
    }

    /// Point forecast `horizon` steps ahead plus the per-step forecast
    /// standard deviation (widening with horizon via the AR psi-weights).
    pub fn forecast(&self, series: &[f32], horizon: usize) -> (Vec<f32>, Vec<f32>) {
        let series: Vec<f64> = series.iter().map(|&v| v as f64).collect();
        let w = difference(&series, self.d);

        // Recent differenced values and innovations (innovations approximated
        // as zero beyond the sample — standard for forecasting).
        let hist: Vec<f64> = w.clone();
        let mut innov: Vec<f64> = vec![0.0; w.len()];
        // Reconstruct in-sample innovations with the fitted recursion.
        for t in 0..w.len() {
            let mut pred = self.intercept;
            for (l, &phi) in self.ar.iter().enumerate() {
                if t > l {
                    pred += phi * hist[t - l - 1];
                }
            }
            for (l, &theta) in self.ma.iter().enumerate() {
                if t > l {
                    pred += theta * innov[t - l - 1];
                }
            }
            innov[t] = w[t] - pred;
        }

        let mut w_forecasts = Vec::with_capacity(horizon);
        for h in 0..horizon {
            let t = w.len() + h;
            let mut pred = self.intercept;
            for (l, &phi) in self.ar.iter().enumerate() {
                let idx = t as i64 - l as i64 - 1;
                if idx >= 0 {
                    let idx = idx as usize;
                    pred += phi
                        * if idx < hist.len() {
                            hist[idx]
                        } else {
                            w_forecasts[idx - hist.len()]
                        };
                }
            }
            for (l, &theta) in self.ma.iter().enumerate() {
                let idx = t as i64 - l as i64 - 1;
                if idx >= 0 && (idx as usize) < innov.len() {
                    pred += theta * innov[idx as usize];
                }
            }
            w_forecasts.push(pred);
        }

        // Integrate back d times: the forecasts live at difference level d;
        // each integration step cumulatively sums them starting from the
        // last observed value of the next level down.
        let mut level_forecasts = w_forecasts.clone();
        for k in (0..self.d).rev() {
            let level_series = difference(&series, k);
            let last = *level_series
                .last()
                .expect("fit guaranteed non-empty levels");
            let mut acc = last;
            for f in level_forecasts.iter_mut() {
                acc += *f;
                *f = acc;
            }
        }

        // Forecast std-dev via psi weights of the AR part (MA contributes to
        // the first q steps; for these small orders the AR recursion
        // dominates). After integration, variances accumulate.
        let mut psi = vec![1.0f64];
        for h in 1..horizon {
            let mut v = 0.0;
            for (l, &phi) in self.ar.iter().enumerate() {
                if h > l {
                    v += phi * psi[h - l - 1];
                }
            }
            if h <= self.q {
                v += self.ma[h - 1];
            }
            psi.push(v);
        }
        let mut var_acc = 0.0;
        let mut sds = Vec::with_capacity(horizon);
        for (h, p) in psi.iter().take(horizon).enumerate() {
            var_acc += p * p;
            let sd = self.sigma * var_acc.sqrt();
            // Integration compounds uncertainty roughly linearly per order.
            let sd = sd * (1.0 + self.d as f64 * h as f64 * 0.25);
            sds.push(sd as f32);
        }

        (level_forecasts.iter().map(|&v| v as f32).collect(), sds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1_series(phi: f64, n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f64 / (1u64 << 24) as f64) - 0.5
        };
        let mut x = 0.0f64;
        (0..n)
            .map(|_| {
                x = phi * x + next();
                x as f32
            })
            .collect()
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let series = ar1_series(0.7, 600, 1);
        let model = Arima::fit(&series, 1, 0, 0).unwrap();
        assert!(
            (model.ar[0] - 0.7).abs() < 0.12,
            "phi estimate {} should be near 0.7",
            model.ar[0]
        );
    }

    #[test]
    fn differencing_removes_linear_trend() {
        let series: Vec<f32> = (0..100).map(|i| 2.0 * i as f32 + 5.0).collect();
        let model = Arima::fit(&series, 1, 1, 0).unwrap();
        let (fcst, _) = model.forecast(&series, 3);
        // Next values continue the trend: 205, 207, 209.
        for (h, f) in fcst.iter().enumerate() {
            let expect = 2.0 * (100 + h) as f32 + 5.0;
            assert!((f - expect).abs() < 1.0, "h={h}: {f} vs {expect}");
        }
    }

    #[test]
    fn forecast_uncertainty_widens_with_horizon() {
        let series = ar1_series(0.5, 400, 2);
        let model = Arima::fit(&series, 1, 0, 1).unwrap();
        let (_, sds) = model.forecast(&series, 6);
        for w in sds.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6,
                "sd must not shrink with horizon: {sds:?}"
            );
        }
        assert!(sds[0] > 0.0);
    }

    #[test]
    fn too_short_series_returns_none() {
        assert!(Arima::fit(&[1.0, 2.0, 3.0], 2, 1, 2).is_none());
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let series = vec![7.0f32; 80];
        let model = Arima::fit(&series, 1, 0, 0).unwrap();
        let (fcst, _) = model.forecast(&series, 4);
        for f in fcst {
            assert!((f - 7.0).abs() < 0.5, "forecast {f} should stay near 7");
        }
    }

    #[test]
    fn ma_component_is_estimated() {
        // ARMA(0,1): x_t = e_t + 0.6 e_{t-1}.
        let mut s = 99u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f64 / (1u64 << 24) as f64) - 0.5
        };
        let mut prev_e = 0.0;
        let series: Vec<f32> = (0..800)
            .map(|_| {
                let e = next();
                let x = e + 0.6 * prev_e;
                prev_e = e;
                x as f32
            })
            .collect();
        let model = Arima::fit(&series, 0, 0, 1).unwrap();
        assert!(
            (model.ma[0] - 0.6).abs() < 0.2,
            "theta estimate {} should be near 0.6",
            model.ma[0]
        );
    }
}
