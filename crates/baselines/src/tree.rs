//! CART regression tree — the shared building block of the random forest
//! and the gradient-boosted ensemble.

/// One node of a regression tree, stored in a flat arena.
#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        /// Arena index of the `<= threshold` child.
        left: usize,
        /// Arena index of the `> threshold` child.
        right: usize,
    },
}

/// Parameters controlling tree growth.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    /// Features examined per split (`0` = all) — the forest's `mtry`.
    pub max_features: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_leaf: 2,
            max_features: 0,
        }
    }
}

/// A fitted CART regression tree (variance-reduction splits).
#[derive(Clone, Debug)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl RegressionTree {
    /// Fit to rows `x[i]` (each a feature slice of equal length) with
    /// targets `y[i]`. `feature_order` supplies the (possibly subsampled)
    /// candidate feature indices per split via the closure `sampler`, which
    /// lets the forest inject randomness without this module depending on a
    /// specific RNG.
    pub fn fit_with_sampler(
        x: &[Vec<f32>],
        y: &[f32],
        cfg: &TreeConfig,
        sampler: &mut dyn FnMut(usize) -> Vec<usize>,
    ) -> RegressionTree {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "cannot fit a tree on no data");
        let n_features = x[0].len();
        let mut nodes = Vec::new();
        let indices: Vec<usize> = (0..x.len()).collect();
        build(&mut nodes, x, y, indices, cfg, 0, n_features, sampler);
        RegressionTree { nodes, n_features }
    }

    /// Fit considering every feature at every split.
    pub fn fit(x: &[Vec<f32>], y: &[f32], cfg: &TreeConfig) -> RegressionTree {
        let n = if x.is_empty() { 0 } else { x[0].len() };
        let mut all = move |_: usize| (0..n).collect::<Vec<usize>>();
        Self::fit_with_sampler(x, y, cfg, &mut all)
    }

    /// Predict a single row.
    pub fn predict(&self, row: &[f32]) -> f32 {
        assert_eq!(row.len(), self.n_features, "feature count mismatch");
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (diagnostics).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        rec(&self.nodes, 0)
    }
}

fn mean(y: &[f32], idx: &[usize]) -> f32 {
    idx.iter().map(|&i| y[i]).sum::<f32>() / idx.len().max(1) as f32
}

#[allow(clippy::too_many_arguments)]
fn build(
    nodes: &mut Vec<Node>,
    x: &[Vec<f32>],
    y: &[f32],
    idx: Vec<usize>,
    cfg: &TreeConfig,
    depth: usize,
    n_features: usize,
    sampler: &mut dyn FnMut(usize) -> Vec<usize>,
) -> usize {
    let node_value = mean(y, &idx);
    let make_leaf = |nodes: &mut Vec<Node>| {
        nodes.push(Node::Leaf { value: node_value });
        nodes.len() - 1
    };

    if depth >= cfg.max_depth || idx.len() < 2 * cfg.min_samples_leaf {
        return make_leaf(nodes);
    }

    // Best split by sum-of-squares reduction, scanning sorted feature values.
    let candidates = sampler(n_features);
    let total_sum: f64 = idx.iter().map(|&i| y[i] as f64).sum();
    let total_sq: f64 = idx.iter().map(|&i| (y[i] as f64) * (y[i] as f64)).sum();
    let n = idx.len() as f64;
    let base_sse = total_sq - total_sum * total_sum / n;

    let mut best: Option<(usize, f32, f64)> = None; // (feature, threshold, sse)
    let mut sorted = idx.clone();
    for &f in &candidates {
        sorted.sort_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).unwrap());
        let mut left_sum = 0.0f64;
        let mut left_sq = 0.0f64;
        for (k, &i) in sorted.iter().enumerate().take(sorted.len() - 1) {
            let v = y[i] as f64;
            left_sum += v;
            left_sq += v * v;
            let nl = (k + 1) as f64;
            let nr = n - nl;
            // Can't split between equal feature values.
            if x[i][f] == x[sorted[k + 1]][f] {
                continue;
            }
            if (k + 1) < cfg.min_samples_leaf || (sorted.len() - k - 1) < cfg.min_samples_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse =
                (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
            if best.as_ref().is_none_or(|b| sse < b.2) {
                let threshold = 0.5 * (x[i][f] + x[sorted[k + 1]][f]);
                best = Some((f, threshold, sse));
            }
        }
    }

    let Some((feature, threshold, sse)) = best else {
        return make_leaf(nodes);
    };
    if base_sse - sse < 1e-12 {
        return make_leaf(nodes); // no useful reduction
    }

    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        idx.iter().partition(|&&i| x[i][feature] <= threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        return make_leaf(nodes);
    }

    // Reserve this node's slot, then build children.
    let slot = nodes.len();
    nodes.push(Node::Leaf { value: node_value }); // placeholder
    let left = build(nodes, x, y, left_idx, cfg, depth + 1, n_features, sampler);
    let right = build(nodes, x, y, right_idx, cfg, depth + 1, n_features, sampler);
    nodes[slot] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    slot
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like_data() -> (Vec<Vec<f32>>, Vec<f32>) {
        // Distinct value per quadrant: greedy CART finds the marginal signal
        // first and the interaction at depth 2. (A perfectly symmetric XOR
        // has zero marginal signal and defeats any greedy splitter.)
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in -5..5 {
            for j in -5..5 {
                let a = i as f32 + 0.5;
                let b = j as f32 + 0.5;
                x.push(vec![a, b]);
                y.push(match (a > 0.0, b > 0.0) {
                    (false, false) => 0.0,
                    (false, true) => 3.0,
                    (true, false) => 7.0,
                    (true, true) => 10.0,
                });
            }
        }
        (x, y)
    }

    #[test]
    fn fits_quadrant_interaction() {
        let (x, y) = xor_like_data();
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default());
        for (row, &target) in x.iter().zip(&y) {
            assert!((tree.predict(row) - target).abs() < 0.5, "row {row:?}");
        }
        assert!(tree.depth() >= 3);
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = xor_like_data();
        let cfg = TreeConfig {
            max_depth: 1,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &cfg);
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn constant_target_gives_single_leaf() {
        let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let y = vec![5.0f32; 20];
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[99.0]), 5.0);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let x: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32]).collect();
        let y: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let cfg = TreeConfig {
            min_samples_leaf: 4,
            max_depth: 10,
            max_features: 0,
        };
        let tree = RegressionTree::fit(&x, &y, &cfg);
        // With 8 points and min leaf 4, only one split is possible.
        assert!(tree.node_count() <= 3);
    }

    #[test]
    fn step_function_threshold_found() {
        let x: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32 / 100.0]).collect();
        let y: Vec<f32> = (0..100).map(|i| if i < 37 { 1.0 } else { 2.0 }).collect();
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default());
        assert!((tree.predict(&[0.1]) - 1.0).abs() < 1e-5);
        assert!((tree.predict(&[0.9]) - 2.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "feature count")]
    fn wrong_feature_count_panics() {
        let tree = RegressionTree::fit(&[vec![1.0, 2.0]], &[1.0], &TreeConfig::default());
        let _ = tree.predict(&[1.0]);
    }
}
