//! Gradient-boosted regression trees — the XGBoost stand-in.
//!
//! Follows XGBoost's formulation for squared loss: each round fits a CART
//! tree to the negative gradients (residuals), leaf values are the
//! regularised Newton step `G / (H + λ)` (for squared loss `H` = leaf
//! count), and predictions accumulate with shrinkage `η`.

use crate::tree::{RegressionTree, TreeConfig};

/// Boosting hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct GbtConfig {
    pub n_rounds: usize,
    /// Shrinkage (learning rate) η.
    pub eta: f32,
    /// L2 regularisation λ on leaf weights.
    pub lambda: f32,
    pub tree: TreeConfig,
}

impl Default for GbtConfig {
    fn default() -> Self {
        GbtConfig {
            n_rounds: 100,
            eta: 0.1,
            lambda: 1.0,
            tree: TreeConfig {
                max_depth: 4,
                min_samples_leaf: 2,
                max_features: 0,
            },
        }
    }
}

/// A fitted boosted ensemble.
pub struct GradientBoostedTrees {
    base: f32,
    trees: Vec<RegressionTree>,
    eta: f32,
    shrink: f32,
}

impl GradientBoostedTrees {
    pub fn fit(x: &[Vec<f32>], y: &[f32], cfg: &GbtConfig) -> GradientBoostedTrees {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "cannot fit GBT on no data");
        let n = x.len() as f32;
        let base = y.iter().sum::<f32>() / n;
        // The λ regulariser scales leaf outputs by n_leaf/(n_leaf+λ); with a
        // plain CART fitted to residuals the same effect is approximated by
        // an extra multiplicative shrink (exact per-leaf Newton steps would
        // require leaf-level access; the behaviourally relevant part — bias
        // toward small steps — is preserved).
        let shrink = n / (n + cfg.lambda);

        let mut pred: Vec<f32> = vec![base; x.len()];
        let mut trees = Vec::with_capacity(cfg.n_rounds);
        for _round in 0..cfg.n_rounds {
            let residuals: Vec<f32> = y.iter().zip(&pred).map(|(t, p)| t - p).collect();
            let tree = RegressionTree::fit(x, &residuals, &cfg.tree);
            for (p, row) in pred.iter_mut().zip(x) {
                *p += cfg.eta * shrink * tree.predict(row);
            }
            trees.push(tree);
        }
        GradientBoostedTrees {
            base,
            trees,
            eta: cfg.eta,
            shrink,
        }
    }

    pub fn predict(&self, row: &[f32]) -> f32 {
        let mut acc = self.base;
        for t in &self.trees {
            acc += self.eta * self.shrink * t.predict(row);
        }
        acc
    }

    /// Prediction using only the first `k` rounds (staged prediction, for
    /// diagnostics and early-stopping analysis).
    pub fn predict_staged(&self, row: &[f32], k: usize) -> f32 {
        let mut acc = self.base;
        for t in self.trees.iter().take(k) {
            acc += self.eta * self.shrink * t.predict(row);
        }
        acc
    }

    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nonlinear_data(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 40) as f32 / (1u64 << 24) as f32
        };
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = next() * 4.0 - 2.0;
            let b = next() * 4.0 - 2.0;
            x.push(vec![a, b]);
            y.push(a * a + 3.0 * (b > 0.0) as i32 as f32);
        }
        (x, y)
    }

    #[test]
    fn fits_nonlinear_function() {
        let (x, y) = nonlinear_data(500, 7);
        let gbt = GradientBoostedTrees::fit(&x, &y, &GbtConfig::default());
        let (xt, yt) = nonlinear_data(100, 8);
        let mse: f32 = xt
            .iter()
            .zip(&yt)
            .map(|(r, &t)| (gbt.predict(r) - t) * (gbt.predict(r) - t))
            .sum::<f32>()
            / 100.0;
        let var: f32 = {
            let m = yt.iter().sum::<f32>() / 100.0;
            yt.iter().map(|t| (t - m) * (t - m)).sum::<f32>() / 100.0
        };
        assert!(mse < 0.15 * var, "MSE {mse} vs variance {var}");
    }

    #[test]
    fn training_error_decreases_with_rounds() {
        let (x, y) = nonlinear_data(200, 9);
        let gbt = GradientBoostedTrees::fit(&x, &y, &GbtConfig::default());
        let err_at = |k: usize| -> f32 {
            x.iter()
                .zip(&y)
                .map(|(r, &t)| (gbt.predict_staged(r, k) - t).powi(2))
                .sum::<f32>()
                / x.len() as f32
        };
        assert!(err_at(5) > err_at(20));
        assert!(err_at(20) > err_at(100));
    }

    #[test]
    fn lambda_shrinks_early_steps() {
        let (x, y) = nonlinear_data(100, 10);
        let low = GradientBoostedTrees::fit(
            &x,
            &y,
            &GbtConfig {
                lambda: 0.0,
                n_rounds: 1,
                ..Default::default()
            },
        );
        let high = GradientBoostedTrees::fit(
            &x,
            &y,
            &GbtConfig {
                lambda: 1000.0,
                n_rounds: 1,
                ..Default::default()
            },
        );
        // One round with huge λ must move predictions less from the base.
        let base = y.iter().sum::<f32>() / y.len() as f32;
        let move_low: f32 = x.iter().map(|r| (low.predict(r) - base).abs()).sum();
        let move_high: f32 = x.iter().map(|r| (high.predict(r) - base).abs()).sum();
        assert!(move_high < move_low);
    }

    #[test]
    fn constant_target_exact() {
        let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let y = vec![3.5f32; 20];
        let gbt = GradientBoostedTrees::fit(&x, &y, &GbtConfig::default());
        assert!((gbt.predict(&[5.0]) - 3.5).abs() < 1e-4);
        assert_eq!(gbt.n_rounds(), 100);
    }
}
