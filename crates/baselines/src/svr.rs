//! ε-insensitive Support Vector Regression with an RBF kernel, trained by a
//! simplified SMO (sequential minimal optimization) loop.
//!
//! The paper's SVM baseline learns "a model very close to a two laps delay"
//! (Fig 2a) — i.e. it ties the Table V metrics with CurRank — and is the
//! strongest classical model on the stint task (Table VI). Matching that
//! behaviour needs a real SVR, not a linear stub.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SVR hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct SvrConfig {
    /// Box constraint.
    pub c: f32,
    /// ε-insensitive tube half-width.
    pub epsilon: f32,
    /// RBF kernel width: `k(a,b) = exp(-gamma ||a-b||²)`.
    pub gamma: f32,
    /// SMO sweeps over the training set.
    pub max_passes: usize,
    pub seed: u64,
}

impl Default for SvrConfig {
    fn default() -> Self {
        SvrConfig {
            c: 10.0,
            epsilon: 0.1,
            gamma: 0.5,
            max_passes: 40,
            seed: 0,
        }
    }
}

/// A fitted ε-SVR model.
pub struct Svr {
    /// Support vectors (all training rows kept; zero-coefficient rows are
    /// skipped at predict time).
    x: Vec<Vec<f32>>,
    /// `beta_i = alpha_i - alpha_i*` — signed dual coefficients.
    beta: Vec<f32>,
    bias: f32,
    gamma: f32,
}

fn rbf(a: &[f32], b: &[f32], gamma: f32) -> f32 {
    let d2: f32 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

impl Svr {
    /// Fit by coordinate ascent on the signed dual coefficients (a
    /// simplified SMO: one β per step, closed-form update, clipped to
    /// `[-C, C]`).
    pub fn fit(x: &[Vec<f32>], y: &[f32], cfg: &SvrConfig) -> Svr {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "cannot fit SVR on no data");
        let n = x.len();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Precompute the kernel matrix: n here is small (hundreds), so the
        // O(n²) memory is the right trade for SMO's repeated lookups.
        let mut k = vec![0.0f32; n * n];
        for i in 0..n {
            for j in i..n {
                let v = rbf(&x[i], &x[j], cfg.gamma);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }

        let mut beta = vec![0.0f32; n];
        let mut bias = {
            let mean: f32 = y.iter().sum::<f32>() / n as f32;
            mean
        };
        // f(x_i) residual cache.
        let mut f: Vec<f32> = (0..n).map(|_| bias).collect();

        for _pass in 0..cfg.max_passes {
            let mut changed = 0usize;
            let mut order: Vec<usize> = (0..n).collect();
            // Shuffle the coordinate order each pass.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                let err = f[i] - y[i];
                // Subgradient of the ε-insensitive loss wrt beta_i.
                let grad = if err > cfg.epsilon {
                    err - cfg.epsilon
                } else if err < -cfg.epsilon {
                    err + cfg.epsilon
                } else {
                    // Inside the tube: shrink beta toward zero.
                    if beta[i].abs() < 1e-8 {
                        continue;
                    }
                    0.0
                };
                let kii = k[i * n + i].max(1e-8);
                let mut new_beta = if grad == 0.0 {
                    // Decay coefficients whose point sits inside the tube.
                    beta[i] * 0.5
                } else {
                    (beta[i] - grad / kii).clamp(-cfg.c, cfg.c)
                };
                if (new_beta - beta[i]).abs() < 1e-7 {
                    continue;
                }
                if new_beta.abs() < 1e-7 {
                    new_beta = 0.0;
                }
                let delta = new_beta - beta[i];
                beta[i] = new_beta;
                for j in 0..n {
                    f[j] += delta * k[i * n + j];
                }
                changed += 1;
            }
            // Recenter the bias on the current residuals.
            let shift: f32 = (0..n).map(|i| y[i] - f[i]).sum::<f32>() / n as f32;
            if shift.abs() > 1e-6 {
                bias += shift;
                for v in f.iter_mut() {
                    *v += shift;
                }
            }
            if changed == 0 {
                break;
            }
        }

        Svr {
            x: x.to_vec(),
            beta,
            bias,
            gamma: cfg.gamma,
        }
    }

    pub fn predict(&self, row: &[f32]) -> f32 {
        let mut acc = self.bias;
        for (xi, &b) in self.x.iter().zip(&self.beta) {
            if b != 0.0 {
                acc += b * rbf(xi, row, self.gamma);
            }
        }
        acc
    }

    /// Number of support vectors (non-zero dual coefficients).
    pub fn n_support(&self) -> usize {
        self.beta.iter().filter(|b| b.abs() > 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_sine_wave() {
        let x: Vec<Vec<f32>> = (0..100)
            .map(|i| vec![i as f32 / 100.0 * std::f32::consts::TAU])
            .collect();
        let y: Vec<f32> = x.iter().map(|v| v[0].sin()).collect();
        let svr = Svr::fit(
            &x,
            &y,
            &SvrConfig {
                gamma: 2.0,
                epsilon: 0.02,
                ..Default::default()
            },
        );
        let mut max_err = 0.0f32;
        for (row, &t) in x.iter().zip(&y) {
            max_err = max_err.max((svr.predict(row) - t).abs());
        }
        assert!(max_err < 0.15, "max error {max_err}");
    }

    #[test]
    fn flat_targets_give_flat_predictions() {
        let x: Vec<Vec<f32>> = (0..30).map(|i| vec![i as f32]).collect();
        let y = vec![4.0f32; 30];
        let svr = Svr::fit(&x, &y, &SvrConfig::default());
        for row in &x {
            assert!((svr.predict(row) - 4.0).abs() < 0.2);
        }
        // Constant data needs no support vectors beyond the bias.
        assert!(svr.n_support() <= 2, "support vectors: {}", svr.n_support());
    }

    #[test]
    fn epsilon_tube_creates_sparsity() {
        let x: Vec<Vec<f32>> = (0..60).map(|i| vec![i as f32 / 10.0]).collect();
        let y: Vec<f32> = x.iter().map(|v| v[0] * 0.01).collect(); // nearly flat
        let wide = Svr::fit(
            &x,
            &y,
            &SvrConfig {
                epsilon: 0.5,
                ..Default::default()
            },
        );
        let narrow = Svr::fit(
            &x,
            &y,
            &SvrConfig {
                epsilon: 0.001,
                ..Default::default()
            },
        );
        assert!(
            wide.n_support() <= narrow.n_support(),
            "wider tube should not need more support vectors ({} vs {})",
            wide.n_support(),
            narrow.n_support()
        );
    }

    #[test]
    fn extrapolates_to_a_constant_far_away() {
        // RBF kernels decay to zero: far from all support vectors the
        // prediction collapses to the bias, i.e. a constant.
        let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32 / 20.0]).collect();
        let y: Vec<f32> = (0..20).map(|i| (i % 5) as f32).collect();
        let svr = Svr::fit(
            &x,
            &y,
            &SvrConfig {
                gamma: 5.0,
                ..Default::default()
            },
        );
        let far1 = svr.predict(&[1000.0]);
        let far2 = svr.predict(&[-1000.0]);
        assert!(far1.is_finite());
        assert!((far1 - far2).abs() < 1e-4, "{far1} vs {far2}");
    }
}
