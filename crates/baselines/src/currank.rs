//! CurRank — the paper's naive baseline: "the rank positions will not
//! change in the future". Deceptively strong on normal laps (Table V:
//! 94% Top1 accuracy, 0.13 MAE), which is precisely why the interesting
//! comparison is on pit-stop-covered laps.

/// The constant-rank forecaster.
#[derive(Clone, Copy, Debug, Default)]
pub struct CurRank;

impl CurRank {
    /// Forecast `horizon` future values given the observed history: repeats
    /// the last observation.
    pub fn forecast(&self, history: &[f32], horizon: usize) -> Vec<f32> {
        let last = history.last().copied().unwrap_or(0.0);
        vec![last; horizon]
    }

    /// TaskB form: predicted change between two pit stops is always zero.
    pub fn forecast_change(&self) -> f32 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeats_last_value() {
        let f = CurRank.forecast(&[3.0, 5.0, 4.0], 3);
        assert_eq!(f, vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn empty_history_forecasts_zero() {
        assert_eq!(CurRank.forecast(&[], 2), vec![0.0, 0.0]);
    }

    #[test]
    fn change_is_zero() {
        assert_eq!(CurRank.forecast_change(), 0.0);
    }
}
