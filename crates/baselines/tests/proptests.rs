//! Property tests on the classical baselines: invariances and sanity laws
//! that hold for any data.

use proptest::prelude::*;
use rpf_baselines::forest::{ForestConfig, RandomForest};
use rpf_baselines::gbt::{GbtConfig, GradientBoostedTrees};
use rpf_baselines::linalg::{ols, solve};
use rpf_baselines::tree::{RegressionTree, TreeConfig};
use rpf_baselines::{Arima, CurRank};

fn xy(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 40) as f32 / (1u64 << 24) as f32
    };
    let mut x = Vec::new();
    let mut y = Vec::new();
    for _ in 0..n {
        let a = next() * 2.0 - 1.0;
        let b = next() * 2.0 - 1.0;
        x.push(vec![a, b]);
        y.push(2.0 * a - b + 0.1 * next());
    }
    (x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tree_predictions_within_target_range(seed in 0u64..500) {
        // A regression tree averages training targets, so predictions can
        // never leave [min(y), max(y)].
        let (x, y) = xy(60, seed);
        let tree = RegressionTree::fit(&x, &y, &TreeConfig::default());
        let lo = y.iter().cloned().fold(f32::MAX, f32::min);
        let hi = y.iter().cloned().fold(f32::MIN, f32::max);
        for row in &x {
            let p = tree.predict(row);
            prop_assert!(p >= lo - 1e-5 && p <= hi + 1e-5, "{p} outside [{lo},{hi}]");
        }
        // Even far outside the training domain.
        let p = tree.predict(&[100.0, -100.0]);
        prop_assert!(p >= lo - 1e-5 && p <= hi + 1e-5);
    }

    #[test]
    fn forest_is_average_of_its_trees(seed in 0u64..200) {
        let (x, y) = xy(50, seed);
        let forest = RandomForest::fit(&x, &y, &ForestConfig { n_trees: 7, seed, ..Default::default() });
        let row = &x[0];
        let preds = forest.tree_predictions(row);
        let mean: f32 = preds.iter().sum::<f32>() / preds.len() as f32;
        prop_assert!((forest.predict(row) - mean).abs() < 1e-5);
    }

    #[test]
    fn gbt_more_rounds_never_hurt_training_fit(seed in 0u64..100) {
        let (x, y) = xy(80, seed);
        let gbt = GradientBoostedTrees::fit(&x, &y, &GbtConfig { n_rounds: 40, ..Default::default() });
        let sse = |k: usize| -> f32 {
            x.iter().zip(&y).map(|(r, &t)| (gbt.predict_staged(r, k) - t).powi(2)).sum()
        };
        // Squared-loss boosting is monotone on the training set (up to fp noise).
        prop_assert!(sse(40) <= sse(10) + 1e-3);
        prop_assert!(sse(10) <= sse(1) + 1e-3);
    }

    #[test]
    fn arima_forecast_of_constant_series_is_flat(level in -50.0f32..50.0) {
        let series = vec![level; 100];
        if let Some(m) = Arima::fit(&series, 1, 0, 0) {
            let (f, _) = m.forecast(&series, 5);
            for v in f {
                prop_assert!((v - level).abs() < 0.5 + level.abs() * 0.05, "{v} vs {level}");
            }
        }
    }

    #[test]
    fn arima_shift_equivariance(seed in 0u64..100, shift in -20.0f32..20.0) {
        // Fitting on y + c should forecast f + c (AR with intercept is
        // shift-equivariant up to numerical noise).
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        };
        let base: Vec<f32> = (0..200).map(|_| next()).collect();
        let shifted: Vec<f32> = base.iter().map(|v| v + shift).collect();
        let (fa, fb) = match (Arima::fit(&base, 1, 0, 0), Arima::fit(&shifted, 1, 0, 0)) {
            (Some(a), Some(b)) => (a.forecast(&base, 3).0, b.forecast(&shifted, 3).0),
            _ => return Ok(()),
        };
        for (a, b) in fa.iter().zip(&fb) {
            prop_assert!((b - a - shift).abs() < 0.2, "{a} + {shift} vs {b}");
        }
    }

    #[test]
    fn currank_horizon_invariance(hist in prop::collection::vec(-10.0f32..40.0, 1..30), h in 1usize..10) {
        let f = CurRank.forecast(&hist, h);
        prop_assert_eq!(f.len(), h);
        prop_assert!(f.iter().all(|v| v == hist.last().unwrap()));
    }

    #[test]
    fn solve_then_multiply_recovers_rhs(seed in 0u64..300) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s >> 40) as f64 / (1u64 << 24) as f64) - 0.5
        };
        let n = 4usize;
        // Diagonally dominant => well conditioned and nonsingular.
        let mut a = vec![0.0f64; n * n];
        for r in 0..n {
            for c in 0..n {
                a[r * n + c] = next();
            }
            a[r * n + r] += 3.0;
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve(&a, &b, n).expect("well-conditioned system");
        for r in 0..n {
            let acc: f64 = (0..n).map(|c| a[r * n + c] * x[c]).sum();
            prop_assert!((acc - b[r]).abs() < 1e-9);
        }
    }

    #[test]
    fn ols_residuals_orthogonal_to_design(seed in 0u64..200) {
        // The defining normal-equation property: Xᵀ(y - X beta) ≈ 0.
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s >> 40) as f64 / (1u64 << 24) as f64) - 0.5
        };
        let rows = 30usize;
        let cols = 3usize;
        let x: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
        let y: Vec<f64> = (0..rows).map(|_| next()).collect();
        let beta = ols(&x, &y, rows, cols, 0.0).expect("full rank w.h.p.");
        for c in 0..cols {
            let mut dot = 0.0;
            for r in 0..rows {
                let pred: f64 = (0..cols).map(|k| x[r * cols + k] * beta[k]).sum();
                dot += x[r * cols + c] * (y[r] - pred);
            }
            prop_assert!(dot.abs() < 1e-7, "column {c} residual dot {dot}");
        }
    }
}
