//! RankNet — rank position forecasting in car racing, with cause–effect
//! decomposition and probabilistic outputs.
//!
//! This is the paper's primary contribution (Peng et al., IPDPS 2021),
//! reproduced in full:
//!
//! * [`features`] — Table I's feature set extracted from race timing
//!   records, plus the Fig 7 optimization features (`LeaderPitCount`,
//!   `TotalPitCount`, shifted race status),
//! * [`instances`] — sliding-window training instances with the
//!   rank-change loss weighting of Fig 7 step 1,
//! * [`rank_model`] — the DeepAR-style probabilistic LSTM encoder–decoder
//!   (Fig 5c, Algorithms 1–2); doubles as the DeepAR baseline when race
//!   status covariates are disabled, and as RankNet-Joint when trained with
//!   the multivariate `[Rank, LapStatus, TrackStatus]` target,
//! * [`pit_model`] — the MLP with probabilistic output that forecasts the
//!   lap of the next pit stop from `CautionLaps`/`PitAge` (Fig 5b),
//! * [`ranknet`] — the composition: PitModel → future race status →
//!   RankModel → sampled rank trajectories (Fig 5a), in Oracle / MLP /
//!   Joint variants (Table III),
//! * [`transformer_model`] — the Transformer encoder–decoder variant of
//!   §IV-I,
//! * [`baseline_adapters`] — CurRank / ARIMA / RandomForest / SVR / XGBoost
//!   wrapped in the common forecasting interface,
//! * [`metrics`] — MAE, Top1Acc, SignAcc and the quantile ρ-risk,
//! * [`eval`] — the experiment runners that regenerate Tables V–VII and
//!   Figs 7–9.

pub mod baseline_adapters;
pub mod config;
pub mod engine;
pub mod eval;
pub mod features;
pub mod instances;
pub mod lifecycle;
pub mod metrics;
pub mod persist;
pub mod pit_model;
pub mod rank_model;
pub mod ranknet;
pub mod transformer_model;

pub use config::{DecodeBackend, EngineConfig, RankNetConfig};
pub use engine::{
    currank_forecast, EngineError, EngineForecast, ForecastEngine, ForecastRequest, PhaseTimings,
};
pub use features::{extract_sequences, CarSequence, RaceContext};
pub use lifecycle::{
    rank_divergence_milli, FineTuneConfig, LifecycleError, Manifest, ModelSlot, ModelStore,
    OnlineFineTuner, VersionedModel,
};
pub use pit_model::{PitModel, PitState};
pub use rank_model::RankModel;
pub use ranknet::{RankNet, RankNetVariant};
