//! Zero-downtime model lifecycle (DESIGN.md §14): versioned artifacts on
//! disk, an atomically swappable in-memory model slot, and an online
//! fine-tuning loop that publishes candidate versions.
//!
//! Three pieces compose:
//!
//! * [`ModelStore`] — a crash-safe directory of versioned model artifacts.
//!   Every version is a directory `versions/v{id:06}/` holding the model
//!   snapshot (`model.json`, written via [`crate::persist::atomic_write`])
//!   and a checksummed [`Manifest`] (`manifest.json`). The manifest is
//!   written **last** and is the commit point: a directory without one is a
//!   torn artifact from a crash mid-publish and is quarantined, never
//!   loaded. Version ids are monotone and never reused, even across
//!   quarantines.
//! * [`ModelSlot`] — the shared ownership cell a live engine reads its
//!   model through. Readers are lock-free in the steady state (one atomic
//!   generation load plus a thread-local cache hit); a swap installs a new
//!   [`VersionedModel`] atomically. In-flight work that already loaded the
//!   old `Arc` finishes on the old version; every load after the swap sees
//!   the new one.
//! * [`OnlineFineTuner`] — consumes newly observed races, fine-tunes a
//!   working copy in bounded per-round slices via
//!   [`rpf_nn::train::ResumableFineTuner`] (checkpoint-carrying, so N
//!   rounds ≡ one long run), and publishes candidates to the store.
//!
//! The serving-side state machine (shadow evaluation, promote / rollback
//! gates) lives in `rpf-serve`; this module owns everything below it.

use std::cell::RefCell;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::features::RaceContext;
use crate::instances::TrainingSet;
use crate::persist::{atomic_write, Fnv1a};
use crate::rank_model::ForecastSamples;
use crate::ranknet::RankNet;
use rpf_nn::train::{ResumableFineTuner, TrainReport};

/// Manifest schema version.
const MANIFEST_VERSION: u32 = 1;

/// Width of the zero-padded version id in directory names (`v000001`).
const VERSION_WIDTH: usize = 6;

// ---- errors ----------------------------------------------------------------

/// Why a lifecycle operation failed. Every variant carries enough context
/// to act on: a [`LifecycleError::Torn`] or [`LifecycleError::Corrupt`]
/// version has already been quarantined by the time the error is returned.
#[derive(Clone, Debug, PartialEq)]
pub enum LifecycleError {
    /// Filesystem trouble (path + cause).
    Io(String),
    /// The requested version does not exist in the store.
    NotFound(u64),
    /// The artifact exists but its bytes do not match the manifest
    /// checksum, or the snapshot fails its own integrity checks.
    Corrupt { version: u64, detail: String },
    /// The artifact directory has no committed manifest — a crash landed
    /// between the model write and the manifest write.
    Torn { version: u64 },
    /// Fine-tuning failed (wraps [`rpf_nn::train::TrainError`]).
    Train(String),
    /// API misuse (e.g. a fine-tune round before any data was ingested).
    Invalid(String),
}

impl std::fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LifecycleError::Io(s) => write!(f, "lifecycle io: {s}"),
            LifecycleError::NotFound(v) => write!(f, "model version {v} not found"),
            LifecycleError::Corrupt { version, detail } => {
                write!(f, "model version {version} corrupt: {detail}")
            }
            LifecycleError::Torn { version } => {
                write!(f, "model version {version} torn (no committed manifest)")
            }
            LifecycleError::Train(s) => write!(f, "fine-tune failed: {s}"),
            LifecycleError::Invalid(s) => write!(f, "lifecycle: {s}"),
        }
    }
}

impl std::error::Error for LifecycleError {}

fn io_err(what: &str, path: &Path, e: impl std::fmt::Display) -> LifecycleError {
    LifecycleError::Io(format!("{what} {}: {e}", path.display()))
}

// ---- versioned model + slot ------------------------------------------------

/// A model pinned to its lifecycle version. Version 0 means "unversioned" —
/// an engine built directly from a bare [`RankNet`] without a store.
#[derive(Clone)]
pub struct VersionedModel {
    pub version: u64,
    pub model: Arc<RankNet>,
}

impl VersionedModel {
    pub fn new(version: u64, model: impl Into<Arc<RankNet>>) -> VersionedModel {
        VersionedModel {
            version,
            model: model.into(),
        }
    }
}

/// Process-unique slot ids, so the thread-local reader cache can tell two
/// slots apart without comparing pointers.
static NEXT_SLOT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread `(slot id, generation, model)` cache backing the
    /// lock-free read path of [`ModelSlot::load`]. Bounded — a thread that
    /// touches many slots evicts its oldest entry.
    static SLOT_CACHE: RefCell<Vec<(u64, u64, Arc<VersionedModel>)>> =
        const { RefCell::new(Vec::new()) };
}

/// Most slots a single thread caches concurrently. Engines (and therefore
/// slots) are few and long-lived; this only matters for tests that churn
/// engines.
const SLOT_CACHE_CAP: usize = 8;

/// The atomically swappable model cell shared between a serving engine and
/// the lifecycle controller.
///
/// **Read path (lock-free in the steady state):** [`ModelSlot::load`] does
/// one `Acquire` load of the generation counter; if it matches the calling
/// thread's cached generation for this slot, the cached
/// `Arc<VersionedModel>` is cloned and returned without taking any lock.
/// Only the first load after a swap takes the mutex (once per thread per
/// swap) to refresh the cache.
///
/// **Swap path:** [`ModelSlot::swap`] replaces the model under the mutex,
/// then bumps the generation with `Release`. The order matters: readers
/// that observe the new generation are guaranteed to refresh into the new
/// model; readers that raced and cached the new model under the old
/// generation merely pay one redundant refresh. Work that cloned the old
/// `Arc` before the swap keeps it alive and finishes on the old version —
/// a swap never invalidates an in-flight batch.
pub struct ModelSlot {
    id: u64,
    gen: AtomicU64,
    current: Mutex<Arc<VersionedModel>>,
}

impl ModelSlot {
    pub fn new(model: VersionedModel) -> Arc<ModelSlot> {
        Arc::new(ModelSlot {
            id: NEXT_SLOT_ID.fetch_add(1, Ordering::Relaxed),
            gen: AtomicU64::new(1),
            current: Mutex::new(Arc::new(model)),
        })
    }

    /// The current model. One atomic load on the hot path; see the type
    /// docs for the full protocol.
    pub fn load(&self) -> Arc<VersionedModel> {
        let gen = self.gen.load(Ordering::Acquire);
        let hit = SLOT_CACHE.with(|c| {
            c.borrow()
                .iter()
                .find(|(id, g, _)| *id == self.id && *g == gen)
                .map(|(_, _, m)| Arc::clone(m))
        });
        if let Some(m) = hit {
            return m;
        }
        // Slow path (first load on this thread, or a swap happened):
        // refresh from the mutex. Generation was read *before* taking the
        // lock, so the cached model is at least as new as the cached
        // generation — staleness is impossible, only a spare refresh.
        let m = Arc::clone(&self.lock());
        SLOT_CACHE.with(|c| {
            let mut c = c.borrow_mut();
            c.retain(|(id, _, _)| *id != self.id);
            if c.len() >= SLOT_CACHE_CAP {
                c.remove(0);
            }
            c.push((self.id, gen, Arc::clone(&m)));
        });
        m
    }

    /// Install a new model; returns the one it replaced. Atomic from every
    /// reader's point of view: a load returns either the old or the new
    /// model, never a mixture, and post-swap loads return the new one.
    pub fn swap(&self, next: VersionedModel) -> Arc<VersionedModel> {
        let mut cur = self.lock();
        // The injected "panic mid-swap" fires here — after the decision to
        // swap, before publication. The old model stays installed; the
        // poisoned mutex is recovered by every other accessor.
        #[cfg(feature = "fault-inject")]
        fault::maybe_panic_mid_swap();
        let prev = std::mem::replace(&mut *cur, Arc::new(next));
        self.gen.fetch_add(1, Ordering::Release);
        prev
    }

    /// Version of the currently installed model.
    pub fn version(&self) -> u64 {
        self.load().version
    }

    /// Swap count since construction (starts at 1).
    pub fn generation(&self) -> u64 {
        self.gen.load(Ordering::Acquire)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Arc<VersionedModel>> {
        // The slot holds a plain Arc (no invariant a panicking swapper
        // could break mid-update), so a poisoned lock is recovered — one
        // crashed swap must not take serving down.
        self.current.lock().unwrap_or_else(|p| p.into_inner())
    }
}

// ---- on-disk store ---------------------------------------------------------

/// Committed metadata of one published version. Written after the model
/// artifact; its presence marks the version as fully published.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct Manifest {
    /// Manifest schema version.
    pub format: u32,
    /// The version id (matches the directory name).
    pub version: u64,
    /// FNV-1a checksum of the raw `model.json` bytes.
    pub checksum: u64,
    /// Size of `model.json` in bytes.
    pub bytes: u64,
    /// Version this one was fine-tuned from, if any.
    pub parent: Option<u64>,
    /// Free-form provenance note ("seed train", "online round 3", ...).
    pub note: String,
}

/// Crash-safe versioned model store.
///
/// ```text
/// root/
///   versions/v000001/model.json      # atomic_write (tmp + fsync + rename)
///   versions/v000001/manifest.json   # written last = commit point
///   CURRENT                          # ascii id of the serving version
///   quarantine/v000002-torn/         # failed artifacts, kept for autopsy
/// ```
///
/// Publication order is the crash-safety argument: `model.json` lands
/// first (itself atomic), `manifest.json` second (also atomic). A crash
/// before the manifest rename leaves a directory without a manifest —
/// recognisably torn, quarantined by [`ModelStore::open`], and its version
/// id is never reused. A crash after leaves a fully published version.
/// There is no window in which a half-written artifact can be loaded.
pub struct ModelStore {
    root: PathBuf,
}

impl ModelStore {
    /// Open (creating if needed) a store rooted at `root`, then sweep for
    /// torn artifacts: any version directory without a committed manifest
    /// is moved to `quarantine/`. Returns the store; use
    /// [`ModelStore::quarantined`] to inspect what the sweep moved.
    pub fn open(root: impl Into<PathBuf>) -> Result<ModelStore, LifecycleError> {
        let root = root.into();
        let store = ModelStore { root };
        for dir in [store.versions_dir(), store.quarantine_dir()] {
            fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, e))?;
        }
        store.sweep_torn()?;
        Ok(store)
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn versions_dir(&self) -> PathBuf {
        self.root.join("versions")
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    fn version_dir(&self, version: u64) -> PathBuf {
        self.versions_dir()
            .join(format!("v{version:0width$}", width = VERSION_WIDTH))
    }

    fn current_path(&self) -> PathBuf {
        self.root.join("CURRENT")
    }

    /// Parse a `v{id:06}` (or `v{id:06}-reason`) directory name.
    fn parse_version(name: &str) -> Option<u64> {
        let digits = name.strip_prefix('v')?;
        let digits = digits.split('-').next()?;
        digits.parse().ok()
    }

    /// Move every manifest-less version directory into quarantine.
    fn sweep_torn(&self) -> Result<Vec<u64>, LifecycleError> {
        let mut torn = Vec::new();
        for v in self.versions()? {
            if !self.version_dir(v).join("manifest.json").exists() {
                self.quarantine(v, "torn")?;
                torn.push(v);
            }
        }
        Ok(torn)
    }

    /// Committed *and* torn version ids under `versions/`, ascending.
    fn versions_raw(&self) -> Result<Vec<u64>, LifecycleError> {
        let dir = self.versions_dir();
        let mut out = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| io_err("read", &dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read", &dir, e))?;
            if let Some(v) = entry.file_name().to_str().and_then(Self::parse_version) {
                out.push(v);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Version ids present under `versions/`, ascending. After
    /// [`ModelStore::open`]'s sweep these are all committed.
    pub fn versions(&self) -> Result<Vec<u64>, LifecycleError> {
        self.versions_raw()
    }

    /// Highest committed version id, if any.
    pub fn latest(&self) -> Result<Option<u64>, LifecycleError> {
        Ok(self
            .versions()?
            .into_iter()
            .filter(|&v| self.version_dir(v).join("manifest.json").exists())
            .max())
    }

    /// Next version id: one past the highest id ever used, including
    /// quarantined ones — a quarantined id is never reissued.
    fn next_version(&self) -> Result<u64, LifecycleError> {
        let mut max = 0;
        for v in self.versions_raw()? {
            max = max.max(v);
        }
        let qdir = self.quarantine_dir();
        let entries = fs::read_dir(&qdir).map_err(|e| io_err("read", &qdir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read", &qdir, e))?;
            if let Some(v) = entry.file_name().to_str().and_then(Self::parse_version) {
                max = max.max(v);
            }
        }
        Ok(max + 1)
    }

    /// Publish a model as the next version. Crash-safe: the version is
    /// visible to [`ModelStore::load`] only once its manifest has landed.
    /// Does **not** touch `CURRENT` — promotion is a separate, explicit
    /// [`ModelStore::set_current`].
    pub fn publish(
        &self,
        model: &RankNet,
        parent: Option<u64>,
        note: &str,
    ) -> Result<Manifest, LifecycleError> {
        let version = self.next_version()?;
        let dir = self.version_dir(version);
        fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, e))?;

        let json = serde_json::to_string(&model.to_saved())
            .map_err(|e| LifecycleError::Io(format!("serialize model: {e}")))?;
        let bytes = json.as_bytes();
        let model_path = dir.join("model.json");
        atomic_write(&model_path, bytes).map_err(LifecycleError::Io)?;

        // Injected crash between the artifact write and the manifest
        // commit: the directory is left torn, exactly as a real crash
        // would, and the next open() quarantines it.
        #[cfg(feature = "fault-inject")]
        if fault::take_tear_publish() {
            return Err(LifecycleError::Torn { version });
        }

        let mut h = Fnv1a::new();
        h.write(bytes);
        let manifest = Manifest {
            format: MANIFEST_VERSION,
            version,
            checksum: h.finish(),
            bytes: bytes.len() as u64,
            parent,
            note: note.to_string(),
        };
        let mjson = serde_json::to_string(&manifest)
            .map_err(|e| LifecycleError::Io(format!("serialize manifest: {e}")))?;
        atomic_write(dir.join("manifest.json"), mjson.as_bytes()).map_err(LifecycleError::Io)?;
        Ok(manifest)
    }

    /// Read a version's committed manifest.
    pub fn manifest(&self, version: u64) -> Result<Manifest, LifecycleError> {
        let dir = self.version_dir(version);
        if !dir.exists() {
            return Err(LifecycleError::NotFound(version));
        }
        let path = dir.join("manifest.json");
        if !path.exists() {
            return Err(LifecycleError::Torn { version });
        }
        let json = fs::read_to_string(&path).map_err(|e| io_err("read", &path, e))?;
        let m: Manifest = serde_json::from_str(&json).map_err(|e| LifecycleError::Corrupt {
            version,
            detail: format!("manifest parse: {e}"),
        })?;
        if m.format != MANIFEST_VERSION {
            return Err(LifecycleError::Corrupt {
                version,
                detail: format!("manifest format {} (expected {MANIFEST_VERSION})", m.format),
            });
        }
        Ok(m)
    }

    /// Load a version, verifying the artifact bytes against the manifest
    /// checksum and the snapshot against its own embedded checksum. A
    /// mismatch (or a torn directory) quarantines the version before the
    /// error is returned — a corrupt artifact can be hit at most once.
    pub fn load(&self, version: u64) -> Result<(RankNet, Manifest), LifecycleError> {
        let manifest = match self.manifest(version) {
            Ok(m) => m,
            Err(e @ LifecycleError::Torn { .. }) => {
                self.quarantine(version, "torn")?;
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        let path = self.version_dir(version).join("model.json");
        let bytes = fs::read(&path).map_err(|e| io_err("read", &path, e))?;
        let mut h = Fnv1a::new();
        h.write(&bytes);
        let sum = h.finish();
        if sum != manifest.checksum {
            self.quarantine(version, "corrupt")?;
            return Err(LifecycleError::Corrupt {
                version,
                detail: format!(
                    "artifact bytes hash to {sum:#018x}, manifest says {:#018x}",
                    manifest.checksum
                ),
            });
        }
        let json = String::from_utf8(bytes).map_err(|e| {
            // Checksum matched, so the manifest itself endorsed non-UTF-8
            // bytes: quarantine rather than retry forever.
            let _ = self.quarantine(version, "corrupt");
            LifecycleError::Corrupt {
                version,
                detail: format!("artifact not UTF-8: {e}"),
            }
        })?;
        let saved = serde_json::from_str(&json).map_err(|e| {
            let _ = self.quarantine(version, "corrupt");
            LifecycleError::Corrupt {
                version,
                detail: format!("artifact parse: {e}"),
            }
        })?;
        let model = RankNet::from_saved(&saved).map_err(|e| {
            let _ = self.quarantine(version, "corrupt");
            LifecycleError::Corrupt { version, detail: e }
        })?;
        Ok((model, manifest))
    }

    /// The version `CURRENT` points at, if set.
    pub fn current(&self) -> Result<Option<u64>, LifecycleError> {
        let path = self.current_path();
        if !path.exists() {
            return Ok(None);
        }
        let s = fs::read_to_string(&path).map_err(|e| io_err("read", &path, e))?;
        s.trim()
            .parse()
            .map(Some)
            .map_err(|e| LifecycleError::Io(format!("parse CURRENT '{}': {e}", s.trim())))
    }

    /// Atomically point `CURRENT` at a committed version.
    pub fn set_current(&self, version: u64) -> Result<(), LifecycleError> {
        self.manifest(version)?; // refuse to promote a torn/missing version
        atomic_write(self.current_path(), version.to_string().as_bytes())
            .map_err(LifecycleError::Io)
    }

    /// Load the version `CURRENT` points at.
    pub fn load_current(&self) -> Result<(RankNet, Manifest), LifecycleError> {
        match self.current()? {
            Some(v) => self.load(v),
            None => Err(LifecycleError::Invalid("no CURRENT version set".into())),
        }
    }

    /// Move a version directory into `quarantine/` with a reason suffix.
    /// Keeps the bytes for post-mortem instead of deleting them. If
    /// `CURRENT` points at the quarantined version, it is cleared.
    pub fn quarantine(&self, version: u64, reason: &str) -> Result<PathBuf, LifecycleError> {
        let src = self.version_dir(version);
        if !src.exists() {
            return Err(LifecycleError::NotFound(version));
        }
        let base = format!("v{version:0width$}-{reason}", width = VERSION_WIDTH);
        let mut dst = self.quarantine_dir().join(&base);
        let mut n = 1;
        while dst.exists() {
            dst = self.quarantine_dir().join(format!("{base}-{n}"));
            n += 1;
        }
        fs::rename(&src, &dst).map_err(|e| io_err("quarantine", &src, e))?;
        if self.current()? == Some(version) {
            fs::remove_file(self.current_path())
                .map_err(|e| io_err("clear CURRENT", &self.current_path(), e))?;
        }
        Ok(dst)
    }

    /// Names of quarantined artifact directories (`v000002-torn`, ...),
    /// sorted.
    pub fn quarantined(&self) -> Result<Vec<String>, LifecycleError> {
        let dir = self.quarantine_dir();
        let mut out = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| io_err("read", &dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read", &dir, e))?;
            if let Some(name) = entry.file_name().to_str() {
                out.push(name.to_string());
            }
        }
        out.sort();
        Ok(out)
    }
}

// ---- online fine-tuning ----------------------------------------------------

/// Knobs of the incremental fine-tuning loop.
#[derive(Clone, Debug)]
pub struct FineTuneConfig {
    /// Epochs trained per [`OnlineFineTuner::round`] call.
    pub epochs_per_round: usize,
    /// Learning-rate multiplier applied to the base model's configured LR
    /// (fine-tuning nudges, it does not retrain; cf. `RankNet::fine_tune`).
    pub lr_scale: f32,
    /// Window stride when building training instances from ingested races.
    pub stride: usize,
    /// Window stride for the validation split.
    pub val_stride: usize,
}

impl Default for FineTuneConfig {
    fn default() -> FineTuneConfig {
        FineTuneConfig {
            epochs_per_round: 1,
            lr_scale: 0.3,
            stride: 1,
            val_stride: 4,
        }
    }
}

/// Incremental fine-tuning loop: ingest newly observed races, train the
/// working copy one bounded round at a time, publish candidates.
///
/// The round driver is [`rpf_nn::train::ResumableFineTuner`], so on a
/// fixed ingested set, `k` rounds of one epoch land on weights
/// bit-identical to one `k`-epoch run — serving can interleave rounds with
/// traffic without changing what is learned. Ingesting new data resets the
/// optimizer trajectory (the instance set changed; resuming a batch
/// iterator into it would silently desync the shuffle sequence).
pub struct OnlineFineTuner {
    model: RankNet,
    tuner: ResumableFineTuner,
    cfg: FineTuneConfig,
    parent: Option<u64>,
    data: Option<(TrainingSet, TrainingSet)>,
}

impl OnlineFineTuner {
    /// Start from a base model (typically the serving version); `parent`
    /// is its store version for manifest provenance, `None` if unmanaged.
    pub fn new(base: &RankNet, parent: Option<u64>, cfg: FineTuneConfig) -> OnlineFineTuner {
        let mut model = base.clone();
        model.rank_model.cfg.learning_rate *= cfg.lr_scale;
        OnlineFineTuner {
            model,
            tuner: ResumableFineTuner::new(),
            cfg,
            parent,
            data: None,
        }
    }

    /// Replace the working data with newly observed races. Resets the
    /// round checkpoint — see the type docs for why.
    pub fn ingest(&mut self, train: Vec<RaceContext>, val: Vec<RaceContext>) {
        let ts = TrainingSet::build(train, &self.model.cfg, self.cfg.stride.max(1));
        let vs = TrainingSet::build(val, &self.model.cfg, self.cfg.val_stride.max(1));
        self.data = Some((ts, vs));
        self.tuner.reset();
    }

    /// Run one bounded fine-tuning round (`epochs_per_round` epochs) on the
    /// ingested data, continuing the checkpointed trajectory.
    pub fn round(&mut self) -> Result<TrainReport, LifecycleError> {
        let OnlineFineTuner {
            model,
            tuner,
            cfg,
            data,
            ..
        } = self;
        let (ts, vs) = data
            .as_ref()
            .ok_or_else(|| LifecycleError::Invalid("round() before ingest()".into()))?;
        if ts.instances.is_empty() {
            return Err(LifecycleError::Invalid(
                "ingested races yield no training windows".into(),
            ));
        }
        tuner
            .step_with(cfg.epochs_per_round, |cap, resume, on_epoch| {
                let old = model.rank_model.cfg.max_epochs;
                model.rank_model.cfg.max_epochs = cap;
                let r = model
                    .rank_model
                    .train_resumable(ts, vs, resume, Some(on_epoch));
                model.rank_model.cfg.max_epochs = old;
                r
            })
            .map_err(|e| LifecycleError::Train(e.to_string()))
    }

    /// The current working copy (candidate weights).
    pub fn candidate(&self) -> &RankNet {
        &self.model
    }

    /// Rounds completed since the last [`OnlineFineTuner::ingest`].
    pub fn rounds_run(&self) -> u64 {
        self.tuner.rounds_run()
    }

    /// Epoch the next round resumes at.
    pub fn next_epoch(&self) -> usize {
        self.tuner.next_epoch()
    }

    /// Publish the candidate to the store; the new version becomes the
    /// parent of subsequent publishes.
    pub fn publish(&mut self, store: &ModelStore, note: &str) -> Result<Manifest, LifecycleError> {
        let m = store.publish(&self.model, self.parent, note)?;
        self.parent = Some(m.version);
        Ok(m)
    }
}

// ---- shadow-evaluation divergence ------------------------------------------

/// Rank divergence between two forecasts of the same request, in
/// milli-rank units: `round(1000 × mean |a − b|)` over every
/// `(car, sample, step)` present in both. Integer so it can feed a
/// fixed-edge [`rpf_obs`] histogram; 0 means bit-equal mean behaviour,
/// 1000 means the candidate moves cars one whole rank position on average.
pub fn rank_divergence_milli(a: &ForecastSamples, b: &ForecastSamples) -> u64 {
    let mut sum = 0.0f64;
    let mut n = 0u64;
    for (ca, cb) in a.iter().zip(b) {
        for (sa, sb) in ca.iter().zip(cb) {
            for (&va, &vb) in sa.iter().zip(sb) {
                if va.is_finite() && vb.is_finite() {
                    sum += (va as f64 - vb as f64).abs();
                    n += 1;
                }
            }
        }
    }
    if n == 0 {
        return 0;
    }
    (sum / n as f64 * 1000.0).round() as u64
}

// ---- fault injection -------------------------------------------------------

/// Lifecycle fault hooks, compiled in only with the `fault-inject`
/// feature. Each fault is one-shot: armed, consumed by the next matching
/// operation, then clear.
#[cfg(feature = "fault-inject")]
pub mod fault {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TEAR_NEXT_PUBLISH: AtomicBool = AtomicBool::new(false);
    static PANIC_NEXT_SWAP: AtomicBool = AtomicBool::new(false);

    /// The next [`super::ModelStore::publish`] crashes between the model
    /// write and the manifest commit, leaving a torn artifact.
    pub fn arm_tear_next_publish() {
        TEAR_NEXT_PUBLISH.store(true, Ordering::SeqCst);
    }

    /// The next [`super::ModelSlot::swap`] panics after taking the slot
    /// lock, before publication — the old model stays installed.
    pub fn arm_panic_next_swap() {
        PANIC_NEXT_SWAP.store(true, Ordering::SeqCst);
    }

    /// Disarm all lifecycle faults.
    pub fn clear() {
        TEAR_NEXT_PUBLISH.store(false, Ordering::SeqCst);
        PANIC_NEXT_SWAP.store(false, Ordering::SeqCst);
    }

    pub(crate) fn take_tear_publish() -> bool {
        TEAR_NEXT_PUBLISH.swap(false, Ordering::SeqCst)
    }

    pub(crate) fn maybe_panic_mid_swap() {
        if PANIC_NEXT_SWAP.swap(false, Ordering::SeqCst) {
            panic!("injected fault: panic mid-swap");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_load_swap_generations() {
        let m1 = Arc::new(tiny_model());
        let slot = ModelSlot::new(VersionedModel::new(1, Arc::clone(&m1)));
        assert_eq!(slot.version(), 1);
        let g0 = slot.generation();
        let held = slot.load();
        let prev = slot.swap(VersionedModel::new(2, Arc::clone(&m1)));
        assert_eq!(prev.version, 1);
        assert_eq!(slot.version(), 2);
        assert_eq!(slot.generation(), g0 + 1);
        // The pre-swap load still points at the old version.
        assert_eq!(held.version, 1);
    }

    #[test]
    fn divergence_zero_for_identical() {
        let s: ForecastSamples = vec![vec![vec![1.0, 2.0], vec![1.5, 2.5]]];
        assert_eq!(rank_divergence_milli(&s, &s), 0);
        let t: ForecastSamples = vec![vec![vec![2.0, 3.0], vec![2.5, 3.5]]];
        assert_eq!(rank_divergence_milli(&s, &t), 1000);
    }

    fn tiny_model() -> RankNet {
        use crate::config::RankNetConfig;
        use crate::rank_model::{RankModel, TargetKind};
        use crate::ranknet::RankNetVariant;
        let cfg = RankNetConfig {
            context_len: 4,
            prediction_len: 2,
            hidden_dim: 4,
            num_layers: 1,
            embedding_dim: 2,
            num_samples: 2,
            max_epochs: 1,
            batch_size: 4,
            ..RankNetConfig::default()
        };
        let rank_model = RankModel::new(cfg.clone(), TargetKind::RankOnly, 7);
        RankNet {
            variant: RankNetVariant::Oracle,
            cfg,
            rank_model,
            pit_model: None,
        }
    }
}
