//! The forecast engine: a batched, thread-parallel front end over
//! [`RankNet`] with deterministic counter-derived sampling.
//!
//! The raw model API re-runs the LSTM encoder on every call and threads a
//! mutable `StdRng` through the sampler, which couples results to call
//! order and thread schedule. The engine fixes both:
//!
//! * **Determinism** — every call's draws derive from
//!   `(engine seed, race key, origin)` through [`RngStreams`], so a
//!   forecast is a pure function of the model and those keys. Thread count
//!   and batching change wall-clock time, never samples.
//! * **Encoder amortisation** — encoder states are cached per
//!   `(race key, origin)`; repeated forecasts at one origin (different
//!   horizons, sample counts, or models of a comparison sweep) pay the
//!   encoder once.
//! * **Observability** — per-phase wall-clock counters (encode / covariate
//!   sampling / decode) and a trajectory count, for throughput reporting.
//! * **Graceful degradation** (DESIGN.md §9) — requests are validated up
//!   front into a typed [`EngineError`]; decoder trajectories that come
//!   back non-finite (a crashed worker, numerically broken weights, an
//!   injected fault) are replaced with the CurRank baseline and flagged,
//!   so a serving engine returns a usable answer instead of panicking.

use crate::features::RaceContext;
use crate::rank_model::{EncoderState, ForecastSamples};
use crate::ranknet::RankNet;
use rpf_nn::RngStreams;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One forecast of a batch: `race` indexes the context slice handed to
/// [`ForecastEngine::forecast_batch`].
#[derive(Clone, Copy, Debug)]
pub struct ForecastRequest {
    pub race: usize,
    pub origin: usize,
    pub horizon: usize,
    pub n_samples: usize,
}

/// Why the engine rejected a forecast request (before running the model).
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// `request.race` does not index the supplied context slice.
    RaceOutOfRange { race: usize, n_contexts: usize },
    /// The forecast origin must be at least lap 1 (the decoder conditions
    /// on the lap before the origin).
    BadOrigin { origin: usize },
    /// A forecast needs at least one step ahead.
    BadHorizon,
    /// A Monte-Carlo forecast needs at least one sample.
    BadSampleCount,
    /// An input feature of a car still in the race is NaN or infinite.
    NonFiniteFeature { car: usize, lap: usize },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::RaceOutOfRange { race, n_contexts } => {
                write!(f, "race index {race} out of range ({n_contexts} contexts)")
            }
            EngineError::BadOrigin { origin } => {
                write!(f, "forecast origin {origin} must be >= 1")
            }
            EngineError::BadHorizon => write!(f, "forecast horizon must be >= 1"),
            EngineError::BadSampleCount => write!(f, "sample count must be >= 1"),
            EngineError::NonFiniteFeature { car, lap } => {
                write!(
                    f,
                    "non-finite feature for car slot {car} at lap index {lap}"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A forecast plus its degradation report.
#[derive(Clone, Debug)]
pub struct EngineForecast {
    pub samples: ForecastSamples,
    /// True when at least one trajectory fell back to the CurRank baseline.
    pub degraded: bool,
    /// How many trajectories fell back.
    pub degraded_trajectories: u64,
}

/// Snapshot of the engine's accumulated phase counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Time spent running the encoder (cache misses only).
    pub encode: Duration,
    /// Time spent sampling covariate futures (PitModel step).
    pub covariates: Duration,
    /// Time spent in ancestral decoding (the Monte-Carlo bulk).
    pub decode: Duration,
    /// Forecast calls served.
    pub calls: u64,
    /// Calls that reused a cached encoder state.
    pub encoder_reuses: u64,
    /// Trajectories sampled (`active cars × n_samples`, summed over calls).
    pub trajectories: u64,
    /// Trajectories that came back non-finite and fell back to CurRank.
    pub degraded_trajectories: u64,
    /// Requests rejected by validation (never reached the model).
    pub rejected_requests: u64,
}

impl PhaseTimings {
    /// Sampled trajectories per second of decode time.
    pub fn trajectories_per_sec(&self) -> f64 {
        let s = self.decode.as_secs_f64();
        if s > 0.0 {
            self.trajectories as f64 / s
        } else {
            0.0
        }
    }
}

/// Deterministic parallel Monte-Carlo forecast engine over a trained
/// [`RankNet`].
pub struct ForecastEngine<'m> {
    model: &'m RankNet,
    seed: u64,
    threads: usize,
    cache: Mutex<HashMap<(usize, usize), EncoderState>>,
    encode_ns: AtomicU64,
    covariate_ns: AtomicU64,
    decode_ns: AtomicU64,
    calls: AtomicU64,
    encoder_reuses: AtomicU64,
    trajectories: AtomicU64,
    degraded_trajectories: AtomicU64,
    rejected_requests: AtomicU64,
}

impl<'m> ForecastEngine<'m> {
    /// Build an engine with the machine's default thread count.
    pub fn new(model: &'m RankNet, seed: u64) -> ForecastEngine<'m> {
        ForecastEngine {
            model,
            seed,
            threads: rpf_tensor::par::num_threads(),
            cache: Mutex::new(HashMap::new()),
            encode_ns: AtomicU64::new(0),
            covariate_ns: AtomicU64::new(0),
            decode_ns: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            encoder_reuses: AtomicU64::new(0),
            trajectories: AtomicU64::new(0),
            degraded_trajectories: AtomicU64::new(0),
            rejected_requests: AtomicU64::new(0),
        }
    }

    /// Override the decoder worker count (≥ 1). Changes scheduling only;
    /// the samples are identical for every setting.
    pub fn with_threads(mut self, threads: usize) -> ForecastEngine<'m> {
        self.threads = threads.max(1);
        self
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The encoder cache holds plain data (no invariants a panicking writer
    /// could break mid-update), so a poisoned lock is recovered rather than
    /// propagated — one crashed caller must not take the cache down.
    fn cache_lock(&self) -> MutexGuard<'_, HashMap<(usize, usize), EncoderState>> {
        self.cache.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Forecast a single race (race key 0). Panics on an invalid request —
    /// the historical API; prefer [`ForecastEngine::try_forecast`].
    pub fn forecast(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
    ) -> ForecastSamples {
        self.forecast_keyed(0, ctx, origin, horizon, n_samples)
    }

    /// Validating [`ForecastEngine::forecast`]: returns a typed error for a
    /// bad request and a degradation report alongside the samples.
    pub fn try_forecast(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
    ) -> Result<EngineForecast, EngineError> {
        self.try_forecast_keyed(0, ctx, origin, horizon, n_samples)
    }

    /// Forecast with an explicit race key. The key scopes both the encoder
    /// cache and the RNG streams: calls with the same
    /// `(race, origin)` reuse the cached encoder state and replay the same
    /// random draws (common random numbers across horizons and sample
    /// counts), while distinct keys are independent. Panics on an invalid
    /// request; prefer [`ForecastEngine::try_forecast_keyed`].
    pub fn forecast_keyed(
        &self,
        race: usize,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
    ) -> ForecastSamples {
        match self.try_forecast_keyed(race, ctx, origin, horizon, n_samples) {
            Ok(out) => out.samples,
            Err(e) => panic!("forecast_keyed: {e}"),
        }
    }

    /// Validating [`ForecastEngine::forecast_keyed`].
    ///
    /// Degradation: any trajectory containing a non-finite value (crashed
    /// decoder worker, numerically broken weights, injected fault) is
    /// replaced with the CurRank persistence baseline — the car's last
    /// observed rank repeated over the horizon — and counted in
    /// [`EngineForecast::degraded_trajectories`]. Healthy trajectories are
    /// untouched, so degradation never changes a healthy forecast.
    pub fn try_forecast_keyed(
        &self,
        race: usize,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
    ) -> Result<EngineForecast, EngineError> {
        if let Err(e) = validate_request(ctx, origin, horizon, n_samples) {
            self.rejected_requests.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }

        // Seed derived from the call's identity, not from call order, so
        // one-at-a-time and batched execution agree.
        let call_seed = RngStreams::new(self.seed)
            .child(race as u64)
            .seed(origin as u64);

        let enc = {
            let cached = self.cache_lock().get(&(race, origin)).cloned();
            match cached {
                Some(enc) => {
                    self.encoder_reuses.fetch_add(1, Ordering::Relaxed);
                    enc
                }
                None => {
                    let t0 = Instant::now();
                    let enc = self.model.rank_model.encode(ctx, origin);
                    self.add_ns(&self.encode_ns, t0);
                    self.cache_lock().insert((race, origin), enc.clone());
                    enc
                }
            }
        };

        let t0 = Instant::now();
        let groups = self
            .model
            .covariate_groups(ctx, origin, horizon, n_samples, call_seed);
        self.add_ns(&self.covariate_ns, t0);

        let t0 = Instant::now();
        let mut samples = self.model.decode_groups(
            ctx,
            &enc,
            &groups,
            origin,
            horizon,
            n_samples,
            call_seed,
            self.threads,
        );
        self.add_ns(&self.decode_ns, t0);

        let degraded_trajectories = degrade_non_finite(ctx, &mut samples, origin, horizon);
        self.degraded_trajectories
            .fetch_add(degraded_trajectories, Ordering::Relaxed);

        self.calls.fetch_add(1, Ordering::Relaxed);
        self.trajectories
            .fetch_add((enc.cars.len() * n_samples) as u64, Ordering::Relaxed);
        Ok(EngineForecast {
            samples,
            degraded: degraded_trajectories > 0,
            degraded_trajectories,
        })
    }

    /// Serve a batch of forecasts over several races. `requests[i].race`
    /// indexes `contexts`; results come back in request order. Requests
    /// sharing a `(race, origin)` pay the encoder once. Panics on an
    /// invalid request; prefer [`ForecastEngine::try_forecast_batch`].
    pub fn forecast_batch(
        &self,
        contexts: &[&RaceContext],
        requests: &[ForecastRequest],
    ) -> Vec<ForecastSamples> {
        match self.try_forecast_batch(contexts, requests) {
            Ok(out) => out.into_iter().map(|f| f.samples).collect(),
            Err(e) => panic!("forecast_batch: {e}"),
        }
    }

    /// Validating [`ForecastEngine::forecast_batch`]: the whole batch is
    /// validated before any model work runs, so a bad request costs nothing
    /// and cannot leave a partially-served batch.
    pub fn try_forecast_batch(
        &self,
        contexts: &[&RaceContext],
        requests: &[ForecastRequest],
    ) -> Result<Vec<EngineForecast>, EngineError> {
        for r in requests {
            if r.race >= contexts.len() {
                self.rejected_requests.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::RaceOutOfRange {
                    race: r.race,
                    n_contexts: contexts.len(),
                });
            }
            if let Err(e) = validate_request(contexts[r.race], r.origin, r.horizon, r.n_samples) {
                self.rejected_requests.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        }
        requests
            .iter()
            .map(|r| {
                self.try_forecast_keyed(r.race, contexts[r.race], r.origin, r.horizon, r.n_samples)
            })
            .collect()
    }

    /// Drop cached encoder states (e.g. after fine-tuning the model the
    /// engine borrows — required, since states are weight-dependent).
    pub fn clear_cache(&self) {
        self.cache_lock().clear();
    }

    /// Accumulated phase counters since construction (or the last
    /// [`ForecastEngine::reset_timings`]).
    pub fn timings(&self) -> PhaseTimings {
        PhaseTimings {
            encode: Duration::from_nanos(self.encode_ns.load(Ordering::Relaxed)),
            covariates: Duration::from_nanos(self.covariate_ns.load(Ordering::Relaxed)),
            decode: Duration::from_nanos(self.decode_ns.load(Ordering::Relaxed)),
            calls: self.calls.load(Ordering::Relaxed),
            encoder_reuses: self.encoder_reuses.load(Ordering::Relaxed),
            trajectories: self.trajectories.load(Ordering::Relaxed),
            degraded_trajectories: self.degraded_trajectories.load(Ordering::Relaxed),
            rejected_requests: self.rejected_requests.load(Ordering::Relaxed),
        }
    }

    pub fn reset_timings(&self) {
        self.encode_ns.store(0, Ordering::Relaxed);
        self.covariate_ns.store(0, Ordering::Relaxed);
        self.decode_ns.store(0, Ordering::Relaxed);
        self.calls.store(0, Ordering::Relaxed);
        self.encoder_reuses.store(0, Ordering::Relaxed);
        self.trajectories.store(0, Ordering::Relaxed);
        self.degraded_trajectories.store(0, Ordering::Relaxed);
        self.rejected_requests.store(0, Ordering::Relaxed);
    }

    fn add_ns(&self, counter: &AtomicU64, since: Instant) {
        counter.fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Request validation shared by the single and batched entry points.
fn validate_request(
    ctx: &RaceContext,
    origin: usize,
    horizon: usize,
    n_samples: usize,
) -> Result<(), EngineError> {
    if origin == 0 {
        return Err(EngineError::BadOrigin { origin });
    }
    if horizon == 0 {
        return Err(EngineError::BadHorizon);
    }
    if n_samples == 0 {
        return Err(EngineError::BadSampleCount);
    }
    // Scan the observed history the encoder will consume: a single NaN
    // feature silently contaminates every trajectory of that car.
    for (car, seq) in ctx.sequences.iter().enumerate() {
        if seq.len() < origin {
            continue; // retired before the origin: not encoded
        }
        let cols: [&[f32]; 9] = [
            &seq.rank,
            &seq.lap_time,
            &seq.time_behind,
            &seq.lap_status,
            &seq.track_status,
            &seq.caution_laps,
            &seq.pit_age,
            &seq.leader_pit_count,
            &seq.total_pit_count,
        ];
        for col in cols {
            for (lap, &v) in col.iter().take(origin).enumerate() {
                if !v.is_finite() {
                    return Err(EngineError::NonFiniteFeature { car, lap });
                }
            }
        }
    }
    Ok(())
}

/// Replace non-finite trajectories with the CurRank persistence baseline
/// (last observed rank, repeated). Returns how many were replaced.
fn degrade_non_finite(
    ctx: &RaceContext,
    samples: &mut ForecastSamples,
    origin: usize,
    horizon: usize,
) -> u64 {
    let mut degraded = 0u64;
    for (car, per_car) in samples.iter_mut().enumerate() {
        if per_car.is_empty() {
            continue;
        }
        let cur = ctx.sequences[car].rank[origin - 1];
        for path in per_car.iter_mut() {
            if path.iter().any(|v| !v.is_finite()) {
                *path = vec![cur; horizon];
                degraded += 1;
            }
        }
    }
    degraded
}
