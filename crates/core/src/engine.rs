//! The forecast engine: a batched, thread-parallel front end over
//! [`RankNet`] with deterministic counter-derived sampling.
//!
//! The raw model API re-runs the LSTM encoder on every call and threads a
//! mutable `StdRng` through the sampler, which couples results to call
//! order and thread schedule. The engine fixes both:
//!
//! * **Determinism** — every call's draws derive from
//!   `(engine seed, race key, origin)` through [`RngStreams`], so a
//!   forecast is a pure function of the model and those keys. Thread count
//!   and batching change wall-clock time, never samples.
//! * **Encoder amortisation** — encoder states are cached per
//!   `(race key, origin)`; repeated forecasts at one origin (different
//!   horizons, sample counts, or models of a comparison sweep) pay the
//!   encoder once.
//! * **Observability** — per-phase wall-clock counters (encode / covariate
//!   sampling / decode) and a trajectory count, for throughput reporting.

use crate::features::RaceContext;
use crate::rank_model::{EncoderState, ForecastSamples};
use crate::ranknet::RankNet;
use rpf_nn::RngStreams;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One forecast of a batch: `race` indexes the context slice handed to
/// [`ForecastEngine::forecast_batch`].
#[derive(Clone, Copy, Debug)]
pub struct ForecastRequest {
    pub race: usize,
    pub origin: usize,
    pub horizon: usize,
    pub n_samples: usize,
}

/// Snapshot of the engine's accumulated phase counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Time spent running the encoder (cache misses only).
    pub encode: Duration,
    /// Time spent sampling covariate futures (PitModel step).
    pub covariates: Duration,
    /// Time spent in ancestral decoding (the Monte-Carlo bulk).
    pub decode: Duration,
    /// Forecast calls served.
    pub calls: u64,
    /// Calls that reused a cached encoder state.
    pub encoder_reuses: u64,
    /// Trajectories sampled (`active cars × n_samples`, summed over calls).
    pub trajectories: u64,
}

impl PhaseTimings {
    /// Sampled trajectories per second of decode time.
    pub fn trajectories_per_sec(&self) -> f64 {
        let s = self.decode.as_secs_f64();
        if s > 0.0 {
            self.trajectories as f64 / s
        } else {
            0.0
        }
    }
}

/// Deterministic parallel Monte-Carlo forecast engine over a trained
/// [`RankNet`].
pub struct ForecastEngine<'m> {
    model: &'m RankNet,
    seed: u64,
    threads: usize,
    cache: Mutex<HashMap<(usize, usize), EncoderState>>,
    encode_ns: AtomicU64,
    covariate_ns: AtomicU64,
    decode_ns: AtomicU64,
    calls: AtomicU64,
    encoder_reuses: AtomicU64,
    trajectories: AtomicU64,
}

impl<'m> ForecastEngine<'m> {
    /// Build an engine with the machine's default thread count.
    pub fn new(model: &'m RankNet, seed: u64) -> ForecastEngine<'m> {
        ForecastEngine {
            model,
            seed,
            threads: rpf_tensor::par::num_threads(),
            cache: Mutex::new(HashMap::new()),
            encode_ns: AtomicU64::new(0),
            covariate_ns: AtomicU64::new(0),
            decode_ns: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            encoder_reuses: AtomicU64::new(0),
            trajectories: AtomicU64::new(0),
        }
    }

    /// Override the decoder worker count (≥ 1). Changes scheduling only;
    /// the samples are identical for every setting.
    pub fn with_threads(mut self, threads: usize) -> ForecastEngine<'m> {
        self.threads = threads.max(1);
        self
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Forecast a single race (race key 0).
    pub fn forecast(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
    ) -> ForecastSamples {
        self.forecast_keyed(0, ctx, origin, horizon, n_samples)
    }

    /// Forecast with an explicit race key. The key scopes both the encoder
    /// cache and the RNG streams: calls with the same
    /// `(race, origin)` reuse the cached encoder state and replay the same
    /// random draws (common random numbers across horizons and sample
    /// counts), while distinct keys are independent.
    pub fn forecast_keyed(
        &self,
        race: usize,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
    ) -> ForecastSamples {
        // Seed derived from the call's identity, not from call order, so
        // one-at-a-time and batched execution agree.
        let call_seed = RngStreams::new(self.seed)
            .child(race as u64)
            .seed(origin as u64);

        let enc = {
            let cached = self
                .cache
                .lock()
                .expect("engine cache")
                .get(&(race, origin))
                .cloned();
            match cached {
                Some(enc) => {
                    self.encoder_reuses.fetch_add(1, Ordering::Relaxed);
                    enc
                }
                None => {
                    let t0 = Instant::now();
                    let enc = self.model.rank_model.encode(ctx, origin);
                    self.add_ns(&self.encode_ns, t0);
                    self.cache
                        .lock()
                        .expect("engine cache")
                        .insert((race, origin), enc.clone());
                    enc
                }
            }
        };

        let t0 = Instant::now();
        let groups = self
            .model
            .covariate_groups(ctx, origin, horizon, n_samples, call_seed);
        self.add_ns(&self.covariate_ns, t0);

        let t0 = Instant::now();
        let out = self.model.decode_groups(
            ctx,
            &enc,
            &groups,
            origin,
            horizon,
            n_samples,
            call_seed,
            self.threads,
        );
        self.add_ns(&self.decode_ns, t0);

        self.calls.fetch_add(1, Ordering::Relaxed);
        self.trajectories
            .fetch_add((enc.cars.len() * n_samples) as u64, Ordering::Relaxed);
        out
    }

    /// Serve a batch of forecasts over several races. `requests[i].race`
    /// indexes `contexts`; results come back in request order. Requests
    /// sharing a `(race, origin)` pay the encoder once.
    pub fn forecast_batch(
        &self,
        contexts: &[&RaceContext],
        requests: &[ForecastRequest],
    ) -> Vec<ForecastSamples> {
        requests
            .iter()
            .map(|r| {
                self.forecast_keyed(r.race, contexts[r.race], r.origin, r.horizon, r.n_samples)
            })
            .collect()
    }

    /// Drop cached encoder states (e.g. after fine-tuning the model the
    /// engine borrows — required, since states are weight-dependent).
    pub fn clear_cache(&self) {
        self.cache.lock().expect("engine cache").clear();
    }

    /// Accumulated phase counters since construction (or the last
    /// [`ForecastEngine::reset_timings`]).
    pub fn timings(&self) -> PhaseTimings {
        PhaseTimings {
            encode: Duration::from_nanos(self.encode_ns.load(Ordering::Relaxed)),
            covariates: Duration::from_nanos(self.covariate_ns.load(Ordering::Relaxed)),
            decode: Duration::from_nanos(self.decode_ns.load(Ordering::Relaxed)),
            calls: self.calls.load(Ordering::Relaxed),
            encoder_reuses: self.encoder_reuses.load(Ordering::Relaxed),
            trajectories: self.trajectories.load(Ordering::Relaxed),
        }
    }

    pub fn reset_timings(&self) {
        self.encode_ns.store(0, Ordering::Relaxed);
        self.covariate_ns.store(0, Ordering::Relaxed);
        self.decode_ns.store(0, Ordering::Relaxed);
        self.calls.store(0, Ordering::Relaxed);
        self.encoder_reuses.store(0, Ordering::Relaxed);
        self.trajectories.store(0, Ordering::Relaxed);
    }

    fn add_ns(&self, counter: &AtomicU64, since: Instant) {
        counter.fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}
