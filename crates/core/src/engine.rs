//! The forecast engine: a batched, thread-parallel front end over
//! [`RankNet`] with deterministic counter-derived sampling.
//!
//! The raw model API re-runs the LSTM encoder on every call and threads a
//! mutable `StdRng` through the sampler, which couples results to call
//! order and thread schedule. The engine fixes both:
//!
//! * **Determinism** — every call's draws derive from
//!   `(engine seed, race key, origin)` through [`RngStreams`], so a
//!   forecast is a pure function of the model and those keys. Thread count
//!   and batching change wall-clock time, never samples.
//! * **Encoder amortisation** — encoder states are cached per
//!   `(race key, origin)`; repeated forecasts at one origin (different
//!   horizons, sample counts, or models of a comparison sweep) pay the
//!   encoder once.
//! * **Observability** — per-phase wall-clock counters (encode / covariate
//!   sampling / decode) and a trajectory count, for throughput reporting.
//! * **Graceful degradation** (DESIGN.md §9) — requests are validated up
//!   front into a typed [`EngineError`]; decoder trajectories that come
//!   back non-finite (a crashed worker, numerically broken weights, an
//!   injected fault) are replaced with the CurRank baseline and flagged,
//!   so a serving engine returns a usable answer instead of panicking.

use crate::config::{DecodeBackend, EngineConfig};
use crate::features::RaceContext;
use crate::lifecycle::{ModelSlot, VersionedModel};
use crate::rank_model::{CovariateFuture, EncoderState, ForecastSamples};
use crate::ranknet::{DecodeJob, RankNet};
use rpf_nn::RngStreams;
use rpf_obs::{span_name, Counter, Gauge, MetricsSnapshot, Registry, SpanName, Tracer};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One forecast of a batch: `race` indexes the context slice handed to
/// [`ForecastEngine::forecast_batch`].
#[derive(Clone, Copy, Debug)]
pub struct ForecastRequest {
    pub race: usize,
    pub origin: usize,
    pub horizon: usize,
    pub n_samples: usize,
}

/// Why the engine rejected a forecast request (before running the model).
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// `request.race` does not index the supplied context slice.
    RaceOutOfRange { race: usize, n_contexts: usize },
    /// The forecast origin must be at least lap 1 (the decoder conditions
    /// on the lap before the origin).
    BadOrigin { origin: usize },
    /// A forecast needs at least one step ahead.
    BadHorizon,
    /// A Monte-Carlo forecast needs at least one sample.
    BadSampleCount,
    /// An input feature of a car still in the race is NaN or infinite.
    NonFiniteFeature { car: usize, lap: usize },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::RaceOutOfRange { race, n_contexts } => {
                write!(f, "race index {race} out of range ({n_contexts} contexts)")
            }
            EngineError::BadOrigin { origin } => {
                write!(f, "forecast origin {origin} must be >= 1")
            }
            EngineError::BadHorizon => write!(f, "forecast horizon must be >= 1"),
            EngineError::BadSampleCount => write!(f, "sample count must be >= 1"),
            EngineError::NonFiniteFeature { car, lap } => {
                write!(
                    f,
                    "non-finite feature for car slot {car} at lap index {lap}"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A forecast plus its degradation report.
#[derive(Clone, Debug)]
pub struct EngineForecast {
    pub samples: ForecastSamples,
    /// True when at least one trajectory fell back to the CurRank baseline.
    pub degraded: bool,
    /// How many trajectories fell back.
    pub degraded_trajectories: u64,
    /// Lifecycle version of the model that produced this forecast
    /// (0 = unversioned: an engine built from a bare model, or the
    /// model-free [`currank_forecast`] fallback).
    pub model_version: u64,
}

/// Snapshot of the engine's accumulated phase counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Time spent running the encoder (cache misses only).
    pub encode: Duration,
    /// Time spent sampling covariate futures (PitModel step).
    pub covariates: Duration,
    /// Time spent in ancestral decoding (the Monte-Carlo bulk).
    pub decode: Duration,
    /// Forecast calls served.
    pub calls: u64,
    /// Calls that reused a cached encoder state.
    pub encoder_reuses: u64,
    /// Trajectories sampled (`active cars × n_samples`, summed over calls).
    pub trajectories: u64,
    /// Trajectories that came back non-finite and fell back to CurRank.
    pub degraded_trajectories: u64,
    /// Requests rejected by validation (never reached the model).
    pub rejected_requests: u64,
    /// Encoder states evicted from the bounded LRU cache.
    pub cache_evictions: u64,
    /// Batch-entry requests answered by cloning an identical neighbour's
    /// result instead of running the model again.
    pub coalesced_requests: u64,
}

impl PhaseTimings {
    /// Sampled trajectories per second of decode time.
    pub fn trajectories_per_sec(&self) -> f64 {
        let s = self.decode.as_secs_f64();
        if s > 0.0 {
            self.trajectories as f64 / s
        } else {
            0.0
        }
    }
}

/// Maximum shard count of the encoder cache. The shard for a key is picked
/// by hash, so concurrent forecasts of different `(race, origin)` pairs
/// rarely contend on one lock.
const CACHE_SHARDS: usize = 8;

/// Encoder-cache key: `(model version, race, origin)`. The version
/// component makes a hot-swap safe without a cache flush — an encoder
/// state is weight-dependent, so a state computed under the old model must
/// never serve the new one. Old-version entries age out via LRU.
type CacheKey = (u64, usize, usize);

/// One shard of the bounded encoder cache: a map from
/// `(version, race, origin)` to the cached state stamped with a per-shard
/// logical tick. Eviction scans for the minimum stamp — O(shard len),
/// which is at most `capacity / shards` and far cheaper than the encoder
/// run it replaces.
struct CacheShard {
    map: HashMap<CacheKey, (u64, EncoderState)>,
    tick: u64,
    capacity: usize,
}

impl CacheShard {
    fn get(&mut self, key: &CacheKey) -> Option<EncoderState> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            slot.1.clone()
        })
    }

    /// Insert, evicting the least-recently-used entry if the shard is at
    /// capacity. Returns how many entries were evicted (0 or 1).
    fn insert(&mut self, key: CacheKey, state: EncoderState) -> u64 {
        if self.capacity == 0 {
            return 0; // caching disabled: nothing stored, nothing evicted
        }
        self.tick += 1;
        let mut evicted = 0;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(&lru) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k)
            {
                self.map.remove(&lru);
                evicted = 1;
            }
        }
        self.map.insert(key, (self.tick, state));
        evicted
    }
}

/// The sharded, LRU-bounded encoder cache. Total occupancy never exceeds
/// the configured capacity: the capacity is split exactly across shards
/// (shard `i` gets `cap/n + (i < cap % n)`), so the per-shard caps sum to
/// the global one. Eviction only changes *whether* an encoder state is
/// recomputed — `encode` is deterministic, so a recompute yields a
/// bit-identical state and forecasts are unaffected.
struct EncoderCache {
    shards: Vec<Mutex<CacheShard>>,
}

impl EncoderCache {
    fn new(capacity: usize) -> EncoderCache {
        let n = CACHE_SHARDS.min(capacity.max(1));
        let shards = (0..n)
            .map(|i| {
                Mutex::new(CacheShard {
                    map: HashMap::new(),
                    tick: 0,
                    capacity: capacity / n + usize::from(i < capacity % n),
                })
            })
            .collect();
        EncoderCache { shards }
    }

    /// Shard holding `key`. Uses the std sip hasher — the shard choice
    /// only affects which lock is taken and which neighbours compete for
    /// eviction, never a forecast value.
    fn shard(&self, key: &CacheKey) -> MutexGuard<'_, CacheShard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let idx = (h.finish() % self.shards.len() as u64) as usize;
        // Shards hold plain data (no invariants a panicking writer could
        // break mid-update), so a poisoned lock is recovered rather than
        // propagated — one crashed caller must not take the cache down.
        self.shards[idx].lock().unwrap_or_else(|p| p.into_inner())
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).map.len())
            .sum()
    }

    /// Total configured capacity across shards — the value handed to
    /// [`EncoderCache::new`], reconstructed so an engine can be forked
    /// with an identically sized cache.
    fn capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).capacity)
            .sum()
    }

    fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap_or_else(|p| p.into_inner()).map.clear();
        }
    }
}

/// Deterministic parallel Monte-Carlo forecast engine over a trained
/// [`RankNet`].
///
/// The model is owned through an [`Arc`]-based [`ModelSlot`], so a
/// lifecycle controller can hot-swap weights under live traffic: each
/// forecast (or batch) loads the slot once and runs entirely on that
/// version — in-flight work finishes on the old model, later admissions
/// see the new one, and the version-keyed encoder cache never serves a
/// stale state across a swap. Engines built from a bare model get version
/// 0 and behave exactly as before the slot existed.
///
/// Phase counters live in an owned [`rpf_obs::Registry`] (one per engine —
/// two engines never share cells); [`ForecastEngine::timings`] is the
/// typed view over the same handles, and [`ForecastEngine::obs_snapshot`]
/// the mergeable one. Phase spans (encode / covariates / decode) record
/// into an embedded [`Tracer`], disabled by default.
pub struct ForecastEngine {
    slot: Arc<ModelSlot>,
    seed: u64,
    threads: usize,
    backend: DecodeBackend,
    cache: EncoderCache,
    registry: Registry,
    tracer: Tracer,
    span_encode: SpanName,
    span_covariates: SpanName,
    span_decode: SpanName,
    encode_ns: Counter,
    covariate_ns: Counter,
    decode_ns: Counter,
    calls: Counter,
    encoder_reuses: Counter,
    trajectories: Counter,
    degraded_trajectories: Counter,
    rejected_requests: Counter,
    cache_evictions: Counter,
    coalesced_requests: Counter,
    model_swaps: Counter,
    model_version_gauge: Gauge,
}

/// Ergonomics shim for the slot refactor: historical call sites pass
/// `&model`, which now clones the model into shared ownership. Callers
/// that already hold an `Arc<RankNet>` (or can move the model) pass it
/// directly and pay nothing.
impl From<&RankNet> for Arc<RankNet> {
    fn from(model: &RankNet) -> Arc<RankNet> {
        Arc::new(model.clone())
    }
}

impl ForecastEngine {
    /// Build an engine with the machine's default thread count and the
    /// default encoder cache capacity. Accepts `&RankNet` (cloned into the
    /// slot), an owned `RankNet`, or an `Arc<RankNet>`; the model gets
    /// lifecycle version 0 ("unversioned").
    pub fn new(model: impl Into<Arc<RankNet>>, seed: u64) -> ForecastEngine {
        ForecastEngine::with_slot(ModelSlot::new(VersionedModel::new(0, model)), seed)
    }

    /// Build an engine over an existing [`ModelSlot`] — the lifecycle
    /// entry point: the controller keeps a clone of the slot (or of the
    /// engine's [`ForecastEngine::slot`]) and swaps versions through it.
    pub fn with_slot(slot: Arc<ModelSlot>, seed: u64) -> ForecastEngine {
        let registry = Registry::new();
        let model_version_gauge = registry.gauge("engine_model_version");
        model_version_gauge.set(slot.version());
        ForecastEngine {
            slot,
            seed,
            threads: rpf_tensor::par::num_threads(),
            backend: DecodeBackend::default(),
            cache: EncoderCache::new(crate::config::DEFAULT_ENCODER_CACHE_CAPACITY),
            tracer: Tracer::new(),
            span_encode: span_name("engine_encode"),
            span_covariates: span_name("engine_covariates"),
            span_decode: span_name("engine_decode"),
            encode_ns: registry.counter("engine_encode_ns"),
            covariate_ns: registry.counter("engine_covariates_ns"),
            decode_ns: registry.counter("engine_decode_ns"),
            calls: registry.counter("engine_calls"),
            encoder_reuses: registry.counter("engine_encoder_reuses"),
            trajectories: registry.counter("engine_trajectories"),
            degraded_trajectories: registry.counter("engine_degraded_trajectories"),
            rejected_requests: registry.counter("engine_rejected_requests"),
            cache_evictions: registry.counter("engine_cache_evictions"),
            coalesced_requests: registry.counter("engine_coalesced_requests"),
            model_swaps: registry.counter("engine_model_swaps"),
            model_version_gauge,
            registry,
        }
    }

    /// Build an engine from an [`EngineConfig`].
    pub fn with_config(model: impl Into<Arc<RankNet>>, cfg: &EngineConfig) -> ForecastEngine {
        let mut engine = ForecastEngine::new(model, cfg.seed);
        if let Some(t) = cfg.threads {
            engine.threads = t.max(1);
        }
        engine.cache = EncoderCache::new(cfg.encoder_cache_capacity);
        engine.backend = cfg.decode_backend;
        engine
    }

    /// The shared model slot — clone it to hot-swap versions from a
    /// lifecycle controller while this engine serves.
    pub fn slot(&self) -> &Arc<ModelSlot> {
        &self.slot
    }

    /// The currently installed versioned model.
    pub fn current_model(&self) -> Arc<VersionedModel> {
        self.slot.load()
    }

    /// Lifecycle version of the currently installed model.
    pub fn model_version(&self) -> u64 {
        self.slot.version()
    }

    /// Atomically install a new model version; returns the one it
    /// replaced. In-flight forecasts that already loaded the slot finish
    /// on the old version; every forecast admitted after this call runs on
    /// the new one. No cache flush is needed — encoder states are keyed by
    /// version, so old entries can never serve the new model.
    pub fn swap_model(&self, next: VersionedModel) -> Arc<VersionedModel> {
        let version = next.version;
        let prev = self.slot.swap(next);
        self.model_swaps.inc();
        self.model_version_gauge.set(version);
        prev
    }

    /// Override the decode backend (see [`DecodeBackend`]). Switching
    /// between `Tape`/`PerRow` never changes samples; switching to or from
    /// `Batched` may move them within the pinned decode tolerance.
    pub fn with_backend(mut self, backend: DecodeBackend) -> ForecastEngine {
        self.backend = backend;
        self
    }

    pub fn backend(&self) -> DecodeBackend {
        self.backend
    }

    /// Override the decoder worker count (≥ 1). Changes scheduling only;
    /// the samples are identical for every setting.
    pub fn with_threads(mut self, threads: usize) -> ForecastEngine {
        self.threads = threads.max(1);
        self
    }

    /// Override the encoder cache capacity (entries; 0 disables caching).
    /// Eviction only forces deterministic recomputes — never different
    /// samples.
    pub fn with_cache_capacity(mut self, capacity: usize) -> ForecastEngine {
        self.cache = EncoderCache::new(capacity);
        self
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Clone this engine's *configuration* into a fresh engine for one
    /// serving shard: same seed, backend, thread budget and encoder-cache
    /// capacity — so the fork's forecasts are bit-identical to this
    /// engine's by the determinism contract — but its own [`ModelSlot`]
    /// (seeded with the currently installed versioned model), its own
    /// empty encoder cache and its own obs registry. Shards built this way
    /// share no locks, no cache lines and no metric cells, and a lifecycle
    /// controller can roll model versions across them one slot at a time.
    pub fn fork(&self) -> ForecastEngine {
        let vm = self.slot.load();
        let slot = ModelSlot::new(VersionedModel::new(vm.version, Arc::clone(&vm.model)));
        ForecastEngine::with_slot(slot, self.seed)
            .with_backend(self.backend)
            .with_threads(self.threads)
            .with_cache_capacity(self.cache.capacity())
    }

    /// The engine seed every call's RNG streams derive from. A shadow
    /// engine built with the same seed (and backend) over a candidate
    /// model produces exactly what that candidate would serve after
    /// promotion.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Encoder states currently resident across all cache shards. Never
    /// exceeds the configured capacity.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Forecast a single race (race key 0). Panics on an invalid request —
    /// the historical API; prefer [`ForecastEngine::try_forecast`].
    pub fn forecast(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
    ) -> ForecastSamples {
        self.forecast_keyed(0, ctx, origin, horizon, n_samples)
    }

    /// Validating [`ForecastEngine::forecast`]: returns a typed error for a
    /// bad request and a degradation report alongside the samples.
    pub fn try_forecast(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
    ) -> Result<EngineForecast, EngineError> {
        self.try_forecast_keyed(0, ctx, origin, horizon, n_samples)
    }

    /// Forecast with an explicit race key. The key scopes both the encoder
    /// cache and the RNG streams: calls with the same
    /// `(race, origin)` reuse the cached encoder state and replay the same
    /// random draws (common random numbers across horizons and sample
    /// counts), while distinct keys are independent. Panics on an invalid
    /// request; prefer [`ForecastEngine::try_forecast_keyed`].
    pub fn forecast_keyed(
        &self,
        race: usize,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
    ) -> ForecastSamples {
        match self.try_forecast_keyed(race, ctx, origin, horizon, n_samples) {
            Ok(out) => out.samples,
            Err(e) => panic!("forecast_keyed: {e}"),
        }
    }

    /// Validating [`ForecastEngine::forecast_keyed`].
    ///
    /// Degradation: any trajectory containing a non-finite value (crashed
    /// decoder worker, numerically broken weights, injected fault) is
    /// replaced with the CurRank persistence baseline — the car's last
    /// observed rank repeated over the horizon — and counted in
    /// [`EngineForecast::degraded_trajectories`]. Healthy trajectories are
    /// untouched, so degradation never changes a healthy forecast.
    pub fn try_forecast_keyed(
        &self,
        race: usize,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
    ) -> Result<EngineForecast, EngineError> {
        let vm = self.slot.load();
        self.try_forecast_on(&vm, race, ctx, origin, horizon, n_samples)
    }

    /// [`ForecastEngine::try_forecast_keyed`] pinned to one loaded model
    /// version. Batch entry points load the slot once and run every
    /// request through here, so a swap landing mid-batch can never produce
    /// a torn batch (some requests old, some new).
    fn try_forecast_on(
        &self,
        vm: &VersionedModel,
        race: usize,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
    ) -> Result<EngineForecast, EngineError> {
        if let Err(e) = validate_request(ctx, origin, horizon, n_samples) {
            self.rejected_requests.inc();
            return Err(e);
        }

        // Seed derived from the call's identity, not from call order, so
        // one-at-a-time and batched execution agree.
        let call_seed = RngStreams::new(self.seed)
            .child(race as u64)
            .seed(origin as u64);

        let enc = self.encoder_for(vm, race, ctx, origin);
        let groups = self.covariates_for(vm, ctx, origin, horizon, n_samples, call_seed);

        let mut samples = {
            let _span = self.tracer.span(self.span_decode);
            let t0 = Instant::now();
            let samples = vm.model.decode_groups(
                ctx,
                &enc,
                &groups,
                origin,
                horizon,
                n_samples,
                call_seed,
                self.threads,
                self.backend,
            );
            self.add_ns(&self.decode_ns, t0);
            samples
        };

        let degraded_trajectories = degrade_non_finite(ctx, &mut samples, origin, horizon);
        self.degraded_trajectories.add(degraded_trajectories);

        self.calls.inc();
        self.trajectories.add((enc.cars.len() * n_samples) as u64);
        Ok(EngineForecast {
            samples,
            degraded: degraded_trajectories > 0,
            degraded_trajectories,
            model_version: vm.version,
        })
    }

    /// Cache-aware encoder lookup: reuse the `(version, race, origin)`
    /// state if resident, otherwise encode under the encode span and
    /// insert.
    fn encoder_for(
        &self,
        vm: &VersionedModel,
        race: usize,
        ctx: &RaceContext,
        origin: usize,
    ) -> EncoderState {
        let key = (vm.version, race, origin);
        let cached = self.cache.shard(&key).get(&key);
        match cached {
            Some(enc) => {
                self.encoder_reuses.inc();
                enc
            }
            None => {
                let _span = self.tracer.span(self.span_encode);
                let t0 = Instant::now();
                let enc = vm.model.rank_model.encode(ctx, origin);
                self.add_ns(&self.encode_ns, t0);
                let evicted = self.cache.shard(&key).insert(key, enc.clone());
                self.cache_evictions.add(evicted);
                enc
            }
        }
    }

    /// Covariate-group sampling under its span and phase counter.
    fn covariates_for(
        &self,
        vm: &VersionedModel,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        call_seed: u64,
    ) -> Vec<(CovariateFuture, usize)> {
        let _span = self.tracer.span(self.span_covariates);
        let t0 = Instant::now();
        let groups = vm
            .model
            .covariate_groups(ctx, origin, horizon, n_samples, call_seed);
        self.add_ns(&self.covariate_ns, t0);
        groups
    }

    /// Serve a batch of forecasts over several races. `requests[i].race`
    /// indexes `contexts`; results come back in request order. Requests
    /// sharing a `(race, origin)` pay the encoder once. Panics on an
    /// invalid request; prefer [`ForecastEngine::try_forecast_batch`].
    pub fn forecast_batch(
        &self,
        contexts: &[&RaceContext],
        requests: &[ForecastRequest],
    ) -> Vec<ForecastSamples> {
        match self.try_forecast_batch(contexts, requests) {
            Ok(out) => out.into_iter().map(|f| f.samples).collect(),
            Err(e) => panic!("forecast_batch: {e}"),
        }
    }

    /// Validating [`ForecastEngine::forecast_batch`]: the whole batch is
    /// validated before any model work runs, so a bad request costs nothing
    /// and cannot leave a partially-served batch.
    pub fn try_forecast_batch(
        &self,
        contexts: &[&RaceContext],
        requests: &[ForecastRequest],
    ) -> Result<Vec<EngineForecast>, EngineError> {
        for r in requests {
            if r.race >= contexts.len() {
                self.rejected_requests.inc();
                return Err(EngineError::RaceOutOfRange {
                    race: r.race,
                    n_contexts: contexts.len(),
                });
            }
            if let Err(e) = validate_request(contexts[r.race], r.origin, r.horizon, r.n_samples) {
                self.rejected_requests.inc();
                return Err(e);
            }
        }
        let vm = self.slot.load();
        requests
            .iter()
            .map(|r| {
                self.try_forecast_on(
                    &vm,
                    r.race,
                    contexts[r.race],
                    r.origin,
                    r.horizon,
                    r.n_samples,
                )
            })
            .collect()
    }

    /// The batch-entry API the serving layer dispatches on: per-request
    /// outcomes (an invalid request becomes its own `Err` without failing
    /// its neighbours), with identical requests — same
    /// `(race, origin, horizon, n_samples)` — coalesced onto a single model
    /// run. Coalescing is legal because a forecast is a pure function of
    /// request identity (the determinism contract): the cloned result is
    /// bit-identical to what a fresh [`ForecastEngine::try_forecast_keyed`]
    /// call would have produced.
    ///
    /// Under the `Batched` backend the distinct requests additionally fold
    /// into **one** lock-step decode ([`RankNet::decode_jobs_batched`]):
    /// every batched kernel computes each trajectory row independently and
    /// each request keeps its own stream families, so the folded results
    /// stay bit-identical to per-request calls — folding changes wall-clock
    /// time, never a response.
    pub fn forecast_batch_entries(
        &self,
        contexts: &[&RaceContext],
        requests: &[ForecastRequest],
    ) -> Vec<Result<EngineForecast, EngineError>> {
        // One slot load per batch: the whole batch runs on one model
        // version, so a concurrent swap can never split it.
        let vm = self.slot.load();
        if self.backend == DecodeBackend::Batched {
            return self.forecast_batch_entries_folded(&vm, contexts, requests);
        }
        let mut first_at: HashMap<(usize, usize, usize, usize), usize> = HashMap::new();
        let mut out: Vec<Result<EngineForecast, EngineError>> = Vec::with_capacity(requests.len());
        for r in requests {
            let key = (r.race, r.origin, r.horizon, r.n_samples);
            if let Some(&j) = first_at.get(&key) {
                self.coalesced_requests.inc();
                out.push(out[j].clone());
                continue;
            }
            let res = if r.race >= contexts.len() {
                self.rejected_requests.inc();
                Err(EngineError::RaceOutOfRange {
                    race: r.race,
                    n_contexts: contexts.len(),
                })
            } else {
                self.try_forecast_on(
                    &vm,
                    r.race,
                    contexts[r.race],
                    r.origin,
                    r.horizon,
                    r.n_samples,
                )
            };
            first_at.insert(key, out.len());
            out.push(res);
        }
        out
    }

    /// [`ForecastEngine::forecast_batch_entries`] for the `Batched`
    /// backend: validate + encode + covariate-sample each distinct request,
    /// decode them all as one lock-step batch, then degrade and fan the
    /// results back out in request order.
    fn forecast_batch_entries_folded(
        &self,
        vm: &VersionedModel,
        contexts: &[&RaceContext],
        requests: &[ForecastRequest],
    ) -> Vec<Result<EngineForecast, EngineError>> {
        // Distinct requests in first-appearance order; duplicates point at
        // their representative's slot.
        let mut first_at: HashMap<(usize, usize, usize, usize), usize> = HashMap::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(requests.len());
        let mut uniq: Vec<ForecastRequest> = Vec::new();
        for r in requests {
            let key = (r.race, r.origin, r.horizon, r.n_samples);
            match first_at.get(&key) {
                Some(&u) => {
                    self.coalesced_requests.inc();
                    slot_of.push(u);
                }
                None => {
                    first_at.insert(key, uniq.len());
                    slot_of.push(uniq.len());
                    uniq.push(*r);
                }
            }
        }

        // Per-distinct-request inputs for the fold (validation errors keep
        // their slot so neighbours still decode).
        struct Prepared {
            enc: EncoderState,
            groups: Vec<(CovariateFuture, usize)>,
            seed: u64,
        }
        let prepared: Vec<Result<Prepared, EngineError>> = uniq
            .iter()
            .map(|r| {
                if r.race >= contexts.len() {
                    self.rejected_requests.inc();
                    return Err(EngineError::RaceOutOfRange {
                        race: r.race,
                        n_contexts: contexts.len(),
                    });
                }
                let ctx = contexts[r.race];
                if let Err(e) = validate_request(ctx, r.origin, r.horizon, r.n_samples) {
                    self.rejected_requests.inc();
                    return Err(e);
                }
                let call_seed = RngStreams::new(self.seed)
                    .child(r.race as u64)
                    .seed(r.origin as u64);
                let enc = self.encoder_for(vm, r.race, ctx, r.origin);
                let groups =
                    self.covariates_for(vm, ctx, r.origin, r.horizon, r.n_samples, call_seed);
                Ok(Prepared {
                    enc,
                    groups,
                    seed: call_seed,
                })
            })
            .collect();

        // One decode for every valid distinct request.
        let jobs: Vec<DecodeJob<'_>> = prepared
            .iter()
            .zip(&uniq)
            .filter_map(|(p, r)| {
                p.as_ref().ok().map(|p| DecodeJob {
                    ctx: contexts[r.race],
                    enc: &p.enc,
                    groups: &p.groups,
                    origin: r.origin,
                    horizon: r.horizon,
                    n_samples: r.n_samples,
                    seed: p.seed,
                })
            })
            .collect();
        let decoded: Vec<ForecastSamples> = if jobs.is_empty() {
            Vec::new()
        } else {
            let _span = self.tracer.span(self.span_decode);
            let t0 = Instant::now();
            let decoded = vm.model.decode_jobs_batched(&jobs, self.threads);
            self.add_ns(&self.decode_ns, t0);
            decoded
        };

        // Degrade and package per distinct request (decoded results are in
        // valid-request order), then fan out in request order.
        let mut decoded = decoded.into_iter();
        let unique_results: Vec<Result<EngineForecast, EngineError>> = prepared
            .into_iter()
            .zip(&uniq)
            .map(|(p, r)| {
                let p = p?;
                let ctx = contexts[r.race];
                let mut samples = decoded
                    .next()
                    .unwrap_or_else(|| vec![Vec::new(); ctx.sequences.len()]);
                let degraded_trajectories =
                    degrade_non_finite(ctx, &mut samples, r.origin, r.horizon);
                self.degraded_trajectories.add(degraded_trajectories);
                self.calls.inc();
                self.trajectories
                    .add((p.enc.cars.len() * r.n_samples) as u64);
                Ok(EngineForecast {
                    samples,
                    degraded: degraded_trajectories > 0,
                    degraded_trajectories,
                    model_version: vm.version,
                })
            })
            .collect();
        slot_of.iter().map(|&u| unique_results[u].clone()).collect()
    }

    /// Drop cached encoder states (e.g. after fine-tuning the model the
    /// engine borrows — required, since states are weight-dependent).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Accumulated phase counters since construction (or the last
    /// [`ForecastEngine::reset_timings`]) — the typed view over the
    /// engine's registry handles.
    pub fn timings(&self) -> PhaseTimings {
        PhaseTimings {
            encode: Duration::from_nanos(self.encode_ns.value()),
            covariates: Duration::from_nanos(self.covariate_ns.value()),
            decode: Duration::from_nanos(self.decode_ns.value()),
            calls: self.calls.value(),
            encoder_reuses: self.encoder_reuses.value(),
            trajectories: self.trajectories.value(),
            degraded_trajectories: self.degraded_trajectories.value(),
            rejected_requests: self.rejected_requests.value(),
            cache_evictions: self.cache_evictions.value(),
            coalesced_requests: self.coalesced_requests.value(),
        }
    }

    pub fn reset_timings(&self) {
        self.registry.reset();
        self.tracer.reset();
    }

    /// Enable or disable phase-span tracing (encode / covariates /
    /// decode). Off by default; a disabled span is one relaxed load.
    pub fn set_tracing(&self, on: bool) {
        self.tracer.set_enabled(on);
    }

    /// The engine's phase-span tracer (ring buffer + per-name totals).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The engine's metrics registry, for callers that want to scrape it
    /// directly or register adjacent metrics under the same snapshot.
    pub fn obs_registry(&self) -> &Registry {
        &self.registry
    }

    /// Mergeable snapshot of the engine's counters plus span totals —
    /// combine with serving and training snapshots via
    /// [`MetricsSnapshot::merge`] for one exposition.
    pub fn obs_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot().with_spans(self.tracer.totals())
    }

    fn add_ns(&self, counter: &Counter, since: Instant) {
        counter.add(since.elapsed().as_nanos() as u64);
    }
}

/// Request validation shared by the single and batched entry points.
fn validate_request(
    ctx: &RaceContext,
    origin: usize,
    horizon: usize,
    n_samples: usize,
) -> Result<(), EngineError> {
    if origin == 0 {
        return Err(EngineError::BadOrigin { origin });
    }
    if horizon == 0 {
        return Err(EngineError::BadHorizon);
    }
    if n_samples == 0 {
        return Err(EngineError::BadSampleCount);
    }
    // Scan the observed history the encoder will consume: a single NaN
    // feature silently contaminates every trajectory of that car.
    for (car, seq) in ctx.sequences.iter().enumerate() {
        if seq.len() < origin {
            continue; // retired before the origin: not encoded
        }
        let cols: [&[f32]; 9] = [
            &seq.rank,
            &seq.lap_time,
            &seq.time_behind,
            &seq.lap_status,
            &seq.track_status,
            &seq.caution_laps,
            &seq.pit_age,
            &seq.leader_pit_count,
            &seq.total_pit_count,
        ];
        for col in cols {
            for (lap, &v) in col.iter().take(origin).enumerate() {
                if !v.is_finite() {
                    return Err(EngineError::NonFiniteFeature { car, lap });
                }
            }
        }
    }
    Ok(())
}

/// The CurRank persistence forecast in engine output shape: every car
/// still running at `origin` gets `n_samples` identical paths repeating
/// its last observed rank. This is the degraded answer a serving layer
/// returns when a deadline expires or a worker crashes mid-batch — it
/// needs no model, cannot fail past validation, and is trivially
/// deterministic. The whole forecast is flagged degraded.
pub fn currank_forecast(
    ctx: &RaceContext,
    origin: usize,
    horizon: usize,
    n_samples: usize,
) -> Result<EngineForecast, EngineError> {
    validate_request(ctx, origin, horizon, n_samples)?;
    let mut samples: ForecastSamples = vec![Vec::new(); ctx.sequences.len()];
    let mut degraded = 0u64;
    for (car, seq) in ctx.sequences.iter().enumerate() {
        if seq.len() < origin {
            continue;
        }
        let cur = seq.rank[origin - 1];
        samples[car] = vec![vec![cur; horizon]; n_samples];
        degraded += n_samples as u64;
    }
    Ok(EngineForecast {
        samples,
        degraded: degraded > 0,
        degraded_trajectories: degraded,
        model_version: 0,
    })
}

/// Replace non-finite trajectories with the CurRank persistence baseline
/// (last observed rank, repeated). Returns how many were replaced.
fn degrade_non_finite(
    ctx: &RaceContext,
    samples: &mut ForecastSamples,
    origin: usize,
    horizon: usize,
) -> u64 {
    let mut degraded = 0u64;
    for (car, per_car) in samples.iter_mut().enumerate() {
        if per_car.is_empty() {
            continue;
        }
        let cur = ctx.sequences[car].rank[origin - 1];
        for path in per_car.iter_mut() {
            if path.iter().any(|v| !v.is_finite()) {
                *path = vec![cur; horizon];
                degraded += 1;
            }
        }
    }
    degraded
}
