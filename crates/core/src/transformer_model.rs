//! Transformer-based RankNet variant (§IV-I).
//!
//! The paper swaps the stacked LSTM for the GluonTS Transformer — 8
//! attention heads, model dimension 32 — and finds the LSTM "consistently a
//! slightly better performance", which it attributes to the small data
//! size. This module reproduces that comparison: the same input rows,
//! covariate handling and Gaussian head as [`crate::rank_model`], with a
//! Transformer encoder–decoder in the middle.
//!
//! Sequences are processed one at a time as `(T, d)` matrices; training
//! shards instances across crossbeam threads.

use crate::config::RankNetConfig;
use crate::features::RaceContext;
use crate::instances::{assemble_row, base_input_dim, Covariates, Regressive, TrainingSet};
use crate::rank_model::{CovariateFuture, ForecastSamples};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpf_autodiff::{Tape, Var};
use rpf_nn::attention::{positional_encoding, DecoderLayer, EncoderLayer};
use rpf_nn::embedding::Embedding;
use rpf_nn::gaussian::{gaussian_nll, sample_gaussian, GaussianParams};
use rpf_nn::infer::{
    InferDecoderLayer, InferEmbedding, InferEncoderLayer, InferGaussianHead, InferLinear,
};
use rpf_nn::train::{shard_indices, train, TrainConfig, TrainReport};
use rpf_nn::{Binding, GaussianHead, Linear, ParamStore};
use rpf_tensor::{ops, Matrix};

/// One gradient shard: accumulated `(param, grad)` pairs, loss sum, count.
type ShardGrads = (Vec<(rpf_nn::ParamId, Matrix)>, f32, usize);

/// Transformer hyper-parameters of §IV-I.
pub const D_MODEL: usize = 32;
pub const N_HEADS: usize = 8;
pub const N_LAYERS: usize = 2;
pub const FF_DIM: usize = 64;

pub struct TransformerModel {
    pub cfg: RankNetConfig,
    pub store: ParamStore,
    proj: Linear,
    enc_layers: Vec<EncoderLayer>,
    dec_layers: Vec<DecoderLayer>,
    head: GaussianHead,
    emb: Embedding,
    base_dim: usize,
}

/// Tape-free serving runtime for the Transformer: forward-only mirrors of
/// the projection, encoder/decoder stacks, head and car embedding,
/// converted one-shot per forecast call. The autoregressive decode re-runs
/// the decoder over the whole accumulated prefix each step, so the win here
/// is dropping the tape's node bookkeeping and per-op weight clones, not
/// scratch reuse; outputs stay bit-identical to the tape path.
struct TransformerRuntime {
    proj: InferLinear,
    enc_layers: Vec<InferEncoderLayer>,
    dec_layers: Vec<InferDecoderLayer>,
    head: InferGaussianHead,
    emb: InferEmbedding,
}

impl TransformerRuntime {
    /// Project, add positional encoding, run the encoder stack.
    fn encode(&self, rows: &Matrix) -> Matrix {
        let len = rows.rows();
        let mut h = self.proj.forward(rows);
        h = ops::add(&h, &positional_encoding(len, D_MODEL));
        for layer in &self.enc_layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Decoder over `rows` with causal masking against `memory`.
    fn decode(&self, rows: &Matrix, memory: &Matrix) -> Matrix {
        let len = rows.rows();
        let mut h = self.proj.forward(rows);
        h = ops::add(&h, &positional_encoding(len, D_MODEL));
        for layer in &self.dec_layers {
            h = layer.forward(&h, memory);
        }
        h
    }
}

impl TransformerModel {
    pub fn new(cfg: RankNetConfig, max_car_id: usize) -> TransformerModel {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7F);
        let base_dim = base_input_dim(&cfg);
        let input_dim = base_dim + cfg.embedding_dim;
        let proj = Linear::new(&mut store, &mut rng, "tx.proj", input_dim, D_MODEL);
        let enc_layers = (0..N_LAYERS)
            .map(|i| {
                EncoderLayer::new(
                    &mut store,
                    &mut rng,
                    &format!("tx.enc{i}"),
                    D_MODEL,
                    N_HEADS,
                    FF_DIM,
                )
            })
            .collect();
        let dec_layers = (0..N_LAYERS)
            .map(|i| {
                DecoderLayer::new(
                    &mut store,
                    &mut rng,
                    &format!("tx.dec{i}"),
                    D_MODEL,
                    N_HEADS,
                    FF_DIM,
                )
            })
            .collect();
        let head = GaussianHead::new(&mut store, &mut rng, "tx.head", D_MODEL);
        let emb = Embedding::new(
            &mut store,
            &mut rng,
            "tx.car",
            max_car_id + 1,
            cfg.embedding_dim,
        );
        TransformerModel {
            cfg,
            store,
            proj,
            enc_layers,
            dec_layers,
            head,
            emb,
            base_dim,
        }
    }

    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// Project raw input rows, add positional encoding, and run the encoder
    /// stack. `rows` is `(T, base_dim + emb)`.
    fn encode(&self, bind: &Binding<'_>, rows: Var) -> Var {
        let t = bind.tape();
        let (len, _) = t.shape(rows);
        let mut h = self.proj.forward(bind, rows);
        let pe = t.leaf(positional_encoding(len, D_MODEL));
        h = t.add(h, pe);
        for layer in &self.enc_layers {
            h = layer.forward(bind, h);
        }
        h
    }

    /// Decoder over `rows` `(Td, input)` with causal masking against
    /// `memory`.
    fn decode(&self, bind: &Binding<'_>, rows: Var, memory: Var) -> Var {
        let t = bind.tape();
        let (len, _) = t.shape(rows);
        let mut h = self.proj.forward(bind, rows);
        let pe = t.leaf(positional_encoding(len, D_MODEL));
        h = t.add(h, pe);
        for layer in &self.dec_layers {
            h = layer.forward(bind, h, memory);
        }
        h
    }

    /// Input row matrix for sequence positions `[lo, hi)` of one window.
    fn rows_for(&self, ts: &TrainingSet, inst: usize, lo: usize, hi: usize) -> (Matrix, usize) {
        let w = &ts.instances[inst];
        let ctx = &ts.contexts[w.race];
        let seq = &ctx.sequences[w.car];
        let cfg = &self.cfg;
        let mut rows = Matrix::zeros(hi - lo, self.base_dim);
        let mut row = Vec::with_capacity(self.base_dim);
        let frozen = (w.start + cfg.context_len - 1).min(seq.len() - 1);
        for (r, j) in (lo..hi).enumerate() {
            let idx = w.start + j;
            let lag = idx - 1;
            let reg = if j < cfg.context_len {
                Regressive {
                    rank: seq.rank[lag],
                    lap_time: seq.lap_time[lag],
                    time_behind: seq.time_behind[lag],
                }
            } else {
                Regressive {
                    rank: seq.rank[lag],
                    lap_time: seq.lap_time[frozen],
                    time_behind: seq.time_behind[frozen],
                }
            };
            let cov = Covariates::from_seq(seq, idx, cfg.prediction_len);
            assemble_row(cfg, ctx, &reg, &cov, &mut row);
            rows.row_mut(r).copy_from_slice(&row);
        }
        (rows, seq.car_id as usize)
    }

    /// Loss of one window on the given tape.
    fn window_loss(&self, bind: &Binding<'_>, ts: &TrainingSet, inst: usize) -> Var {
        let t = bind.tape();
        let cfg = &self.cfg;
        let w = &ts.instances[inst];
        let ctx = &ts.contexts[w.race];
        let seq = &ctx.sequences[w.car];

        let (enc_rows, car_id) = self.rows_for(ts, inst, 0, cfg.context_len);
        let (dec_rows, _) = self.rows_for(
            ts,
            inst,
            cfg.context_len,
            cfg.context_len + cfg.prediction_len,
        );

        // Car embedding appended to every row.
        let enc_ids = vec![car_id; cfg.context_len];
        let dec_ids = vec![car_id; cfg.prediction_len];
        let enc_in = t.hstack(&[t.leaf(enc_rows), self.emb.forward(bind, &enc_ids)]);
        let dec_in = t.hstack(&[t.leaf(dec_rows), self.emb.forward(bind, &dec_ids)]);

        let memory = self.encode(bind, enc_in);
        let out = self.decode(bind, dec_in, memory);
        let params: GaussianParams = self.head.forward(bind, out);

        let target = Matrix::from_vec(
            cfg.prediction_len,
            1,
            (0..cfg.prediction_len)
                .map(|j| ctx.norm_rank(seq.rank[w.start + cfg.context_len + j]))
                .collect(),
        );
        let weights = t.leaf(Matrix::full(cfg.prediction_len, 1, w.weight));
        gaussian_nll(bind, params, t.leaf(target), Some(weights))
    }

    /// Train per Algorithm 1 (same loop as the LSTM model).
    pub fn train(&mut self, ts: &TrainingSet, val: &TrainingSet) -> TrainReport {
        let cfg = self.cfg.clone();
        let train_cfg = TrainConfig {
            max_epochs: cfg.max_epochs,
            batch_size: cfg.batch_size,
            lr: cfg.learning_rate,
            seed: cfg.seed,
            ..Default::default()
        };
        let val_take = val.len().min(128);
        // Detach the store so the closures can borrow `self` immutably
        // while the training loop owns the parameters mutably.
        let mut store = std::mem::take(&mut self.store);
        let this: &TransformerModel = self;
        let report = train(
            &mut store,
            ts.len(),
            &train_cfg,
            |store, batch| this.batch_loss(store, ts, batch, true),
            |store| {
                let idx: Vec<usize> = (0..val_take).collect();
                this.batch_loss_eval(store, val, &idx)
            },
        );
        self.store = store;
        report
    }

    fn batch_loss(
        &self,
        store: &mut ParamStore,
        ts: &TrainingSet,
        batch: &[usize],
        _w: bool,
    ) -> f32 {
        let shards = shard_indices(batch, rpf_tensor::par::num_threads());
        let n_shards = shards.len().max(1);
        let results: Vec<ShardGrads> = {
            let values = store.values();
            crossbeam::scope(|s| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|shard| {
                        s.spawn(move |_| {
                            let tape = Tape::new();
                            let bind = Binding::over_values(&tape, values);
                            let mut total: Option<Var> = None;
                            for &inst in shard.iter() {
                                let l = self.window_loss(&bind, ts, inst);
                                total = Some(match total {
                                    Some(acc) => tape.add(acc, l),
                                    None => l,
                                });
                            }
                            // shard_indices never yields empty shards; treat
                            // one as a NaN-loss shard rather than panicking.
                            let Some(total) = total else {
                                return (Vec::new(), f32::NAN, 0);
                            };
                            let loss = tape.scale(total, 1.0 / shard.len() as f32);
                            let v = tape.scalar(loss);
                            (bind.into_grads(loss), v, shard.len())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .zip(&shards)
                    // A crashed worker becomes a NaN-loss shard: divergence
                    // recovery rolls the epoch back instead of aborting.
                    .map(|(h, shard)| {
                        h.join()
                            .unwrap_or_else(|_| (Vec::new(), f32::NAN, shard.len()))
                    })
                    .collect()
            })
            .unwrap_or_default()
        };
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for (grads, loss, count) in results {
            for (id, mut g) in grads {
                for v in g.as_mut_slice() {
                    *v /= n_shards as f32;
                }
                store.accumulate_grad(id, &g);
            }
            sum += loss as f64 * count as f64;
            n += count;
        }
        if n == 0 {
            return f32::NAN;
        }
        (sum / n as f64) as f32
    }

    fn batch_loss_eval(&self, store: &ParamStore, ts: &TrainingSet, batch: &[usize]) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let tape = Tape::new();
        let bind = Binding::new(&tape, store);
        let mut sum = 0.0;
        for &inst in batch {
            let l = self.window_loss(&bind, ts, inst);
            sum += tape.scalar(l);
        }
        sum / batch.len() as f32
    }

    /// Build the tape-free serving runtime (one-shot weight conversion).
    fn runtime(&self) -> TransformerRuntime {
        TransformerRuntime {
            proj: InferLinear::from_store(&self.store, &self.proj),
            enc_layers: self
                .enc_layers
                .iter()
                .map(|l| InferEncoderLayer::from_store(&self.store, l))
                .collect(),
            dec_layers: self
                .dec_layers
                .iter()
                .map(|l| InferDecoderLayer::from_store(&self.store, l))
                .collect(),
            head: InferGaussianHead::from_store(&self.store, &self.head),
            emb: InferEmbedding::from_store(&self.store, &self.emb),
        }
    }

    /// Forecast per Algorithm 2 with autoregressive decoding. Same
    /// semantics as `RankModel::forecast` but one sequence at a time, on the
    /// tape-free runtime (bit-identical to the tape reference pinned in the
    /// test suite).
    pub fn forecast(
        &self,
        ctx: &RaceContext,
        cov_future: &CovariateFuture,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        rng: &mut StdRng,
    ) -> ForecastSamples {
        let cfg = &self.cfg;
        let rt = self.runtime();
        let input_dim = self.base_dim + cfg.embedding_dim;
        let mut out: ForecastSamples = vec![Vec::new(); ctx.sequences.len()];
        for (c, seq) in ctx.sequences.iter().enumerate() {
            if seq.len() < origin {
                continue;
            }
            let enc_start = origin.saturating_sub(cfg.context_len).max(1);
            let enc_len = origin - enc_start;
            let car_id = seq.car_id as usize;

            // Encoder rows from actual history, base features plus the
            // constant car-embedding columns (the tape path hstacks these).
            let mut enc_in = Matrix::zeros(enc_len, input_dim);
            let mut row = Vec::with_capacity(self.base_dim);
            for (r, idx) in (enc_start..origin).enumerate() {
                let reg = Regressive {
                    rank: seq.rank[idx - 1],
                    lap_time: seq.lap_time[idx - 1],
                    time_behind: seq.time_behind[idx - 1],
                };
                let cov = Covariates::from_seq(seq, idx, cfg.prediction_len);
                assemble_row(cfg, ctx, &reg, &cov, &mut row);
                enc_in.row_mut(r)[..self.base_dim].copy_from_slice(&row);
                enc_in.row_mut(r)[self.base_dim..].copy_from_slice(rt.emb.row(car_id));
            }

            // Encode once; reuse the memory across samples.
            let memory = rt.encode(&enc_in);

            let frozen = (seq.lap_time[origin - 1], seq.time_behind[origin - 1]);
            for _s in 0..n_samples {
                let mut path = Vec::with_capacity(horizon);
                let mut last_rank = seq.rank[origin - 1];
                let mut dec_inputs: Vec<Vec<f32>> = Vec::with_capacity(horizon);
                let mut mu = Matrix::zeros(0, 0);
                let mut sigma = Matrix::zeros(0, 0);
                for step in 0..horizon {
                    let reg = Regressive {
                        rank: last_rank,
                        lap_time: frozen.0,
                        time_behind: frozen.1,
                    };
                    let cov = cov_future
                        .rows
                        .get(c)
                        .and_then(|r| r.get(step))
                        .copied()
                        .unwrap_or_default();
                    assemble_row(cfg, ctx, &reg, &cov, &mut row);
                    dec_inputs.push(row.clone());

                    // Re-run the decoder over the accumulated inputs.
                    let t_len = dec_inputs.len();
                    let mut dec_in = Matrix::zeros(t_len, input_dim);
                    for (r, d) in dec_inputs.iter().enumerate() {
                        dec_in.row_mut(r)[..self.base_dim].copy_from_slice(d);
                        dec_in.row_mut(r)[self.base_dim..].copy_from_slice(rt.emb.row(car_id));
                    }
                    let h = rt.decode(&dec_in, &memory);
                    let last = h.slice_rows(t_len - 1, t_len);
                    rt.head.forward_into(&last, &mut mu, &mut sigma);
                    let z = sample_gaussian(rng, &mu, &sigma).get(0, 0);
                    let rank = ctx.denorm_rank(z).clamp(0.5, ctx.field_size as f32 + 0.5);
                    path.push(rank);
                    last_rank = rank;
                }
                out[c].push(path);
            }
        }
        out
    }
}

/// Forecaster wrapper selecting the Transformer's covariate source —
/// ground truth (`Transformer-Oracle`) or PitModel samples
/// (`Transformer-MLP`), mirroring Fig 8 / Fig 9 / Table VII.
pub struct TransformerForecaster {
    pub model: TransformerModel,
    pub pit_model: Option<crate::pit_model::PitModel>,
}

impl crate::baseline_adapters::Forecaster for TransformerForecaster {
    fn name(&self) -> String {
        if self.pit_model.is_some() {
            "Transformer-MLP".into()
        } else {
            "Transformer-Oracle".into()
        }
    }

    fn forecast(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        rng: &mut StdRng,
    ) -> ForecastSamples {
        let shift = self.model.cfg.prediction_len;
        match &self.pit_model {
            None => {
                let cov = crate::rank_model::oracle_covariates(ctx, origin, horizon, shift);
                self.model
                    .forecast(ctx, &cov, origin, horizon, n_samples, rng)
            }
            Some(pm) => {
                // Split samples into a few covariate-future groups, like the
                // LSTM RankNet-MLP.
                let groups = n_samples.clamp(1, 4);
                let per_group = n_samples.div_ceil(groups);
                let mut all: ForecastSamples = vec![Vec::new(); ctx.sequences.len()];
                for g in 0..groups {
                    let mut group_rng =
                        StdRng::seed_from_u64(0xF00 ^ (g as u64) << 9 ^ origin as u64);
                    let cov = crate::ranknet::sample_covariate_future(
                        pm,
                        shift,
                        ctx,
                        origin,
                        horizon,
                        &mut group_rng,
                    );
                    let got = self
                        .model
                        .forecast(ctx, &cov, origin, horizon, per_group, rng);
                    for (slot, paths) in all.iter_mut().zip(got) {
                        slot.extend(paths);
                    }
                }
                for slot in all.iter_mut() {
                    slot.truncate(n_samples);
                }
                all
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_sequences;
    use crate::rank_model::oracle_covariates;
    use rpf_racesim::{simulate_race, Event, EventConfig};

    fn tiny_ts(seed: u64) -> TrainingSet {
        let race = simulate_race(&EventConfig::for_race(Event::Indy500, 2016), seed);
        let ctx = extract_sequences(&race);
        TrainingSet::build(vec![ctx], &RankNetConfig::tiny(), 64)
    }

    #[test]
    fn builds_with_paper_dimensions() {
        let model = TransformerModel::new(RankNetConfig::tiny(), 40);
        assert_eq!(D_MODEL, 32);
        assert_eq!(N_HEADS, 8);
        assert!(model.num_params() > 10_000);
    }

    #[test]
    fn trains_and_loss_is_finite() {
        let ts = tiny_ts(1);
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 2;
        cfg.batch_size = 16;
        let mut model = TransformerModel::new(cfg, 40);
        let report = model.train(&ts, &ts);
        assert!(report.best_val_loss.is_finite());
        let first = report.epoch_losses.first().unwrap().0;
        let last = report.epoch_losses.last().unwrap().0;
        assert!(
            last <= first * 1.5,
            "loss should not explode: {first} -> {last}"
        );
    }

    /// The pre-runtime serving path — encode and decode on a fresh tape
    /// each step — kept verbatim as the parity reference for `forecast`.
    fn tape_forecast(
        model: &TransformerModel,
        ctx: &RaceContext,
        cov_future: &CovariateFuture,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        rng: &mut StdRng,
    ) -> ForecastSamples {
        let cfg = &model.cfg;
        let mut out: ForecastSamples = vec![Vec::new(); ctx.sequences.len()];
        for (c, seq) in ctx.sequences.iter().enumerate() {
            if seq.len() < origin {
                continue;
            }
            let enc_start = origin.saturating_sub(cfg.context_len).max(1);
            let enc_len = origin - enc_start;
            let car_id = seq.car_id as usize;
            let mut enc_rows = Matrix::zeros(enc_len, model.base_dim);
            let mut row = Vec::with_capacity(model.base_dim);
            for (r, idx) in (enc_start..origin).enumerate() {
                let reg = Regressive {
                    rank: seq.rank[idx - 1],
                    lap_time: seq.lap_time[idx - 1],
                    time_behind: seq.time_behind[idx - 1],
                };
                let cov = Covariates::from_seq(seq, idx, cfg.prediction_len);
                assemble_row(cfg, ctx, &reg, &cov, &mut row);
                enc_rows.row_mut(r).copy_from_slice(&row);
            }
            let tape = Tape::new();
            let bind = Binding::new(&tape, &model.store);
            let enc_ids = vec![car_id; enc_len];
            let enc_in = tape.hstack(&[
                tape.leaf(enc_rows.clone()),
                model.emb.forward(&bind, &enc_ids),
            ]);
            let memory_val = tape.value(model.encode(&bind, enc_in));

            let frozen = (seq.lap_time[origin - 1], seq.time_behind[origin - 1]);
            for _s in 0..n_samples {
                let mut path = Vec::with_capacity(horizon);
                let mut last_rank = seq.rank[origin - 1];
                let mut dec_inputs: Vec<Vec<f32>> = Vec::with_capacity(horizon);
                for step in 0..horizon {
                    let reg = Regressive {
                        rank: last_rank,
                        lap_time: frozen.0,
                        time_behind: frozen.1,
                    };
                    let cov = cov_future
                        .rows
                        .get(c)
                        .and_then(|r| r.get(step))
                        .copied()
                        .unwrap_or_default();
                    assemble_row(cfg, ctx, &reg, &cov, &mut row);
                    dec_inputs.push(row.clone());

                    let tape = Tape::new();
                    let bind = Binding::new(&tape, &model.store);
                    let mut dec_rows = Matrix::zeros(dec_inputs.len(), model.base_dim);
                    for (r, d) in dec_inputs.iter().enumerate() {
                        dec_rows.row_mut(r).copy_from_slice(d);
                    }
                    let dec_ids = vec![car_id; dec_inputs.len()];
                    let dec_in =
                        tape.hstack(&[tape.leaf(dec_rows), model.emb.forward(&bind, &dec_ids)]);
                    let memory = tape.leaf(memory_val.clone());
                    let h = model.decode(&bind, dec_in, memory);
                    let last = tape.slice_rows(h, dec_inputs.len() - 1, dec_inputs.len());
                    let params = model.head.forward(&bind, last);
                    let mu = tape.value(params.mu);
                    let sigma = tape.value(params.sigma);
                    let z = sample_gaussian(rng, &mu, &sigma).get(0, 0);
                    let rank = ctx.denorm_rank(z).clamp(0.5, ctx.field_size as f32 + 0.5);
                    path.push(rank);
                    last_rank = rank;
                }
                out[c].push(path);
            }
        }
        out
    }

    #[test]
    fn forecast_matches_tape_reference_bitwise() {
        let ts = tiny_ts(5);
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 1;
        cfg.batch_size = 16;
        let mut model = TransformerModel::new(cfg.clone(), 40);
        let _ = model.train(&ts, &ts);
        let ctx = &ts.contexts[0];
        let cov = oracle_covariates(ctx, 60, 2, cfg.prediction_len);
        let mut rng_runtime = StdRng::seed_from_u64(17);
        let mut rng_tape = StdRng::seed_from_u64(17);
        let got = model.forecast(ctx, &cov, 60, 2, 2, &mut rng_runtime);
        let want = tape_forecast(&model, ctx, &cov, 60, 2, 2, &mut rng_tape);
        let bits = |s: &ForecastSamples| -> Vec<u32> {
            s.iter().flatten().flatten().map(|v| v.to_bits()).collect()
        };
        assert!(bits(&got).len() > 20);
        assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn forecast_has_sane_shape() {
        let ts = tiny_ts(2);
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 1;
        cfg.batch_size = 16;
        let mut model = TransformerModel::new(cfg.clone(), 40);
        let _ = model.train(&ts, &ts);
        let ctx = &ts.contexts[0];
        let cov = oracle_covariates(ctx, 60, 2, cfg.prediction_len);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = model.forecast(ctx, &cov, 60, 2, 3, &mut rng);
        let filled = samples.iter().filter(|s| !s.is_empty()).count();
        assert!(filled > 20);
        for s in samples.iter().filter(|s| !s.is_empty()) {
            assert_eq!(s.len(), 3);
            assert_eq!(s[0].len(), 2);
            assert!(s[0].iter().all(|&v| (0.0..=34.0).contains(&v)));
        }
    }
}
