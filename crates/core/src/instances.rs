//! Sliding-window training instances and the shared input-row assembly.
//!
//! Both training (Algorithm 1) and forecasting (Algorithm 2) feed the
//! network one step at a time with `[z_{t-1}, X_t]`: the lagged regressive
//! values and the current covariates. This module owns the exact layout of
//! that row so the two paths can never drift apart.

use crate::config::RankNetConfig;
use crate::features::{CarSequence, RaceContext};

/// Lagged regressive inputs (raw units; normalised during assembly).
#[derive(Clone, Copy, Debug)]
pub struct Regressive {
    pub rank: f32,
    pub lap_time: f32,
    pub time_behind: f32,
}

/// Covariates `X_t` of Table I plus the Fig 7 extensions (raw units).
#[derive(Clone, Copy, Debug, Default)]
pub struct Covariates {
    pub track_status: f32,
    pub lap_status: f32,
    pub caution_laps: f32,
    pub pit_age: f32,
    pub leader_pit_count: f32,
    pub total_pit_count: f32,
    /// Race status shifted `k` laps into the future (Fig 7 step 4).
    pub shift_track_status: f32,
    pub shift_lap_status: f32,
    pub shift_total_pit_count: f32,
    /// Scenario covariates (compound strategy / weather / fuel pressure),
    /// encoded exactly as race status is: read off the sequence, gated by
    /// `RankNetConfig::use_scenario_features`.
    pub compound: f32,
    pub tyre_age: f32,
    pub track_wetness: f32,
    pub fuel_target: f32,
}

impl Covariates {
    /// Read covariates for step `t` of a sequence; shift features look
    /// `shift` laps ahead (0 beyond the recorded horizon).
    pub fn from_seq(seq: &CarSequence, t: usize, shift: usize) -> Covariates {
        let get = |v: &Vec<f32>, i: usize| v.get(i).copied().unwrap_or(0.0);
        Covariates {
            track_status: get(&seq.track_status, t),
            lap_status: get(&seq.lap_status, t),
            caution_laps: get(&seq.caution_laps, t),
            pit_age: get(&seq.pit_age, t),
            leader_pit_count: get(&seq.leader_pit_count, t),
            total_pit_count: get(&seq.total_pit_count, t),
            shift_track_status: get(&seq.track_status, t + shift),
            shift_lap_status: get(&seq.lap_status, t + shift),
            shift_total_pit_count: get(&seq.total_pit_count, t + shift),
            compound: get(&seq.compound, t),
            tyre_age: get(&seq.tyre_age, t),
            track_wetness: get(&seq.track_wetness, t),
            fuel_target: get(&seq.fuel_target, t),
        }
    }
}

/// Width of the assembled input row (before the CarId embedding is
/// concatenated by the model).
pub fn base_input_dim(cfg: &RankNetConfig) -> usize {
    let mut d = 3; // regressive: rank, lap_time, time_behind
    if cfg.use_race_status {
        d += 4; // track, lap, caution_laps, pit_age
    }
    if cfg.use_context_features {
        d += 2; // leader_pit_count, total_pit_count
    }
    if cfg.use_shift_features {
        d += 3; // shifted track/lap status and total pit count
    }
    if cfg.use_scenario_features {
        d += 4; // compound, tyre_age, track_wetness, fuel_target
    }
    d
}

/// Assemble one normalised input row into `out`.
pub fn assemble_row(
    cfg: &RankNetConfig,
    ctx: &RaceContext,
    reg: &Regressive,
    cov: &Covariates,
    out: &mut Vec<f32>,
) {
    out.clear();
    out.push(ctx.norm_rank(reg.rank));
    out.push(ctx.norm_lap_time(reg.lap_time));
    out.push(ctx.norm_gap(reg.time_behind));
    let field = ctx.field_size as f32;
    if cfg.use_race_status {
        out.push(cov.track_status);
        out.push(cov.lap_status);
        out.push(cov.caution_laps / 10.0);
        out.push(cov.pit_age / 50.0);
    }
    if cfg.use_context_features {
        out.push(cov.leader_pit_count / field);
        out.push(cov.total_pit_count / field);
    }
    if cfg.use_shift_features {
        out.push(cov.shift_track_status);
        out.push(cov.shift_lap_status);
        out.push(cov.shift_total_pit_count / field);
    }
    if cfg.use_scenario_features {
        out.push(cov.compound / 4.0);
        out.push(cov.tyre_age / 50.0);
        out.push(cov.track_wetness);
        out.push(cov.fuel_target);
    }
    debug_assert_eq!(out.len(), base_input_dim(cfg));
}

/// One training window: car `car` of race `race`, covering sequence indices
/// `[start, start + context_len + prediction_len)`.
#[derive(Clone, Copy, Debug)]
pub struct WindowInstance {
    pub race: usize,
    pub car: usize,
    pub start: usize,
    /// Loss weight (Fig 7 step 1): larger when the decoder window contains
    /// a rank change.
    pub weight: f32,
}

/// A set of training windows over featurized races.
pub struct TrainingSet {
    pub contexts: Vec<RaceContext>,
    pub instances: Vec<WindowInstance>,
    /// Largest car id across races (+1 = embedding vocabulary).
    pub max_car_id: usize,
}

impl TrainingSet {
    /// Build all full windows from the given featurized races.
    ///
    /// `stride` subsamples window start positions (1 = every position, the
    /// paper's setting; tests use larger strides for speed).
    pub fn build(contexts: Vec<RaceContext>, cfg: &RankNetConfig, stride: usize) -> TrainingSet {
        assert!(stride >= 1);
        let window = cfg.context_len + cfg.prediction_len;
        let mut instances = Vec::new();
        let mut max_car_id = 0usize;
        for (ri, ctx) in contexts.iter().enumerate() {
            for (ci, seq) in ctx.sequences.iter().enumerate() {
                max_car_id = max_car_id.max(seq.car_id as usize);
                if seq.len() < window + 1 {
                    continue;
                }
                // +1 because step t needs the lagged value at t-1.
                let mut start = 1usize;
                while start + window <= seq.len() {
                    let dec_lo = start + cfg.context_len;
                    let dec_hi = start + window;
                    let rank_changes = (dec_lo.saturating_sub(1)..dec_hi - 1)
                        .any(|i| seq.rank[i] != seq.rank[i + 1]);
                    let weight = if rank_changes { cfg.loss_weight } else { 1.0 };
                    instances.push(WindowInstance {
                        race: ri,
                        car: ci,
                        start,
                        weight,
                    });
                    start += stride;
                }
            }
        }
        TrainingSet {
            contexts,
            instances,
            max_car_id,
        }
    }

    pub fn len(&self) -> usize {
        self.instances.len()
    }

    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_sequences;
    use rpf_racesim::{simulate_race, Event, EventConfig};

    fn ctx() -> RaceContext {
        extract_sequences(&simulate_race(
            &EventConfig::for_race(Event::Indy500, 2017),
            3,
        ))
    }

    #[test]
    fn input_dim_tracks_feature_flags() {
        let full = RankNetConfig::default();
        assert_eq!(base_input_dim(&full), 12);
        let deepar = RankNetConfig::default().deepar();
        assert_eq!(base_input_dim(&deepar), 3);
        let no_shift = RankNetConfig {
            use_shift_features: false,
            ..Default::default()
        };
        assert_eq!(base_input_dim(&no_shift), 9);
    }

    #[test]
    fn assembled_row_is_normalised() {
        let cfg = RankNetConfig::default();
        let c = ctx();
        let seq = &c.sequences[0];
        let mut row = Vec::new();
        let reg = Regressive {
            rank: seq.rank[10],
            lap_time: seq.lap_time[10],
            time_behind: seq.time_behind[10],
        };
        let cov = Covariates::from_seq(seq, 11, cfg.prediction_len);
        assemble_row(&cfg, &c, &reg, &cov, &mut row);
        assert_eq!(row.len(), base_input_dim(&cfg));
        assert!(
            row.iter().all(|v| v.is_finite() && v.abs() < 20.0),
            "{row:?}"
        );
    }

    #[test]
    fn windows_fit_inside_sequences() {
        let cfg = RankNetConfig::tiny();
        let ts = TrainingSet::build(vec![ctx()], &cfg, 1);
        assert!(!ts.is_empty());
        let window = cfg.context_len + cfg.prediction_len;
        for w in &ts.instances {
            let seq = &ts.contexts[w.race].sequences[w.car];
            assert!(w.start >= 1);
            assert!(w.start + window <= seq.len());
        }
    }

    #[test]
    fn instance_count_scales_with_stride() {
        let cfg = RankNetConfig::tiny();
        let a = TrainingSet::build(vec![ctx()], &cfg, 1).len();
        let b = TrainingSet::build(vec![ctx()], &cfg, 4).len();
        assert!(b < a);
        assert!(b >= a / 5);
    }

    #[test]
    fn paper_scale_instance_count() {
        // Table IV: ~32K training instances from 5 Indy500 races with
        // stride 1 and context 60. One race gives ~1/5 of that.
        let cfg = RankNetConfig::default();
        let ts = TrainingSet::build(vec![ctx()], &cfg, 1);
        assert!(
            ts.len() > 3000 && ts.len() < 9000,
            "one Indy500 race yields ~4.5K windows, got {}",
            ts.len()
        );
    }

    #[test]
    fn rank_change_windows_get_the_loss_weight() {
        let cfg = RankNetConfig::tiny();
        let ts = TrainingSet::build(vec![ctx()], &cfg, 1);
        let weighted = ts.instances.iter().filter(|w| w.weight > 1.0).count();
        let flat = ts.instances.iter().filter(|w| w.weight == 1.0).count();
        assert!(weighted > 0, "some windows contain rank changes");
        assert!(flat > 0, "some windows are stable");
        for w in &ts.instances {
            assert!(w.weight == 1.0 || w.weight == cfg.loss_weight);
        }
    }

    #[test]
    fn covariates_beyond_horizon_are_zero() {
        let c = ctx();
        let seq = &c.sequences[0];
        let cov = Covariates::from_seq(seq, seq.len() - 1, 5);
        assert_eq!(cov.shift_lap_status, 0.0);
        assert_eq!(cov.shift_track_status, 0.0);
    }
}
