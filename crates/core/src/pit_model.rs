//! The PitModel: an MLP with probabilistic output that predicts the lap of
//! the next pit stop (paper Fig 5b).
//!
//! §III-C: "For efficiency, instead of sequences input and output, PitModel
//! ... use CautionLaps and PitAge as input, and output a scalar of the lap
//! number of the next pit stop." The output is Gaussian — sampling it is
//! what propagates pit-timing uncertainty into the rank forecast.
//!
//! Following the paper's §III-A analysis ("modeling the normal pit data and
//! removing the short distance section is more stable"), training drops
//! stints shorter than a floor.

use crate::config::RankNetConfig;
use crate::features::{CarSequence, RaceContext};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rpf_autodiff::Tape;
use rpf_nn::gaussian::{gaussian_nll, GaussianParams, SIGMA_FLOOR};
use rpf_nn::mlp::Activation;
use rpf_nn::train::{train, TrainConfig, TrainReport};
use rpf_nn::{Binding, InferMlp, Mlp, MlpScratch, ParamStore, RngStreams};
use rpf_tensor::{ops, Matrix};
use std::sync::OnceLock;

/// Training floor on stint length: the paper identifies the <10% short-pit
/// tail (mechanical issues) as noise for the pit model.
const MIN_TRAIN_STINT: f32 = 5.0;

/// One training example: features at a lap, laps until that car's next pit.
#[derive(Clone, Copy, Debug)]
struct PitExample {
    caution_laps: f32,
    pit_age: f32,
    tyre_age: f32,
    track_wetness: f32,
    laps_to_pit: f32,
}

/// Everything the pit model can condition on at one lap. Legacy callers
/// populate only the first two fields; the scenario covariates default to
/// the single-compound dry-race values.
#[derive(Clone, Copy, Debug, Default)]
pub struct PitState {
    /// Caution laps since this car's last stop.
    pub caution_laps: f32,
    /// Laps since this car's last stop.
    pub pit_age: f32,
    /// Laps on the current tyre set (equals `pit_age` when tyres turn over
    /// at every stop).
    pub tyre_age: f32,
    /// Track wetness in `[0, 1]`.
    pub track_wetness: f32,
}

impl PitState {
    /// The legacy two-feature state: tyre age rides along with pit age,
    /// bone-dry track.
    pub fn legacy(caution_laps: f32, pit_age: f32) -> PitState {
        PitState {
            caution_laps,
            pit_age,
            tyre_age: pit_age,
            track_wetness: 0.0,
        }
    }
}

/// The normalised input row for a pit state under the given input width.
/// Shared by training and serving so the two paths cannot drift.
fn feature_row(input_dim: usize, scale: f32, state: &PitState) -> Vec<f32> {
    let mut row = vec![state.caution_laps / 10.0, state.pit_age / scale];
    if input_dim == 4 {
        row.push(state.tyre_age / scale);
        row.push(state.track_wetness);
    }
    row
}

/// Tape-free serving nets for [`PitModel::predict`], built lazily on first
/// use and dropped on any weight mutation (train / import). `OnceLock`
/// keeps `predict` callable through `&self` from parallel forecast workers.
struct PitRuntime {
    mu_net: InferMlp,
    sigma_net: InferMlp,
}

/// The probabilistic next-pit-lap model.
pub struct PitModel {
    store: ParamStore,
    mu_net: Mlp,
    sigma_net: Mlp,
    /// Normalisation constant for ages (the fuel window).
    scale: f32,
    /// Input width: 2 (paper: CautionLaps, PitAge) or 4 (+TyreAge,
    /// TrackWetness under `use_scenario_features`).
    input_dim: usize,
    runtime: OnceLock<PitRuntime>,
}

impl Clone for PitModel {
    /// Deep-copies the weights but NOT the cached serving runtime: the
    /// clone starts with an empty `OnceLock` and rebuilds its nets from its
    /// own store on first `predict`. Sharing the runtime would be a
    /// stale-weight hazard the moment either copy trains or imports.
    fn clone(&self) -> PitModel {
        PitModel {
            store: self.store.clone(),
            mu_net: self.mu_net.clone(),
            sigma_net: self.sigma_net.clone(),
            scale: self.scale,
            input_dim: self.input_dim,
            runtime: OnceLock::new(),
        }
    }
}

impl PitModel {
    /// The paper's two-feature model (CautionLaps, PitAge). Weight names,
    /// shapes and initialisation are unchanged from before the scenario
    /// covariates existed, so v2 artifacts import bit-identically.
    pub fn new(seed: u64, fuel_window: f32) -> PitModel {
        Self::with_features(seed, fuel_window, false)
    }

    /// Constructor parameterised on the feature schema: with
    /// `scenario_features` the input widens to `[CautionLaps, PitAge,
    /// TyreAge, TrackWetness]` — the same covariates the RankModel encoder
    /// receives under `use_scenario_features`.
    pub fn with_features(seed: u64, fuel_window: f32, scenario_features: bool) -> PitModel {
        let d = if scenario_features { 4 } else { 2 };
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9177);
        let mu_net = Mlp::new(
            &mut store,
            &mut rng,
            "pit.mu",
            &[d, 16, 16, 1],
            Activation::Relu,
        );
        let sigma_net = Mlp::new(
            &mut store,
            &mut rng,
            "pit.sigma",
            &[d, 16, 1],
            Activation::Relu,
        );
        PitModel {
            store,
            mu_net,
            sigma_net,
            scale: fuel_window,
            input_dim: d,
            runtime: OnceLock::new(),
        }
    }

    /// Input width (2 legacy, 4 scenario).
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn features(&self, state: &PitState) -> Vec<f32> {
        feature_row(self.input_dim, self.scale, state)
    }

    fn examples(sequences: &[&CarSequence]) -> Vec<PitExample> {
        let mut out = Vec::new();
        for seq in sequences {
            // Next pit lap index for each position.
            let pit_indices: Vec<usize> = (0..seq.len())
                .filter(|&i| seq.lap_status[i] == 1.0)
                .collect();
            for (k, &pit_idx) in pit_indices.iter().enumerate() {
                // Stint start: previous pit (exclusive) or sequence start.
                let start = if k == 0 { 0 } else { pit_indices[k - 1] + 1 };
                let stint_len = (pit_idx - start) as f32;
                if stint_len < MIN_TRAIN_STINT {
                    continue; // drop the short-failure tail (§III-A)
                }
                for i in start..pit_idx {
                    out.push(PitExample {
                        caution_laps: seq.caution_laps[i],
                        pit_age: seq.pit_age[i],
                        tyre_age: seq.tyre_age.get(i).copied().unwrap_or(seq.pit_age[i]),
                        track_wetness: seq.track_wetness.get(i).copied().unwrap_or(0.0),
                        laps_to_pit: (pit_idx - i) as f32,
                    });
                }
            }
        }
        out
    }

    /// Train on every stint in the given races.
    pub fn train(&mut self, contexts: &[RaceContext], cfg: &RankNetConfig) -> TrainReport {
        let seqs: Vec<&CarSequence> = contexts.iter().flat_map(|c| c.sequences.iter()).collect();
        let examples = Self::examples(&seqs);
        assert!(!examples.is_empty(), "no pit stops in training data");

        // Deterministic split for early stopping.
        let n_val = (examples.len() / 10).max(1);
        let (train_ex, val_ex) = examples.split_at(examples.len() - n_val);

        let scale = self.scale;
        let input_dim = self.input_dim;
        let mu_net = self.mu_net.clone();
        let sigma_net = self.sigma_net.clone();
        let features = |e: &PitExample| {
            feature_row(
                input_dim,
                scale,
                &PitState {
                    caution_laps: e.caution_laps,
                    pit_age: e.pit_age,
                    tyre_age: e.tyre_age,
                    track_wetness: e.track_wetness,
                },
            )
        };

        let mut store = std::mem::take(&mut self.store);
        let train_cfg = TrainConfig {
            max_epochs: cfg.max_epochs.max(10),
            batch_size: 256,
            lr: 2e-3,
            seed: cfg.seed,
            ..Default::default()
        };
        let report = train(
            &mut store,
            train_ex.len(),
            &train_cfg,
            |store, batch| {
                let tape = Tape::new();
                let bind = Binding::new(&tape, store);
                let b = batch.len();
                let mut x = Matrix::zeros(b, input_dim);
                let mut t = Matrix::zeros(b, 1);
                for (i, &bi) in batch.iter().enumerate() {
                    let e = &train_ex[bi];
                    x.row_mut(i).copy_from_slice(&features(e));
                    t.set(i, 0, e.laps_to_pit / scale);
                }
                let xv = tape.leaf(x);
                let mu = mu_net.forward(&bind, xv);
                let sigma =
                    tape.add_scalar(tape.softplus(sigma_net.forward(&bind, xv)), SIGMA_FLOOR);
                let target = tape.leaf(t);
                let nll = gaussian_nll(&bind, GaussianParams { mu, sigma }, target, None);
                let loss = tape.scalar(nll);
                let g = bind.into_grads(nll);
                store.apply_grads(g);
                loss
            },
            |store| {
                let tape = Tape::new();
                let bind = Binding::new(&tape, store);
                let b = val_ex.len();
                let mut x = Matrix::zeros(b, input_dim);
                let mut t = Matrix::zeros(b, 1);
                for (i, e) in val_ex.iter().enumerate() {
                    x.row_mut(i).copy_from_slice(&features(e));
                    t.set(i, 0, e.laps_to_pit / scale);
                }
                let xv = tape.leaf(x);
                let mu = mu_net.forward(&bind, xv);
                let sigma =
                    tape.add_scalar(tape.softplus(sigma_net.forward(&bind, xv)), SIGMA_FLOOR);
                let target = tape.leaf(t);
                let nll = gaussian_nll(&bind, GaussianParams { mu, sigma }, target, None);
                tape.scalar(nll)
            },
        );
        self.store = store;
        // New weights: the cached serving runtime is stale.
        self.runtime = OnceLock::new();
        report
    }

    /// Normalisation scale (the fuel window this model was built with).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Export weights for persistence.
    pub fn export(&self) -> Vec<(String, rpf_tensor::Matrix)> {
        self.store.export()
    }

    /// Import weights exported by [`PitModel::export`] into a model built
    /// with the same constructor arguments.
    pub fn import(&mut self, entries: &[(String, rpf_tensor::Matrix)]) -> Result<(), String> {
        // Invalidate unconditionally: a failed import may still have written
        // some entries before erroring.
        self.runtime = OnceLock::new();
        self.store.import(entries)
    }

    /// Distribution over laps-until-next-pit for a car with the given state.
    /// Runs on the cached tape-free runtime; bit-identical to the tape
    /// forward (`softplus` floor included) that trains the same nets.
    pub fn predict(&self, caution_laps: f32, pit_age: f32) -> (f32, f32) {
        self.predict_state(&PitState::legacy(caution_laps, pit_age))
    }

    /// [`PitModel::predict`] on a full [`PitState`]. On a legacy (2-input)
    /// model the scenario fields are ignored, so the two entry points agree
    /// bit-for-bit.
    pub fn predict_state(&self, state: &PitState) -> (f32, f32) {
        let rt = self.runtime.get_or_init(|| PitRuntime {
            mu_net: InferMlp::from_store(&self.store, &self.mu_net),
            sigma_net: InferMlp::from_store(&self.store, &self.sigma_net),
        });
        let x = Matrix::from_vec(1, self.input_dim, self.features(state));
        let mut scratch = MlpScratch::new();
        let mut mu = Matrix::zeros(0, 0);
        let mut sigma = Matrix::zeros(0, 0);
        rt.mu_net.forward_into(&x, &mut scratch, &mut mu);
        rt.sigma_net.forward_into(&x, &mut scratch, &mut sigma);
        ops::softplus_assign(&mut sigma);
        ops::add_scalar_assign(&mut sigma, SIGMA_FLOOR);
        (mu.get(0, 0) * self.scale, sigma.get(0, 0) * self.scale)
    }

    /// Sample the lap offset (≥ 1) of the next pit stop.
    pub fn sample_next_pit(&self, caution_laps: f32, pit_age: f32, rng: &mut StdRng) -> usize {
        self.sample_next_pit_state(&PitState::legacy(caution_laps, pit_age), rng)
    }

    /// [`PitModel::sample_next_pit`] on a full [`PitState`].
    pub fn sample_next_pit_state(&self, state: &PitState, rng: &mut StdRng) -> usize {
        let (mu, sigma) = self.predict_state(state);
        let u1: f32 = rng.gen_range(1e-7..1.0f32);
        let u2: f32 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        (mu + sigma * z).round().max(1.0) as usize
    }

    /// Sample a full future pit-lap pattern for one car: `horizon` booleans,
    /// resampling after each predicted stop (Algorithm 2 step 1).
    pub fn sample_future_pits(
        &self,
        caution_laps: f32,
        pit_age: f32,
        horizon: usize,
        rng: &mut StdRng,
    ) -> Vec<bool> {
        self.sample_future_pits_state(&PitState::legacy(caution_laps, pit_age), horizon, rng)
    }

    /// [`PitModel::sample_future_pits`] on a full [`PitState`]. After each
    /// sampled stop the car restarts on fresh tyres (pit age, tyre age and
    /// caution credit reset to zero); track wetness persists — the forecast
    /// holds weather at its origin value, exactly as the rank decoder does.
    pub fn sample_future_pits_state(
        &self,
        state: &PitState,
        horizon: usize,
        rng: &mut StdRng,
    ) -> Vec<bool> {
        let fresh = PitState {
            caution_laps: 0.0,
            pit_age: 0.0,
            tyre_age: 0.0,
            track_wetness: state.track_wetness,
        };
        let mut pits = vec![false; horizon];
        // Countdown to the next stop; aging is implicit in the countdown, so
        // the model is only ever queried at a pit (age 0) or at the origin.
        let mut next = self.sample_next_pit_state(state, rng);
        for slot in pits.iter_mut() {
            if next == 0 {
                *slot = true;
                // A freshly sampled stint must be at least one lap.
                next = self.sample_next_pit_state(&fresh, rng).max(1);
            }
            next = next.saturating_sub(1);
        }
        pits
    }

    /// Stream-seeded variant of [`PitModel::sample_future_pits`]: the draws
    /// come from `streams.stream(index)`, so each car's future owns a fixed
    /// stream and per-car sampling can run in any order — or in parallel —
    /// without changing any car's pit pattern.
    pub fn sample_future_pits_stream(
        &self,
        caution_laps: f32,
        pit_age: f32,
        horizon: usize,
        streams: &RngStreams,
        index: u64,
    ) -> Vec<bool> {
        let mut rng = streams.stream(index);
        self.sample_future_pits(caution_laps, pit_age, horizon, &mut rng)
    }

    /// Stream-seeded variant of [`PitModel::sample_future_pits_state`].
    pub fn sample_future_pits_stream_state(
        &self,
        state: &PitState,
        horizon: usize,
        streams: &RngStreams,
        index: u64,
    ) -> Vec<bool> {
        let mut rng = streams.stream(index);
        self.sample_future_pits_state(state, horizon, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_sequences;
    use rpf_racesim::{simulate_race, Event, EventConfig};

    fn contexts() -> Vec<RaceContext> {
        (0..2u64)
            .map(|s| {
                extract_sequences(&simulate_race(
                    &EventConfig::for_race(Event::Indy500, 2015),
                    s,
                ))
            })
            .collect()
    }

    #[test]
    fn examples_have_positive_targets() {
        let ctxs = contexts();
        let seqs: Vec<&CarSequence> = ctxs.iter().flat_map(|c| c.sequences.iter()).collect();
        let ex = PitModel::examples(&seqs);
        assert!(ex.len() > 1000);
        for e in &ex {
            assert!(e.laps_to_pit >= 1.0);
            assert!(e.pit_age >= 0.0);
        }
    }

    #[test]
    fn training_learns_the_fuel_window() {
        let ctxs = contexts();
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 15;
        let mut model = PitModel::new(1, 50.0);
        let report = model.train(&ctxs, &cfg);
        assert!(report.best_val_loss.is_finite());

        // Fresh tyres, no cautions: expect a stint in the 20–45 lap range.
        let (mu, sigma) = model.predict(0.0, 0.0);
        assert!(
            (12.0..48.0).contains(&mu),
            "fresh-stint prediction {mu} should be near the ~32 lap mean"
        );
        assert!(sigma > 0.0);

        // Late in the stint the next pit must be close.
        let (mu_late, _) = model.predict(0.0, 45.0);
        assert!(
            mu_late < mu,
            "at pit age 45 the next stop ({mu_late}) must be nearer than at age 0 ({mu})"
        );
    }

    #[test]
    fn sampled_pits_respect_horizon_and_restart() {
        let ctxs = contexts();
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 5;
        let mut model = PitModel::new(2, 50.0);
        let _ = model.train(&ctxs, &cfg);
        let mut rng = StdRng::seed_from_u64(3);
        // Deep into a stint, a long horizon should almost surely contain a
        // pit stop.
        let mut any_pit = 0;
        for _ in 0..20 {
            let pits = model.sample_future_pits(0.0, 30.0, 40, &mut rng);
            assert_eq!(pits.len(), 40);
            if pits.iter().any(|&p| p) {
                any_pit += 1;
            }
        }
        assert!(
            any_pit >= 15,
            "expected pits in most 40-lap windows, got {any_pit}/20"
        );
    }

    /// Tape reference for `predict`: the exact graph `train` optimises.
    fn predict_tape(model: &PitModel, caution: f32, age: f32) -> (f32, f32) {
        let tape = Tape::new();
        let bind = Binding::new(&tape, &model.store);
        let x = tape.leaf(Matrix::from_vec(
            1,
            model.input_dim,
            model.features(&PitState::legacy(caution, age)),
        ));
        let mu = model.mu_net.forward(&bind, x);
        let sigma = tape.add_scalar(
            tape.softplus(model.sigma_net.forward(&bind, x)),
            SIGMA_FLOOR,
        );
        (
            tape.value(mu).get(0, 0) * model.scale,
            tape.value(sigma).get(0, 0) * model.scale,
        )
    }

    #[test]
    fn predict_matches_tape_reference_and_refreshes_after_train() {
        let ctxs = contexts();
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 2;
        let mut model = PitModel::new(7, 50.0);
        let _ = model.train(&ctxs, &cfg);
        for (caution, age) in [(0.0f32, 0.0f32), (3.0, 20.0), (8.0, 45.0)] {
            let (mu, sigma) = model.predict(caution, age);
            let (mu_t, sigma_t) = predict_tape(&model, caution, age);
            assert_eq!(mu.to_bits(), mu_t.to_bits(), "mu at ({caution}, {age})");
            assert_eq!(
                sigma.to_bits(),
                sigma_t.to_bits(),
                "sigma at ({caution}, {age})"
            );
        }
        // Retraining must rebuild the cached runtime, not serve stale
        // weights: predict after a second train still matches the tape on
        // the *new* store.
        cfg.max_epochs = 4;
        let _ = model.train(&ctxs, &cfg);
        let (mu, sigma) = model.predict(2.0, 15.0);
        let (mu_t, sigma_t) = predict_tape(&model, 2.0, 15.0);
        assert_eq!(mu.to_bits(), mu_t.to_bits());
        assert_eq!(sigma.to_bits(), sigma_t.to_bits());
    }

    #[test]
    fn scenario_model_widens_input_and_stays_compatible() {
        // The 4-input model trains and serves on the same call paths; the
        // legacy entry points keep working on it (scenario fields default
        // to the dry single-compound values).
        let ctxs = contexts();
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 3;
        let mut model = PitModel::with_features(9, 50.0, true);
        assert_eq!(model.input_dim(), 4);
        let report = model.train(&ctxs, &cfg);
        assert!(report.best_val_loss.is_finite());
        let (mu, sigma) = model.predict(0.0, 10.0);
        assert!(mu.is_finite() && sigma > 0.0);
        // A wet track is a real input on the 4-dim model: the prediction
        // may move, but must stay finite and positive-sigma.
        let (mu_wet, sigma_wet) = model.predict_state(&PitState {
            caution_laps: 0.0,
            pit_age: 10.0,
            tyre_age: 10.0,
            track_wetness: 0.9,
        });
        assert!(mu_wet.is_finite() && sigma_wet > 0.0);
        // Export/import round-trips the widened shapes.
        let entries = model.export();
        let mut fresh = PitModel::with_features(1234, 50.0, true);
        fresh.import(&entries).unwrap();
        let (a, b) = fresh.predict(3.0, 20.0);
        let (c, d) = model.predict(3.0, 20.0);
        assert_eq!(a.to_bits(), c.to_bits());
        assert_eq!(b.to_bits(), d.to_bits());
    }

    #[test]
    fn legacy_model_ignores_scenario_fields() {
        let model = PitModel::new(11, 50.0);
        assert_eq!(model.input_dim(), 2);
        let (mu_dry, sig_dry) = model.predict_state(&PitState::legacy(2.0, 15.0));
        let (mu_wet, sig_wet) = model.predict_state(&PitState {
            caution_laps: 2.0,
            pit_age: 15.0,
            tyre_age: 40.0,
            track_wetness: 1.0,
        });
        assert_eq!(mu_dry.to_bits(), mu_wet.to_bits());
        assert_eq!(sig_dry.to_bits(), sig_wet.to_bits());
    }

    #[test]
    fn sample_next_pit_is_at_least_one() {
        let mut model = PitModel::new(4, 50.0);
        let ctxs = contexts();
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 2;
        let _ = model.train(&ctxs, &cfg);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            assert!(model.sample_next_pit(5.0, 49.0, &mut rng) >= 1);
        }
    }
}
