//! Evaluation metrics (§IV-D): MAE, Top1Acc, SignAcc and the quantile
//! ρ-risk of Seeger et al.

/// Mean absolute error between paired slices.
pub fn mae(pred: &[f32], actual: &[f32]) -> f32 {
    assert_eq!(pred.len(), actual.len(), "mae length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f32>()
        / pred.len() as f32
}

/// Fraction of correct leader predictions. Each element pairs the predicted
/// leader's identity with the true leader's identity.
pub fn top1_acc(pred_leader: &[u16], true_leader: &[u16]) -> f32 {
    assert_eq!(pred_leader.len(), true_leader.len());
    if pred_leader.is_empty() {
        return 0.0;
    }
    pred_leader
        .iter()
        .zip(true_leader)
        .filter(|(p, t)| p == t)
        .count() as f32
        / pred_leader.len() as f32
}

/// TaskB: accuracy of the *sign* of the predicted rank change ("whether a
/// car achieves a better rank position or not").
pub fn sign_acc(pred_change: &[f32], true_change: &[f32]) -> f32 {
    assert_eq!(pred_change.len(), true_change.len());
    if pred_change.is_empty() {
        return 0.0;
    }
    pred_change
        .iter()
        .zip(true_change)
        .filter(|(p, t)| sign_of(**p) == sign_of(**t))
        .count() as f32
        / pred_change.len() as f32
}

fn sign_of(v: f32) -> i8 {
    // Changes smaller than half a position count as "no change".
    if v > 0.5 {
        1
    } else if v < -0.5 {
        -1
    } else {
        0
    }
}

/// Empirical quantile of a sample set (sorted copy, nearest-rank).
pub fn quantile(samples: &[f32], rho: f32) -> f32 {
    assert!(!samples.is_empty(), "quantile of empty sample set");
    let mut s = samples.to_vec();
    s.sort_by(f32::total_cmp); // NaN-safe: NaN sorts last instead of panicking
    let pos = (rho.clamp(0.0, 1.0) * (s.len() - 1) as f32).round() as usize;
    s[pos]
}

/// ρ-risk (quantile loss) of a set of forecasts, normalised by `Σ Z` as in
/// the paper §IV-D: for each point, `2 (Ẑρ − Z) (1[Z < Ẑρ] − ρ)`.
///
/// `forecast_quantiles[i]` is the model's ρ-quantile for point `i`;
/// `actual[i]` its realised value.
pub fn rho_risk(forecast_quantiles: &[f32], actual: &[f32], rho: f32) -> f32 {
    assert_eq!(forecast_quantiles.len(), actual.len());
    let denom: f32 = actual.iter().map(|z| z.abs()).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f32 = forecast_quantiles
        .iter()
        .zip(actual)
        .map(|(&zq, &z)| {
            let indicator = if z < zq { 1.0 } else { 0.0 };
            2.0 * (zq - z) * (indicator - rho)
        })
        .sum();
    num / denom
}

/// ρ-risk computed directly from per-point Monte-Carlo samples.
pub fn rho_risk_from_samples(samples: &[Vec<f32>], actual: &[f32], rho: f32) -> f32 {
    assert_eq!(samples.len(), actual.len());
    let quantiles: Vec<f32> = samples.iter().map(|s| quantile(s, rho)).collect();
    rho_risk(&quantiles, actual, rho)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_basic() {
        assert_eq!(mae(&[1.0, 2.0], &[2.0, 0.0]), 1.5);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    fn top1_counts_matches() {
        assert_eq!(top1_acc(&[1, 2, 3, 4], &[1, 9, 3, 9]), 0.5);
    }

    #[test]
    fn sign_acc_with_dead_zone() {
        // Pred +2 vs true +3: both "gain" — correct.
        // Pred -1 vs true +1: wrong.
        // Pred 0.2 vs true 0.0: both "no change" — correct.
        let acc = sign_acc(&[2.0, -1.0, 0.2], &[3.0, 1.0, 0.0]);
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn quantile_extremes() {
        let s = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 0.5), 3.0);
        assert_eq!(quantile(&s, 1.0), 5.0);
    }

    #[test]
    fn rho_risk_is_zero_for_perfect_median() {
        // If the 0.5-quantile equals the actual everywhere, risk is 0.
        let actual = [2.0, 4.0, 6.0];
        assert_eq!(rho_risk(&actual, &actual, 0.5), 0.0);
    }

    #[test]
    fn rho_risk_penalises_asymmetrically() {
        let actual = [10.0f32];
        // Over-forecasting the 0.9 quantile costs more than under at rho=0.9? No:
        // the 0.9-risk penalises *under*-forecasting 9x more than over.
        let over = rho_risk(&[12.0], &actual, 0.9);
        let under = rho_risk(&[8.0], &actual, 0.9);
        assert!(
            under > over,
            "under {under} should exceed over {over} at rho=0.9"
        );
        // And symmetric at the median.
        let o = rho_risk(&[12.0], &actual, 0.5);
        let u = rho_risk(&[8.0], &actual, 0.5);
        assert!((o - u).abs() < 1e-6);
    }

    #[test]
    fn rho_risk_nonnegative_in_expectation_cases() {
        // Single-point check: any misprediction yields positive risk.
        assert!(rho_risk(&[3.0], &[5.0], 0.5) > 0.0);
        assert!(rho_risk(&[7.0], &[5.0], 0.5) > 0.0);
    }

    #[test]
    fn risk_from_samples_uses_the_right_quantile() {
        let samples = vec![vec![0.0, 1.0, 2.0, 3.0, 4.0]];
        let actual = [2.0f32];
        // Median of the samples is exactly 2 => zero risk.
        assert_eq!(rho_risk_from_samples(&samples, &actual, 0.5), 0.0);
        // The 0.9-quantile (4.0) over-forecasts.
        assert!(rho_risk_from_samples(&samples, &actual, 0.9) > 0.0);
    }
}

/// Empirical coverage of the central `(1 - 2·alpha)` interval: the fraction
/// of actuals falling inside `[q_alpha, q_{1-alpha}]` of the sample
/// distribution. A well-calibrated 90% band (`alpha = 0.05`) covers ~0.90.
pub fn interval_coverage(samples: &[Vec<f32>], actual: &[f32], alpha: f32) -> f32 {
    assert_eq!(samples.len(), actual.len());
    if samples.is_empty() {
        return 0.0;
    }
    let hits = samples
        .iter()
        .zip(actual)
        .filter(|(s, &a)| {
            let lo = quantile(s, alpha);
            let hi = quantile(s, 1.0 - alpha);
            lo <= a && a <= hi
        })
        .count();
    hits as f32 / samples.len() as f32
}

/// Continuous Ranked Probability Score estimated from Monte-Carlo samples
/// (the energy-form estimator): `E|X - y| - 0.5 E|X - X'|`. Lower is
/// better; it rewards *sharp and calibrated* forecast distributions, which
/// is the stronger version of the paper's ρ-risk comparison.
pub fn crps_from_samples(samples: &[f32], actual: f32) -> f32 {
    assert!(!samples.is_empty(), "CRPS of empty sample set");
    let n = samples.len() as f32;
    let term1: f32 = samples.iter().map(|&x| (x - actual).abs()).sum::<f32>() / n;
    let mut term2 = 0.0f32;
    for (i, &a) in samples.iter().enumerate() {
        for &b in &samples[i + 1..] {
            term2 += (a - b).abs();
        }
    }
    term1 - term2 / (n * n)
}

/// Mean CRPS over a batch of forecast points.
pub fn mean_crps(samples: &[Vec<f32>], actual: &[f32]) -> f32 {
    assert_eq!(samples.len(), actual.len());
    if samples.is_empty() {
        return 0.0;
    }
    samples
        .iter()
        .zip(actual)
        .map(|(s, &a)| crps_from_samples(s, a))
        .sum::<f32>()
        / samples.len() as f32
}

#[cfg(test)]
mod calibration_tests {
    use super::*;

    #[test]
    fn coverage_of_exact_point_mass() {
        // Point forecasts at the truth: 100% coverage; away: 0%.
        let samples = vec![vec![5.0; 10], vec![3.0; 10]];
        let cov = interval_coverage(&samples, &[5.0, 9.0], 0.05);
        assert_eq!(cov, 0.5);
    }

    #[test]
    fn coverage_of_wide_band_is_total() {
        let samples = vec![vec![0.0, 100.0, 50.0, 25.0, 75.0]];
        assert_eq!(interval_coverage(&samples, &[60.0], 0.0), 1.0);
    }

    #[test]
    fn crps_zero_for_perfect_point_forecast() {
        assert_eq!(crps_from_samples(&[4.0, 4.0, 4.0], 4.0), 0.0);
        assert!(crps_from_samples(&[4.0, 4.0, 4.0], 6.0) > 1.9);
    }

    #[test]
    fn crps_prefers_sharp_correct_over_diffuse() {
        // Both centered on the truth; the sharp one scores lower.
        let sharp: Vec<f32> = (0..50).map(|i| 10.0 + (i % 3) as f32 * 0.1).collect();
        let diffuse: Vec<f32> = (0..50).map(|i| 5.0 + (i % 10) as f32).collect();
        assert!(crps_from_samples(&sharp, 10.0) < crps_from_samples(&diffuse, 10.0));
    }

    #[test]
    fn crps_prefers_centered_over_biased() {
        let centered: Vec<f32> = (0..20).map(|i| 9.0 + (i % 5) as f32 * 0.5).collect();
        let biased: Vec<f32> = centered.iter().map(|v| v + 5.0).collect();
        assert!(crps_from_samples(&centered, 10.0) < crps_from_samples(&biased, 10.0));
    }

    #[test]
    fn mean_crps_aggregates() {
        let s = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let m = mean_crps(&s, &[1.0, 4.0]);
        assert!((m - 1.0).abs() < 1e-6); // (0 + 2) / 2
    }
}
