//! The common forecasting interface and adapters wrapping every baseline
//! (Table III) plus the deep models, so the evaluation runners can treat
//! them uniformly.

use crate::features::RaceContext;
use crate::rank_model::{CovariateFuture, ForecastSamples, RankModel};
use crate::ranknet::RankNet;
use rand::rngs::StdRng;
use rpf_baselines::forest::{ForestConfig, RandomForest};
use rpf_baselines::gbt::{GbtConfig, GradientBoostedTrees};
use rpf_baselines::svr::{Svr, SvrConfig};
use rpf_baselines::Arima;

/// Anything that can produce Monte-Carlo rank forecasts for a race.
pub trait Forecaster {
    fn name(&self) -> String;

    /// `samples[car][sample][step]`, raw rank units; cars without enough
    /// history get an empty sample list. Point forecasters return a single
    /// replicated sample.
    fn forecast(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        rng: &mut StdRng,
    ) -> ForecastSamples;
}

// ---- CurRank --------------------------------------------------------------

/// The naive constant-rank forecaster.
pub struct CurRankForecaster;

impl Forecaster for CurRankForecaster {
    fn name(&self) -> String {
        "CurRank".into()
    }

    fn forecast(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        _n_samples: usize,
        _rng: &mut StdRng,
    ) -> ForecastSamples {
        ctx.sequences
            .iter()
            .map(|seq| {
                if seq.len() < origin {
                    Vec::new()
                } else {
                    vec![vec![seq.rank[origin - 1]; horizon]]
                }
            })
            .collect()
    }
}

// ---- ARIMA ----------------------------------------------------------------

/// Per-car ARIMA fitted on the observed history at forecast time.
pub struct ArimaForecaster {
    pub p: usize,
    pub d: usize,
    pub q: usize,
}

impl Default for ArimaForecaster {
    fn default() -> Self {
        // (2,0,1): rank series are noisy but mean-reverting around a level,
        // so an ARMA with intercept forecasts better than a differenced
        // random walk, which amplifies every pit-stop spike into drift.
        ArimaForecaster { p: 2, d: 0, q: 1 }
    }
}

impl Forecaster for ArimaForecaster {
    fn name(&self) -> String {
        "ARIMA".into()
    }

    fn forecast(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        rng: &mut StdRng,
    ) -> ForecastSamples {
        ctx.sequences
            .iter()
            .map(|seq| {
                if seq.len() < origin {
                    return Vec::new();
                }
                let history = &seq.rank[..origin];
                let fitted = Arima::fit(history, self.p, self.d, self.q)
                    .or_else(|| Arima::fit(history, 1, 0, 0));
                let Some(model) = fitted else {
                    // Degenerate history: fall back to persistence.
                    return vec![vec![history[origin - 1]; horizon]];
                };
                let (point, sds) = model.forecast(history, horizon);
                (0..n_samples)
                    .map(|_| {
                        point
                            .iter()
                            .zip(&sds)
                            .map(|(&m, &s)| {
                                let z = rpf_nn::gaussian::sample_gaussian(
                                    rng,
                                    &rpf_tensor::Matrix::from_vec(1, 1, vec![m]),
                                    &rpf_tensor::Matrix::from_vec(1, 1, vec![s]),
                                );
                                z.get(0, 0).clamp(0.5, ctx.field_size as f32 + 0.5)
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }
}

// ---- pointwise regression models (RF / SVR / XGBoost-like) -----------------

/// The engineered feature row the classical regressors consume
/// (Tulabandhula & Rudin-style pointwise features at the forecast origin).
pub fn regression_features(seq: &crate::features::CarSequence, i: usize, field: f32) -> Vec<f32> {
    vec![
        seq.rank[i] / field,
        seq.lap_time[i] / 100.0,
        seq.time_behind[i] / 100.0,
        seq.track_status[i],
        seq.lap_status[i],
        seq.caution_laps[i] / 10.0,
        seq.pit_age[i] / 50.0,
        seq.leader_pit_count[i] / field,
        seq.total_pit_count[i] / field,
    ]
}

/// Which regression family an adapter wraps.
pub enum RegKind {
    Forest,
    Svr,
    Gbt,
}

enum RegModel {
    Forest(RandomForest),
    Svr(Svr),
    Gbt(GradientBoostedTrees),
}

/// One fitted regressor per forecast step: model `h` predicts the rank
/// *change* `h+1` laps ahead (the paper's baselines "forecast change of
/// rank position", §IV-B).
pub struct RegressionForecaster {
    label: String,
    per_step: Vec<RegModel>,
}

impl RegressionForecaster {
    /// Fit on featurized races. `stride` subsamples training origins.
    pub fn fit(
        kind: RegKind,
        train_ctx: &[RaceContext],
        max_horizon: usize,
        stride: usize,
        seed: u64,
    ) -> RegressionForecaster {
        let label = match kind {
            RegKind::Forest => "RandomForest",
            RegKind::Svr => "SVM",
            RegKind::Gbt => "XGBoost",
        };
        let mut per_step = Vec::with_capacity(max_horizon);
        for h in 1..=max_horizon {
            let mut x = Vec::new();
            let mut y = Vec::new();
            for ctx in train_ctx {
                let field = ctx.field_size as f32;
                for seq in &ctx.sequences {
                    let mut i = 1usize;
                    while i + h < seq.len() {
                        x.push(regression_features(seq, i, field));
                        y.push(seq.rank[i + h] - seq.rank[i]);
                        i += stride;
                    }
                }
            }
            // SVR training is O(n²) in memory: cap its sample count.
            let cap = match kind {
                RegKind::Svr => 1500,
                _ => 20_000,
            };
            if x.len() > cap {
                let keep = x.len() / cap + 1;
                x = x
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| i % keep == 0)
                    .map(|(_, v)| v)
                    .collect();
                y = y
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| i % keep == 0)
                    .map(|(_, v)| v)
                    .collect();
            }
            let model = match kind {
                RegKind::Forest => RegModel::Forest(RandomForest::fit(
                    &x,
                    &y,
                    &ForestConfig {
                        n_trees: 50,
                        seed,
                        ..Default::default()
                    },
                )),
                RegKind::Svr => RegModel::Svr(Svr::fit(
                    &x,
                    &y,
                    &SvrConfig {
                        seed,
                        epsilon: 0.25,
                        c: 5.0,
                        gamma: 1.0,
                        max_passes: 25,
                    },
                )),
                RegKind::Gbt => RegModel::Gbt(GradientBoostedTrees::fit(
                    &x,
                    &y,
                    &GbtConfig {
                        n_rounds: 60,
                        ..Default::default()
                    },
                )),
            };
            per_step.push(model);
        }
        RegressionForecaster {
            label: label.into(),
            per_step,
        }
    }
}

impl Forecaster for RegressionForecaster {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn forecast(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        _rng: &mut StdRng,
    ) -> ForecastSamples {
        let field = ctx.field_size as f32;
        ctx.sequences
            .iter()
            .map(|seq| {
                if seq.len() < origin {
                    return Vec::new();
                }
                let feats = regression_features(seq, origin - 1, field);
                let current = seq.rank[origin - 1];
                match &self.per_step[0] {
                    RegModel::Forest(_) => {
                        // The forest's per-tree spread doubles as its
                        // forecast distribution.
                        (0..n_samples.max(1))
                            .map(|s| {
                                (0..horizon)
                                    .map(|h| {
                                        let m = &self.per_step[h.min(self.per_step.len() - 1)];
                                        let RegModel::Forest(f) = m else {
                                            unreachable!()
                                        };
                                        let preds = f.tree_predictions(&feats);
                                        let v = preds[s % preds.len()];
                                        (current + v).clamp(0.5, field + 0.5)
                                    })
                                    .collect()
                            })
                            .collect()
                    }
                    _ => {
                        let path: Vec<f32> = (0..horizon)
                            .map(|h| {
                                let m = &self.per_step[h.min(self.per_step.len() - 1)];
                                let change = match m {
                                    RegModel::Forest(f) => f.predict(&feats),
                                    RegModel::Svr(s) => s.predict(&feats),
                                    RegModel::Gbt(g) => g.predict(&feats),
                                };
                                (current + change).clamp(0.5, field + 0.5)
                            })
                            .collect();
                        vec![path]
                    }
                }
            })
            .collect()
    }
}

// ---- deep models ------------------------------------------------------------

/// DeepAR: the RankModel without race-status covariates.
pub struct DeepArForecaster(pub RankModel);

impl Forecaster for DeepArForecaster {
    fn name(&self) -> String {
        "DeepAR".into()
    }

    fn forecast(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        rng: &mut StdRng,
    ) -> ForecastSamples {
        // Covariates are disabled in the DeepAR config; empty rows suffice.
        let cov = CovariateFuture {
            rows: vec![Vec::new(); ctx.sequences.len()],
        };
        self.0.forecast(ctx, &cov, origin, horizon, n_samples, rng)
    }
}

impl Forecaster for RankNet {
    fn name(&self) -> String {
        self.variant.name().into()
    }

    fn forecast(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        rng: &mut StdRng,
    ) -> ForecastSamples {
        RankNet::forecast(self, ctx, origin, horizon, n_samples, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_sequences;
    use rand::SeedableRng;
    use rpf_racesim::{simulate_race, Event, EventConfig};

    fn ctx() -> RaceContext {
        extract_sequences(&simulate_race(
            &EventConfig::for_race(Event::Indy500, 2018),
            11,
        ))
    }

    #[test]
    fn currank_repeats_last_rank() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let f = CurRankForecaster.forecast(&c, 50, 3, 10, &mut rng);
        for (ci, per_car) in f.iter().enumerate() {
            if c.sequences[ci].len() >= 50 {
                assert_eq!(per_car.len(), 1);
                let expect = c.sequences[ci].rank[49];
                assert!(per_car[0].iter().all(|&v| v == expect));
            }
        }
    }

    #[test]
    fn arima_produces_spread_samples() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let f = ArimaForecaster::default().forecast(&c, 80, 2, 12, &mut rng);
        let per_car = f.iter().find(|s| !s.is_empty()).unwrap();
        assert_eq!(per_car.len(), 12);
        // Samples should not all be identical (probabilistic forecast).
        let firsts: Vec<f32> = per_car.iter().map(|p| p[0]).collect();
        let spread = firsts.iter().cloned().fold(f32::MIN, f32::max)
            - firsts.iter().cloned().fold(f32::MAX, f32::min);
        assert!(spread > 0.0, "ARIMA samples should vary");
    }

    #[test]
    fn regression_forecasters_fit_and_predict() {
        let c = ctx();
        for kind in [RegKind::Svr, RegKind::Gbt] {
            let model = RegressionForecaster::fit(kind, std::slice::from_ref(&c), 2, 16, 0);
            let mut rng = StdRng::seed_from_u64(3);
            let f = model.forecast(&c, 60, 2, 5, &mut rng);
            let ok = f
                .iter()
                .enumerate()
                .filter(|(ci, s)| c.sequences[*ci].len() >= 60 && !s.is_empty())
                .count();
            assert!(ok > 20, "{}: {ok} cars forecasted", model.name());
            for per_car in f.iter().filter(|s| !s.is_empty()) {
                for path in per_car {
                    assert_eq!(path.len(), 2);
                    assert!(path.iter().all(|v| (0.0..=34.0).contains(v)));
                }
            }
        }
    }

    #[test]
    fn forest_adapter_yields_multiple_samples() {
        let c = ctx();
        let model = RegressionForecaster::fit(RegKind::Forest, std::slice::from_ref(&c), 2, 24, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let f = model.forecast(&c, 60, 2, 8, &mut rng);
        let per_car = f.iter().find(|s| !s.is_empty()).unwrap();
        assert_eq!(per_car.len(), 8);
    }
}
