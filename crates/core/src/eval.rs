//! Experiment runners behind the paper's evaluation section:
//!
//! * [`eval_short_term`] — Table V: two-lap forecasting, metrics split into
//!   All / Normal / PitStop-covered laps,
//! * [`eval_stint`] — Table VI (TaskB): rank change between consecutive
//!   pit stops, SignAcc / MAE / ρ-risks,
//! * [`prediction_length_sweep`] — Fig 9: MAE improvement over CurRank as
//!   the horizon grows,
//! * [`mae_improvement_pit_laps`] — the Table VII statistic (MAE
//!   improvement over CurRank on pit-covered laps).

use crate::baseline_adapters::{CurRankForecaster, Forecaster};
use crate::features::RaceContext;
use crate::metrics::{mae, quantile, rho_risk, sign_acc, top1_acc};
use crate::ranknet::ranks_by_sorting;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Evaluation protocol parameters.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Forecast horizon in laps (Table V: 2).
    pub horizon: usize,
    /// Monte-Carlo samples per forecast (paper: 100).
    pub n_samples: usize,
    /// First forecast origin (sequence index); must exceed the warm-up.
    pub origin_start: usize,
    /// Stride between consecutive forecast origins.
    pub origin_step: usize,
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            horizon: 2,
            n_samples: 100,
            origin_start: 25,
            origin_step: 1,
            seed: 7,
        }
    }
}

impl EvalConfig {
    /// Sparse, small-sample protocol for unit tests.
    pub fn fast() -> Self {
        EvalConfig {
            horizon: 2,
            n_samples: 10,
            origin_start: 40,
            origin_step: 25,
            seed: 7,
        }
    }
}

/// The four Table V metrics over one lap category.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct MetricBlock {
    pub top1_acc: f32,
    pub mae: f32,
    pub risk50: f32,
    pub risk90: f32,
    /// Number of (car, origin) points aggregated.
    pub n: usize,
}

/// One model's Table V row.
#[derive(Clone, Debug, Serialize)]
pub struct ShortTermRow {
    pub model: String,
    pub all: MetricBlock,
    pub normal: MetricBlock,
    pub pit_covered: MetricBlock,
}

#[derive(Default)]
struct Accumulator {
    pred: Vec<f32>,
    actual: Vec<f32>,
    q50: Vec<f32>,
    q90: Vec<f32>,
    pred_leader: Vec<u16>,
    true_leader: Vec<u16>,
}

impl Accumulator {
    fn finish(&self) -> MetricBlock {
        MetricBlock {
            top1_acc: top1_acc(&self.pred_leader, &self.true_leader),
            mae: mae(&self.pred, &self.actual),
            risk50: rho_risk(&self.q50, &self.actual, 0.5),
            risk90: rho_risk(&self.q90, &self.actual, 0.9),
            n: self.pred.len(),
        }
    }
}

/// Does any car pit within the forecast window `[origin-1, origin+horizon)`?
/// ("PitStop Covered Laps, where pit stop occurs at least once in one lap
/// distance", Table V.)
pub fn window_has_pit(ctx: &RaceContext, origin: usize, horizon: usize) -> bool {
    let lo = origin.saturating_sub(1);
    let hi = origin + horizon;
    ctx.sequences
        .iter()
        .any(|seq| (lo..hi.min(seq.len())).any(|i| seq.lap_status[i] == 1.0))
}

/// Table V for one model on one race.
pub fn eval_short_term(
    model: &dyn Forecaster,
    ctx: &RaceContext,
    cfg: &EvalConfig,
) -> ShortTermRow {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut all = Accumulator::default();
    let mut normal = Accumulator::default();
    let mut pit = Accumulator::default();

    let eval_idx = cfg.horizon - 1; // metric step: the final forecast lap
    let mut origin = cfg.origin_start;
    while origin + cfg.horizon <= ctx.total_laps {
        let samples = model.forecast(ctx, origin, cfg.horizon, cfg.n_samples, &mut rng);
        let ranked = ranks_by_sorting(&samples, eval_idx);
        let target_idx = origin + eval_idx;
        let pit_window = window_has_pit(ctx, origin, cfg.horizon);

        // Leader prediction: the car most frequently ranked first across
        // the Monte-Carlo samples (the mode of the rank-1 event, which is
        // far more robust than comparing per-car medians near the front).
        let mut best: Option<(u16, usize, f32)> = None;
        let mut true_leader: Option<u16> = None;
        for (c, seq) in ctx.sequences.iter().enumerate() {
            if ranked[c].is_empty() || seq.len() <= target_idx {
                continue;
            }
            let firsts = ranked[c].iter().filter(|&&r| r == 1.0).count();
            let med = quantile(&ranked[c], 0.5);
            let better = match &best {
                None => true,
                Some((_, bf, bm)) => firsts > *bf || (firsts == *bf && med < *bm),
            };
            if better {
                best = Some((seq.car_id, firsts, med));
            }
            if seq.rank[target_idx] == 1.0 {
                true_leader = Some(seq.car_id);
            }
        }
        let best = best.map(|(id, _, m)| (id, m));

        if let (Some((pl, _)), Some(tl)) = (best, true_leader) {
            for acc in categories(&mut all, &mut normal, &mut pit, pit_window) {
                acc.pred_leader.push(pl);
                acc.true_leader.push(tl);
            }
        }

        for (c, seq) in ctx.sequences.iter().enumerate() {
            if ranked[c].is_empty() || seq.len() <= target_idx {
                continue;
            }
            let med = quantile(&ranked[c], 0.5);
            let q90 = quantile(&ranked[c], 0.9);
            let actual = seq.rank[target_idx];
            for acc in categories(&mut all, &mut normal, &mut pit, pit_window) {
                acc.pred.push(med);
                acc.actual.push(actual);
                acc.q50.push(med);
                acc.q90.push(q90);
            }
        }
        origin += cfg.origin_step;
    }

    ShortTermRow {
        model: model.name(),
        all: all.finish(),
        normal: normal.finish(),
        pit_covered: pit.finish(),
    }
}

/// Pick the accumulators a data point belongs to.
fn categories<'a>(
    all: &'a mut Accumulator,
    normal: &'a mut Accumulator,
    pit: &'a mut Accumulator,
    pit_window: bool,
) -> Vec<&'a mut Accumulator> {
    if pit_window {
        vec![all, pit]
    } else {
        vec![all, normal]
    }
}

/// Table VI row: stint forecasting (TaskB) metrics.
#[derive(Clone, Debug, Serialize)]
pub struct StintRow {
    pub model: String,
    pub sign_acc: f32,
    pub mae: f32,
    pub risk50: f32,
    pub risk90: f32,
    pub n: usize,
}

/// Table VI for one model on one race: for each stint (between consecutive
/// pit stops of a car), forecast from just after the first stop to just
/// before the next, and score the predicted rank *change*.
pub fn eval_stint(model: &dyn Forecaster, ctx: &RaceContext, cfg: &EvalConfig) -> StintRow {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5717);
    let mut pred_change = Vec::new();
    let mut true_change = Vec::new();
    let mut q50 = Vec::new();
    let mut q90 = Vec::new();
    let mut actual_ranks = Vec::new();

    for (c, seq) in ctx.sequences.iter().enumerate() {
        let pit_laps: Vec<usize> = (0..seq.len())
            .filter(|&i| seq.lap_status[i] == 1.0)
            .collect();
        for w in pit_laps.windows(2) {
            let (p1, p2) = (w[0], w[1]);
            // Forecast from two laps after the stop to the lap before the
            // next stop.
            let origin = p1 + 2;
            if p2 < origin + 2 || origin < cfg.origin_start.min(20) {
                continue;
            }
            let horizon = p2 - origin;
            let samples = model.forecast(ctx, origin, horizon, cfg.n_samples, &mut rng);
            if samples[c].is_empty() {
                continue;
            }
            let ranked = ranks_by_sorting(&samples, horizon - 1);
            if ranked[c].is_empty() || seq.len() < p2 {
                continue;
            }
            let start_rank = seq.rank[origin - 1];
            let med = quantile(&ranked[c], 0.5);
            let q9 = quantile(&ranked[c], 0.9);
            let actual = seq.rank[p2 - 1];
            pred_change.push(med - start_rank);
            true_change.push(actual - start_rank);
            q50.push(med);
            q90.push(q9);
            actual_ranks.push(actual);
        }
    }

    StintRow {
        model: model.name(),
        sign_acc: sign_acc(&pred_change, &true_change),
        mae: mae(&pred_change, &true_change),
        risk50: rho_risk(&q50, &actual_ranks, 0.5),
        risk90: rho_risk(&q90, &actual_ranks, 0.9),
        n: pred_change.len(),
    }
}

/// Fig 9 point: the MAE improvement (%) of `model` over CurRank at the
/// given horizon, over all laps.
pub fn prediction_length_sweep(
    model: &dyn Forecaster,
    ctx: &RaceContext,
    horizons: &[usize],
    cfg: &EvalConfig,
) -> Vec<(usize, f32)> {
    horizons
        .iter()
        .map(|&h| {
            let mut c = cfg.clone();
            c.horizon = h;
            let row = eval_short_term(model, ctx, &c);
            let cur = eval_short_term(&CurRankForecaster, ctx, &c);
            (h, improvement(cur.all.mae, row.all.mae))
        })
        .collect()
}

/// Table VII statistic: MAE improvement over CurRank on pit-covered laps.
pub fn mae_improvement_pit_laps(
    model: &dyn Forecaster,
    ctx: &RaceContext,
    cfg: &EvalConfig,
) -> f32 {
    let row = eval_short_term(model, ctx, cfg);
    let cur = eval_short_term(&CurRankForecaster, ctx, cfg);
    improvement(cur.pit_covered.mae, row.pit_covered.mae)
}

/// Relative improvement of `new` over `base` (positive = better/lower MAE),
/// as a fraction.
pub fn improvement(base: f32, new: f32) -> f32 {
    if base == 0.0 {
        0.0
    } else {
        (base - new) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_adapters::{ArimaForecaster, CurRankForecaster};
    use crate::features::extract_sequences;
    use rpf_racesim::{simulate_race, Event, EventConfig};

    fn ctx() -> RaceContext {
        extract_sequences(&simulate_race(
            &EventConfig::for_race(Event::Indy500, 2019),
            21,
        ))
    }

    #[test]
    fn currank_metrics_follow_the_paper_pattern() {
        let c = ctx();
        let row = eval_short_term(&CurRankForecaster, &c, &EvalConfig::fast());
        // Table V: CurRank is near-perfect on normal laps and much worse on
        // pit-covered laps.
        assert!(row.normal.mae < 0.7, "normal-lap MAE {}", row.normal.mae);
        assert!(
            row.pit_covered.mae > row.normal.mae + 0.3,
            "pit laps must be harder: {} vs {}",
            row.pit_covered.mae,
            row.normal.mae
        );
        assert!(row.normal.top1_acc >= row.pit_covered.top1_acc);
        assert!(row.all.n == row.normal.n + row.pit_covered.n);
    }

    #[test]
    fn currank_stint_sign_acc_is_poor() {
        // CurRank predicts zero change, so it is only right when the true
        // change is also ~zero — the paper reports 0.15.
        let c = ctx();
        let row = eval_stint(&CurRankForecaster, &c, &EvalConfig::fast());
        assert!(row.n > 10, "need stints to evaluate, got {}", row.n);
        assert!(row.sign_acc < 0.6, "CurRank sign accuracy {}", row.sign_acc);
        assert!(row.mae > 1.0, "stint changes are large, MAE {}", row.mae);
    }

    #[test]
    fn window_has_pit_detects_pits() {
        let c = ctx();
        // Find a lap where someone pits.
        let pit_lap = c
            .sequences
            .iter()
            .flat_map(|s| (0..s.len()).filter(|&i| s.lap_status[i] == 1.0))
            .next()
            .unwrap();
        assert!(window_has_pit(&c, pit_lap, 2));
    }

    #[test]
    fn improvement_math() {
        assert!((improvement(2.0, 1.0) - 0.5).abs() < 1e-6);
        assert!(improvement(2.0, 3.0) < 0.0);
        assert_eq!(improvement(0.0, 1.0), 0.0);
    }

    #[test]
    fn arima_runs_through_short_term_protocol() {
        let c = ctx();
        let row = eval_short_term(&ArimaForecaster::default(), &c, &EvalConfig::fast());
        assert!(row.all.n > 50);
        assert!(row.all.mae.is_finite());
        assert!(row.all.risk90.is_finite());
    }

    #[test]
    fn sweep_produces_one_point_per_horizon() {
        let c = ctx();
        let pts = prediction_length_sweep(&CurRankForecaster, &c, &[2, 4], &EvalConfig::fast());
        assert_eq!(pts.len(), 2);
        // CurRank against itself: zero improvement.
        for (_, imp) in pts {
            assert!(imp.abs() < 1e-6);
        }
    }
}
