//! Feature extraction: the paper's Table I features plus the Fig 7
//! optimization features, computed from raw race timing records.

use rpf_racesim::{LapStatus, RaceResult};

/// Per-car time series of every feature the models consume. All vectors are
/// indexed by lap offset within this car's recorded laps (lap 1 = index 0
/// for cars that run the whole race; retired cars simply stop early).
#[derive(Clone, Debug)]
pub struct CarSequence {
    pub car_id: u16,
    /// Lap numbers (1-based) the entries correspond to.
    pub laps: Vec<u16>,
    /// Target: rank position (Table I: `Rank(i, L)`).
    pub rank: Vec<f32>,
    /// `LapTime(i, L)`, seconds.
    pub lap_time: Vec<f32>,
    /// `TimeBehindLeader(i, L)`, seconds.
    pub time_behind: Vec<f32>,
    /// `LapStatus(i, L)`: 1.0 on pit laps.
    pub lap_status: Vec<f32>,
    /// `TrackStatus(i, L)`: 1.0 on caution laps.
    pub track_status: Vec<f32>,
    /// `CautionLaps(i, L)`: caution laps since this car's last pit.
    pub caution_laps: Vec<f32>,
    /// `PitAge(i, L)`: laps since this car's last pit.
    pub pit_age: Vec<f32>,
    /// Fig 7 step 3: # of cars ahead (rank at L-2) pitting at lap L.
    pub leader_pit_count: Vec<f32>,
    /// Fig 7 step 3: total # of cars pitting at lap L.
    pub total_pit_count: Vec<f32>,
    /// Scenario covariate: tyre compound id fitted this lap (0 for
    /// single-compound series like the IndyCar baseline).
    pub compound: Vec<f32>,
    /// Scenario covariate: laps since the current tyre set was fitted.
    pub tyre_age: Vec<f32>,
    /// Scenario covariate: track wetness in `[0, 1]`.
    pub track_wetness: Vec<f32>,
    /// Scenario covariate: fuel-saving pressure in `[0, 1]`.
    pub fuel_target: Vec<f32>,
}

impl CarSequence {
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }
}

/// A featurized race: all car sequences plus normalisation constants.
#[derive(Clone, Debug)]
pub struct RaceContext {
    pub sequences: Vec<CarSequence>,
    /// Field size (for rank normalisation).
    pub field_size: usize,
    /// Base lap time (for lap-time normalisation).
    pub base_lap_time: f32,
    /// Total laps in the race.
    pub total_laps: usize,
    /// Fuel window (max stint length), laps — the PitModel's scale.
    pub fuel_window: f32,
}

impl RaceContext {
    /// Normalise a rank value into roughly [0, 1].
    pub fn norm_rank(&self, rank: f32) -> f32 {
        rank / self.field_size as f32
    }

    /// Invert [`RaceContext::norm_rank`].
    pub fn denorm_rank(&self, v: f32) -> f32 {
        v * self.field_size as f32
    }

    /// Normalise a lap time (1.0 = base lap pace).
    pub fn norm_lap_time(&self, t: f32) -> f32 {
        t / self.base_lap_time
    }

    /// Normalise a gap to the leader.
    pub fn norm_gap(&self, g: f32) -> f32 {
        g / (2.0 * self.base_lap_time)
    }

    /// Sequence of one car, if it appears in the race.
    pub fn car(&self, car_id: u16) -> Option<&CarSequence> {
        self.sequences.iter().find(|s| s.car_id == car_id)
    }
}

/// Extract every car's feature sequences from a race (Table I + Fig 7).
pub fn extract_sequences(race: &RaceResult) -> RaceContext {
    // Per-lap pit counts across the field (for the context features).
    let max_lap = race.records.iter().map(|r| r.lap).max().unwrap_or(0) as usize;
    let mut pits_at_lap = vec![0u32; max_lap + 1];
    for r in &race.records {
        if r.lap_status == LapStatus::Pit {
            pits_at_lap[r.lap as usize] += 1;
        }
    }

    let mut sequences = Vec::with_capacity(race.field.len());
    for car in &race.field {
        let recs = race.car_records(car.car_id);
        if recs.is_empty() {
            continue;
        }
        let n = recs.len();
        let mut seq = CarSequence {
            car_id: car.car_id,
            laps: Vec::with_capacity(n),
            rank: Vec::with_capacity(n),
            lap_time: Vec::with_capacity(n),
            time_behind: Vec::with_capacity(n),
            lap_status: Vec::with_capacity(n),
            track_status: Vec::with_capacity(n),
            caution_laps: Vec::with_capacity(n),
            pit_age: Vec::with_capacity(n),
            leader_pit_count: Vec::with_capacity(n),
            total_pit_count: Vec::with_capacity(n),
            compound: Vec::with_capacity(n),
            tyre_age: Vec::with_capacity(n),
            track_wetness: Vec::with_capacity(n),
            fuel_target: Vec::with_capacity(n),
        };
        let mut caution_count = 0.0f32;
        let mut pit_age = 0.0f32;
        for (i, rec) in recs.iter().enumerate() {
            seq.laps.push(rec.lap);
            seq.rank.push(rec.rank as f32);
            seq.lap_time.push(rec.lap_time);
            seq.time_behind.push(rec.time_behind_leader);
            seq.lap_status
                .push(if rec.lap_status.is_pit() { 1.0 } else { 0.0 });
            seq.track_status.push(if rec.track_status.is_caution() {
                1.0
            } else {
                0.0
            });

            // Scenario covariates come straight off the record — the
            // simulator (or feed) owns their bookkeeping.
            seq.compound.push(rec.compound as f32);
            seq.tyre_age.push(rec.tyre_age as f32);
            seq.track_wetness.push(rec.track_wetness);
            seq.fuel_target.push(rec.fuel_target);

            // Accumulation-sum transforms (§III-C): ages reset at pit laps.
            if rec.track_status.is_caution() {
                caution_count += 1.0;
            }
            seq.caution_laps.push(caution_count);
            seq.pit_age.push(pit_age);
            if rec.lap_status.is_pit() {
                caution_count = 0.0;
                pit_age = 0.0;
            } else {
                pit_age += 1.0;
            }

            // Context features (Fig 7 step 3).
            let total_pits = pits_at_lap[rec.lap as usize] as f32;
            seq.total_pit_count.push(total_pits);
            // LeaderPitCount: cars ahead of us two laps ago that pit now.
            let my_rank_before = if i >= 2 { recs[i - 2].rank } else { rec.rank };
            let leader_pits = race
                .records
                .iter()
                .filter(|r| {
                    r.lap == rec.lap && r.lap_status == LapStatus::Pit && r.rank < my_rank_before
                })
                .count() as f32;
            seq.leader_pit_count.push(leader_pits);
        }
        sequences.push(seq);
    }

    RaceContext {
        field_size: race.field.len(),
        base_lap_time: race.config.base_lap_time_s(),
        total_laps: race.config.total_laps as usize,
        fuel_window: race.config.fuel_window_laps as f32,
        sequences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpf_racesim::{simulate_race, Event, EventConfig};

    fn ctx() -> RaceContext {
        let race = simulate_race(&EventConfig::for_race(Event::Indy500, 2018), 5);
        extract_sequences(&race)
    }

    #[test]
    fn sequences_cover_the_field() {
        let c = ctx();
        assert!(
            c.sequences.len() >= 25,
            "most of the 33 cars have sequences"
        );
        assert_eq!(c.field_size, 33);
        assert_eq!(c.total_laps, 200);
    }

    #[test]
    fn pit_age_resets_at_pits() {
        let c = ctx();
        for seq in &c.sequences {
            for i in 1..seq.len() {
                if seq.lap_status[i - 1] == 1.0 {
                    assert_eq!(
                        seq.pit_age[i], 0.0,
                        "car {} lap {}: pit age must reset after a pit",
                        seq.car_id, seq.laps[i]
                    );
                } else {
                    assert_eq!(seq.pit_age[i], seq.pit_age[i - 1] + 1.0);
                }
            }
        }
    }

    #[test]
    fn caution_laps_accumulate_and_reset() {
        let c = ctx();
        let mut saw_reset = false;
        let mut saw_growth = false;
        for seq in &c.sequences {
            for i in 1..seq.len() {
                let prev = seq.caution_laps[i - 1];
                let cur = seq.caution_laps[i];
                if cur > prev {
                    saw_growth = true;
                    assert_eq!(seq.track_status[i], 1.0, "growth only under yellow");
                }
                if cur < prev {
                    saw_reset = true;
                    assert_eq!(
                        seq.lap_status[i - 1],
                        1.0,
                        "caution count only resets after a pit"
                    );
                }
            }
        }
        assert!(saw_growth, "simulated race should include caution laps");
        assert!(saw_reset, "and pit stops that reset the counter");
    }

    #[test]
    fn normalisation_roundtrip() {
        let c = ctx();
        let r = 17.0;
        assert!((c.denorm_rank(c.norm_rank(r)) - r).abs() < 1e-5);
        assert!(c.norm_rank(33.0) <= 1.01);
        assert!(c.norm_lap_time(c.base_lap_time) == 1.0);
    }

    #[test]
    fn total_pit_count_matches_records() {
        let c = ctx();
        // Pick a lap where someone pits and confirm all cars agree on the count.
        let seq0 = &c.sequences[0];
        for (i, &lap) in seq0.laps.iter().enumerate() {
            let count = seq0.total_pit_count[i];
            for other in &c.sequences {
                if let Some(j) = other.laps.iter().position(|&l| l == lap) {
                    assert_eq!(
                        other.total_pit_count[j], count,
                        "total pit count is a per-lap quantity"
                    );
                }
            }
            if i > 20 {
                break; // spot check is enough
            }
        }
    }

    #[test]
    fn leader_pit_count_bounded_by_total() {
        let c = ctx();
        for seq in &c.sequences {
            for i in 0..seq.len() {
                assert!(seq.leader_pit_count[i] <= seq.total_pit_count[i]);
            }
        }
    }

    #[test]
    fn car_lookup() {
        let c = ctx();
        let id = c.sequences[3].car_id;
        assert_eq!(c.car(id).unwrap().car_id, id);
        assert!(c.car(999).is_none());
    }
}
