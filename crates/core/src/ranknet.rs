//! RankNet: the cause–effect decomposition (paper Fig 5a, Algorithm 2).
//!
//! History → **PitModel** (future race status) → **RankModel** (future rank
//! distribution) → sampled trajectories → rank positions by sorting.
//!
//! Three variants (Table III):
//!
//! * `Oracle` — ground-truth future race status as covariates: the upper
//!   bound on what decomposition can deliver,
//! * `Mlp` — the contributed model: a separate probabilistic MLP predicts
//!   pit timing; future `TrackStatus` is set to zero (§III-C),
//! * `Joint` — the ablation that trains the multivariate target jointly and
//!   fails from data sparsity.

use crate::config::{DecodeBackend, RankNetConfig};
use crate::features::RaceContext;
use crate::instances::{Covariates, TrainingSet};
use crate::pit_model::{PitModel, PitState};
use crate::rank_model::{
    oracle_covariates, BatchedRun, CovariateFuture, EncoderState, ForecastSamples, RankModel,
    TargetKind,
};
use rand::rngs::StdRng;
use rand::Rng;
use rpf_nn::train::TrainReport;
use rpf_nn::RngStreams;

/// Tag separating the covariate-sampling stream family from the
/// rank-sampling family derived from the same forecast seed.
const COV_STREAM_TAG: u64 = 0x636f_7661;
/// Tag for the rank-decoder stream families (one child per group).
const RANK_STREAM_TAG: u64 = 0x7261_6e6b;

/// Which pit-stop treatment a RankNet instance uses (Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankNetVariant {
    /// Ground-truth future race status.
    Oracle,
    /// PitModel-predicted future race status (the paper's contribution).
    Mlp,
    /// Joint training of rank + race status (no decomposition).
    Joint,
}

impl RankNetVariant {
    pub fn name(self) -> &'static str {
        match self {
            RankNetVariant::Oracle => "RankNet-Oracle",
            RankNetVariant::Mlp => "RankNet-MLP",
            RankNetVariant::Joint => "RankNet-Joint",
        }
    }
}

/// The composed forecaster.
///
/// `Clone` deep-copies both sub-models (the lifecycle layer clones a live
/// version to fine-tune a candidate off to the side); any cached serving
/// runtime is rebuilt lazily by the clone, never shared.
#[derive(Clone)]
pub struct RankNet {
    pub variant: RankNetVariant,
    pub cfg: RankNetConfig,
    pub rank_model: RankModel,
    pub pit_model: Option<PitModel>,
}

/// Training reports of the sub-models.
pub struct RankNetReport {
    pub rank_model: TrainReport,
    pub pit_model: Option<TrainReport>,
}

impl RankNet {
    /// Train a RankNet variant on featurized races.
    ///
    /// `stride` subsamples training windows (1 = paper setting).
    pub fn fit(
        train_ctx: Vec<RaceContext>,
        val_ctx: Vec<RaceContext>,
        cfg: RankNetConfig,
        variant: RankNetVariant,
        stride: usize,
    ) -> (RankNet, RankNetReport) {
        let kind = match variant {
            RankNetVariant::Joint => TargetKind::Joint,
            _ => TargetKind::RankOnly,
        };
        let fuel_window = train_ctx.first().map(|c| c.fuel_window).unwrap_or(50.0);

        let pit_model = if variant == RankNetVariant::Mlp {
            // The pit model's feature schema follows the rank model's:
            // under `use_scenario_features` it also sees tyre age and
            // track wetness (persisted artifacts record the flag in cfg,
            // so rebuild-on-load picks the same shapes).
            let mut pm = PitModel::with_features(cfg.seed, fuel_window, cfg.use_scenario_features);
            let report = pm.train(&train_ctx, &cfg);
            Some((pm, report))
        } else {
            None
        };

        let ts = TrainingSet::build(train_ctx, &cfg, stride);
        let val = TrainingSet::build(val_ctx, &cfg, (stride * 2).max(4));
        let max_car_id = ts.max_car_id.max(val.max_car_id);
        let mut rank_model = RankModel::new(cfg.clone(), kind, max_car_id);
        let rank_report = rank_model.train(&ts, &val);

        let (pit_model, pit_report) = match pit_model {
            Some((pm, rep)) => (Some(pm), Some(rep)),
            None => (None, None),
        };
        (
            RankNet {
                variant,
                cfg,
                rank_model,
                pit_model,
            },
            RankNetReport {
                rank_model: rank_report,
                pit_model: pit_report,
            },
        )
    }

    /// Forecast per Algorithm 2: sample future race status (variant
    /// dependent), then roll the RankModel decoder; returns
    /// `samples[car][sample][step]` in raw rank units.
    ///
    /// Wrapper over [`RankNet::forecast_seeded`] that derives the forecast
    /// seed from `rng` and uses the machine's thread count.
    pub fn forecast(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        rng: &mut StdRng,
    ) -> ForecastSamples {
        self.forecast_seeded(
            ctx,
            origin,
            horizon,
            n_samples,
            rng.gen(),
            rpf_tensor::par::num_threads(),
        )
    }

    /// Fully deterministic forecast: every random draw derives from `seed`
    /// through counter-based streams (see [`RngStreams`]), so the result is
    /// a pure function of `(model, ctx, origin, horizon, n_samples, seed)` —
    /// `threads` only changes how the work is scheduled, never the samples.
    pub fn forecast_seeded(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        seed: u64,
        threads: usize,
    ) -> ForecastSamples {
        self.forecast_seeded_backend(
            ctx,
            origin,
            horizon,
            n_samples,
            seed,
            threads,
            DecodeBackend::default(),
        )
    }

    /// [`RankNet::forecast_seeded`] with an explicit decode backend. `Tape`
    /// and `PerRow` are bit-identical to each other; `Batched` (the
    /// default) is tolerance-equal to them and bit-deterministic in its own
    /// right — still a pure function of the non-`threads` arguments.
    #[allow(clippy::too_many_arguments)]
    pub fn forecast_seeded_backend(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        seed: u64,
        threads: usize,
        backend: DecodeBackend,
    ) -> ForecastSamples {
        let enc = self.rank_model.encode(ctx, origin);
        let groups = self.covariate_groups(ctx, origin, horizon, n_samples, seed);
        self.decode_groups(
            ctx, &enc, &groups, origin, horizon, n_samples, seed, threads, backend,
        )
    }

    /// The variant-dependent covariate step of Algorithm 2: a list of
    /// `(covariate future, samples to draw under it)` pairs. Oracle and
    /// Joint produce a single group; MLP produces several, each a joint
    /// PitModel sample of the whole field's future pit pattern, so that
    /// pit-timing uncertainty propagates into the rank forecast. Groups are
    /// sampled from per-group stream families and so may run in parallel.
    pub(crate) fn covariate_groups(
        &self,
        ctx: &RaceContext,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        seed: u64,
    ) -> Vec<(CovariateFuture, usize)> {
        match self.variant {
            RankNetVariant::Oracle => {
                vec![(
                    oracle_covariates(ctx, origin, horizon, self.cfg.prediction_len),
                    n_samples,
                )]
            }
            RankNetVariant::Joint => {
                vec![(
                    CovariateFuture {
                        rows: vec![Vec::new(); ctx.sequences.len()],
                    },
                    n_samples,
                )]
            }
            RankNetVariant::Mlp => {
                // An MLP RankNet always carries a PitModel; if a hand-built
                // one doesn't, degrade to empty covariates (Joint treatment)
                // rather than killing the serving process.
                let Some(pm) = self.pit_model.as_ref() else {
                    return vec![(
                        CovariateFuture {
                            rows: vec![Vec::new(); ctx.sequences.len()],
                        },
                        n_samples,
                    )];
                };
                let groups = n_samples.clamp(1, 8);
                let per_group = n_samples.div_ceil(groups);
                let cov_streams = RngStreams::new(seed).child(COV_STREAM_TAG);
                // Each group owns the stream family `cov_streams.child(g)`;
                // the groups are independent, so fan them out.
                rpf_tensor::par::par_map(groups, 64 * 1024, |g| {
                    sample_covariate_future_streams(
                        pm,
                        self.cfg.prediction_len,
                        ctx,
                        origin,
                        horizon,
                        &cov_streams.child(g as u64),
                    )
                })
                .into_iter()
                .map(|cov| (cov, per_group))
                .collect()
            }
        }
    }

    /// Decode every covariate group from a shared encoder state and merge
    /// the trajectories, truncating the MLP variant's rounded-up group
    /// product back to `n_samples`.
    ///
    /// `Tape` / `PerRow` decode the groups one after another through the
    /// reference backends; `Batched` folds all groups into a single
    /// lock-step batch ([`RankModel::decode_runs_batched`]) — legal because
    /// each group keeps its own stream family and batched rows never
    /// influence each other.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn decode_groups(
        &self,
        ctx: &RaceContext,
        enc: &EncoderState,
        groups: &[(CovariateFuture, usize)],
        origin: usize,
        horizon: usize,
        n_samples: usize,
        seed: u64,
        threads: usize,
        backend: DecodeBackend,
    ) -> ForecastSamples {
        if backend == DecodeBackend::Batched {
            let job = DecodeJob {
                ctx,
                enc,
                groups,
                origin,
                horizon,
                n_samples,
                seed,
            };
            return self
                .decode_jobs_batched(&[job], threads)
                .pop()
                .unwrap_or_default();
        }
        let rank_streams = RngStreams::new(seed).child(RANK_STREAM_TAG);
        let mut all: ForecastSamples = vec![Vec::new(); ctx.sequences.len()];
        for (g, (cov, per_group)) in groups.iter().enumerate() {
            let streams = rank_streams.child(g as u64);
            let got = match backend {
                DecodeBackend::Tape => self.rank_model.decode_tape(
                    ctx, cov, origin, horizon, *per_group, enc, &streams, threads,
                ),
                _ => self.rank_model.decode(
                    ctx, cov, origin, horizon, *per_group, enc, &streams, threads,
                ),
            };
            for (slot, paths) in all.iter_mut().zip(got) {
                slot.extend(paths);
            }
        }
        for slot in all.iter_mut() {
            slot.truncate(n_samples);
        }
        all
    }

    /// Fold several decode jobs — typically the distinct requests of one
    /// serving micro-batch, each already encoded and covariate-sampled —
    /// into one batched decode. Every `(job, covariate group)` pair becomes
    /// a [`BatchedRun`] with the stream family the per-job path would have
    /// used, so each job's samples are bit-identical to decoding it alone
    /// with the batched backend.
    pub(crate) fn decode_jobs_batched(
        &self,
        jobs: &[DecodeJob<'_>],
        threads: usize,
    ) -> Vec<ForecastSamples> {
        let mut runs: Vec<BatchedRun<'_>> = Vec::new();
        for job in jobs {
            let rank_streams = RngStreams::new(job.seed).child(RANK_STREAM_TAG);
            for (g, (cov, per_group)) in job.groups.iter().enumerate() {
                runs.push(BatchedRun {
                    ctx: job.ctx,
                    enc: job.enc,
                    cov,
                    origin: job.origin,
                    horizon: job.horizon,
                    rows_per: *per_group,
                    streams: rank_streams.child(g as u64),
                });
            }
        }
        let mut per_run = self
            .rank_model
            .decode_runs_batched(&runs, threads)
            .into_iter();
        jobs.iter()
            .map(|job| {
                let mut all: ForecastSamples = vec![Vec::new(); job.ctx.sequences.len()];
                for (cov_g, paths) in job.groups.iter().zip(&mut per_run) {
                    let per_group = cov_g.1;
                    for (ri, path) in paths.into_iter().enumerate() {
                        all[job.enc.cars[ri / per_group]].push(path);
                    }
                }
                for slot in all.iter_mut() {
                    slot.truncate(job.n_samples);
                }
                all
            })
            .collect()
    }
}

/// One request's worth of decode work, ready to fold into a batched decode:
/// the encoder state and covariate groups are already computed; `seed` is
/// the per-call seed [`RankNet::decode_groups`] would have received.
pub(crate) struct DecodeJob<'a> {
    pub ctx: &'a RaceContext,
    pub enc: &'a EncoderState,
    pub groups: &'a [(CovariateFuture, usize)],
    pub origin: usize,
    pub horizon: usize,
    pub n_samples: usize,
    pub seed: u64,
}

/// Sample one joint future of the race status for every car (PitModel step
/// of Algorithm 2): pit laps from the PitModel, future TrackStatus fixed to
/// zero (§III-C), context features derived from the sampled pits. Shared by
/// the LSTM and Transformer RankNet variants.
///
/// Wrapper over [`sample_covariate_future_streams`] deriving the stream
/// family from `rng`.
pub fn sample_covariate_future(
    pm: &PitModel,
    prediction_len: usize,
    ctx: &RaceContext,
    origin: usize,
    horizon: usize,
    rng: &mut StdRng,
) -> CovariateFuture {
    let streams = RngStreams::from_rng(rng);
    sample_covariate_future_streams(pm, prediction_len, ctx, origin, horizon, &streams)
}

/// Stream-seeded [`sample_covariate_future`]: car slot `c` draws its pit
/// pattern from `streams.stream(c)`, so the per-car sampling loop is order-
/// independent and runs in parallel across the field. The derived context
/// features (field pit counts, leader pit counts) are pure functions of the
/// sampled patterns.
pub fn sample_covariate_future_streams(
    pm: &PitModel,
    prediction_len: usize,
    ctx: &RaceContext,
    origin: usize,
    horizon: usize,
    streams: &RngStreams,
) -> CovariateFuture {
    {
        let n_cars = ctx.sequences.len();

        // Sample per-car future pit laps, one stream per car. Each sample
        // costs several MLP forward passes, so the hint makes a ~30-car
        // field worth fanning out on multi-core machines.
        let future_pits: Vec<Vec<bool>> = rpf_tensor::par::par_map(n_cars, 4 * 1024, |c| {
            let seq = &ctx.sequences[c];
            if seq.len() < origin {
                return vec![false; horizon];
            }
            let state = PitState {
                caution_laps: seq.caution_laps[origin - 1],
                pit_age: seq.pit_age[origin - 1],
                tyre_age: seq
                    .tyre_age
                    .get(origin - 1)
                    .copied()
                    .unwrap_or(seq.pit_age[origin - 1]),
                track_wetness: seq.track_wetness.get(origin - 1).copied().unwrap_or(0.0),
            };
            pm.sample_future_pits_stream_state(&state, horizon, streams, c as u64)
        });

        // Field-level context features from the sampled pits.
        let total_pits_at: Vec<f32> = (0..horizon)
            .map(|s| future_pits.iter().filter(|p| p[s]).count() as f32)
            .collect();

        let rows = ctx
            .sequences
            .iter()
            .enumerate()
            .map(|(c, seq)| {
                if seq.len() < origin {
                    return Vec::new();
                }
                let my_rank = seq.rank[origin - 1];
                let mut age = seq.pit_age[origin - 1];
                let caution = seq.caution_laps[origin - 1];
                // Scenario covariates: tyre age evolves with the sampled
                // pit pattern (tyres turn over at every stop); compound,
                // wetness and fuel pressure are held at their origin
                // values — the model knows no weather forecast, mirroring
                // the §III-C zero-future-caution treatment.
                let mut tyre = seq.tyre_age.get(origin - 1).copied().unwrap_or(0.0);
                let compound = seq.compound.get(origin - 1).copied().unwrap_or(0.0);
                let wetness = seq.track_wetness.get(origin - 1).copied().unwrap_or(0.0);
                let fuel = seq.fuel_target.get(origin - 1).copied().unwrap_or(0.0);
                (0..horizon)
                    .map(|s| {
                        let pit = future_pits[c][s];
                        // Cars currently ahead that pit at this step.
                        let leader_pits = ctx
                            .sequences
                            .iter()
                            .enumerate()
                            .filter(|(o, oseq)| {
                                *o != c
                                    && oseq.len() >= origin
                                    && oseq.rank[origin - 1] < my_rank
                                    && future_pits[*o][s]
                            })
                            .count() as f32;
                        let shift = s + prediction_len;
                        let cov = Covariates {
                            track_status: 0.0, // §III-C: future cautions set to zero
                            lap_status: if pit { 1.0 } else { 0.0 },
                            caution_laps: if age == 0.0 { 0.0 } else { caution },
                            pit_age: age,
                            leader_pit_count: leader_pits,
                            total_pit_count: total_pits_at[s],
                            shift_track_status: 0.0,
                            shift_lap_status: future_pits[c]
                                .get(shift)
                                .map(|&p| if p { 1.0 } else { 0.0 })
                                .unwrap_or(0.0),
                            shift_total_pit_count: total_pits_at.get(shift).copied().unwrap_or(0.0),
                            compound,
                            tyre_age: tyre,
                            track_wetness: wetness,
                            fuel_target: fuel,
                        };
                        if pit {
                            age = 0.0;
                            tyre = 0.0;
                        } else {
                            age += 1.0;
                            tyre += 1.0;
                        }
                        cov
                    })
                    .collect()
            })
            .collect();
        CovariateFuture { rows }
    }
}

/// Convert value samples into *rank positions* by sorting within each
/// sample (§III-C: "the final rank positions of the cars are calculated by
/// sorting the sampled outputs"). Returns `ranked[car][sample]` for the
/// chosen step; cars without samples get an empty list.
pub fn ranks_by_sorting(samples: &ForecastSamples, step: usize) -> Vec<Vec<f32>> {
    let n_cars = samples.len();
    let n_samples = samples.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut out = vec![Vec::new(); n_cars];
    for s in 0..n_samples {
        // Collect participating cars for this sample index.
        let mut vals: Vec<(usize, f32)> = (0..n_cars)
            .filter_map(|c| {
                samples[c]
                    .get(s)
                    .and_then(|path| path.get(step))
                    .map(|&v| (c, v))
            })
            .collect();
        // total_cmp: NaN-safe (NaN sorts last) — sample values come from
        // possibly-degraded decoder output, so no unwrap on partial_cmp.
        vals.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (pos, (c, _)) in vals.iter().enumerate() {
            out[*c].push((pos + 1) as f32);
        }
    }
    out
}

/// Median over each car's sorted-rank samples (empty → None).
pub fn median_ranks(ranked: &[Vec<f32>]) -> Vec<Option<f32>> {
    ranked
        .iter()
        .map(|s| {
            if s.is_empty() {
                None
            } else {
                Some(crate::metrics::quantile(s, 0.5))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_sequences;
    use rand::SeedableRng;
    use rpf_racesim::{simulate_race, Event, EventConfig};

    fn ctxs(n: u64, year: u16) -> Vec<RaceContext> {
        (0..n)
            .map(|s| {
                extract_sequences(&simulate_race(
                    &EventConfig::for_race(Event::Indy500, year),
                    s * 7 + 1,
                ))
            })
            .collect()
    }

    fn tiny_cfg() -> RankNetConfig {
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 2;
        cfg.num_samples = 6;
        cfg
    }

    #[test]
    fn fit_and_forecast_all_variants() {
        let train = ctxs(1, 2015);
        let val = ctxs(1, 2016);
        let test = &ctxs(1, 2017)[0];
        for variant in [
            RankNetVariant::Oracle,
            RankNetVariant::Mlp,
            RankNetVariant::Joint,
        ] {
            let (model, report) = RankNet::fit(train.clone(), val.clone(), tiny_cfg(), variant, 24);
            assert!(report.rank_model.best_val_loss.is_finite(), "{variant:?}");
            assert_eq!(model.pit_model.is_some(), variant == RankNetVariant::Mlp);
            let mut rng = StdRng::seed_from_u64(1);
            let samples = model.forecast(test, 70, 2, 4, &mut rng);
            let with = samples.iter().filter(|s| !s.is_empty()).count();
            assert!(with > 20, "{variant:?}: {with} cars forecasted");
            for s in samples.iter().filter(|s| !s.is_empty()) {
                assert_eq!(s.len(), 4);
                assert_eq!(s[0].len(), 2);
            }
        }
    }

    #[test]
    fn ranks_by_sorting_produces_permutations() {
        // Three cars, two samples, one step.
        let samples: ForecastSamples = vec![
            vec![vec![5.0], vec![1.0]],
            vec![vec![2.0], vec![2.0]],
            vec![vec![9.0], vec![3.0]],
        ];
        let ranked = ranks_by_sorting(&samples, 0);
        // Sample 0: car1 < car0 < car2 -> ranks 2,1,3
        assert_eq!(ranked[0][0], 2.0);
        assert_eq!(ranked[1][0], 1.0);
        assert_eq!(ranked[2][0], 3.0);
        // Sample 1: car0 < car1 < car2 -> ranks 1,2,3
        assert_eq!(ranked[0][1], 1.0);
        assert_eq!(ranked[1][1], 2.0);
        assert_eq!(ranked[2][1], 3.0);
    }

    #[test]
    fn ranks_by_sorting_skips_missing_cars() {
        let samples: ForecastSamples = vec![
            vec![vec![5.0]],
            Vec::new(), // retired car
            vec![vec![1.0]],
        ];
        let ranked = ranks_by_sorting(&samples, 0);
        assert_eq!(ranked[0], vec![2.0]);
        assert!(ranked[1].is_empty());
        assert_eq!(ranked[2], vec![1.0]);
        let med = median_ranks(&ranked);
        assert_eq!(med[0], Some(2.0));
        assert_eq!(med[1], None);
    }
}

impl RankNet {
    /// Transfer learning — the paper's §VI future-work direction: adapt a
    /// model trained on one event to another by fine-tuning on the new
    /// event's races at a reduced learning rate. The PitModel (if any) is
    /// also refreshed, since stint lengths are track-specific.
    pub fn fine_tune(
        &mut self,
        new_train: Vec<RaceContext>,
        new_val: Vec<RaceContext>,
        epochs: usize,
        stride: usize,
    ) -> TrainReport {
        if let Some(pm) = self.pit_model.as_mut() {
            let mut cfg = self.cfg.clone();
            cfg.max_epochs = epochs.max(5);
            let _ = pm.train(&new_train, &cfg);
        }
        let ts = TrainingSet::build(new_train, &self.cfg, stride);
        let val = TrainingSet::build(new_val, &self.cfg, (stride * 2).max(4));
        let (old_epochs, old_lr) = (
            self.rank_model.cfg.max_epochs,
            self.rank_model.cfg.learning_rate,
        );
        self.rank_model.cfg.max_epochs = epochs;
        self.rank_model.cfg.learning_rate = old_lr * 0.3;
        let report = self.rank_model.train(&ts, &val);
        self.rank_model.cfg.max_epochs = old_epochs;
        self.rank_model.cfg.learning_rate = old_lr;
        report
    }
}

#[cfg(test)]
mod transfer_tests {
    use super::*;
    use crate::features::extract_sequences;
    use rand::SeedableRng;
    use rpf_racesim::{simulate_race, Event, EventConfig};

    #[test]
    fn fine_tune_keeps_model_usable_and_changes_weights() {
        let indy = extract_sequences(&simulate_race(
            &EventConfig::for_race(Event::Indy500, 2016),
            1,
        ));
        let texas = extract_sequences(&simulate_race(
            &EventConfig::for_race(Event::Texas, 2016),
            2,
        ));
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 1;
        let (mut model, _) = RankNet::fit(
            vec![indy.clone()],
            vec![indy.clone()],
            cfg,
            RankNetVariant::Mlp,
            40,
        );
        let before = model.rank_model.store.snapshot();
        let report = model.fine_tune(vec![texas.clone()], vec![texas.clone()], 1, 40);
        assert!(report.best_val_loss.is_finite());
        let after = model.rank_model.store.snapshot();
        let changed = before
            .iter()
            .zip(&after)
            .any(|(a, b)| a.as_slice() != b.as_slice());
        assert!(changed, "fine-tuning must move the weights");

        // Still forecasts on the new event.
        let mut rng = StdRng::seed_from_u64(3);
        let samples = RankNet::forecast(&model, &texas, 60, 2, 3, &mut rng);
        assert!(samples.iter().filter(|s| !s.is_empty()).count() > 15);
    }
}
