//! Model hyper-parameters (the paper's Table IV).

use serde::{Deserialize, Serialize};

/// Output likelihood of the RankModel's probabilistic head.
///
/// The paper uses a Gaussian (§III-B); Student-t is this reproduction's
/// robustness ablation — heavy tails fit the rare large rank jumps at pit
/// stops without inflating sigma everywhere else.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Likelihood {
    Gaussian,
    /// Student-t with the given degrees of freedom (must be > 2).
    StudentT(f32),
}

/// Hyper-parameters for RankNet and its ablations. Defaults reproduce
/// Table IV; tests shrink them for speed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RankNetConfig {
    /// Encoder (context) length `C = L0 - 1`. Table IV / Fig 7 step 2: 60.
    pub context_len: usize,
    /// Decoder (prediction) length `k`. Table IV: 2.
    pub prediction_len: usize,
    /// Loss weight applied to instances whose decoder window contains a
    /// rank change (Fig 7 step 1; tuned optimum 9, range 1–10).
    pub loss_weight: f32,
    /// LSTM hidden units per layer (Table IV: 40).
    pub hidden_dim: usize,
    /// Stacked LSTM layers (Table IV: 2).
    pub num_layers: usize,
    /// CarId embedding dimension.
    pub embedding_dim: usize,
    /// Monte-Carlo samples per forecast (paper: 100).
    pub num_samples: usize,
    /// Use race-status covariates (off = the plain DeepAR baseline).
    pub use_race_status: bool,
    /// Use the Fig 7 step-3 context features (LeaderPitCount, TotalPitCount).
    pub use_context_features: bool,
    /// Use the Fig 7 step-4 shift features (race status at lap A+k).
    pub use_shift_features: bool,
    /// Training epochs cap.
    pub max_epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    pub seed: u64,
    /// Output distribution (paper: Gaussian).
    pub likelihood: Likelihood,
}

/// Default [`EngineConfig::encoder_cache_capacity`]: enough for every
/// origin of a handful of concurrently-live races, small enough that a
/// season-long soak stays bounded.
pub const DEFAULT_ENCODER_CACHE_CAPACITY: usize = 1024;

/// Which decoder implementation [`crate::engine::ForecastEngine`] (and
/// [`crate::ranknet::RankNet::forecast_seeded`]) rolls Algorithm 2 on.
///
/// `Tape` and `PerRow` are the bitwise-contracted reference pair: they are
/// bit-identical to each other for any thread count. `Batched` is the
/// serving default — all trajectories advance lock-step through FMA GEMMs
/// and fast-activation kernels. It is bit-deterministic for a fixed batch
/// layout and invariant to thread count and request folding (every kernel
/// is row-independent), but only tolerance-equal to the reference pair;
/// the `decode_parity` suite pins the bound. See `DESIGN.md` §13.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeBackend {
    /// Autodiff-tape decode — the training graph stepped forward.
    Tape,
    /// Tape-free per-row infer runtime under the bitwise tape contract.
    PerRow,
    /// Lock-step batched FMA decode (tolerance-pinned contract).
    #[default]
    Batched,
}

/// Runtime tuning for [`crate::engine::ForecastEngine`] — deliberately
/// separate from [`RankNetConfig`] (model hyper-parameters): these knobs
/// change scheduling and memory footprint; only `decode_backend` can move
/// a sampled value, and then only within the pinned decode tolerance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Base seed of the engine's counter-derived RNG streams.
    pub seed: u64,
    /// Decoder worker threads; `None` picks the machine's default.
    pub threads: Option<usize>,
    /// Encoder cache capacity in `(race, origin)` entries, enforced by LRU
    /// eviction; 0 disables caching entirely. Bounds resident encoder
    /// states on long multi-race soaks.
    pub encoder_cache_capacity: usize,
    /// Decoder implementation; [`DecodeBackend::Batched`] unless a
    /// bitwise-reproducible reference decode is required.
    pub decode_backend: DecodeBackend,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0,
            threads: None,
            encoder_cache_capacity: DEFAULT_ENCODER_CACHE_CAPACITY,
            decode_backend: DecodeBackend::Batched,
        }
    }
}

impl Default for RankNetConfig {
    fn default() -> Self {
        RankNetConfig {
            context_len: 60,
            prediction_len: 2,
            loss_weight: 9.0,
            hidden_dim: 40,
            num_layers: 2,
            embedding_dim: 4,
            num_samples: 100,
            use_race_status: true,
            use_context_features: true,
            use_shift_features: true,
            max_epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
            seed: 42,
            likelihood: Likelihood::Gaussian,
        }
    }
}

impl RankNetConfig {
    /// A configuration small enough for unit tests (shorter context, fewer
    /// units, few epochs) while preserving every architectural feature.
    pub fn tiny() -> Self {
        RankNetConfig {
            context_len: 20,
            prediction_len: 2,
            hidden_dim: 16,
            num_layers: 2,
            embedding_dim: 2,
            num_samples: 20,
            max_epochs: 5,
            batch_size: 32,
            ..Default::default()
        }
    }

    /// The plain DeepAR baseline: same network, no race-status covariates
    /// (Table III row "DeepAR").
    pub fn deepar(mut self) -> Self {
        self.use_race_status = false;
        self.use_context_features = false;
        self.use_shift_features = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table4() {
        let c = RankNetConfig::default();
        assert_eq!(c.context_len, 60);
        assert_eq!(c.prediction_len, 2);
        assert_eq!(c.hidden_dim, 40);
        assert_eq!(c.num_layers, 2);
        assert_eq!(c.num_samples, 100);
        assert!((c.learning_rate - 1e-3).abs() < 1e-9);
        assert!((1.0..=10.0).contains(&c.loss_weight));
    }

    #[test]
    fn deepar_disables_covariates() {
        let c = RankNetConfig::default().deepar();
        assert!(!c.use_race_status);
        assert!(!c.use_context_features);
        assert!(!c.use_shift_features);
    }

    #[test]
    fn likelihood_serde_roundtrip() {
        let cfg = RankNetConfig {
            likelihood: Likelihood::StudentT(5.0),
            ..Default::default()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: RankNetConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.likelihood, Likelihood::StudentT(5.0));
        assert_eq!(RankNetConfig::default().likelihood, Likelihood::Gaussian);
    }

    #[test]
    fn tiny_is_smaller_but_complete() {
        let c = RankNetConfig::tiny();
        assert!(c.context_len < 60);
        assert!(c.use_race_status);
        assert_eq!(c.num_layers, 2);
    }
}
