//! Model hyper-parameters (the paper's Table IV).

use serde::{Deserialize, Serialize};

/// Output likelihood of the RankModel's probabilistic head.
///
/// The paper uses a Gaussian (§III-B); Student-t is this reproduction's
/// robustness ablation — heavy tails fit the rare large rank jumps at pit
/// stops without inflating sigma everywhere else.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Likelihood {
    Gaussian,
    /// Student-t with the given degrees of freedom (must be > 2).
    StudentT(f32),
}

/// Hyper-parameters for RankNet and its ablations. Defaults reproduce
/// Table IV; tests shrink them for speed.
///
/// `Deserialize` is hand-written (see below): `use_scenario_features` was
/// added in saved-model format v3, and configs stored by v2 artifacts must
/// keep loading with the flag defaulted off so their weight shapes match.
#[derive(Clone, Debug, Serialize)]
pub struct RankNetConfig {
    /// Encoder (context) length `C = L0 - 1`. Table IV / Fig 7 step 2: 60.
    pub context_len: usize,
    /// Decoder (prediction) length `k`. Table IV: 2.
    pub prediction_len: usize,
    /// Loss weight applied to instances whose decoder window contains a
    /// rank change (Fig 7 step 1; tuned optimum 9, range 1–10).
    pub loss_weight: f32,
    /// LSTM hidden units per layer (Table IV: 40).
    pub hidden_dim: usize,
    /// Stacked LSTM layers (Table IV: 2).
    pub num_layers: usize,
    /// CarId embedding dimension.
    pub embedding_dim: usize,
    /// Monte-Carlo samples per forecast (paper: 100).
    pub num_samples: usize,
    /// Use race-status covariates (off = the plain DeepAR baseline).
    pub use_race_status: bool,
    /// Use the Fig 7 step-3 context features (LeaderPitCount, TotalPitCount).
    pub use_context_features: bool,
    /// Use the Fig 7 step-4 shift features (race status at lap A+k).
    pub use_shift_features: bool,
    /// Use the scenario covariates (compound, tyre age, track wetness,
    /// fuel target) fed by the scenario engine. Off by default: the
    /// IndyCar baseline carries them as all-zero columns, so enabling the
    /// flag only pays off on scenario-family data. Feature-schema v2.
    pub use_scenario_features: bool,
    /// Training epochs cap.
    pub max_epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    pub seed: u64,
    /// Output distribution (paper: Gaussian).
    pub likelihood: Likelihood,
}

/// Default [`EngineConfig::encoder_cache_capacity`]: enough for every
/// origin of a handful of concurrently-live races, small enough that a
/// season-long soak stays bounded.
pub const DEFAULT_ENCODER_CACHE_CAPACITY: usize = 1024;

/// Which decoder implementation [`crate::engine::ForecastEngine`] (and
/// [`crate::ranknet::RankNet::forecast_seeded`]) rolls Algorithm 2 on.
///
/// `Tape` and `PerRow` are the bitwise-contracted reference pair: they are
/// bit-identical to each other for any thread count. `Batched` is the
/// serving default — all trajectories advance lock-step through FMA GEMMs
/// and fast-activation kernels. It is bit-deterministic for a fixed batch
/// layout and invariant to thread count and request folding (every kernel
/// is row-independent), but only tolerance-equal to the reference pair;
/// the `decode_parity` suite pins the bound. See `DESIGN.md` §13.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeBackend {
    /// Autodiff-tape decode — the training graph stepped forward.
    Tape,
    /// Tape-free per-row infer runtime under the bitwise tape contract.
    PerRow,
    /// Lock-step batched FMA decode (tolerance-pinned contract).
    #[default]
    Batched,
}

/// Runtime tuning for [`crate::engine::ForecastEngine`] — deliberately
/// separate from [`RankNetConfig`] (model hyper-parameters): these knobs
/// change scheduling and memory footprint; only `decode_backend` can move
/// a sampled value, and then only within the pinned decode tolerance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Base seed of the engine's counter-derived RNG streams.
    pub seed: u64,
    /// Decoder worker threads; `None` picks the machine's default.
    pub threads: Option<usize>,
    /// Encoder cache capacity in `(race, origin)` entries, enforced by LRU
    /// eviction; 0 disables caching entirely. Bounds resident encoder
    /// states on long multi-race soaks.
    pub encoder_cache_capacity: usize,
    /// Decoder implementation; [`DecodeBackend::Batched`] unless a
    /// bitwise-reproducible reference decode is required.
    pub decode_backend: DecodeBackend,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0,
            threads: None,
            encoder_cache_capacity: DEFAULT_ENCODER_CACHE_CAPACITY,
            decode_backend: DecodeBackend::Batched,
        }
    }
}

impl Default for RankNetConfig {
    fn default() -> Self {
        RankNetConfig {
            context_len: 60,
            prediction_len: 2,
            loss_weight: 9.0,
            hidden_dim: 40,
            num_layers: 2,
            embedding_dim: 4,
            num_samples: 100,
            use_race_status: true,
            use_context_features: true,
            use_shift_features: true,
            use_scenario_features: false,
            max_epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
            seed: 42,
            likelihood: Likelihood::Gaussian,
        }
    }
}

impl RankNetConfig {
    /// A configuration small enough for unit tests (shorter context, fewer
    /// units, few epochs) while preserving every architectural feature.
    pub fn tiny() -> Self {
        RankNetConfig {
            context_len: 20,
            prediction_len: 2,
            hidden_dim: 16,
            num_layers: 2,
            embedding_dim: 2,
            num_samples: 20,
            max_epochs: 5,
            batch_size: 32,
            ..Default::default()
        }
    }

    /// The plain DeepAR baseline: same network, no race-status covariates
    /// (Table III row "DeepAR").
    pub fn deepar(mut self) -> Self {
        self.use_race_status = false;
        self.use_context_features = false;
        self.use_shift_features = false;
        self.use_scenario_features = false;
        self
    }

    /// Version of the feature schema this config encodes rows under:
    /// 1 = the paper's Table I + Fig 7 layout, 2 = with the scenario
    /// covariate block appended. Stored artifacts record the input dims
    /// implicitly through their weight shapes; this labels them for docs
    /// and diagnostics.
    pub fn feature_schema(&self) -> u32 {
        if self.use_scenario_features {
            2
        } else {
            1
        }
    }
}

// Backward-compatible by hand: v2 artifacts predate
// `use_scenario_features`, which must default to `false` (schema v1) so
// stored weight shapes keep matching the encoder the config rebuilds. The
// vendored derive errors on missing fields, hence the explicit impl over
// `take_field_or`.
impl<'de> Deserialize<'de> for RankNetConfig {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match serde::Deserializer::deserialize_content(deserializer)? {
            serde::Content::Map(mut fields) => Ok(RankNetConfig {
                context_len: serde::de::take_field(&mut fields, "context_len")?,
                prediction_len: serde::de::take_field(&mut fields, "prediction_len")?,
                loss_weight: serde::de::take_field(&mut fields, "loss_weight")?,
                hidden_dim: serde::de::take_field(&mut fields, "hidden_dim")?,
                num_layers: serde::de::take_field(&mut fields, "num_layers")?,
                embedding_dim: serde::de::take_field(&mut fields, "embedding_dim")?,
                num_samples: serde::de::take_field(&mut fields, "num_samples")?,
                use_race_status: serde::de::take_field(&mut fields, "use_race_status")?,
                use_context_features: serde::de::take_field(&mut fields, "use_context_features")?,
                use_shift_features: serde::de::take_field(&mut fields, "use_shift_features")?,
                use_scenario_features: serde::de::take_field_or(
                    &mut fields,
                    "use_scenario_features",
                    false,
                )?,
                max_epochs: serde::de::take_field(&mut fields, "max_epochs")?,
                batch_size: serde::de::take_field(&mut fields, "batch_size")?,
                learning_rate: serde::de::take_field(&mut fields, "learning_rate")?,
                seed: serde::de::take_field(&mut fields, "seed")?,
                likelihood: serde::de::take_field(&mut fields, "likelihood")?,
            }),
            other => Err(<D::Error as serde::de::Error>::custom(format!(
                "expected map for struct RankNetConfig, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table4() {
        let c = RankNetConfig::default();
        assert_eq!(c.context_len, 60);
        assert_eq!(c.prediction_len, 2);
        assert_eq!(c.hidden_dim, 40);
        assert_eq!(c.num_layers, 2);
        assert_eq!(c.num_samples, 100);
        assert!((c.learning_rate - 1e-3).abs() < 1e-9);
        assert!((1.0..=10.0).contains(&c.loss_weight));
    }

    #[test]
    fn deepar_disables_covariates() {
        let c = RankNetConfig::default().deepar();
        assert!(!c.use_race_status);
        assert!(!c.use_context_features);
        assert!(!c.use_shift_features);
    }

    #[test]
    fn likelihood_serde_roundtrip() {
        let cfg = RankNetConfig {
            likelihood: Likelihood::StudentT(5.0),
            ..Default::default()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: RankNetConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.likelihood, Likelihood::StudentT(5.0));
        assert_eq!(RankNetConfig::default().likelihood, Likelihood::Gaussian);
    }

    #[test]
    fn config_deserializes_pre_scenario_payloads() {
        // A config serialized before `use_scenario_features` existed (v2
        // artifacts): the flag must default off = feature schema v1.
        let json = serde_json::to_string(&RankNetConfig::default()).unwrap();
        let stripped = json
            .replace("\"use_scenario_features\":false,", "")
            .replace(",\"use_scenario_features\":false", "");
        assert_ne!(json, stripped, "test must actually remove the field");
        let back: RankNetConfig = serde_json::from_str(&stripped).unwrap();
        assert!(!back.use_scenario_features);
        assert_eq!(back.feature_schema(), 1);
        assert_eq!(back.context_len, 60);
    }

    #[test]
    fn feature_schema_tracks_scenario_flag() {
        assert_eq!(RankNetConfig::default().feature_schema(), 1);
        let scen = RankNetConfig {
            use_scenario_features: true,
            ..Default::default()
        };
        assert_eq!(scen.feature_schema(), 2);
    }

    #[test]
    fn tiny_is_smaller_but_complete() {
        let c = RankNetConfig::tiny();
        assert!(c.context_len < 60);
        assert!(c.use_race_status);
        assert_eq!(c.num_layers, 2);
    }
}
