//! Model persistence: save a trained RankNet to JSON and load it back,
//! plus crash-safe training checkpoints.
//!
//! The paper (§IV-J) motivates continuous learning in the field —
//! "keeping updating the model with newest racing data" — which requires
//! carrying trained weights between sessions. The format is deliberately
//! plain: config + variant + named weight tensors, so files stay
//! inspectable and survive refactors that keep parameter names stable.
//!
//! Robustness (DESIGN.md §9):
//!
//! * every file is written atomically — serialize to a `.tmp` sibling,
//!   `fsync`, then `rename` — so a crash mid-write never leaves a torn
//!   file where a good one used to be,
//! * every file carries an FNV-1a content checksum over the weight bits,
//!   so silent corruption (truncation, bit rot) is a clean `Err`, never a
//!   panic or a silently-wrong model,
//! * training can checkpoint each epoch ([`RankModel::train_checkpointed`])
//!   and resume a killed run to bit-identical final weights: the checkpoint
//!   carries the Adam moments, the batch-iterator position and the
//!   early-stopping bookkeeping alongside the weights.

use crate::config::RankNetConfig;
use crate::pit_model::PitModel;
use crate::rank_model::{RankModel, TargetKind};
use crate::ranknet::{RankNet, RankNetVariant};
use rpf_nn::train::{DivergenceCause, RecoveryEvent, TrainCheckpoint, TrainReport};
use rpf_nn::AdamState;
use rpf_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::Path;

/// The serialized form of a trained RankNet.
#[derive(Serialize, Deserialize)]
pub struct SavedRankNet {
    /// Schema version for forward compatibility.
    pub version: u32,
    pub variant: String,
    pub cfg: RankNetConfig,
    /// Embedding vocabulary (max car id + 1).
    pub vocab: usize,
    pub rank_weights: Vec<(String, Matrix)>,
    /// Present only for the MLP variant.
    pub pit_weights: Option<Vec<(String, Matrix)>>,
    pub pit_scale: Option<f32>,
    /// FNV-1a over the weight content (see [`SavedRankNet::content_checksum`]).
    pub checksum: u64,
}

/// Version 2 added the content checksum. Version 3 added
/// `use_scenario_features` to the stored config (and with it the widened
/// pit-model input); v2 files deserialize with the flag defaulted off, so
/// their weight shapes still match the networks the config rebuilds.
pub const FORMAT_VERSION: u32 = 3;

/// Oldest format this build still loads.
pub const MIN_FORMAT_VERSION: u32 = 2;

// ---- content hashing -------------------------------------------------------

/// Incremental FNV-1a (64-bit): small, dependency-free, and plenty to catch
/// truncation and bit-flips — this guards against corruption, not attackers.
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_f32(&mut self, v: f32) {
        self.write(&v.to_bits().to_le_bytes());
    }

    fn write_matrix(&mut self, m: &Matrix) {
        let (r, c) = m.shape();
        self.write_u64(r as u64);
        self.write_u64(c as u64);
        for &v in m.as_slice() {
            self.write_f32(v);
        }
    }

    fn write_named(&mut self, entries: &[(String, Matrix)]) {
        self.write_u64(entries.len() as u64);
        for (name, m) in entries {
            self.write(name.as_bytes());
            self.write_matrix(m);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

impl SavedRankNet {
    /// Checksum of everything that determines model behaviour: the variant,
    /// vocabulary and every weight tensor's name, shape and value bits.
    pub fn content_checksum(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(self.variant.as_bytes());
        h.write_u64(self.vocab as u64);
        h.write_named(&self.rank_weights);
        match &self.pit_weights {
            Some(w) => h.write_named(w),
            None => h.write_u64(u64::MAX),
        }
        h.write_f32(self.pit_scale.unwrap_or(0.0));
        h.finish()
    }
}

// ---- atomic file writes ----------------------------------------------------

/// Crash-safe write: serialize to a `.tmp` sibling in the same directory,
/// `fsync` it, then `rename` over the destination. A crash at any point
/// leaves either the old file or the new one — never a torn mixture.
pub fn atomic_write(path: impl AsRef<Path>, data: &[u8]) -> Result<(), String> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| format!("atomic_write: path '{}' has no file name", path.display()))?;
    let tmp = path.with_file_name(format!("{}.tmp", file_name.to_string_lossy()));
    let mut f = std::fs::File::create(&tmp)
        .map_err(|e| format!("atomic_write: create {}: {e}", tmp.display()))?;
    f.write_all(data)
        .map_err(|e| format!("atomic_write: write {}: {e}", tmp.display()))?;
    f.sync_all()
        .map_err(|e| format!("atomic_write: fsync {}: {e}", tmp.display()))?;
    drop(f);
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("atomic_write: rename to {}: {e}", path.display()))
}

fn variant_name(v: RankNetVariant) -> &'static str {
    match v {
        RankNetVariant::Oracle => "oracle",
        RankNetVariant::Mlp => "mlp",
        RankNetVariant::Joint => "joint",
    }
}

fn variant_from(name: &str) -> Result<RankNetVariant, String> {
    match name {
        "oracle" => Ok(RankNetVariant::Oracle),
        "mlp" => Ok(RankNetVariant::Mlp),
        "joint" => Ok(RankNetVariant::Joint),
        other => Err(format!("unknown RankNet variant '{other}'")),
    }
}

impl RankNet {
    /// Snapshot the trained model into its serializable form.
    pub fn to_saved(&self) -> SavedRankNet {
        let mut saved = SavedRankNet {
            version: FORMAT_VERSION,
            variant: variant_name(self.variant).to_string(),
            cfg: self.cfg.clone(),
            vocab: self.rank_model.vocab(),
            rank_weights: self.rank_model.store.export(),
            pit_weights: self.pit_model.as_ref().map(|p| p.export()),
            pit_scale: self.pit_model.as_ref().map(|p| p.scale()),
            checksum: 0,
        };
        saved.checksum = saved.content_checksum();
        saved
    }

    /// Rebuild a model from a snapshot. Rejects version mismatches, checksum
    /// mismatches and non-finite weights with a descriptive error — a
    /// corrupted snapshot can never become a silently-broken model.
    pub fn from_saved(saved: &SavedRankNet) -> Result<RankNet, String> {
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&saved.version) {
            return Err(format!(
                "unsupported format version {} (supported: {MIN_FORMAT_VERSION}..={FORMAT_VERSION})",
                saved.version
            ));
        }
        let expect = saved.content_checksum();
        if saved.checksum != expect {
            return Err(format!(
                "checksum mismatch: file says {:#018x}, content hashes to {expect:#018x} \
                 — the snapshot is corrupted",
                saved.checksum
            ));
        }
        let variant = variant_from(&saved.variant)?;
        let kind = match variant {
            RankNetVariant::Joint => TargetKind::Joint,
            _ => TargetKind::RankOnly,
        };
        if saved.vocab == 0 {
            return Err("vocabulary must be positive".into());
        }
        let mut rank_model = RankModel::new(saved.cfg.clone(), kind, saved.vocab - 1);
        rank_model.store.import(&saved.rank_weights)?;

        let pit_model = match (&saved.pit_weights, saved.pit_scale, variant) {
            (Some(w), Some(scale), RankNetVariant::Mlp) => {
                // The stored config's feature flag picks the input width;
                // a v2 file deserializes with the flag off, so the rebuilt
                // shapes match its 2-input weights.
                let mut pm =
                    PitModel::with_features(saved.cfg.seed, scale, saved.cfg.use_scenario_features);
                pm.import(w)?;
                Some(pm)
            }
            (None, _, RankNetVariant::Mlp) => {
                return Err("MLP variant requires pit model weights".into())
            }
            _ => None,
        };
        Ok(RankNet {
            variant,
            cfg: saved.cfg.clone(),
            rank_model,
            pit_model,
        })
    }

    /// Save to a JSON file (atomic: tmp + fsync + rename).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let json = serde_json::to_string(&self.to_saved()).map_err(|e| e.to_string())?;
        atomic_write(path, json.as_bytes())
    }

    /// Load from a JSON file written by [`RankNet::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<RankNet, String> {
        let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let saved: SavedRankNet = serde_json::from_str(&json).map_err(|e| e.to_string())?;
        Self::from_saved(&saved)
    }
}

// ---- training checkpoints --------------------------------------------------

/// On-disk form of [`TrainCheckpoint`]: everything a killed training run
/// needs to continue to bit-identical final weights. Weight tensors are
/// stored positionally (registration order is deterministic per
/// architecture), recoveries as `(epoch, batch, cause code, lr_after)`.
#[derive(Serialize, Deserialize)]
pub struct SavedTrainCheckpoint {
    pub version: u32,
    pub next_epoch: u64,
    pub epochs_drawn: u64,
    pub weights: Vec<Matrix>,
    pub adam_lr: f32,
    pub adam_t: u64,
    pub adam_m: Vec<Matrix>,
    pub adam_v: Vec<Matrix>,
    pub best_weights: Vec<Matrix>,
    pub best_val: f32,
    pub best_epoch: u64,
    pub since_improve: u64,
    pub epoch_losses: Vec<(f32, f32)>,
    pub samples_seen: u64,
    /// `(epoch, batch, cause, lr_after)`; cause 0 = loss, 1 = gradient.
    pub recoveries: Vec<(u64, u64, u8, f32)>,
    pub checksum: u64,
}

impl SavedTrainCheckpoint {
    fn content_checksum(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.next_epoch);
        h.write_u64(self.epochs_drawn);
        for group in [
            &self.weights,
            &self.adam_m,
            &self.adam_v,
            &self.best_weights,
        ] {
            h.write_u64(group.len() as u64);
            for m in group.iter() {
                h.write_matrix(m);
            }
        }
        h.write_f32(self.adam_lr);
        h.write_u64(self.adam_t);
        h.write_f32(self.best_val);
        h.write_u64(self.best_epoch);
        h.write_u64(self.since_improve);
        h.write_u64(self.epoch_losses.len() as u64);
        for &(t, v) in &self.epoch_losses {
            h.write_f32(t);
            h.write_f32(v);
        }
        h.write_u64(self.samples_seen);
        h.write_u64(self.recoveries.len() as u64);
        for &(e, b, c, lr) in &self.recoveries {
            h.write_u64(e);
            h.write_u64(b);
            h.write(&[c]);
            h.write_f32(lr);
        }
        h.finish()
    }

    /// Convert the in-memory checkpoint the training loop hands out.
    pub fn from_checkpoint(ckpt: &TrainCheckpoint) -> SavedTrainCheckpoint {
        let mut saved = SavedTrainCheckpoint {
            version: FORMAT_VERSION,
            next_epoch: ckpt.next_epoch as u64,
            epochs_drawn: ckpt.epochs_drawn,
            weights: ckpt.weights.clone(),
            adam_lr: ckpt.adam.lr,
            adam_t: ckpt.adam.t,
            adam_m: ckpt.adam.m.clone(),
            adam_v: ckpt.adam.v.clone(),
            best_weights: ckpt.best_weights.clone(),
            best_val: ckpt.best_val,
            best_epoch: ckpt.best_epoch as u64,
            since_improve: ckpt.since_improve as u64,
            epoch_losses: ckpt.epoch_losses.clone(),
            samples_seen: ckpt.samples_seen,
            recoveries: ckpt
                .recoveries
                .iter()
                .map(|r| {
                    let cause = match r.cause {
                        DivergenceCause::NonFiniteLoss => 0u8,
                        DivergenceCause::NonFiniteGradient => 1u8,
                    };
                    (r.epoch as u64, r.batch as u64, cause, r.lr_after)
                })
                .collect(),
            checksum: 0,
        };
        saved.checksum = saved.content_checksum();
        saved
    }

    /// Convert back, verifying the checksum and that every tensor is finite.
    pub fn into_checkpoint(self) -> Result<TrainCheckpoint, String> {
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&self.version) {
            return Err(format!(
                "unsupported checkpoint version {} (supported: \
                 {MIN_FORMAT_VERSION}..={FORMAT_VERSION})",
                self.version
            ));
        }
        let expect = self.content_checksum();
        if self.checksum != expect {
            return Err(format!(
                "checkpoint checksum mismatch: file says {:#018x}, content hashes to \
                 {expect:#018x} — the checkpoint is corrupted",
                self.checksum
            ));
        }
        for (label, group) in [
            ("weights", &self.weights),
            ("adam_m", &self.adam_m),
            ("adam_v", &self.adam_v),
            ("best_weights", &self.best_weights),
        ] {
            if group.iter().any(|m| m.has_non_finite()) {
                return Err(format!("checkpoint '{label}' contain non-finite values"));
            }
        }
        let mut recoveries = Vec::with_capacity(self.recoveries.len());
        for (epoch, batch, cause, lr_after) in &self.recoveries {
            let cause = match cause {
                0 => DivergenceCause::NonFiniteLoss,
                1 => DivergenceCause::NonFiniteGradient,
                other => return Err(format!("unknown divergence cause code {other}")),
            };
            recoveries.push(RecoveryEvent {
                epoch: *epoch as usize,
                batch: *batch as usize,
                cause,
                lr_after: *lr_after,
            });
        }
        Ok(TrainCheckpoint {
            next_epoch: self.next_epoch as usize,
            epochs_drawn: self.epochs_drawn,
            weights: self.weights,
            adam: AdamState {
                lr: self.adam_lr,
                t: self.adam_t,
                m: self.adam_m,
                v: self.adam_v,
            },
            best_weights: self.best_weights,
            best_val: self.best_val,
            best_epoch: self.best_epoch as usize,
            since_improve: self.since_improve as usize,
            epoch_losses: self.epoch_losses,
            samples_seen: self.samples_seen,
            recoveries,
        })
    }
}

/// Atomically write a training checkpoint to `path`.
pub fn save_train_checkpoint(path: impl AsRef<Path>, ckpt: &TrainCheckpoint) -> Result<(), String> {
    let json = serde_json::to_string(&SavedTrainCheckpoint::from_checkpoint(ckpt))
        .map_err(|e| e.to_string())?;
    atomic_write(path, json.as_bytes())
}

/// Load a training checkpoint written by [`save_train_checkpoint`]. Any
/// corruption — truncation, bit-flips, non-finite tensors — comes back as a
/// descriptive `Err`, never a panic.
pub fn load_train_checkpoint(path: impl AsRef<Path>) -> Result<TrainCheckpoint, String> {
    let json = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
    let saved: SavedTrainCheckpoint = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    saved.into_checkpoint()
}

impl RankModel {
    /// Crash-safe training: resume from the checkpoint at `path` if one
    /// exists, and atomically rewrite it every `every` epochs. Kill the
    /// process at any point and rerunning continues to final weights
    /// bit-identical to an uninterrupted run (pinned by the kill–resume
    /// test).
    pub fn train_checkpointed(
        &mut self,
        ts: &crate::instances::TrainingSet,
        val: &crate::instances::TrainingSet,
        path: impl AsRef<Path>,
        every: usize,
    ) -> Result<TrainReport, String> {
        let path = path.as_ref();
        let every = every.max(1);
        let resume = if path.exists() {
            Some(load_train_checkpoint(path)?)
        } else {
            None
        };
        let io_error = std::cell::RefCell::new(None::<String>);
        let mut on_epoch = |ckpt: &TrainCheckpoint| {
            if ckpt.next_epoch.is_multiple_of(every) {
                if let Err(e) = save_train_checkpoint(path, ckpt) {
                    io_error.borrow_mut().get_or_insert(e);
                }
            }
        };
        let report = self
            .train_resumable(ts, val, resume.as_ref(), Some(&mut on_epoch))
            .map_err(|e| e.to_string())?;
        if let Some(e) = io_error.into_inner() {
            return Err(format!("training finished but checkpointing failed: {e}"));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_sequences;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpf_racesim::{simulate_race, Event, EventConfig};

    fn trained_mlp() -> (RankNet, crate::features::RaceContext) {
        let ctx = extract_sequences(&simulate_race(
            &EventConfig::for_race(Event::Indy500, 2016),
            3,
        ));
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 1;
        let (model, _) = RankNet::fit(
            vec![ctx.clone()],
            vec![ctx.clone()],
            cfg,
            RankNetVariant::Mlp,
            40,
        );
        (model, ctx)
    }

    #[test]
    fn save_load_roundtrip_preserves_forecasts() {
        let (model, ctx) = trained_mlp();
        let dir = std::env::temp_dir().join("ranknet_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save(&path).unwrap();
        let loaded = RankNet::load(&path).unwrap();

        assert_eq!(loaded.variant, model.variant);
        assert!(loaded.pit_model.is_some());
        // Same seed → identical sampled forecasts.
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let a = model.forecast(&ctx, 50, 2, 3, &mut rng1);
        let b = loaded.forecast(&ctx, 50, 2, 3, &mut rng2);
        assert_eq!(a, b, "loaded model must forecast identically");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_artifact_without_scenario_flag_loads_and_serves() {
        // Simulate a file written before format v3: version 2, no
        // `use_scenario_features` key in the stored config. It must load
        // (flag defaults off → 2-input pit model, matching shapes) and
        // forecast bit-identically to the in-memory model.
        let (model, ctx) = trained_mlp();
        let json = serde_json::to_string(&model.to_saved()).unwrap();
        let v2 = json
            .replace("\"version\":3", "\"version\":2")
            .replace("\"use_scenario_features\":false,", "")
            .replace(",\"use_scenario_features\":false", "");
        assert_ne!(json, v2, "test must actually rewrite the payload");
        let saved: SavedRankNet = serde_json::from_str(&v2).unwrap();
        assert_eq!(saved.version, 2);
        assert!(!saved.cfg.use_scenario_features);
        let loaded = RankNet::from_saved(&saved).unwrap();
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = model.forecast(&ctx, 50, 2, 3, &mut rng1);
        let b = loaded.forecast(&ctx, 50, 2, 3, &mut rng2);
        assert_eq!(a, b, "v2 artifact must serve identically");
    }

    #[test]
    fn version_mismatch_rejected() {
        let (model, _) = trained_mlp();
        let mut saved = model.to_saved();
        saved.version = 99;
        let err = RankNet::from_saved(&saved).err().expect("should fail");
        assert!(err.contains("version"));
    }

    #[test]
    fn mlp_without_pit_weights_rejected() {
        let (model, _) = trained_mlp();
        let mut saved = model.to_saved();
        saved.pit_weights = None;
        saved.checksum = saved.content_checksum();
        assert!(RankNet::from_saved(&saved).is_err());
    }

    #[test]
    fn unknown_variant_rejected() {
        let (model, _) = trained_mlp();
        let mut saved = model.to_saved();
        saved.variant = "quantum".into();
        saved.checksum = saved.content_checksum();
        let err = RankNet::from_saved(&saved).err().expect("should fail");
        assert!(err.contains("variant"));
    }

    #[test]
    fn tampered_weights_fail_checksum() {
        let (model, _) = trained_mlp();
        let mut saved = model.to_saved();
        // Flip one weight value without refreshing the checksum.
        saved.rank_weights[0].1.as_mut_slice()[0] += 1.0;
        let err = RankNet::from_saved(&saved).err().expect("should fail");
        assert!(err.contains("checksum"), "got: {err}");
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("ranknet_atomic_write_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.json");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        assert!(!path.with_file_name("file.json.tmp").exists());
        std::fs::remove_file(&path).ok();
    }
}
