//! Model persistence: save a trained RankNet to JSON and load it back.
//!
//! The paper (§IV-J) motivates continuous learning in the field —
//! "keeping updating the model with newest racing data" — which requires
//! carrying trained weights between sessions. The format is deliberately
//! plain: config + variant + named weight tensors, so files stay
//! inspectable and survive refactors that keep parameter names stable.

use crate::config::RankNetConfig;
use crate::pit_model::PitModel;
use crate::rank_model::{RankModel, TargetKind};
use crate::ranknet::{RankNet, RankNetVariant};
use rpf_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The serialized form of a trained RankNet.
#[derive(Serialize, Deserialize)]
pub struct SavedRankNet {
    /// Schema version for forward compatibility.
    pub version: u32,
    pub variant: String,
    pub cfg: RankNetConfig,
    /// Embedding vocabulary (max car id + 1).
    pub vocab: usize,
    pub rank_weights: Vec<(String, Matrix)>,
    /// Present only for the MLP variant.
    pub pit_weights: Option<Vec<(String, Matrix)>>,
    pub pit_scale: Option<f32>,
}

pub const FORMAT_VERSION: u32 = 1;

fn variant_name(v: RankNetVariant) -> &'static str {
    match v {
        RankNetVariant::Oracle => "oracle",
        RankNetVariant::Mlp => "mlp",
        RankNetVariant::Joint => "joint",
    }
}

fn variant_from(name: &str) -> Result<RankNetVariant, String> {
    match name {
        "oracle" => Ok(RankNetVariant::Oracle),
        "mlp" => Ok(RankNetVariant::Mlp),
        "joint" => Ok(RankNetVariant::Joint),
        other => Err(format!("unknown RankNet variant '{other}'")),
    }
}

impl RankNet {
    /// Snapshot the trained model into its serializable form.
    pub fn to_saved(&self) -> SavedRankNet {
        SavedRankNet {
            version: FORMAT_VERSION,
            variant: variant_name(self.variant).to_string(),
            cfg: self.cfg.clone(),
            vocab: self.rank_model.vocab(),
            rank_weights: self.rank_model.store.export(),
            pit_weights: self.pit_model.as_ref().map(|p| p.export()),
            pit_scale: self.pit_model.as_ref().map(|p| p.scale()),
        }
    }

    /// Rebuild a model from a snapshot.
    pub fn from_saved(saved: &SavedRankNet) -> Result<RankNet, String> {
        if saved.version != FORMAT_VERSION {
            return Err(format!(
                "unsupported format version {} (expected {FORMAT_VERSION})",
                saved.version
            ));
        }
        let variant = variant_from(&saved.variant)?;
        let kind = match variant {
            RankNetVariant::Joint => TargetKind::Joint,
            _ => TargetKind::RankOnly,
        };
        if saved.vocab == 0 {
            return Err("vocabulary must be positive".into());
        }
        let mut rank_model = RankModel::new(saved.cfg.clone(), kind, saved.vocab - 1);
        rank_model.store.import(&saved.rank_weights)?;

        let pit_model = match (&saved.pit_weights, saved.pit_scale, variant) {
            (Some(w), Some(scale), RankNetVariant::Mlp) => {
                let mut pm = PitModel::new(saved.cfg.seed, scale);
                pm.import(w)?;
                Some(pm)
            }
            (None, _, RankNetVariant::Mlp) => {
                return Err("MLP variant requires pit model weights".into())
            }
            _ => None,
        };
        Ok(RankNet {
            variant,
            cfg: saved.cfg.clone(),
            rank_model,
            pit_model,
        })
    }

    /// Save to a JSON file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let json = serde_json::to_string(&self.to_saved()).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())
    }

    /// Load from a JSON file written by [`RankNet::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<RankNet, String> {
        let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let saved: SavedRankNet = serde_json::from_str(&json).map_err(|e| e.to_string())?;
        Self::from_saved(&saved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_sequences;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpf_racesim::{simulate_race, Event, EventConfig};

    fn trained_mlp() -> (RankNet, crate::features::RaceContext) {
        let ctx = extract_sequences(&simulate_race(
            &EventConfig::for_race(Event::Indy500, 2016),
            3,
        ));
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 1;
        let (model, _) = RankNet::fit(
            vec![ctx.clone()],
            vec![ctx.clone()],
            cfg,
            RankNetVariant::Mlp,
            40,
        );
        (model, ctx)
    }

    #[test]
    fn save_load_roundtrip_preserves_forecasts() {
        let (model, ctx) = trained_mlp();
        let dir = std::env::temp_dir().join("ranknet_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save(&path).unwrap();
        let loaded = RankNet::load(&path).unwrap();

        assert_eq!(loaded.variant, model.variant);
        assert!(loaded.pit_model.is_some());
        // Same seed → identical sampled forecasts.
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let a = model.forecast(&ctx, 50, 2, 3, &mut rng1);
        let b = loaded.forecast(&ctx, 50, 2, 3, &mut rng2);
        assert_eq!(a, b, "loaded model must forecast identically");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_rejected() {
        let (model, _) = trained_mlp();
        let mut saved = model.to_saved();
        saved.version = 99;
        let err = RankNet::from_saved(&saved).err().expect("should fail");
        assert!(err.contains("version"));
    }

    #[test]
    fn mlp_without_pit_weights_rejected() {
        let (model, _) = trained_mlp();
        let mut saved = model.to_saved();
        saved.pit_weights = None;
        assert!(RankNet::from_saved(&saved).is_err());
    }

    #[test]
    fn unknown_variant_rejected() {
        let (model, _) = trained_mlp();
        let mut saved = model.to_saved();
        saved.variant = "quantum".into();
        let err = RankNet::from_saved(&saved).err().expect("should fail");
        assert!(err.contains("variant"));
    }
}
