//! The RankModel: a DeepAR-style probabilistic LSTM encoder–decoder
//! (paper Fig 5c), trained per Algorithm 1 and sampled per Algorithm 2.
//!
//! Three of the paper's models are this network in different modes:
//!
//! * **DeepAR** — race-status covariates disabled (`cfg.deepar()`),
//! * **RankNet-Oracle / RankNet-MLP** — covariates enabled; the future race
//!   status comes from ground truth or from the PitModel (see `ranknet`),
//! * **RankNet-Joint** — `TargetKind::Joint`: the multivariate target
//!   `[Rank, LapStatus, TrackStatus]` trained jointly, which the paper shows
//!   fails from data sparsity (3% positive pit labels).
//!
//! Encoder and decoder share weights (one LSTM stack + one head), exactly
//! like the GluonTS DeepAR implementation the paper builds on.

use crate::config::{Likelihood, RankNetConfig};
use crate::features::RaceContext;
use crate::instances::{assemble_row, base_input_dim, Covariates, Regressive, TrainingSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpf_autodiff::Tape;
use rpf_nn::embedding::Embedding;
use rpf_nn::gaussian::{
    draw_gaussian, draw_student_t, gaussian_nll, student_t_nll, GaussianParams,
};
use rpf_nn::train::{
    shard_indices, try_train_resumable, TrainCheckpoint, TrainConfig, TrainError, TrainReport,
};
use rpf_nn::{
    BatchScratch, Binding, GaussianHead, InferEmbedding, InferGaussianHead, InferStackedLstm,
    LstmScratch, ParamStore, RngStreams, StackedLstm,
};
use rpf_tensor::Matrix;

/// What the decoder predicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetKind {
    /// Rank only (DeepAR, RankNet-Oracle, RankNet-MLP).
    RankOnly,
    /// `[Rank, LapStatus, TrackStatus]` jointly (RankNet-Joint).
    Joint,
}

/// Monte-Carlo forecast: `samples[car][sample][step]`, raw rank units.
pub type ForecastSamples = Vec<Vec<Vec<f32>>>;

/// One gradient shard: accumulated `(param, grad)` pairs, loss sum, count.
type ShardGrads = (Vec<(rpf_nn::ParamId, Matrix)>, f32, usize);

/// Per-car future covariates handed to the decoder:
/// `rows[car][step]` for steps `origin..origin+horizon`.
#[derive(Clone, Debug, Default)]
pub struct CovariateFuture {
    pub rows: Vec<Vec<Covariates>>,
}

/// Deterministic encoder summary for one `(race, origin)`: the LSTM state
/// after consuming the observed history, one row per car still running at
/// the origin. Built by [`RankModel::encode`], consumed (read-only, so
/// shareable across decode calls and threads) by [`RankModel::decode`].
#[derive(Clone, Debug)]
pub struct EncoderState {
    /// Context sequence slots with at least `origin` observed laps.
    pub cars: Vec<usize>,
    /// Embedding ids, parallel to `cars`.
    pub car_ids: Vec<usize>,
    /// Per-layer `(h, c)`, each `(cars.len() × hidden_dim)`.
    pub states: Vec<(Matrix, Matrix)>,
}

/// One decode unit of the batched backend: a `(request, covariate group)`
/// pair contributing `enc.cars.len() × rows_per` lock-step rows to a shared
/// GEMM batch (see [`RankModel::decode_runs_batched`]). Holds the same
/// read-only inputs a [`RankModel::decode`] call would take; `streams` is
/// the run's own family, so its draws are independent of batch-mates.
#[derive(Clone, Copy)]
pub struct BatchedRun<'a> {
    pub ctx: &'a RaceContext,
    pub enc: &'a EncoderState,
    pub cov: &'a CovariateFuture,
    pub origin: usize,
    pub horizon: usize,
    /// Trajectories per car in this run (a covariate group's sample share).
    pub rows_per: usize,
    /// Stream family; run-local row `ri` draws from `streams.stream(ri)`.
    pub streams: RngStreams,
}

/// One row of the flattened batched-decode plan: which run it belongs to,
/// its run-local row index (RNG / fault-hook key) and its encoder row.
#[derive(Clone, Copy)]
struct BatchedRowPlan {
    run: usize,
    ri: usize,
    src: usize,
}

/// Tape-free serving runtime for one [`RankModel`]: forward-only mirrors of
/// the LSTM stack, Gaussian heads and car embedding, converted one-shot from
/// the trained store (weights cloned once, at conversion time). Read-only
/// and `Sync`: [`RankModel::decode`] builds one per call and shares it
/// across every worker thread, while each worker owns its own
/// [`RankScratch`].
pub struct RankRuntime {
    lstm: InferStackedLstm,
    heads: Vec<InferGaussianHead>,
    emb: InferEmbedding,
}

/// Per-thread scratch arena for the serving loops: the LSTM pre-activation
/// buffers, the persistent input matrix (embedding columns written once per
/// chunk — they never change across steps — regressive/covariate columns
/// rewritten in place each step) and the head output buffers. Every buffer
/// reaches its final size on the first step, so subsequent steps allocate
/// nothing.
struct RankScratch {
    lstm: LstmScratch,
    input: Matrix,
    mu: Matrix,
    sigma: Matrix,
    // Joint mode draws heads 1 and 2 in the same per-row pass, so both
    // output pairs must be live at once.
    mu1: Matrix,
    sigma1: Matrix,
    mu2: Matrix,
    sigma2: Matrix,
}

impl RankScratch {
    fn new(batch: usize, input_dim: usize) -> RankScratch {
        RankScratch {
            lstm: LstmScratch::new(),
            input: Matrix::zeros(batch, input_dim),
            mu: Matrix::zeros(0, 0),
            sigma: Matrix::zeros(0, 0),
            mu1: Matrix::zeros(0, 0),
            sigma1: Matrix::zeros(0, 0),
            mu2: Matrix::zeros(0, 0),
            sigma2: Matrix::zeros(0, 0),
        }
    }
}

#[derive(Clone)]
pub struct RankModel {
    pub cfg: RankNetConfig,
    pub kind: TargetKind,
    pub store: ParamStore,
    lstm: StackedLstm,
    heads: Vec<GaussianHead>,
    emb: Embedding,
    base_dim: usize,
}

impl RankModel {
    /// Number of target channels for the kind.
    fn n_targets(kind: TargetKind) -> usize {
        match kind {
            TargetKind::RankOnly => 1,
            TargetKind::Joint => 3,
        }
    }

    /// Joint mode feeds the lagged pit/caution flags back as regressive
    /// inputs instead of reading them from covariates.
    fn effective_base_dim(cfg: &RankNetConfig, kind: TargetKind) -> usize {
        match kind {
            TargetKind::RankOnly => base_input_dim(cfg),
            TargetKind::Joint => base_input_dim(&joint_cfg(cfg)) + 2,
        }
    }

    pub fn new(cfg: RankNetConfig, kind: TargetKind, max_car_id: usize) -> RankModel {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let base_dim = Self::effective_base_dim(&cfg, kind);
        let input_dim = base_dim + cfg.embedding_dim;
        let lstm = StackedLstm::new(
            &mut store,
            &mut rng,
            "rank_lstm",
            input_dim,
            cfg.hidden_dim,
            cfg.num_layers,
        );
        let heads = (0..Self::n_targets(kind))
            .map(|i| GaussianHead::new(&mut store, &mut rng, &format!("head{i}"), cfg.hidden_dim))
            .collect();
        let emb = Embedding::new(
            &mut store,
            &mut rng,
            "car",
            max_car_id + 1,
            cfg.embedding_dim,
        );
        RankModel {
            cfg,
            kind,
            store,
            lstm,
            heads,
            emb,
            base_dim,
        }
    }

    /// Total scalar parameter count (the paper quotes <30K — Table IV scale).
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// CarId embedding vocabulary (needed to rebuild the architecture when
    /// loading saved weights).
    pub fn vocab(&self) -> usize {
        self.emb.vocab
    }

    // ---- training ------------------------------------------------------

    /// Train per Algorithm 1 on `ts`, early-stopping on `val`. Panics if
    /// training diverges beyond recovery; prefer
    /// [`RankModel::train_resumable`] for fallible, crash-safe training.
    pub fn train(&mut self, ts: &TrainingSet, val: &TrainingSet) -> TrainReport {
        match self.train_resumable(ts, val, None, None) {
            Ok(report) => report,
            Err(e) => panic!("RankModel::train: {e}"),
        }
    }

    /// Fallible training with crash-safe hooks: optionally resume from a
    /// [`TrainCheckpoint`] and receive a fresh checkpoint after every epoch
    /// (see [`crate::persist::save_train_checkpoint`]). A resumed run
    /// continues to final weights bit-identical to an uninterrupted one.
    pub fn train_resumable(
        &mut self,
        ts: &TrainingSet,
        val: &TrainingSet,
        resume: Option<&TrainCheckpoint>,
        on_epoch_end: Option<&mut dyn FnMut(&TrainCheckpoint)>,
    ) -> Result<TrainReport, TrainError> {
        let cfg = self.cfg.clone();
        let kind = self.kind;
        let lstm = self.lstm.clone();
        let heads = self.heads.clone();
        let emb = self.emb;
        let base_dim = self.base_dim;

        let mut store = std::mem::take(&mut self.store);
        let train_cfg = TrainConfig {
            max_epochs: cfg.max_epochs,
            batch_size: cfg.batch_size,
            lr: cfg.learning_rate,
            seed: cfg.seed,
            ..Default::default()
        };
        // Validation subsample: a fixed slice keeps epochs cheap and the
        // early-stopping signal deterministic.
        let val_take = val.len().min(512);

        let report = try_train_resumable(
            &mut store,
            ts.len(),
            &train_cfg,
            |store, batch| {
                Self::batch_loss_parallel(
                    &cfg, kind, &lstm, &heads, emb, base_dim, ts, store, batch,
                )
            },
            |store| {
                let idx: Vec<usize> = (0..val_take).collect();
                Self::batch_loss_eval(&cfg, kind, &lstm, &heads, emb, base_dim, val, store, &idx)
            },
            resume,
            on_epoch_end,
        );
        self.store = store;
        report
    }

    /// Shard-parallel loss + gradient accumulation for one minibatch.
    #[allow(clippy::too_many_arguments)]
    fn batch_loss_parallel(
        cfg: &RankNetConfig,
        kind: TargetKind,
        lstm: &StackedLstm,
        heads: &[GaussianHead],
        emb: Embedding,
        base_dim: usize,
        ts: &TrainingSet,
        store: &mut ParamStore,
        batch: &[usize],
    ) -> f32 {
        let shards = shard_indices(batch, rpf_tensor::par::num_threads());
        let results: Vec<ShardGrads> = {
            let values = store.values();
            crossbeam::scope(|s| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|shard| {
                        s.spawn(move |_| {
                            let tape = Tape::new();
                            let bind = Binding::over_values(&tape, values);
                            let (loss_var, n) = Self::window_loss(
                                cfg, kind, lstm, heads, emb, base_dim, ts, &bind, shard, true,
                            );
                            let loss = tape.scalar(loss_var);
                            let grads = bind.into_grads(loss_var);
                            (grads, loss, n)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .zip(&shards)
                    // A crashed worker becomes a NaN-loss shard: the training
                    // loop's divergence recovery rolls the epoch back instead
                    // of the whole process dying.
                    .map(|(h, shard)| {
                        h.join()
                            .unwrap_or_else(|_| (Vec::new(), f32::NAN, shard.len()))
                    })
                    .collect()
            })
            .unwrap_or_default()
        };
        let mut total_loss = 0.0f64;
        let mut total_n = 0usize;
        let n_shards = results.len().max(1);
        for (grads, loss, n) in results {
            // Each shard computed a mean loss; scale gradients so the merged
            // update equals the full-batch mean.
            for (id, mut g) in grads {
                for v in g.as_mut_slice() {
                    *v /= n_shards as f32;
                }
                store.accumulate_grad(id, &g);
            }
            total_loss += loss as f64 * n as f64;
            total_n += n;
        }
        if total_n == 0 {
            return f32::NAN;
        }
        (total_loss / total_n as f64) as f32
    }

    /// Loss without gradients (validation).
    #[allow(clippy::too_many_arguments)]
    fn batch_loss_eval(
        cfg: &RankNetConfig,
        kind: TargetKind,
        lstm: &StackedLstm,
        heads: &[GaussianHead],
        emb: Embedding,
        base_dim: usize,
        ts: &TrainingSet,
        store: &ParamStore,
        batch: &[usize],
    ) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let tape = Tape::new();
        let bind = Binding::new(&tape, store);
        let (loss, _) = Self::window_loss(
            cfg, kind, lstm, heads, emb, base_dim, ts, &bind, batch, true,
        );
        tape.scalar(loss)
    }

    /// Teacher-forced unroll over a set of windows; returns the scalar loss
    /// node (decoder steps only, per Algorithm 1) and the instance count.
    #[allow(clippy::too_many_arguments)]
    fn window_loss(
        cfg: &RankNetConfig,
        kind: TargetKind,
        lstm: &StackedLstm,
        heads: &[GaussianHead],
        emb: Embedding,
        base_dim: usize,
        ts: &TrainingSet,
        bind: &Binding<'_>,
        batch: &[usize],
        weighted: bool,
    ) -> (rpf_autodiff::Var, usize) {
        let t = bind.tape();
        let b = batch.len();
        let window = cfg.context_len + cfg.prediction_len;

        // CarId embedding rows, constant over time steps.
        let car_ids: Vec<usize> = batch
            .iter()
            .map(|&i| {
                let w = &ts.instances[i];
                ts.contexts[w.race].sequences[w.car].car_id as usize
            })
            .collect();
        let emb_rows = emb.forward(bind, &car_ids);

        let mut states = lstm.zero_state(bind, b);
        let mut loss_terms = Vec::with_capacity(cfg.prediction_len);
        let mut row = Vec::with_capacity(base_dim);

        for j in 0..window {
            // Assemble the input matrix for this step.
            let mut x = Matrix::zeros(b, base_dim);
            for (bi, &inst) in batch.iter().enumerate() {
                let w = &ts.instances[inst];
                let ctx = &ts.contexts[w.race];
                let seq = &ctx.sequences[w.car];
                let idx = w.start + j;
                let reg = Self::regressive_at(cfg, seq, w.start, idx, j);
                let cov = Covariates::from_seq(seq, idx, cfg.prediction_len);
                Self::assemble(cfg, kind, ctx, &reg, &cov, seq, idx, &mut row);
                x.row_mut(bi).copy_from_slice(&row);
            }
            let x_leaf = t.leaf(x);
            let input = t.hstack(&[x_leaf, emb_rows]);
            let (out, new_states) = lstm.step(bind, input, &states);
            states = new_states;

            // Decoder steps contribute to the likelihood.
            if j >= cfg.context_len {
                let weights = if weighted {
                    let w = Matrix::from_vec(
                        b,
                        1,
                        batch.iter().map(|&i| ts.instances[i].weight).collect(),
                    );
                    Some(t.leaf(w))
                } else {
                    None
                };
                for (hi, head) in heads.iter().enumerate() {
                    let params = head.forward(bind, out);
                    let target = Matrix::from_vec(
                        b,
                        1,
                        batch
                            .iter()
                            .map(|&i| {
                                let w = &ts.instances[i];
                                let ctx = &ts.contexts[w.race];
                                let seq = &ctx.sequences[w.car];
                                Self::target_at(kind, hi, ctx, seq, w.start + j)
                            })
                            .collect(),
                    );
                    let target = t.leaf(target);
                    loss_terms.push(match cfg.likelihood {
                        Likelihood::Gaussian => gaussian_nll(bind, params, target, weights),
                        Likelihood::StudentT(nu) => {
                            student_t_nll(bind, params, target, weights, nu)
                        }
                    });
                }
            }
        }

        // Mean over decoder steps (and target channels for Joint).
        let mut total = loss_terms[0];
        for &term in &loss_terms[1..] {
            total = t.add(total, term);
        }
        let loss = t.scale(total, 1.0 / loss_terms.len() as f32);
        (loss, b)
    }

    /// Regressive inputs for predicting sequence index `idx` (lagged one
    /// step). During decoder steps, lap time and gap are frozen at their
    /// last encoder values — they are unknown at forecast time, so training
    /// must see the same persistence the decoder will use.
    fn regressive_at(
        cfg: &RankNetConfig,
        seq: &crate::features::CarSequence,
        start: usize,
        idx: usize,
        j: usize,
    ) -> Regressive {
        let lag = idx - 1;
        let frozen = (start + cfg.context_len - 1).min(seq.len() - 1);
        if j < cfg.context_len {
            Regressive {
                rank: seq.rank[lag],
                lap_time: seq.lap_time[lag],
                time_behind: seq.time_behind[lag],
            }
        } else {
            Regressive {
                rank: seq.rank[lag], // teacher forcing (Algorithm 1)
                lap_time: seq.lap_time[frozen],
                time_behind: seq.time_behind[frozen],
            }
        }
    }

    fn target_at(
        kind: TargetKind,
        head: usize,
        ctx: &RaceContext,
        seq: &crate::features::CarSequence,
        idx: usize,
    ) -> f32 {
        match (kind, head) {
            (_, 0) => ctx.norm_rank(seq.rank[idx]),
            (TargetKind::Joint, 1) => seq.lap_status[idx],
            (TargetKind::Joint, 2) => seq.track_status[idx],
            _ => unreachable!("head index out of range"),
        }
    }

    /// Row assembly dispatching on the target kind (Joint adds the lagged
    /// status flags as regressive inputs and strips them from covariates).
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        cfg: &RankNetConfig,
        kind: TargetKind,
        ctx: &RaceContext,
        reg: &Regressive,
        cov: &Covariates,
        seq: &crate::features::CarSequence,
        idx: usize,
        out: &mut Vec<f32>,
    ) {
        match kind {
            TargetKind::RankOnly => assemble_row(cfg, ctx, reg, cov, out),
            TargetKind::Joint => {
                let jcfg = joint_cfg(cfg);
                assemble_row(&jcfg, ctx, reg, cov, out);
                let lag = idx.saturating_sub(1);
                out.push(seq.lap_status.get(lag).copied().unwrap_or(0.0));
                out.push(seq.track_status.get(lag).copied().unwrap_or(0.0));
            }
        }
    }

    // ---- forecasting (Algorithm 2) --------------------------------------

    /// Build the tape-free serving runtime: a one-shot conversion of the
    /// current weights into forward-only layers. Rebuild after any weight
    /// mutation (the runtime holds its own copies).
    pub fn runtime(&self) -> RankRuntime {
        RankRuntime {
            lstm: InferStackedLstm::from_store(&self.store, &self.lstm),
            heads: self
                .heads
                .iter()
                .map(|h| InferGaussianHead::from_store(&self.store, h))
                .collect(),
            emb: InferEmbedding::from_store(&self.store, &self.emb),
        }
    }

    /// Probabilistic forecast for every car of `ctx` from `origin`
    /// (sequence index) `horizon` steps ahead. `cov_future.rows[car][step]`
    /// supplies the decoder covariates (ground truth for Oracle, PitModel
    /// samples for MLP, ignored for Joint). Cars whose recorded sequence is
    /// shorter than `origin` get an empty sample list.
    ///
    /// Convenience wrapper over [`RankModel::encode`] +
    /// [`RankModel::decode`]: derives a stream family from `rng` and decodes
    /// on the machine's thread count. Same seed state → same samples,
    /// regardless of that thread count.
    pub fn forecast(
        &self,
        ctx: &RaceContext,
        cov_future: &CovariateFuture,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        rng: &mut StdRng,
    ) -> ForecastSamples {
        let streams = RngStreams::from_rng(rng);
        let enc = self.encode(ctx, origin);
        self.decode(
            ctx,
            cov_future,
            origin,
            horizon,
            n_samples,
            &enc,
            &streams,
            rpf_tensor::par::num_threads(),
        )
    }

    /// Run the encoder over the observed history up to `origin`:
    /// deterministic, one row per car still running. The result is reusable
    /// across any number of [`RankModel::decode`] calls at the same origin
    /// (different sample counts, covariate futures, horizons), which is how
    /// [`crate::engine::ForecastEngine`] amortises it.
    pub fn encode(&self, ctx: &RaceContext, origin: usize) -> EncoderState {
        let cars: Vec<usize> = (0..ctx.sequences.len())
            .filter(|&c| ctx.sequences[c].len() >= origin)
            .collect();
        let b = cars.len();
        let car_ids: Vec<usize> = cars
            .iter()
            .map(|&c| ctx.sequences[c].car_id as usize)
            .collect();
        let mut states: Vec<(Matrix, Matrix)> = (0..self.cfg.num_layers)
            .map(|_| {
                (
                    Matrix::zeros(b, self.cfg.hidden_dim),
                    Matrix::zeros(b, self.cfg.hidden_dim),
                )
            })
            .collect();
        if b == 0 {
            return EncoderState {
                cars,
                car_ids,
                states,
            };
        }
        let runtime = self.runtime();
        let enc_start = origin.saturating_sub(self.cfg.context_len).max(1);
        let mut scratch = RankScratch::new(b, self.base_dim + self.cfg.embedding_dim);
        // The embedding columns are constant across time steps (the tape
        // path re-gathers and re-hstacks them every step); write them once.
        for (bi, &id) in car_ids.iter().enumerate() {
            scratch.input.row_mut(bi)[self.base_dim..].copy_from_slice(runtime.emb.row(id));
        }
        let mut row = Vec::with_capacity(self.base_dim);
        for idx in enc_start..origin {
            for (bi, &c) in cars.iter().enumerate() {
                let seq = &ctx.sequences[c];
                let reg = Regressive {
                    rank: seq.rank[idx - 1],
                    lap_time: seq.lap_time[idx - 1],
                    time_behind: seq.time_behind[idx - 1],
                };
                let cov = Covariates::from_seq(seq, idx, self.cfg.prediction_len);
                Self::assemble(&self.cfg, self.kind, ctx, &reg, &cov, seq, idx, &mut row);
                scratch.input.row_mut(bi)[..self.base_dim].copy_from_slice(&row);
            }
            runtime
                .lstm
                .step(&scratch.input, &mut states, &mut scratch.lstm);
        }
        EncoderState {
            cars,
            car_ids,
            states,
        }
    }

    /// Ancestral sampling through the decoder from a prepared encoder state.
    ///
    /// The `b · n_samples` replicated rows are independent trajectories:
    /// each carries its own rank feedback, frozen regressive values and —
    /// crucially — its own RNG stream, `streams.stream(row_index)` with the
    /// row index taken over the *whole* replicated batch. The rows are split
    /// into `threads` contiguous chunks decoded on scoped worker threads;
    /// because every kernel touched by the decoder accumulates each output
    /// element in a fixed order independent of batch size, and draws come
    /// from per-row streams keyed by global index, the output is
    /// bit-identical for every value of `threads`.
    #[allow(clippy::too_many_arguments)]
    pub fn decode(
        &self,
        ctx: &RaceContext,
        cov_future: &CovariateFuture,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        enc: &EncoderState,
        streams: &RngStreams,
        threads: usize,
    ) -> ForecastSamples {
        let runtime = self.runtime();
        self.decode_chunked(ctx, horizon, n_samples, enc, threads, &|rows| {
            self.decode_rows_infer(
                ctx, cov_future, origin, horizon, n_samples, enc, streams, &runtime, rows,
            )
        })
    }

    /// Reference backend: the same ancestral sampling decoded step-by-step
    /// through the autodiff tape (the pre-runtime serving path). Kept so the
    /// parity suites and benchmarks can pin [`RankModel::decode`] against
    /// it — the two are bit-identical for any thread count.
    #[allow(clippy::too_many_arguments)]
    pub fn decode_tape(
        &self,
        ctx: &RaceContext,
        cov_future: &CovariateFuture,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        enc: &EncoderState,
        streams: &RngStreams,
        threads: usize,
    ) -> ForecastSamples {
        self.decode_chunked(ctx, horizon, n_samples, enc, threads, &|rows| {
            self.decode_rows_tape(
                ctx, cov_future, origin, horizon, n_samples, enc, streams, rows,
            )
        })
    }

    /// Batched backend: the same ancestral sampling with every trajectory
    /// advanced lock-step through the FMA GEMM / fast-activation kernels of
    /// `rpf_tensor::batched` (see `DESIGN.md` §13).
    ///
    /// Contract: *tolerance-pinned*, not bitwise — outputs track
    /// [`RankModel::decode`] within the bound the `decode_parity` suite
    /// pins, and are bit-deterministic for a fixed `(enc, streams,
    /// n_samples)` layout. Because every batched kernel computes each output
    /// row as a pure function of its own input row and the weights, the
    /// per-row bits are invariant to thread count and to folding additional
    /// rows into the same batch — which is what lets the serving layer
    /// coalesce micro-batches into one GEMM without changing any response.
    #[allow(clippy::too_many_arguments)]
    pub fn decode_batched(
        &self,
        ctx: &RaceContext,
        cov_future: &CovariateFuture,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        enc: &EncoderState,
        streams: &RngStreams,
        threads: usize,
    ) -> ForecastSamples {
        let runs = [BatchedRun {
            ctx,
            enc,
            cov: cov_future,
            origin,
            horizon,
            rows_per: n_samples,
            streams: *streams,
        }];
        let mut per_run = self.decode_runs_batched(&runs, threads);
        let paths = per_run.pop().unwrap_or_default();
        let mut samples: ForecastSamples = vec![Vec::new(); ctx.sequences.len()];
        for (ri, path) in paths.into_iter().enumerate() {
            samples[enc.cars[ri / n_samples]].push(path);
        }
        samples
    }

    /// Decode several [`BatchedRun`]s in one lock-step batch: the union of
    /// all runs' replicated rows advances through shared GEMMs, split into
    /// `threads` contiguous chunks. Returns each run's sampled paths in row
    /// order (row `ri` of a run is trajectory `ri % rows_per` of car slot
    /// `enc.cars[ri / rows_per]`, drawing from `streams.stream(ri)` — the
    /// same mapping as [`RankModel::decode`], so a run's bits never depend
    /// on what else shares the batch).
    pub fn decode_runs_batched(
        &self,
        runs: &[BatchedRun<'_>],
        threads: usize,
    ) -> Vec<Vec<Vec<f32>>> {
        let runtime = self.runtime();
        let mut plan: Vec<BatchedRowPlan> = Vec::new();
        let mut run_rows: Vec<usize> = Vec::with_capacity(runs.len());
        for (r, run) in runs.iter().enumerate() {
            let n = run.enc.cars.len() * run.rows_per;
            run_rows.push(n);
            for ri in 0..n {
                plan.push(BatchedRowPlan {
                    run: r,
                    ri,
                    src: ri / run.rows_per,
                });
            }
        }
        let total = plan.len();
        if total == 0 {
            return runs.iter().map(|_| Vec::new()).collect();
        }
        let threads = threads.clamp(1, total);
        let rows_per_chunk = total.div_ceil(threads);
        let chunks: Vec<&[BatchedRowPlan]> = plan.chunks(rows_per_chunk).collect();

        let chunk_paths: Vec<Vec<Vec<f32>>> = if chunks.len() == 1 {
            vec![self.decode_rows_batched(runs, &runtime, &plan)]
        } else {
            // Same crash containment as `decode_chunked`: a dead worker
            // yields NaN paths for its rows, which the engine degrades.
            let nan_chunk = |chunk: &[BatchedRowPlan]| -> Vec<Vec<f32>> {
                chunk
                    .iter()
                    .map(|p| vec![f32::NAN; runs[p.run].horizon])
                    .collect()
            };
            crossbeam::scope(|s| {
                let runtime = &runtime;
                let handles: Vec<_> = chunks
                    .iter()
                    .map(|&chunk| s.spawn(move |_| self.decode_rows_batched(runs, runtime, chunk)))
                    .collect();
                handles
                    .into_iter()
                    .zip(&chunks)
                    .map(|(h, &chunk)| h.join().unwrap_or_else(|_| nan_chunk(chunk)))
                    .collect()
            })
            .unwrap_or_else(|_| chunks.iter().map(|&c| nan_chunk(c)).collect())
        };

        let mut flat = chunk_paths.into_iter().flatten();
        run_rows
            .iter()
            .map(|&n| (0..n).filter_map(|_| flat.next()).collect())
            .collect()
    }

    /// Decode one contiguous slice of the batched row plan. Mirrors
    /// [`RankModel::decode_rows_infer`] row for row — same feedback, RNG
    /// stream, fault-hook key and clamp — but steps every row at once
    /// through the batched kernels, and assembles inputs from a
    /// per-`(run, car)` template: within a car's trajectory block only the
    /// rank-feedback column (and, for Joint, the two lagged status flags)
    /// varies per row, so the rest of the row is built once per step.
    ///
    /// The first step is *compacted*: before any draw has been fed back,
    /// every trajectory of a `(run, car)` group carries the same input row
    /// and the same encoder state, so step 0 advances one representative
    /// row per group and broadcasts the resulting state (and mu/sigma) to
    /// the group. Row independence of the batched kernels makes the
    /// broadcast bit-identical to stepping every replica — the trajectories
    /// only diverge once the per-row RNG streams draw from the shared
    /// distribution.
    fn decode_rows_batched(
        &self,
        runs: &[BatchedRun<'_>],
        runtime: &RankRuntime,
        plan: &[BatchedRowPlan],
    ) -> Vec<Vec<f32>> {
        let cb = plan.len();
        let hid = self.cfg.hidden_dim;
        // Replica rows of one (run, car) group are contiguous in the plan;
        // `groups` holds each group's first row index.
        let mut groups: Vec<usize> = Vec::new();
        let mut group_of: Vec<usize> = vec![0; cb];
        for (li, p) in plan.iter().enumerate() {
            if li == 0 || (p.run, p.src) != (plan[li - 1].run, plan[li - 1].src) {
                groups.push(li);
            }
            group_of[li] = groups.len() - 1;
        }
        let ng = groups.len();
        // Full-size states start empty: step 0 runs on the compact group
        // batch seeded from the encoder, and its result is broadcast here —
        // the same copies the per-row seeding would have cost.
        let mut h_states: Vec<(Matrix, Matrix)> = (0..self.cfg.num_layers)
            .map(|_| (Matrix::zeros(cb, hid), Matrix::zeros(cb, hid)))
            .collect();
        let mut g_states: Vec<(Matrix, Matrix)> = (0..self.cfg.num_layers)
            .map(|l| {
                let mut h = Matrix::zeros(ng, hid);
                let mut c = Matrix::zeros(ng, hid);
                for (gi, &li) in groups.iter().enumerate() {
                    let p = &plan[li];
                    let (eh, ec) = &runs[p.run].enc.states[l];
                    h.row_mut(gi).copy_from_slice(eh.row(p.src));
                    c.row_mut(gi).copy_from_slice(ec.row(p.src));
                }
                (h, c)
            })
            .collect();
        let mut rngs: Vec<StdRng> = plan
            .iter()
            .map(|p| runs[p.run].streams.stream(p.ri as u64))
            .collect();

        // Last observed regressive values per row (lap_time / time_behind
        // are frozen per car; rank is the sampled feedback).
        let mut last_rank: Vec<f32> = plan
            .iter()
            .map(|p| {
                let run = &runs[p.run];
                run.ctx.sequences[run.enc.cars[p.src]].rank[run.origin - 1]
            })
            .collect();
        let mut last_lap_status: Vec<f32> = plan
            .iter()
            .map(|p| {
                let run = &runs[p.run];
                run.ctx.sequences[run.enc.cars[p.src]].lap_status[run.origin - 1]
            })
            .collect();
        let mut last_track_status: Vec<f32> = plan
            .iter()
            .map(|p| {
                let run = &runs[p.run];
                run.ctx.sequences[run.enc.cars[p.src]].track_status[run.origin - 1]
            })
            .collect();

        let top = self.cfg.num_layers - 1;
        let mut input = Matrix::zeros(cb, self.base_dim + self.cfg.embedding_dim);
        let mut g_input = Matrix::zeros(ng, self.base_dim + self.cfg.embedding_dim);
        let mut scratch = BatchScratch::new();
        let mut mu = Matrix::zeros(0, 0);
        let mut sigma = Matrix::zeros(0, 0);
        let mut mu1 = Matrix::zeros(0, 0);
        let mut sigma1 = Matrix::zeros(0, 0);
        let mut mu2 = Matrix::zeros(0, 0);
        let mut sigma2 = Matrix::zeros(0, 0);
        for (li, p) in plan.iter().enumerate() {
            let run = &runs[p.run];
            input.row_mut(li)[self.base_dim..]
                .copy_from_slice(runtime.emb.row(run.enc.car_ids[p.src]));
        }
        for (gi, &li) in groups.iter().enumerate() {
            let p = &plan[li];
            let run = &runs[p.run];
            g_input.row_mut(gi)[self.base_dim..]
                .copy_from_slice(runtime.emb.row(run.enc.car_ids[p.src]));
        }

        let max_horizon = runs.iter().map(|r| r.horizon).max().unwrap_or(0);
        let mut step_outputs: Vec<Vec<f32>> = plan
            .iter()
            .map(|p| Vec::with_capacity(runs[p.run].horizon))
            .collect();
        let mut template = Vec::with_capacity(self.base_dim);
        for step in 0..max_horizon {
            // Step 0 is degenerate (no feedback has diverged yet): assemble
            // and step one row per group, then fan the state out below.
            let compact = step == 0;
            // Rows of a run that already reached its horizon keep their last
            // inputs: the GEMM still computes them (row independence makes
            // that harmless) but they draw and emit nothing further.
            let mut cur: Option<(usize, usize)> = None;
            let n_assembly = if compact { ng } else { cb };
            let dst_input = if compact { &mut g_input } else { &mut input };
            // `row` indexes `dst_input` and (when compact) `groups` — an
            // iterator form would need the same dual indexing.
            #[allow(clippy::needless_range_loop)]
            for row in 0..n_assembly {
                let li = if compact { groups[row] } else { row };
                let p = &plan[li];
                let run = &runs[p.run];
                if step >= run.horizon {
                    continue;
                }
                let seq = &run.ctx.sequences[run.enc.cars[p.src]];
                if cur != Some((p.run, p.src)) {
                    let reg = Regressive {
                        // Placeholder — the rank column is per-row and
                        // patched below with the row's own feedback.
                        rank: seq.rank[run.origin - 1],
                        lap_time: seq.lap_time[run.origin - 1],
                        time_behind: seq.time_behind[run.origin - 1],
                    };
                    let cov = match self.kind {
                        TargetKind::RankOnly => run
                            .cov
                            .rows
                            .get(run.enc.cars[p.src])
                            .and_then(|r| r.get(step))
                            .copied()
                            .unwrap_or_default(),
                        TargetKind::Joint => Covariates::default(),
                    };
                    Self::assemble(
                        &self.cfg,
                        self.kind,
                        run.ctx,
                        &reg,
                        &cov,
                        seq,
                        run.origin + step,
                        &mut template,
                    );
                    cur = Some((p.run, p.src));
                }
                let dst = &mut dst_input.row_mut(row)[..self.base_dim];
                dst.copy_from_slice(&template);
                dst[0] = run.ctx.norm_rank(last_rank[li]);
                if self.kind == TargetKind::Joint {
                    dst[self.base_dim - 2] = last_lap_status[li];
                    dst[self.base_dim - 1] = last_track_status[li];
                }
            }
            let hidden = if compact {
                runtime
                    .lstm
                    .step_batch(&g_input, &mut g_states, &mut scratch);
                // Fan the stepped group state out to every replica row —
                // bit-identical to having stepped each replica, and the
                // same copy volume the per-row encoder seeding would cost.
                for (l, (gh, gc)) in g_states.iter().enumerate() {
                    let (fh, fc) = &mut h_states[l];
                    for (li, &gi) in group_of.iter().enumerate() {
                        fh.row_mut(li).copy_from_slice(gh.row(gi));
                        fc.row_mut(li).copy_from_slice(gc.row(gi));
                    }
                }
                &g_states[top].0
            } else {
                runtime.lstm.step_batch(&input, &mut h_states, &mut scratch);
                &h_states[top].0
            };
            // Index of a row's mu/sigma entry in this step's head output.
            let oi = |li: usize| if compact { group_of[li] } else { li };

            runtime.heads[0].forward_batch(hidden, &mut mu, &mut sigma);
            for (li, p) in plan.iter().enumerate() {
                let run = &runs[p.run];
                if step >= run.horizon {
                    continue;
                }
                let z = match self.cfg.likelihood {
                    Likelihood::Gaussian => draw_gaussian(
                        &mut rngs[li],
                        mu.as_slice()[oi(li)],
                        sigma.as_slice()[oi(li)],
                    ),
                    Likelihood::StudentT(nu) => draw_student_t(
                        &mut rngs[li],
                        mu.as_slice()[oi(li)],
                        sigma.as_slice()[oi(li)],
                        nu,
                    ),
                };
                let z = fault_hook_decoder(p.ri as u64, z);
                // NaN survives the clamp, so a poisoned draw degrades the
                // trajectory instead of silently pinning it to a bound.
                let rank = run
                    .ctx
                    .denorm_rank(z)
                    .clamp(0.5, run.ctx.field_size as f32 + 0.5);
                step_outputs[li].push(rank);
                last_rank[li] = rank;
            }
            if self.kind == TargetKind::Joint {
                runtime.heads[1].forward_batch(hidden, &mut mu1, &mut sigma1);
                runtime.heads[2].forward_batch(hidden, &mut mu2, &mut sigma2);
                for (li, p) in plan.iter().enumerate() {
                    if step >= runs[p.run].horizon {
                        continue;
                    }
                    let lap_s = draw_gaussian(
                        &mut rngs[li],
                        mu1.as_slice()[oi(li)],
                        sigma1.as_slice()[oi(li)],
                    );
                    let track_s = draw_gaussian(
                        &mut rngs[li],
                        mu2.as_slice()[oi(li)],
                        sigma2.as_slice()[oi(li)],
                    );
                    last_lap_status[li] = if lap_s > 0.5 { 1.0 } else { 0.0 };
                    last_track_status[li] = if track_s > 0.5 { 1.0 } else { 0.0 };
                }
            }
        }
        step_outputs
    }

    /// Shared decode harness: split the `b · n_samples` replicated rows into
    /// contiguous chunks, run `run` per chunk on scoped worker threads, and
    /// regroup the resulting paths into `[car][sample][step]`.
    fn decode_chunked(
        &self,
        ctx: &RaceContext,
        horizon: usize,
        n_samples: usize,
        enc: &EncoderState,
        threads: usize,
        run: &(dyn Fn(std::ops::Range<usize>) -> Vec<Vec<f32>> + Sync),
    ) -> ForecastSamples {
        let b = enc.cars.len();
        let mut samples: ForecastSamples = vec![Vec::new(); ctx.sequences.len()];
        let bs = b * n_samples;
        if bs == 0 {
            return samples;
        }
        let threads = threads.clamp(1, bs);
        let rows_per = bs.div_ceil(threads);
        let chunks: Vec<std::ops::Range<usize>> = (0..bs)
            .step_by(rows_per)
            .map(|lo| lo..(lo + rows_per).min(bs))
            .collect();

        let chunk_paths: Vec<Vec<Vec<f32>>> = if chunks.len() == 1 {
            vec![run(0..bs)]
        } else {
            // A crashed worker yields NaN paths for its chunk instead of
            // killing the process; the engine's degradation pass replaces
            // them with the CurRank baseline and flags the forecast.
            let chunk_lens: Vec<usize> = chunks.iter().map(|r| r.len()).collect();
            let nan_chunk = |n: usize| vec![vec![f32::NAN; horizon]; n];
            crossbeam::scope(|s| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|rows| s.spawn(move |_| run(rows)))
                    .collect();
                handles
                    .into_iter()
                    .zip(&chunk_lens)
                    .map(|(h, &n)| h.join().unwrap_or_else(|_| nan_chunk(n)))
                    .collect()
            })
            .unwrap_or_else(|_| chunk_lens.iter().map(|&n| nan_chunk(n)).collect())
        };

        // Regroup rows into [car][sample][step]; chunks are contiguous and in
        // order, so a running row index recovers each trajectory's car.
        let mut ri = 0usize;
        for paths in chunk_paths {
            for path in paths {
                samples[enc.cars[ri / n_samples]].push(path);
                ri += 1;
            }
        }
        samples
    }

    /// Decode one contiguous block of replicated rows on the tape-free
    /// runtime. Same row→car / row→stream mapping as
    /// [`RankModel::decode_rows_tape`]; the kernels differ only in writing
    /// into this worker's scratch arena instead of allocating tape nodes, so
    /// every path is bit-identical to the tape backend.
    #[allow(clippy::too_many_arguments)]
    fn decode_rows_infer(
        &self,
        ctx: &RaceContext,
        cov_future: &CovariateFuture,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        enc: &EncoderState,
        streams: &RngStreams,
        runtime: &RankRuntime,
        rows: std::ops::Range<usize>,
    ) -> Vec<Vec<f32>> {
        let cb = rows.len();
        let row0 = rows.start;
        // Encoder row (= car index within `enc.cars`) backing each local row.
        let src: Vec<usize> = rows.clone().map(|ri| ri / n_samples).collect();
        let mut h_states: Vec<(Matrix, Matrix)> = enc
            .states
            .iter()
            .map(|(h, c)| (h.gather_rows(&src), c.gather_rows(&src)))
            .collect();
        let mut rngs: Vec<StdRng> = rows.map(|ri| streams.stream(ri as u64)).collect();

        // Last observed regressive values per row.
        let mut last_rank: Vec<f32> = src
            .iter()
            .map(|&c| ctx.sequences[enc.cars[c]].rank[origin - 1])
            .collect();
        let frozen: Vec<(f32, f32)> = src
            .iter()
            .map(|&c| {
                let seq = &ctx.sequences[enc.cars[c]];
                (seq.lap_time[origin - 1], seq.time_behind[origin - 1])
            })
            .collect();
        // Joint mode: lagged sampled status flags.
        let mut last_lap_status: Vec<f32> = src
            .iter()
            .map(|&c| ctx.sequences[enc.cars[c]].lap_status[origin - 1])
            .collect();
        let mut last_track_status: Vec<f32> = src
            .iter()
            .map(|&c| ctx.sequences[enc.cars[c]].track_status[origin - 1])
            .collect();

        let top = self.cfg.num_layers - 1;
        let mut scratch = RankScratch::new(cb, self.base_dim + self.cfg.embedding_dim);
        for (li, &c) in src.iter().enumerate() {
            scratch.input.row_mut(li)[self.base_dim..]
                .copy_from_slice(runtime.emb.row(enc.car_ids[c]));
        }

        let mut step_outputs: Vec<Vec<f32>> = vec![Vec::with_capacity(horizon); cb];
        let mut row = Vec::with_capacity(self.base_dim);
        for step in 0..horizon {
            for (li, &c) in src.iter().enumerate() {
                let seq = &ctx.sequences[enc.cars[c]];
                let reg = Regressive {
                    rank: last_rank[li],
                    lap_time: frozen[li].0,
                    time_behind: frozen[li].1,
                };
                let cov = match self.kind {
                    TargetKind::RankOnly => cov_future
                        .rows
                        .get(enc.cars[c])
                        .and_then(|r| r.get(step))
                        .copied()
                        .unwrap_or_default(),
                    TargetKind::Joint => Covariates::default(),
                };
                // Joint regressive flags are injected by `assemble` reading
                // the sequence; at forecast time we overwrite them below.
                Self::assemble(
                    &self.cfg,
                    self.kind,
                    ctx,
                    &reg,
                    &cov,
                    seq,
                    origin + step,
                    &mut row,
                );
                if self.kind == TargetKind::Joint {
                    let n = row.len();
                    row[n - 2] = last_lap_status[li];
                    row[n - 1] = last_track_status[li];
                }
                scratch.input.row_mut(li)[..self.base_dim].copy_from_slice(&row);
            }
            runtime
                .lstm
                .step(&scratch.input, &mut h_states, &mut scratch.lstm);
            let hidden = &h_states[top].0;

            // Heads → one draw per row from its own stream.
            runtime.heads[0].forward_into(hidden, &mut scratch.mu, &mut scratch.sigma);
            for li in 0..cb {
                let z = match self.cfg.likelihood {
                    Likelihood::Gaussian => draw_gaussian(
                        &mut rngs[li],
                        scratch.mu.as_slice()[li],
                        scratch.sigma.as_slice()[li],
                    ),
                    Likelihood::StudentT(nu) => draw_student_t(
                        &mut rngs[li],
                        scratch.mu.as_slice()[li],
                        scratch.sigma.as_slice()[li],
                        nu,
                    ),
                };
                let z = fault_hook_decoder((row0 + li) as u64, z);
                // NaN survives the clamp, so a poisoned draw degrades the
                // trajectory instead of silently pinning it to a bound.
                let rank = ctx.denorm_rank(z).clamp(0.5, ctx.field_size as f32 + 0.5);
                step_outputs[li].push(rank);
                last_rank[li] = rank;
            }
            if self.kind == TargetKind::Joint {
                runtime.heads[1].forward_into(hidden, &mut scratch.mu1, &mut scratch.sigma1);
                runtime.heads[2].forward_into(hidden, &mut scratch.mu2, &mut scratch.sigma2);
                for li in 0..cb {
                    let lap_s = draw_gaussian(
                        &mut rngs[li],
                        scratch.mu1.as_slice()[li],
                        scratch.sigma1.as_slice()[li],
                    );
                    let track_s = draw_gaussian(
                        &mut rngs[li],
                        scratch.mu2.as_slice()[li],
                        scratch.sigma2.as_slice()[li],
                    );
                    last_lap_status[li] = if lap_s > 0.5 { 1.0 } else { 0.0 };
                    last_track_status[li] = if track_s > 0.5 { 1.0 } else { 0.0 };
                }
            }
        }
        step_outputs
    }

    /// Decode one contiguous block of replicated rows (global indices
    /// `rows`) through the autodiff tape; returns each row's sampled path.
    /// Row `ri` belongs to car slot `enc.cars[ri / n_samples]` and draws
    /// from `streams.stream(ri)`.
    #[allow(clippy::too_many_arguments)]
    fn decode_rows_tape(
        &self,
        ctx: &RaceContext,
        cov_future: &CovariateFuture,
        origin: usize,
        horizon: usize,
        n_samples: usize,
        enc: &EncoderState,
        streams: &RngStreams,
        rows: std::ops::Range<usize>,
    ) -> Vec<Vec<f32>> {
        let cb = rows.len();
        let row0 = rows.start;
        // Encoder row (= car index within `enc.cars`) backing each local row.
        let src: Vec<usize> = rows.clone().map(|ri| ri / n_samples).collect();
        let mut h_states: Vec<(Matrix, Matrix)> = enc
            .states
            .iter()
            .map(|(h, c)| (h.gather_rows(&src), c.gather_rows(&src)))
            .collect();
        let rep_car_ids: Vec<usize> = src.iter().map(|&c| enc.car_ids[c]).collect();
        let mut rngs: Vec<StdRng> = rows.map(|ri| streams.stream(ri as u64)).collect();

        // Last observed regressive values per row.
        let mut last_rank: Vec<f32> = src
            .iter()
            .map(|&c| ctx.sequences[enc.cars[c]].rank[origin - 1])
            .collect();
        let frozen: Vec<(f32, f32)> = src
            .iter()
            .map(|&c| {
                let seq = &ctx.sequences[enc.cars[c]];
                (seq.lap_time[origin - 1], seq.time_behind[origin - 1])
            })
            .collect();
        // Joint mode: lagged sampled status flags.
        let mut last_lap_status: Vec<f32> = src
            .iter()
            .map(|&c| ctx.sequences[enc.cars[c]].lap_status[origin - 1])
            .collect();
        let mut last_track_status: Vec<f32> = src
            .iter()
            .map(|&c| ctx.sequences[enc.cars[c]].track_status[origin - 1])
            .collect();

        let mut step_outputs: Vec<Vec<f32>> = vec![Vec::with_capacity(horizon); cb];
        let mut row = Vec::with_capacity(self.base_dim);
        for step in 0..horizon {
            let mut x = Matrix::zeros(cb, self.base_dim);
            for (li, &c) in src.iter().enumerate() {
                let seq = &ctx.sequences[enc.cars[c]];
                let reg = Regressive {
                    rank: last_rank[li],
                    lap_time: frozen[li].0,
                    time_behind: frozen[li].1,
                };
                let cov = match self.kind {
                    TargetKind::RankOnly => cov_future
                        .rows
                        .get(enc.cars[c])
                        .and_then(|r| r.get(step))
                        .copied()
                        .unwrap_or_default(),
                    TargetKind::Joint => Covariates::default(),
                };
                // Joint regressive flags are injected by `assemble` reading
                // the sequence; at forecast time we overwrite them below.
                Self::assemble(
                    &self.cfg,
                    self.kind,
                    ctx,
                    &reg,
                    &cov,
                    seq,
                    origin + step,
                    &mut row,
                );
                if self.kind == TargetKind::Joint {
                    let n = row.len();
                    row[n - 2] = last_lap_status[li];
                    row[n - 1] = last_track_status[li];
                }
                x.row_mut(li).copy_from_slice(&row);
            }
            let out = self.step_concrete(&x, &rep_car_ids, &mut h_states);

            // Heads → one draw per row from its own stream.
            let (mu, sigma) = self.head_concrete(&out, 0);
            for li in 0..cb {
                let z = match self.cfg.likelihood {
                    Likelihood::Gaussian => {
                        draw_gaussian(&mut rngs[li], mu.as_slice()[li], sigma.as_slice()[li])
                    }
                    Likelihood::StudentT(nu) => {
                        draw_student_t(&mut rngs[li], mu.as_slice()[li], sigma.as_slice()[li], nu)
                    }
                };
                let z = fault_hook_decoder((row0 + li) as u64, z);
                // NaN survives the clamp, so a poisoned draw degrades the
                // trajectory instead of silently pinning it to a bound.
                let rank = ctx.denorm_rank(z).clamp(0.5, ctx.field_size as f32 + 0.5);
                step_outputs[li].push(rank);
                last_rank[li] = rank;
            }
            if self.kind == TargetKind::Joint {
                let (mu1, s1) = self.head_concrete(&out, 1);
                let (mu2, s2) = self.head_concrete(&out, 2);
                for li in 0..cb {
                    let lap_s = draw_gaussian(&mut rngs[li], mu1.as_slice()[li], s1.as_slice()[li]);
                    let track_s =
                        draw_gaussian(&mut rngs[li], mu2.as_slice()[li], s2.as_slice()[li]);
                    last_lap_status[li] = if lap_s > 0.5 { 1.0 } else { 0.0 };
                    last_track_status[li] = if track_s > 0.5 { 1.0 } else { 0.0 };
                }
            }
        }
        step_outputs
    }

    /// One forward LSTM step on concrete state (no gradient bookkeeping
    /// kept beyond the call).
    fn step_concrete(
        &self,
        x: &Matrix,
        car_ids: &[usize],
        states: &mut [(Matrix, Matrix)],
    ) -> Matrix {
        let tape = Tape::new();
        let bind = Binding::new(&tape, &self.store);
        let x_leaf = tape.leaf(x.clone());
        let emb_rows = self.emb.forward(&bind, car_ids);
        let input = tape.hstack(&[x_leaf, emb_rows]);
        let state_vars: Vec<rpf_nn::lstm::LstmState> = states
            .iter()
            .map(|(h, c)| rpf_nn::lstm::LstmState {
                h: tape.leaf(h.clone()),
                c: tape.leaf(c.clone()),
            })
            .collect();
        let (out, new_states) = self.lstm.step(&bind, input, &state_vars);
        for (slot, s) in states.iter_mut().zip(&new_states) {
            slot.0 = tape.value(s.h);
            slot.1 = tape.value(s.c);
        }
        tape.value(out)
    }

    /// Gaussian head `hi` on a concrete hidden state.
    fn head_concrete(&self, hidden: &Matrix, hi: usize) -> (Matrix, Matrix) {
        let tape = Tape::new();
        let bind = Binding::new(&tape, &self.store);
        let h = tape.leaf(hidden.clone());
        let p: GaussianParams = self.heads[hi].forward(&bind, h);
        (tape.value(p.mu), tape.value(p.sigma))
    }
}

/// Fault-injection seam on decoder draws, keyed by the trajectory's global
/// row index (stable across thread counts): identity unless the
/// `fault-inject` feature is on AND a plan poisons this row.
#[cfg(feature = "fault-inject")]
fn fault_hook_decoder(row: u64, z: f32) -> f32 {
    rpf_nn::fault::poison_decoder_sample(row, z)
}

#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
fn fault_hook_decoder(_row: u64, z: f32) -> f32 {
    z
}

/// Covariate layout used inside Joint mode: race-status columns move from
/// covariates to regressive inputs.
fn joint_cfg(cfg: &RankNetConfig) -> RankNetConfig {
    let mut c = cfg.clone();
    c.use_race_status = false;
    c.use_context_features = false;
    c.use_shift_features = false;
    c.use_scenario_features = false;
    c
}

/// Ground-truth covariate futures — the input RankNet-Oracle receives
/// (Table III: "PitModel support: Y (Ground Truth)").
pub fn oracle_covariates(
    ctx: &RaceContext,
    origin: usize,
    horizon: usize,
    shift: usize,
) -> CovariateFuture {
    let rows = ctx
        .sequences
        .iter()
        .map(|seq| {
            (0..horizon)
                .map(|s| Covariates::from_seq(seq, origin + s, shift))
                .collect()
        })
        .collect();
    CovariateFuture { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_sequences;
    use rpf_racesim::{simulate_race, Event, EventConfig};

    fn tiny_training_set(seed: u64) -> TrainingSet {
        let race = simulate_race(&EventConfig::for_race(Event::Indy500, 2016), seed);
        let ctx = extract_sequences(&race);
        TrainingSet::build(vec![ctx], &RankNetConfig::tiny(), 16)
    }

    #[test]
    fn parameter_count_is_paper_scale() {
        let cfg = RankNetConfig::default();
        let model = RankModel::new(cfg, TargetKind::RankOnly, 33);
        // Table IV / §IV-J: "a relative simple model with less than 30K
        // parameters".
        let n = model.num_params();
        assert!(n < 60_000, "parameter count {n} should stay small");
        assert!(n > 10_000, "parameter count {n} suspiciously small");
    }

    #[test]
    fn training_reduces_loss() {
        let ts = tiny_training_set(1);
        let val = tiny_training_set(2);
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 3;
        let mut model = RankModel::new(cfg, TargetKind::RankOnly, 40);
        let report = model.train(&ts, &val);
        assert!(report.epochs_run >= 1);
        let first = report.epoch_losses.first().unwrap().0;
        let last = report.epoch_losses.last().unwrap().0;
        assert!(last < first, "training loss should fall: {first} -> {last}");
        assert!(last.is_finite());
    }

    #[test]
    fn forecast_shapes_and_bounds() {
        let ts = tiny_training_set(3);
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 1;
        let mut model = RankModel::new(cfg.clone(), TargetKind::RankOnly, 40);
        let _ = model.train(&ts, &ts);

        let ctx = &ts.contexts[0];
        let horizon = 2;
        let origin = 80;
        let cov = oracle_covariates(ctx, origin, horizon, cfg.prediction_len);
        let mut rng = StdRng::seed_from_u64(9);
        let samples = model.forecast(ctx, &cov, origin, horizon, 5, &mut rng);
        assert_eq!(samples.len(), ctx.sequences.len());
        for (c, per_car) in samples.iter().enumerate() {
            if ctx.sequences[c].len() >= origin {
                assert_eq!(per_car.len(), 5, "car {c} should have 5 samples");
                for path in per_car {
                    assert_eq!(path.len(), horizon);
                    for &r in path {
                        assert!((0.0..=34.0).contains(&r), "rank sample {r} out of range");
                    }
                }
            }
        }
    }

    #[test]
    fn student_t_likelihood_trains_and_forecasts() {
        let ts = tiny_training_set(8);
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 2;
        cfg.likelihood = crate::config::Likelihood::StudentT(5.0);
        let mut model = RankModel::new(cfg.clone(), TargetKind::RankOnly, 40);
        let report = model.train(&ts, &ts);
        assert!(report.best_val_loss.is_finite());
        let first = report.epoch_losses.first().unwrap().0;
        let last = report.epoch_losses.last().unwrap().0;
        assert!(
            last < first,
            "t-likelihood training should improve: {first} -> {last}"
        );

        let ctx = &ts.contexts[0];
        let cov = oracle_covariates(ctx, 70, 2, cfg.prediction_len);
        let mut rng = StdRng::seed_from_u64(11);
        let samples = model.forecast(ctx, &cov, 70, 2, 6, &mut rng);
        let filled = samples.iter().filter(|s| !s.is_empty()).count();
        assert!(filled > 20);
        for s in samples.iter().filter(|s| !s.is_empty()) {
            assert!(s.iter().flatten().all(|v| v.is_finite()));
        }
    }

    fn flat_bits(s: &ForecastSamples) -> Vec<u32> {
        s.iter().flatten().flatten().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn decode_matches_tape_backend_bitwise() {
        let ts = tiny_training_set(5);
        for (kind, likelihood) in [
            (TargetKind::RankOnly, Likelihood::Gaussian),
            (TargetKind::RankOnly, Likelihood::StudentT(5.0)),
            (TargetKind::Joint, Likelihood::Gaussian),
        ] {
            let mut cfg = RankNetConfig::tiny();
            cfg.max_epochs = 1;
            cfg.likelihood = likelihood;
            let mut model = RankModel::new(cfg.clone(), kind, 40);
            let _ = model.train(&ts, &ts);
            let ctx = &ts.contexts[0];
            let (origin, horizon) = (60, 3);
            let cov = oracle_covariates(ctx, origin, horizon, cfg.prediction_len);
            let enc = model.encode(ctx, origin);
            let mut rng = StdRng::seed_from_u64(21);
            let streams = RngStreams::from_rng(&mut rng);
            let reference = model.decode_tape(ctx, &cov, origin, horizon, 4, &enc, &streams, 1);
            assert!(flat_bits(&reference).len() > 20);
            for threads in [1usize, 3] {
                let got = model.decode(ctx, &cov, origin, horizon, 4, &enc, &streams, threads);
                assert_eq!(
                    flat_bits(&got),
                    flat_bits(&reference),
                    "runtime decode diverged from tape: kind {kind:?}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn joint_mode_trains_and_forecasts() {
        let ts = tiny_training_set(4);
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 1;
        let mut model = RankModel::new(cfg, TargetKind::Joint, 40);
        let report = model.train(&ts, &ts);
        assert!(report.best_val_loss.is_finite());
        let ctx = &ts.contexts[0];
        let cov = CovariateFuture {
            rows: vec![Vec::new(); ctx.sequences.len()],
        };
        let mut rng = StdRng::seed_from_u64(10);
        let samples = model.forecast(ctx, &cov, 60, 2, 3, &mut rng);
        let non_empty = samples.iter().filter(|s| !s.is_empty()).count();
        assert!(non_empty > 20);
    }
}
