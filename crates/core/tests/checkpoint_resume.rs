//! Kill–resume bit-identity at the model level: training a RankModel with
//! on-disk checkpoints, "killing" it mid-run and resuming in a fresh model
//! must end with weights bit-identical to an uninterrupted run.

use ranknet_core::features::extract_sequences;
use ranknet_core::instances::TrainingSet;
use ranknet_core::rank_model::{RankModel, TargetKind};
use ranknet_core::RankNetConfig;
use rpf_racesim::{simulate_race, Event, EventConfig};
use rpf_tensor::Matrix;

fn bits(snapshot: &[Matrix]) -> Vec<Vec<u32>> {
    snapshot
        .iter()
        .map(|m| m.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn killed_and_resumed_training_is_bit_identical() {
    let ctx = extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2016),
        5,
    ));
    let mut cfg = RankNetConfig::tiny();
    cfg.max_epochs = 4;
    let ts = TrainingSet::build(vec![ctx.clone()], &cfg, 24);
    let val = TrainingSet::build(vec![ctx], &cfg, 48);

    let dir = std::env::temp_dir().join("ranknet_resume_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("ckpt_{:x}.json", std::process::id()));
    std::fs::remove_file(&path).ok();

    // Reference: 4 epochs, no interruption, no checkpoint file involved.
    let mut reference = RankModel::new(cfg.clone(), TargetKind::RankOnly, 40);
    reference
        .train_resumable(&ts, &val, None, None)
        .expect("reference run");

    // "Killed" run: same model, but only 2 epochs before the process dies,
    // checkpointing every epoch.
    let mut short_cfg = cfg.clone();
    short_cfg.max_epochs = 2;
    let mut killed = RankModel::new(short_cfg, TargetKind::RankOnly, 40);
    killed
        .train_checkpointed(&ts, &val, &path, 1)
        .expect("pre-kill run");
    assert!(path.exists(), "checkpoint must be on disk after the kill");

    // Resume: a brand-new process state (fresh model, fresh optimizer)
    // picks the checkpoint up and finishes the remaining epochs.
    let mut resumed = RankModel::new(cfg, TargetKind::RankOnly, 40);
    let report = resumed
        .train_checkpointed(&ts, &val, &path, 1)
        .expect("resumed run");
    assert_eq!(report.epochs_run, 4, "resume must complete all epochs");

    assert_eq!(
        bits(&reference.store.snapshot()),
        bits(&resumed.store.snapshot()),
        "resumed weights must be bit-identical to the uninterrupted run"
    );
    std::fs::remove_file(&path).ok();
}
