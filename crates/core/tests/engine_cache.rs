//! Regression tests for the engine's bounded encoder cache and the
//! coalescing batch-entry API. The cache is an optimisation only: eviction
//! and recompute must never change a single output bit, the cache must
//! never exceed its configured capacity (a multi-race serving soak used to
//! grow the old unbounded map without limit), and evictions must be
//! visible in the phase counters.

use ranknet_core::engine::{EngineError, ForecastEngine, ForecastRequest};
use ranknet_core::features::{extract_sequences, RaceContext};
use ranknet_core::rank_model::ForecastSamples;
use ranknet_core::ranknet::{RankNet, RankNetVariant};
use ranknet_core::{EngineConfig, RankNetConfig};
use rpf_racesim::{simulate_race, Event, EventConfig};

fn race_ctx(seed: u64) -> RaceContext {
    extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2017),
        seed,
    ))
}

fn tiny_model() -> (RankNet, Vec<RaceContext>) {
    let mut cfg = RankNetConfig::tiny();
    cfg.max_epochs = 1;
    let train = vec![race_ctx(201)];
    let (model, _) = RankNet::fit(train.clone(), train, cfg, RankNetVariant::Oracle, 40);
    (model, vec![race_ctx(202), race_ctx(203)])
}

fn bits(samples: &ForecastSamples) -> Vec<u32> {
    samples
        .iter()
        .flat_map(|car| car.iter().flat_map(|path| path.iter().map(|v| v.to_bits())))
        .collect()
}

#[test]
fn cache_never_exceeds_capacity_and_counts_evictions() {
    let (model, contexts) = tiny_model();
    let cap = 3;
    let engine = ForecastEngine::new(&model, 11)
        .with_threads(1)
        .with_cache_capacity(cap);

    // Ten distinct (race, origin) keys against a 3-deep cache.
    for i in 0..10 {
        let _ = engine.forecast_keyed(0, &contexts[0], 50 + i, 1, 2);
    }
    assert!(
        engine.cache_len() <= cap,
        "cache grew to {} past its cap {cap}",
        engine.cache_len()
    );
    let t = engine.timings();
    assert_eq!(
        t.cache_evictions,
        10 - engine.cache_len() as u64,
        "every insert beyond the bound must evict exactly one state"
    );
    assert_eq!(t.encoder_reuses, 0, "all ten keys were distinct");
}

#[test]
fn eviction_and_recompute_replay_identical_bits() {
    let (model, contexts) = tiny_model();
    let engine = ForecastEngine::new(&model, 11)
        .with_threads(1)
        .with_cache_capacity(2);

    let first = engine.forecast_keyed(0, &contexts[0], 60, 2, 4);
    // Flood the tiny cache until origin 60 must have been evicted.
    for i in 0..8 {
        let _ = engine.forecast_keyed(0, &contexts[0], 70 + i, 1, 2);
    }
    assert!(engine.timings().cache_evictions > 0);
    // Recomputing the evicted encoder state must replay the exact draws:
    // the cache moves time, never bits.
    let again = engine.forecast_keyed(0, &contexts[0], 60, 2, 4);
    assert_eq!(bits(&first), bits(&again));

    // And an unbounded engine on the same seed agrees too.
    let unbounded = ForecastEngine::new(&model, 11).with_threads(1);
    let reference = unbounded.forecast_keyed(0, &contexts[0], 60, 2, 4);
    assert_eq!(bits(&reference), bits(&again));
}

#[test]
fn multi_race_soak_keeps_cache_bounded() {
    let (model, contexts) = tiny_model();
    let cap = 4;
    let engine = ForecastEngine::new(&model, 13)
        .with_threads(2)
        .with_cache_capacity(cap);

    // Interleave two races across many origins, revisiting some keys, and
    // check the bound *throughout* the soak, not just at the end.
    for round in 0..3 {
        for origin in (40..90).step_by(7) {
            for (race, ctx) in contexts.iter().enumerate() {
                let _ = engine.forecast_keyed(race, ctx, origin + round, 1, 2);
                assert!(
                    engine.cache_len() <= cap,
                    "cache exceeded its cap mid-soak: {} > {cap}",
                    engine.cache_len()
                );
            }
        }
    }
    let t = engine.timings();
    assert!(t.cache_evictions > 0, "soak must exercise eviction");
}

#[test]
fn zero_capacity_disables_the_cache_without_changing_bits() {
    let (model, contexts) = tiny_model();
    let uncached = ForecastEngine::new(&model, 17)
        .with_threads(1)
        .with_cache_capacity(0);
    let a = uncached.forecast_keyed(1, &contexts[1], 55, 2, 3);
    let b = uncached.forecast_keyed(1, &contexts[1], 55, 2, 3);
    assert_eq!(engine_len_zero(&uncached), 0);
    assert_eq!(uncached.timings().encoder_reuses, 0);
    assert_eq!(bits(&a), bits(&b));

    let cached = ForecastEngine::new(&model, 17).with_threads(1);
    let c = cached.forecast_keyed(1, &contexts[1], 55, 2, 3);
    assert_eq!(bits(&a), bits(&c));
}

fn engine_len_zero(engine: &ForecastEngine) -> usize {
    engine.cache_len()
}

#[test]
fn engine_config_carries_cache_capacity() {
    let (model, contexts) = tiny_model();
    let cfg = EngineConfig {
        seed: 11,
        threads: Some(1),
        encoder_cache_capacity: 2,
        ..EngineConfig::default()
    };
    let engine = ForecastEngine::with_config(&model, &cfg);
    for i in 0..6 {
        let _ = engine.forecast_keyed(0, &contexts[0], 45 + i, 1, 2);
    }
    assert!(engine.cache_len() <= 2);
    assert!(engine.timings().cache_evictions > 0);

    // The configured engine agrees bit-for-bit with the builder form.
    let manual = ForecastEngine::new(&model, 11).with_threads(1);
    let a = engine.forecast_keyed(0, &contexts[0], 45, 1, 2);
    let b = manual.forecast_keyed(0, &contexts[0], 45, 1, 2);
    assert_eq!(bits(&a), bits(&b));
}

#[test]
fn batch_entries_coalesce_duplicates_and_isolate_errors() {
    let (model, contexts) = tiny_model();
    let refs: Vec<&RaceContext> = contexts.iter().collect();
    let engine = ForecastEngine::new(&model, 19).with_threads(1);

    let good = ForecastRequest {
        race: 0,
        origin: 65,
        horizon: 2,
        n_samples: 3,
    };
    let other = ForecastRequest {
        race: 1,
        origin: 72,
        horizon: 1,
        n_samples: 2,
    };
    let out_of_range = ForecastRequest { race: 9, ..good };
    let bad_horizon = ForecastRequest { horizon: 0, ..good };
    let requests = [good, other, good, out_of_range, good, bad_horizon];
    let results = engine.forecast_batch_entries(&refs, &requests);
    assert_eq!(results.len(), requests.len());

    // Errors are per-entry: bad neighbours never poison good requests.
    let first = results[0].as_ref().expect("valid request");
    assert!(results[1].is_ok());
    assert_eq!(
        results[3].as_ref().expect_err("race 9 out of range"),
        &EngineError::RaceOutOfRange {
            race: 9,
            n_contexts: 2
        }
    );
    assert_eq!(
        results[5].as_ref().expect_err("zero horizon"),
        &EngineError::BadHorizon
    );

    // The three identical requests coalesced onto one model run and the
    // clones carry the exact same bits.
    for dup in [2usize, 4] {
        let r = results[dup].as_ref().expect("duplicate of a valid request");
        assert_eq!(bits(&first.samples), bits(&r.samples));
    }
    assert_eq!(engine.timings().coalesced_requests, 2);

    // Batched and solo execution agree: seeds derive from request identity.
    let fresh = ForecastEngine::new(&model, 19).with_threads(1);
    let solo = fresh.forecast_keyed(0, &contexts[0], 65, 2, 3);
    assert_eq!(bits(&solo), bits(&first.samples));
}
