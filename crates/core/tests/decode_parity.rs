//! Parity suite for the batched decode backend (DESIGN.md §13).
//!
//! The batched backend trades the bitwise tape contract for speed: FMA
//! GEMMs and polynomial fast activations shift values by a few ulps per
//! step. Its contract, pinned here, is three-part:
//!
//! 1. **Tolerance** — every sampled rank tracks the `decode_tape`
//!    reference within [`RANK_TOL`] rank units (RankOnly targets, where
//!    the decode map is continuous in the head outputs),
//! 2. **Determinism** — for a fixed `(model, enc, streams, n_samples)`
//!    layout the output is bit-identical across repeated runs *and* thread
//!    counts,
//! 3. **Fold invariance** — a run's bits do not change when other runs
//!    share its lock-step batch (what legalises serving-layer coalescing).

use ranknet_core::config::Likelihood;
use ranknet_core::engine::{ForecastEngine, ForecastRequest};
use ranknet_core::features::{extract_sequences, RaceContext};
use ranknet_core::instances::TrainingSet;
use ranknet_core::rank_model::{
    oracle_covariates, BatchedRun, CovariateFuture, ForecastSamples, RankModel, TargetKind,
};
use ranknet_core::ranknet::{RankNet, RankNetVariant};
use ranknet_core::{DecodeBackend, RankNetConfig};
use rpf_nn::RngStreams;
use rpf_racesim::{simulate_race, Event, EventConfig};

/// Pinned batched-vs-tape bound in denormalised rank units. The per-step
/// kernel divergence is ≤ ~1e-4 in normalised units (see the `rpf-nn`
/// parity bound); `denorm_rank` scales by the field size and the sampled
/// feedback compounds it over the horizon, so 0.05 of a rank position is
/// generous headroom while still far below any decision threshold (ranks
/// are ≥ 1 apart). Tightening kernels may never loosen this.
const RANK_TOL: f32 = 0.05;

fn race_ctx(seed: u64) -> RaceContext {
    extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2017),
        seed,
    ))
}

fn tiny_cfg() -> RankNetConfig {
    let mut cfg = RankNetConfig::tiny();
    cfg.max_epochs = 1;
    cfg
}

fn trained_model(ctx: &RaceContext, cfg: &RankNetConfig, kind: TargetKind) -> RankModel {
    let ts = TrainingSet::build(vec![ctx.clone()], cfg, 24);
    let mut model = RankModel::new(cfg.clone(), kind, ts.max_car_id);
    let _ = model.train(&ts, &ts);
    model
}

fn bits(samples: &ForecastSamples) -> Vec<u32> {
    samples
        .iter()
        .flat_map(|car| car.iter().flat_map(|path| path.iter().map(|v| v.to_bits())))
        .collect()
}

/// Largest per-element divergence between two forecasts of the same shape.
fn max_diff(a: &ForecastSamples, b: &ForecastSamples) -> f32 {
    assert_eq!(a.len(), b.len());
    let mut worst = 0.0f32;
    for (ca, cb) in a.iter().zip(b) {
        assert_eq!(ca.len(), cb.len());
        for (pa, pb) in ca.iter().zip(cb) {
            assert_eq!(pa.len(), pb.len());
            for (x, y) in pa.iter().zip(pb) {
                assert!(x.is_finite() && y.is_finite());
                worst = worst.max((x - y).abs());
            }
        }
    }
    worst
}

fn parity_case(likelihood: Likelihood, seed: u64) {
    let ctx = race_ctx(seed);
    let mut cfg = tiny_cfg();
    cfg.likelihood = likelihood;
    let model = trained_model(&ctx, &cfg, TargetKind::RankOnly);

    let (origin, horizon, n_samples) = (80, 3, 7);
    let cov = oracle_covariates(&ctx, origin, horizon, cfg.prediction_len);
    let enc = model.encode(&ctx, origin);
    let streams = RngStreams::new(0xFADE ^ seed);

    let tape = model.decode_tape(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, 1);
    let batched = model.decode_batched(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, 1);
    assert!(!bits(&tape).is_empty());

    let worst = max_diff(&tape, &batched);
    assert!(
        worst <= RANK_TOL,
        "batched decode diverged from tape by {worst} rank units (bound {RANK_TOL})"
    );
    // And it really is the batched kernel set, not a silent fallback to the
    // reference path: thousands of draws through FMA + fast activations
    // cannot all round identically.
    assert_ne!(
        bits(&tape),
        bits(&batched),
        "batched backend appears to have run the reference kernels"
    );
}

#[test]
fn batched_tracks_tape_within_tolerance_gaussian() {
    parity_case(Likelihood::Gaussian, 61);
}

#[test]
fn batched_tracks_tape_within_tolerance_student_t() {
    parity_case(Likelihood::StudentT(5.0), 62);
}

#[test]
fn batched_is_bit_deterministic_and_thread_invariant() {
    let ctx = race_ctx(63);
    let cfg = tiny_cfg();
    let model = trained_model(&ctx, &cfg, TargetKind::RankOnly);

    let (origin, horizon, n_samples) = (75, 2, 9);
    let cov = oracle_covariates(&ctx, origin, horizon, cfg.prediction_len);
    let enc = model.encode(&ctx, origin);
    let streams = RngStreams::new(0xD00D);

    let first = model.decode_batched(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, 1);
    let again = model.decode_batched(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, 1);
    assert_eq!(bits(&first), bits(&again), "fixed layout must replay bits");
    for threads in [2, 8, 13] {
        let par = model.decode_batched(
            &ctx, &cov, origin, horizon, n_samples, &enc, &streams, threads,
        );
        assert_eq!(
            bits(&first),
            bits(&par),
            "batched decode with {threads} threads must match single-threaded bits"
        );
    }
}

#[test]
fn folded_runs_match_solo_batched_decodes() {
    // Two requests with different horizons and sample counts decoded as one
    // lock-step batch: each run's bits must equal its solo batched decode —
    // the row-independence contract the serving fold relies on.
    let ctx_a = race_ctx(64);
    let ctx_b = race_ctx(65);
    let cfg = tiny_cfg();
    let model = trained_model(&ctx_a, &cfg, TargetKind::RankOnly);

    let cov_a = oracle_covariates(&ctx_a, 70, 2, cfg.prediction_len);
    let cov_b = oracle_covariates(&ctx_b, 85, 4, cfg.prediction_len);
    let enc_a = model.encode(&ctx_a, 70);
    let enc_b = model.encode(&ctx_b, 85);
    let streams_a = RngStreams::new(0xAAA);
    let streams_b = RngStreams::new(0xBBB);

    let solo_a = model.decode_batched(&ctx_a, &cov_a, 70, 2, 5, &enc_a, &streams_a, 1);
    let solo_b = model.decode_batched(&ctx_b, &cov_b, 85, 4, 3, &enc_b, &streams_b, 1);

    let runs = [
        BatchedRun {
            ctx: &ctx_a,
            enc: &enc_a,
            cov: &cov_a,
            origin: 70,
            horizon: 2,
            rows_per: 5,
            streams: streams_a,
        },
        BatchedRun {
            ctx: &ctx_b,
            enc: &enc_b,
            cov: &cov_b,
            origin: 85,
            horizon: 4,
            rows_per: 3,
            streams: streams_b,
        },
    ];
    for threads in [1, 3] {
        let folded = model.decode_runs_batched(&runs, threads);
        assert_eq!(folded.len(), 2);
        let regroup = |paths: &[Vec<f32>], ctx: &RaceContext, cars: &[usize], per: usize| {
            let mut s: ForecastSamples = vec![Vec::new(); ctx.sequences.len()];
            for (ri, p) in paths.iter().enumerate() {
                s[cars[ri / per]].push(p.clone());
            }
            s
        };
        let got_a = regroup(&folded[0], &ctx_a, &enc_a.cars, 5);
        let got_b = regroup(&folded[1], &ctx_b, &enc_b.cars, 3);
        assert_eq!(
            bits(&solo_a),
            bits(&got_a),
            "run A's bits changed when folded (threads={threads})"
        );
        assert_eq!(
            bits(&solo_b),
            bits(&got_b),
            "run B's bits changed when folded (threads={threads})"
        );
    }
}

#[test]
fn joint_batched_is_deterministic_and_finite() {
    // Joint mode feeds thresholded status draws back into the input, so a
    // tolerance comparison against tape is not meaningful (a near-0.5 draw
    // may flip). The batched backend still owes determinism + finiteness.
    let ctx = race_ctx(66);
    let cfg = tiny_cfg();
    let model = trained_model(&ctx, &cfg, TargetKind::Joint);

    let (origin, horizon, n_samples) = (75, 3, 6);
    let cov = CovariateFuture::default();
    let enc = model.encode(&ctx, origin);
    let streams = RngStreams::new(0x7017);

    let a = model.decode_batched(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, 1);
    let b = model.decode_batched(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, 4);
    assert_eq!(bits(&a), bits(&b));
    assert!(!bits(&a).is_empty());
    for car in &a {
        for path in car {
            assert_eq!(path.len(), horizon);
            for v in path {
                assert!(v.is_finite());
                assert!((0.5..=ctx.field_size as f32 + 0.5).contains(v));
            }
        }
    }
}

#[test]
fn engine_backends_agree_within_tolerance_and_batched_is_default() {
    // The backend-mismatch regression gate: per-row and batched engines on
    // the same request must agree within RANK_TOL, and loudly fail here if
    // a kernel change drives them apart.
    let train = vec![race_ctx(67)];
    let (model, _) = RankNet::fit(train.clone(), train, tiny_cfg(), RankNetVariant::Oracle, 40);
    let test = race_ctx(68);

    let batched = ForecastEngine::new(&model, 5).with_threads(1);
    assert_eq!(batched.backend(), DecodeBackend::Batched);
    let per_row = ForecastEngine::new(&model, 5)
        .with_threads(1)
        .with_backend(DecodeBackend::PerRow);
    let tape = ForecastEngine::new(&model, 5)
        .with_threads(1)
        .with_backend(DecodeBackend::Tape);

    let fb = batched.forecast(&test, 90, 2, 8);
    let fp = per_row.forecast(&test, 90, 2, 8);
    let ft = tape.forecast(&test, 90, 2, 8);
    assert_eq!(bits(&fp), bits(&ft), "reference backends must stay bitwise");
    let worst = max_diff(&fp, &fb);
    assert!(
        worst <= RANK_TOL,
        "batched and reference engine backends diverged by {worst} (bound {RANK_TOL})"
    );
}

#[test]
fn engine_folded_batch_matches_solo_calls_bitwise() {
    // forecast_batch_entries folds distinct requests into one lock-step
    // decode under the batched backend; each response must be bit-identical
    // to a fresh solo call (what keeps serving coalescing response-neutral).
    let train = vec![race_ctx(69)];
    let (model, _) = RankNet::fit(train.clone(), train, tiny_cfg(), RankNetVariant::Oracle, 40);
    let r0 = race_ctx(70);
    let r1 = race_ctx(71);

    let engine = ForecastEngine::new(&model, 9).with_threads(2);
    let requests = [
        ForecastRequest {
            race: 0,
            origin: 60,
            horizon: 2,
            n_samples: 5,
        },
        ForecastRequest {
            race: 1,
            origin: 75,
            horizon: 3,
            n_samples: 4,
        },
        ForecastRequest {
            race: 0,
            origin: 60,
            horizon: 2,
            n_samples: 5,
        },
        ForecastRequest {
            race: 9,
            origin: 1,
            horizon: 1,
            n_samples: 1,
        },
    ];
    let out = engine.forecast_batch_entries(&[&r0, &r1], &requests);
    assert_eq!(out.len(), 4);
    assert!(
        out[3].is_err(),
        "bad race index must stay a per-entry error"
    );

    let solo = ForecastEngine::new(&model, 9).with_threads(2);
    for (req, got) in requests.iter().take(3).zip(&out) {
        let ctx = if req.race == 0 { &r0 } else { &r1 };
        let want = solo.forecast_keyed(req.race, ctx, req.origin, req.horizon, req.n_samples);
        let got = got.as_ref().map(|f| bits(&f.samples)).unwrap_or_default();
        assert_eq!(
            got,
            bits(&want),
            "folded batch entry diverged from the solo call"
        );
    }
}
