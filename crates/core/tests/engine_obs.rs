//! Integration tests for the engine's observability surface: the phase
//! counters live on the shared `rpf_obs::Registry`, the span tracer
//! attributes wall time to the encode/covariates/decode phases, and the
//! whole thing rolls up into one `MetricsSnapshot` that merges cleanly
//! with snapshots from the other layers. Tracing must also stay off by
//! default — the hot path pays one relaxed load when it is.

use ranknet_core::engine::ForecastEngine;
use ranknet_core::features::{extract_sequences, RaceContext};
use ranknet_core::ranknet::{RankNet, RankNetVariant};
use ranknet_core::RankNetConfig;
use rpf_racesim::{simulate_race, Event, EventConfig};

fn race_ctx(seed: u64) -> RaceContext {
    extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2017),
        seed,
    ))
}

fn tiny_model() -> (RankNet, RaceContext) {
    let mut cfg = RankNetConfig::tiny();
    cfg.max_epochs = 1;
    let train = vec![race_ctx(301)];
    let (model, _) = RankNet::fit(train.clone(), train, cfg, RankNetVariant::Oracle, 40);
    (model, race_ctx(302))
}

fn counter(snap: &rpf_obs::MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("missing counter {name}"))
        .value
}

#[test]
fn obs_snapshot_mirrors_the_phase_timings() {
    let (model, ctx) = tiny_model();
    let engine = ForecastEngine::new(&model, 7).with_threads(1);

    let _ = engine.forecast(&ctx, 60, 2, 4);
    let _ = engine.forecast(&ctx, 60, 2, 4); // same origin: encoder reuse

    let t = engine.timings();
    let snap = engine.obs_snapshot();
    assert_eq!(counter(&snap, "engine_calls"), t.calls);
    assert_eq!(counter(&snap, "engine_calls"), 2);
    assert_eq!(counter(&snap, "engine_encoder_reuses"), t.encoder_reuses);
    assert_eq!(counter(&snap, "engine_trajectories"), t.trajectories);
    assert_eq!(
        counter(&snap, "engine_encode_ns"),
        t.encode.as_nanos() as u64
    );
    assert_eq!(
        counter(&snap, "engine_decode_ns"),
        t.decode.as_nanos() as u64
    );
    assert!(
        t.decode > std::time::Duration::ZERO,
        "decode phase must accumulate time"
    );
}

#[test]
fn tracing_is_off_by_default_and_captures_phase_spans_when_enabled() {
    let (model, ctx) = tiny_model();
    let engine = ForecastEngine::new(&model, 7).with_threads(1);

    let _ = engine.forecast(&ctx, 60, 1, 2);
    assert!(
        engine.tracer().totals().is_empty(),
        "no spans may be recorded while tracing is disabled"
    );

    engine.set_tracing(true);
    let _ = engine.forecast(&ctx, 61, 1, 2);
    let snap = engine.obs_snapshot();
    let span = |name: &str| {
        snap.spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing span {name}"))
    };
    assert_eq!(span("engine_encode").count, 1);
    assert_eq!(span("engine_covariates").count, 1);
    assert_eq!(span("engine_decode").count, 1);
    assert!(span("engine_decode").total_ns > 0);

    // The span clock and the counter clock measure the same phases; they
    // won't agree to the nanosecond but must agree on the story. The
    // counters cover both calls while the spans cover only the traced one,
    // so the counter side is the upper bound.
    let t = engine.timings();
    assert!(span("engine_decode").total_ns <= t.decode.as_nanos() as u64);
}

#[test]
fn reset_timings_clears_counters_and_spans_together() {
    let (model, ctx) = tiny_model();
    let engine = ForecastEngine::new(&model, 7).with_threads(1);
    engine.set_tracing(true);
    let _ = engine.forecast(&ctx, 60, 1, 2);

    engine.reset_timings();
    let snap = engine.obs_snapshot();
    assert_eq!(counter(&snap, "engine_calls"), 0);
    assert_eq!(counter(&snap, "engine_decode_ns"), 0);
    assert!(snap.spans.is_empty(), "reset must clear span totals too");
}

/// The one-snapshot-across-layers contract from DESIGN.md §12: an engine
/// snapshot merges with a foreign snapshot without losing either side.
#[test]
fn engine_snapshot_merges_with_other_layers() {
    let (model, ctx) = tiny_model();
    let engine = ForecastEngine::new(&model, 7).with_threads(1);
    let _ = engine.forecast(&ctx, 60, 1, 2);

    let other = {
        let registry = rpf_obs::Registry::new();
        registry.counter("train_epochs").add(3);
        registry.snapshot()
    };
    let mut unified = engine.obs_snapshot();
    unified.merge(&other);
    assert_eq!(counter(&unified, "engine_calls"), 1);
    assert_eq!(counter(&unified, "train_epochs"), 3);

    // Merging the engine snapshot into itself doubles the counters —
    // merge adds, it does not dedup.
    let snap = engine.obs_snapshot();
    let mut doubled = snap.clone();
    doubled.merge(&snap);
    assert_eq!(counter(&doubled, "engine_calls"), 2);
}
