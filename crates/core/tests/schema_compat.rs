//! Feature-schema backward compatibility: artifacts stored before the
//! scenario covariates existed (persist format v2, no
//! `use_scenario_features` in the config) must keep loading and serving —
//! both through `RankNet::from_saved` and through a versioned
//! [`ModelStore`] directory on disk.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ranknet_core::persist::{SavedRankNet, FORMAT_VERSION, MIN_FORMAT_VERSION};
use ranknet_core::{
    extract_sequences, Manifest, ModelStore, RaceContext, RankNet, RankNetConfig, RankNetVariant,
};
use rpf_racesim::{simulate_race, Event, EventConfig};

/// FNV-1a over raw bytes — mirrors the store's manifest checksum so the
/// test can hand-publish a v2-era artifact directory.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn trained_mlp() -> (RankNet, RaceContext) {
    let ctx = extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2016),
        3,
    ));
    let mut cfg = RankNetConfig::tiny();
    cfg.max_epochs = 1;
    let (model, _) = RankNet::fit(
        vec![ctx.clone()],
        vec![ctx.clone()],
        cfg,
        RankNetVariant::Mlp,
        40,
    );
    (model, ctx)
}

/// Rewrite a current-format snapshot into the exact JSON a v2-era build
/// would have written: version 2, no `use_scenario_features` key.
fn v2_json(model: &RankNet) -> String {
    let json = serde_json::to_string(&model.to_saved()).unwrap();
    let v2 = json
        .replace(
            &format!("\"version\":{FORMAT_VERSION}"),
            &format!("\"version\":{MIN_FORMAT_VERSION}"),
        )
        .replace("\"use_scenario_features\":false,", "")
        .replace(",\"use_scenario_features\":false", "");
    assert_ne!(json, v2, "rewrite must actually change the payload");
    v2
}

#[test]
fn v2_file_loads_through_the_persist_path() {
    let (model, ctx) = trained_mlp();
    let dir = std::env::temp_dir().join("rpf_schema_compat_file");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model_v2.json");
    std::fs::write(&path, v2_json(&model)).unwrap();

    let loaded = RankNet::load(&path).unwrap();
    let mut rng1 = StdRng::seed_from_u64(11);
    let mut rng2 = StdRng::seed_from_u64(11);
    assert_eq!(
        model.forecast(&ctx, 50, 2, 3, &mut rng1),
        loaded.forecast(&ctx, 50, 2, 3, &mut rng2),
        "v2 file must forecast bit-identically"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn v2_artifact_serves_from_a_model_store() {
    let (model, ctx) = trained_mlp();
    let root = std::env::temp_dir().join(format!("rpf_schema_compat_store_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();

    // Hand-publish a v2-era version directory: model.json first, then the
    // committing manifest — the layout an old build left behind.
    let vdir = root.join("versions").join("v000001");
    std::fs::create_dir_all(&vdir).unwrap();
    let bytes = v2_json(&model).into_bytes();
    std::fs::write(vdir.join("model.json"), &bytes).unwrap();
    let manifest = Manifest {
        format: 1,
        version: 1,
        checksum: fnv1a(&bytes),
        bytes: bytes.len() as u64,
        parent: None,
        note: "pre-scenario artifact".to_string(),
    };
    std::fs::write(
        vdir.join("manifest.json"),
        serde_json::to_string(&manifest).unwrap(),
    )
    .unwrap();

    let store = ModelStore::open(&root).unwrap();
    let (loaded, m) = store.load(1).unwrap();
    assert_eq!(m.version, 1);
    assert!(!loaded.cfg.use_scenario_features);
    let mut rng1 = StdRng::seed_from_u64(13);
    let mut rng2 = StdRng::seed_from_u64(13);
    assert_eq!(
        model.forecast(&ctx, 50, 2, 3, &mut rng1),
        loaded.forecast(&ctx, 50, 2, 3, &mut rng2),
        "store-served v2 artifact must forecast bit-identically"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn future_versions_are_still_rejected() {
    let (model, _) = trained_mlp();
    let mut saved: SavedRankNet =
        serde_json::from_str(&serde_json::to_string(&model.to_saved()).unwrap()).unwrap();
    saved.version = FORMAT_VERSION + 1;
    let err = RankNet::from_saved(&saved).err().expect("must fail");
    assert!(err.contains("version"), "got: {err}");
}
