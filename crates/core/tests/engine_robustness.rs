//! Serving-side robustness: invalid requests come back as typed
//! [`EngineError`]s (never a panic or an index-out-of-bounds abort), and a
//! property test pins that every served forecast is finite and within the
//! physical rank range.

use proptest::prelude::*;
use ranknet_core::features::extract_sequences;
use ranknet_core::ranknet::ranks_by_sorting;
use ranknet_core::{
    EngineError, ForecastEngine, ForecastRequest, RaceContext, RankNet, RankNetConfig,
    RankNetVariant,
};
use rpf_racesim::{simulate_race, Event, EventConfig};
use std::sync::OnceLock;

fn fixture() -> &'static (RankNet, RaceContext) {
    static FIXTURE: OnceLock<(RankNet, RaceContext)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ctx = extract_sequences(&simulate_race(
            &EventConfig::for_race(Event::Indy500, 2016),
            11,
        ));
        let mut cfg = RankNetConfig::tiny();
        cfg.max_epochs = 1;
        let (model, _) = RankNet::fit(
            vec![ctx.clone()],
            vec![ctx.clone()],
            cfg,
            RankNetVariant::Oracle,
            40,
        );
        (model, ctx)
    })
}

#[test]
fn out_of_range_race_is_a_typed_error_not_a_panic() {
    let (model, ctx) = fixture();
    let engine = ForecastEngine::new(model, 1);
    let err = engine
        .try_forecast_batch(
            &[ctx],
            &[ForecastRequest {
                race: 3, // only one context supplied
                origin: 50,
                horizon: 2,
                n_samples: 2,
            }],
        )
        .expect_err("must reject");
    assert_eq!(
        err,
        EngineError::RaceOutOfRange {
            race: 3,
            n_contexts: 1
        }
    );
    assert_eq!(engine.timings().rejected_requests, 1);
}

#[test]
fn degenerate_request_parameters_are_rejected() {
    let (model, ctx) = fixture();
    let engine = ForecastEngine::new(model, 1);
    assert_eq!(
        engine.try_forecast(ctx, 0, 2, 2).err(),
        Some(EngineError::BadOrigin { origin: 0 })
    );
    assert_eq!(
        engine.try_forecast(ctx, 50, 0, 2).err(),
        Some(EngineError::BadHorizon)
    );
    assert_eq!(
        engine.try_forecast(ctx, 50, 2, 0).err(),
        Some(EngineError::BadSampleCount)
    );
    assert_eq!(engine.timings().rejected_requests, 3);
    assert_eq!(
        engine.timings().calls,
        0,
        "rejections never reach the model"
    );
}

#[test]
fn non_finite_history_is_rejected_before_the_model_runs() {
    let (model, ctx) = fixture();
    let mut bad = ctx.clone();
    bad.sequences[2].lap_time[7] = f32::NAN;
    let engine = ForecastEngine::new(model, 1);
    let err = engine.try_forecast(&bad, 50, 2, 2).expect_err("reject");
    assert_eq!(err, EngineError::NonFiniteFeature { car: 2, lap: 7 });

    // The same lap *after* the origin is not consumed and must not reject.
    let mut late = ctx.clone();
    let last = late.sequences[2].len() - 1;
    late.sequences[2].lap_time[last] = f32::NAN;
    assert!(engine.try_forecast(&late, 10, 2, 2).is_ok());
}

#[test]
fn batch_is_validated_before_any_work_runs() {
    let (model, ctx) = fixture();
    let engine = ForecastEngine::new(model, 1);
    // First request is fine, second is bad: nothing may be served.
    let reqs = [
        ForecastRequest {
            race: 0,
            origin: 50,
            horizon: 2,
            n_samples: 2,
        },
        ForecastRequest {
            race: 0,
            origin: 0,
            horizon: 2,
            n_samples: 2,
        },
    ];
    assert!(engine.try_forecast_batch(&[ctx], &reqs).is_err());
    assert_eq!(engine.timings().calls, 0);
}

#[test]
#[should_panic(expected = "race index")]
fn legacy_batch_api_panics_with_the_typed_message() {
    let (model, ctx) = fixture();
    let engine = ForecastEngine::new(model, 1);
    let _ = engine.forecast_batch(
        &[ctx],
        &[ForecastRequest {
            race: 9,
            origin: 50,
            horizon: 2,
            n_samples: 1,
        }],
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every served forecast is finite and within the physical rank range
    /// `[0.5, field_size + 0.5]` (the decoder's clamp), and sorting yields
    /// positions within `[1, active cars]` — for any valid request.
    #[test]
    fn served_forecasts_are_finite_and_in_range(
        origin in 1usize..120,
        horizon in 1usize..4,
        n_samples in 1usize..5,
        seed in 0u64..4,
    ) {
        let (model, ctx) = fixture();
        let engine = ForecastEngine::new(model, seed);
        let out = engine.try_forecast(ctx, origin, horizon, n_samples);
        let out = out.expect("valid request must be served");
        prop_assert!(!out.degraded, "healthy model must not degrade");
        let hi = ctx.field_size as f32 + 0.5;
        for per_car in &out.samples {
            for path in per_car {
                prop_assert_eq!(path.len(), horizon);
                for &v in path {
                    prop_assert!(v.is_finite(), "sample {} not finite", v);
                    prop_assert!((0.5..=hi).contains(&v), "sample {} out of range", v);
                }
            }
        }
        let active = out.samples.iter().filter(|s| !s.is_empty()).count();
        let ranked = ranks_by_sorting(&out.samples, horizon - 1);
        for car in ranked.iter().filter(|r| !r.is_empty()) {
            for &pos in car {
                prop_assert!(pos >= 1.0 && pos <= active as f32);
            }
        }
    }
}
