//! Versioned model-artifact store (DESIGN.md §14): atomic publication,
//! checksummed round-trips, torn-artifact recovery, quarantine semantics,
//! and monotone version ids that survive quarantines. Everything here runs
//! without the fault-inject feature — torn and corrupt artifacts are built
//! by hand, exactly as a crash or bit rot would leave them.

use ranknet_core::engine::ForecastEngine;
use ranknet_core::features::{extract_sequences, RaceContext};
use ranknet_core::lifecycle::{LifecycleError, ModelStore};
use ranknet_core::ranknet::{RankNet, RankNetVariant};
use ranknet_core::RankNetConfig;
use rpf_racesim::{simulate_race, Event, EventConfig};
use std::path::PathBuf;
use std::sync::OnceLock;

fn race_ctx(seed: u64) -> RaceContext {
    extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2017),
        seed,
    ))
}

fn fixture() -> &'static (RankNet, RaceContext) {
    static FIX: OnceLock<(RankNet, RaceContext)> = OnceLock::new();
    FIX.get_or_init(|| {
        let cfg = RankNetConfig {
            max_epochs: 1,
            ..RankNetConfig::tiny()
        };
        let train = vec![race_ctx(201)];
        let (model, _) = RankNet::fit(train.clone(), train, cfg, RankNetVariant::Oracle, 42);
        (model, race_ctx(202))
    })
}

fn store_root(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rpf_lifecycle_store_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Forecast bits on a fixed request — the round-trip oracle: two models
/// with identical weights must produce identical bits.
fn forecast_bits(model: &RankNet) -> Vec<u32> {
    let (_, ctx) = fixture();
    let engine = ForecastEngine::new(model, 9).with_threads(1);
    let f = engine
        .try_forecast_keyed(0, ctx, 60, 2, 3)
        .expect("valid request");
    f.samples
        .iter()
        .flat_map(|car| car.iter().flat_map(|path| path.iter().map(|v| v.to_bits())))
        .collect()
}

#[test]
fn publish_load_round_trip_is_bit_exact() {
    let (model, _) = fixture();
    let root = store_root("round_trip");
    let store = ModelStore::open(&root).expect("store opens");

    let manifest = store.publish(model, None, "baseline").expect("publish");
    assert_eq!(manifest.version, 1);
    assert_eq!(manifest.parent, None);
    assert!(manifest.bytes > 0);

    let (loaded, loaded_manifest) = store.load(manifest.version).expect("load");
    assert_eq!(loaded_manifest.checksum, manifest.checksum);
    assert_eq!(forecast_bits(&loaded), forecast_bits(model));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn version_ids_are_monotone_and_never_reused_after_quarantine() {
    let (model, _) = fixture();
    let root = store_root("monotone");
    let store = ModelStore::open(&root).expect("store opens");

    let v1 = store.publish(model, None, "one").expect("publish").version;
    let v2 = store
        .publish(model, Some(v1), "two")
        .expect("publish")
        .version;
    assert_eq!((v1, v2), (1, 2));

    store.quarantine(v2, "test").expect("quarantine");
    assert_eq!(store.versions().expect("readable"), vec![v1]);
    // The quarantined id is burnt: the next publish must skip past it.
    let v3 = store
        .publish(model, Some(v1), "three")
        .expect("publish")
        .version;
    assert_eq!(v3, 3, "ids in quarantine must still count");
    assert_eq!(store.latest().expect("readable"), Some(v3));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn current_pointer_follows_promotions_and_clears_on_quarantine() {
    let (model, _) = fixture();
    let root = store_root("current");
    let store = ModelStore::open(&root).expect("store opens");

    assert_eq!(store.current().expect("readable"), None);
    assert!(matches!(
        store.set_current(7),
        Err(LifecycleError::NotFound(7))
    ));

    let v1 = store.publish(model, None, "one").expect("publish").version;
    store.set_current(v1).expect("promote");
    assert_eq!(store.current().expect("readable"), Some(v1));
    let (loaded, m) = store.load_current().expect("load current");
    assert_eq!(m.version, v1);
    assert_eq!(forecast_bits(&loaded), forecast_bits(model));

    // Quarantining the current version must clear the pointer — a store
    // must never point at an artifact that cannot be loaded.
    store.quarantine(v1, "suspect").expect("quarantine");
    assert_eq!(store.current().expect("readable"), None);
    assert!(store.load_current().is_err());
    let _ = std::fs::remove_dir_all(&root);
}

/// A torn artifact — model bytes on disk, no committed manifest, exactly
/// what a crash between the two writes leaves — is swept to quarantine on
/// the next open and can never be loaded or promoted.
#[test]
fn torn_artifact_is_swept_to_quarantine_on_open() {
    let (model, _) = fixture();
    let root = store_root("torn");
    let store = ModelStore::open(&root).expect("store opens");
    let v1 = store.publish(model, None, "good").expect("publish").version;

    // Hand-build the torn directory the crash would leave behind.
    let torn_dir = root.join("versions").join("v000002");
    std::fs::create_dir_all(&torn_dir).expect("mkdir");
    std::fs::write(torn_dir.join("model.json"), b"{\"partial\":").expect("write");

    assert!(matches!(
        store.set_current(2),
        Err(LifecycleError::Torn { version: 2 })
    ));

    let store = ModelStore::open(&root).expect("reopen sweeps");
    assert_eq!(store.versions().expect("readable"), vec![v1]);
    let quarantined = store.quarantined().expect("readable");
    assert!(
        quarantined.iter().any(|q| q.starts_with("v000002-torn")),
        "sweep must quarantine the torn artifact, saw {quarantined:?}"
    );
    assert!(matches!(store.load(2), Err(LifecycleError::NotFound(2))));
    // The good neighbour is untouched.
    assert!(store.load(v1).is_ok());
    let _ = std::fs::remove_dir_all(&root);
}

/// Checksum mismatch (bit rot after commit): load refuses the artifact,
/// quarantines it, and a second load reports NotFound — the corrupt bytes
/// are hit at most once.
#[test]
fn checksum_mismatch_quarantines_the_artifact() {
    let (model, _) = fixture();
    let root = store_root("corrupt");
    let store = ModelStore::open(&root).expect("store opens");
    let v1 = store.publish(model, None, "good").expect("publish").version;

    let artifact = root.join("versions").join("v000001").join("model.json");
    let mut bytes = std::fs::read(&artifact).expect("readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&artifact, &bytes).expect("writable");

    match store.load(v1) {
        Err(LifecycleError::Corrupt { version, .. }) => assert_eq!(version, v1),
        Err(other) => panic!("expected corrupt, got {other:?}"),
        Ok(_) => panic!("corrupt artifact must not load"),
    }
    let quarantined = store.quarantined().expect("readable");
    assert!(
        quarantined.iter().any(|q| q.starts_with("v000001-corrupt")),
        "corrupt artifact must be quarantined, saw {quarantined:?}"
    );
    assert!(matches!(store.load(v1), Err(LifecycleError::NotFound(_))));
    let _ = std::fs::remove_dir_all(&root);
}

/// Quarantine name collisions get a numeric suffix instead of clobbering
/// the earlier post-mortem evidence.
#[test]
fn quarantine_keeps_colliding_post_mortems_apart() {
    let root = store_root("collide");
    let store = ModelStore::open(&root).expect("store opens");

    for _ in 0..2 {
        // Hand-build version dir 1 (twice) so the same (version, reason)
        // pair collides in quarantine.
        let dir = root.join("versions").join("v000001");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("model.json"), b"x").expect("write");
        store.quarantine(1, "bad").expect("quarantine");
    }
    let quarantined = store.quarantined().expect("readable");
    assert_eq!(
        quarantined,
        vec!["v000001-bad".to_string(), "v000001-bad-1".to_string()]
    );
    let _ = std::fs::remove_dir_all(&root);
}
