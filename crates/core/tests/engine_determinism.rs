//! The equivalence harness pinning the parallel forecast engine: a forecast
//! is a pure function of `(model, race, origin, horizon, n_samples, seed)`,
//! and the decoder thread count is pure scheduling. Every test here compares
//! f32 *bit patterns*, not tolerances — "close enough" would hide exactly
//! the schedule-dependence these tests exist to forbid.

use ranknet_core::engine::{ForecastEngine, ForecastRequest};
use ranknet_core::features::{extract_sequences, RaceContext};
use ranknet_core::instances::TrainingSet;
use ranknet_core::rank_model::{oracle_covariates, ForecastSamples, RankModel, TargetKind};
use ranknet_core::ranknet::{RankNet, RankNetVariant};
use ranknet_core::{DecodeBackend, RankNetConfig};
use rpf_nn::RngStreams;
use rpf_racesim::{simulate_race, Event, EventConfig};

fn race_ctx(seed: u64) -> RaceContext {
    extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2017),
        seed,
    ))
}

fn tiny_cfg() -> RankNetConfig {
    let mut cfg = RankNetConfig::tiny();
    cfg.max_epochs = 1;
    cfg
}

/// Flatten samples to bit patterns so comparisons are exact.
fn bits(samples: &ForecastSamples) -> Vec<u32> {
    samples
        .iter()
        .flat_map(|car| car.iter().flat_map(|path| path.iter().map(|v| v.to_bits())))
        .collect()
}

#[test]
fn decode_is_bit_identical_across_thread_counts() {
    let ctx = race_ctx(11);
    let cfg = tiny_cfg();
    let ts = TrainingSet::build(vec![ctx.clone()], &cfg, 24);
    let mut model = RankModel::new(cfg.clone(), TargetKind::RankOnly, ts.max_car_id);
    let _ = model.train(&ts, &ts);

    let origin = 80;
    let horizon = 3;
    let n_samples = 7;
    let cov = oracle_covariates(&ctx, origin, horizon, cfg.prediction_len);
    let enc = model.encode(&ctx, origin);
    let streams = RngStreams::new(0xDECAF);

    let seq = model.decode(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, 1);
    for threads in [2, 4, 13] {
        let par = model.decode(
            &ctx, &cov, origin, horizon, n_samples, &enc, &streams, threads,
        );
        assert_eq!(
            bits(&seq),
            bits(&par),
            "decode with {threads} threads must replay the sequential draws"
        );
    }
}

#[test]
fn runtime_decode_matches_tape_reference_across_thread_counts() {
    // The serving path runs tape-free; the training-graph decode survives as
    // `decode_tape`. The two must agree bit-for-bit, at every thread count.
    let ctx = race_ctx(51);
    let cfg = tiny_cfg();
    let ts = TrainingSet::build(vec![ctx.clone()], &cfg, 24);
    let mut model = RankModel::new(cfg.clone(), TargetKind::RankOnly, ts.max_car_id);
    let _ = model.train(&ts, &ts);

    let origin = 80;
    let horizon = 3;
    let n_samples = 6;
    let cov = oracle_covariates(&ctx, origin, horizon, cfg.prediction_len);
    let enc = model.encode(&ctx, origin);
    let streams = RngStreams::new(0xBEEF);

    let reference = model.decode_tape(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, 1);
    assert!(!bits(&reference).is_empty());
    for threads in [1, 2, 8] {
        let got = model.decode(
            &ctx, &cov, origin, horizon, n_samples, &enc, &streams, threads,
        );
        assert_eq!(
            bits(&reference),
            bits(&got),
            "tape-free decode with {threads} threads must match the tape reference"
        );
    }
    // The tape backend is itself thread invariant, so either backend at any
    // thread count yields the same forecast.
    let tape_par = model.decode_tape(&ctx, &cov, origin, horizon, n_samples, &enc, &streams, 8);
    assert_eq!(bits(&reference), bits(&tape_par));
}

#[test]
fn mlp_forecast_seeded_is_thread_invariant_and_seed_sensitive() {
    // The MLP variant exercises both parallel layers: covariate-future
    // groups and decoder row chunks.
    let train = vec![race_ctx(21)];
    let (model, _) = RankNet::fit(train.clone(), train, tiny_cfg(), RankNetVariant::Mlp, 40);

    let test = race_ctx(22);
    let a = model.forecast_seeded(&test, 70, 2, 10, 99, 1);
    let b = model.forecast_seeded(&test, 70, 2, 10, 99, 6);
    assert_eq!(bits(&a), bits(&b), "thread count leaked into the samples");

    let c = model.forecast_seeded(&test, 70, 2, 10, 100, 1);
    assert_ne!(
        bits(&a),
        bits(&c),
        "different seeds must give different draws"
    );
}

#[test]
fn engine_matches_seeded_path_reuses_encoder_and_counts_phases() {
    let train = vec![race_ctx(31)];
    let (model, _) = RankNet::fit(train.clone(), train, tiny_cfg(), RankNetVariant::Oracle, 40);
    let test = race_ctx(32);

    let seq_engine = ForecastEngine::new(&model, 5).with_threads(1);
    let par_engine = ForecastEngine::new(&model, 5).with_threads(4);
    let a = seq_engine.forecast(&test, 90, 2, 8);
    let b = par_engine.forecast(&test, 90, 2, 8);
    assert_eq!(
        bits(&a),
        bits(&b),
        "engine forecasts must be thread invariant"
    );

    // Same (race, origin) again: the encoder state must come from cache and
    // the samples must replay (common random numbers).
    let c = par_engine.forecast(&test, 90, 2, 8);
    assert_eq!(bits(&b), bits(&c));
    let t = par_engine.timings();
    assert_eq!(t.calls, 2);
    assert_eq!(t.encoder_reuses, 1);
    assert!(t.trajectories > 0);
    assert!(
        t.decode > std::time::Duration::ZERO,
        "decode phase must be timed"
    );

    // A different origin is a cache miss with fresh, different draws.
    let d = par_engine.forecast(&test, 91, 2, 8);
    assert_ne!(bits(&c), bits(&d));
    assert_eq!(par_engine.timings().encoder_reuses, 1);
}

#[test]
fn every_backend_is_thread_invariant() {
    // Each decode backend must produce bit-identical samples at 1, 2 and 8
    // decoder threads — including the batched backend, whose lock-step
    // rows are chunked across workers (row independence keeps the bits).
    let train = vec![race_ctx(33)];
    let (model, _) = RankNet::fit(train.clone(), train, tiny_cfg(), RankNetVariant::Oracle, 40);
    let test = race_ctx(34);

    for backend in [
        DecodeBackend::Tape,
        DecodeBackend::PerRow,
        DecodeBackend::Batched,
    ] {
        let base = ForecastEngine::new(&model, 5)
            .with_threads(1)
            .with_backend(backend);
        let want = base.forecast(&test, 85, 2, 8);
        for threads in [2, 8] {
            let engine = ForecastEngine::new(&model, 5)
                .with_threads(threads)
                .with_backend(backend);
            let got = engine.forecast(&test, 85, 2, 8);
            assert_eq!(
                bits(&want),
                bits(&got),
                "{backend:?} backend with {threads} threads changed the samples"
            );
        }
    }
}

#[test]
fn engine_batch_matches_individual_calls() {
    let train = vec![race_ctx(41)];
    let (model, _) = RankNet::fit(train.clone(), train, tiny_cfg(), RankNetVariant::Oracle, 40);
    let r0 = race_ctx(42);
    let r1 = race_ctx(43);

    let engine = ForecastEngine::new(&model, 7).with_threads(2);
    let requests = [
        ForecastRequest {
            race: 0,
            origin: 60,
            horizon: 2,
            n_samples: 5,
        },
        ForecastRequest {
            race: 1,
            origin: 75,
            horizon: 3,
            n_samples: 4,
        },
        ForecastRequest {
            race: 0,
            origin: 60,
            horizon: 2,
            n_samples: 5,
        },
    ];
    let batch = engine.forecast_batch(&[&r0, &r1], &requests);
    assert_eq!(batch.len(), 3);
    assert_eq!(
        bits(&batch[0]),
        bits(&batch[2]),
        "identical requests must agree"
    );
    assert_eq!(engine.timings().encoder_reuses, 1);

    // Batched and one-at-a-time execution agree: seeds derive from request
    // identity, not call order.
    let fresh = ForecastEngine::new(&model, 7).with_threads(2);
    let solo = fresh.forecast_keyed(1, &r1, 75, 3, 4);
    assert_eq!(bits(&batch[1]), bits(&solo));
}
