//! Checkpoint corruption matrix: a truncated, bit-flipped or tampered
//! model/training checkpoint must come back as a clean `Err` — never a
//! panic, never a silently-wrong model (DESIGN.md §9).

use ranknet_core::features::extract_sequences;
use ranknet_core::instances::TrainingSet;
use ranknet_core::persist::{load_train_checkpoint, save_train_checkpoint};
use ranknet_core::rank_model::{RankModel, TargetKind};
use ranknet_core::{RankNet, RankNetConfig, RankNetVariant};
use rpf_racesim::{simulate_race, Event, EventConfig};
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ranknet_corruption_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn trained_model() -> RankNet {
    let ctx = extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2016),
        3,
    ));
    let mut cfg = RankNetConfig::tiny();
    cfg.max_epochs = 1;
    RankNet::fit(
        vec![ctx.clone()],
        vec![ctx],
        cfg,
        RankNetVariant::Oracle,
        40,
    )
    .0
}

/// Swap the first digit of the weight payload for a different digit: the
/// JSON stays parseable, but the content no longer matches its checksum.
fn corrupt_one_digit(path: &PathBuf) {
    let text = std::fs::read_to_string(path).expect("read checkpoint");
    let start = text.find("\"data\":[").expect("weight payload") + "\"data\":[".len();
    let rel = text[start..]
        .find(|c: char| c.is_ascii_digit())
        .expect("digit in payload");
    let mut bytes = text.into_bytes();
    let i = start + rel;
    bytes[i] = if bytes[i] == b'9' { b'1' } else { bytes[i] + 1 };
    std::fs::write(path, bytes).expect("write corrupted checkpoint");
}

#[test]
fn truncated_model_file_is_a_clean_error() {
    let model = trained_model();
    let path = temp_path("model_truncated.json");
    model.save(&path).expect("save");
    let len = std::fs::metadata(&path).expect("metadata").len();

    // A torn write: keep only the first half of the bytes.
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("open");
    f.set_len(len / 2).expect("truncate");
    drop(f);

    let err = RankNet::load(&path).err().expect("load must fail");
    assert!(!err.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn bit_flipped_model_file_is_a_clean_error() {
    let model = trained_model();
    let path = temp_path("model_bitflip.json");
    model.save(&path).expect("save");
    corrupt_one_digit(&path);

    let err = RankNet::load(&path).err().expect("load must fail");
    assert!(
        err.contains("checksum") || err.contains("expected"),
        "corruption must surface as checksum/parse error, got: {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn non_finite_weights_are_rejected() {
    let model = trained_model();
    let mut saved = model.to_saved();
    saved.rank_weights[0].1.as_mut_slice()[0] = f32::NAN;
    // Refresh the checksum so the non-finite check itself is what fires.
    saved.checksum = saved.content_checksum();
    let err = RankNet::from_saved(&saved).err().expect("must fail");
    assert!(err.contains("non-finite"), "got: {err}");
}

fn checkpointed_training() -> (RankModel, TrainingSet, PathBuf) {
    let ctx = extract_sequences(&simulate_race(
        &EventConfig::for_race(Event::Indy500, 2016),
        7,
    ));
    let mut cfg = RankNetConfig::tiny();
    cfg.max_epochs = 1;
    let ts = TrainingSet::build(vec![ctx], &cfg, 40);
    let mut model = RankModel::new(cfg, TargetKind::RankOnly, 40);
    let path = temp_path(&format!("train_ckpt_{:x}.json", std::process::id()));
    std::fs::remove_file(&path).ok();
    model
        .train_checkpointed(&ts, &ts, &path, 1)
        .expect("checkpointed training");
    (model, ts, path)
}

#[test]
fn corrupted_training_checkpoint_is_a_clean_error() {
    let (_, _, path) = checkpointed_training();
    assert!(path.exists(), "training must have written a checkpoint");

    // Pristine file loads.
    let ckpt = load_train_checkpoint(&path).expect("pristine checkpoint loads");
    assert_eq!(ckpt.next_epoch, 1);

    // Bit-flip: clean checksum error.
    corrupt_one_digit(&path);
    let err = load_train_checkpoint(&path).expect_err("must fail");
    assert!(
        err.contains("checksum") || err.contains("expected"),
        "got: {err}"
    );

    // Truncation: clean parse error.
    save_train_checkpoint(&path, &ckpt).expect("rewrite");
    let len = std::fs::metadata(&path).expect("metadata").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("open");
    f.set_len(len / 3).expect("truncate");
    drop(f);
    assert!(load_train_checkpoint(&path).is_err());

    // Missing file: clean IO error.
    std::fs::remove_file(&path).ok();
    assert!(load_train_checkpoint(&path).is_err());
}

#[test]
fn tampered_training_checkpoint_checksum_is_rejected() {
    let (_, _, path) = checkpointed_training();
    let ckpt = load_train_checkpoint(&path).expect("load");

    let mut saved = ranknet_core::persist::SavedTrainCheckpoint::from_checkpoint(&ckpt);
    saved.samples_seen += 1; // mutate content, keep the stale checksum
    let err = saved.into_checkpoint().expect_err("must fail");
    assert!(err.contains("checksum"), "got: {err}");
    std::fs::remove_file(&path).ok();
}
