//! Regression: `PitModel` caches a tape-free serving runtime in a
//! `OnceLock` on first `predict`. Any weight mutation *after* that cache
//! is built — an `import` of other weights, a clone that later imports —
//! must rebuild the runtime, or serving silently keeps predicting with the
//! old weights. These tests pin the invalidation paths.

use ranknet_core::PitModel;

/// Two differently-seeded models disagree; after importing B's weights
/// into an A whose runtime cache is already warm, A must predict exactly
/// like B — the stale cache must be dropped.
#[test]
fn import_after_predict_rebuilds_the_serving_runtime() {
    let mut a = PitModel::new(3, 40.0);
    let b = PitModel::new(4, 40.0);

    let a_before = a.predict(2.0, 10.0); // warms A's runtime cache
    let b_fresh = b.predict(2.0, 10.0);
    assert_ne!(
        a_before, b_fresh,
        "differently-seeded models must disagree for this test to bite"
    );

    a.import(&b.export()).expect("matching architectures");
    assert_eq!(
        a.predict(2.0, 10.0),
        b_fresh,
        "predict after import must use the imported weights, not the cached runtime"
    );
}

/// A clone taken after the original's runtime cache was built must not
/// share it: importing into the clone changes only the clone, and the
/// original keeps its own weights.
#[test]
fn clone_does_not_share_the_cached_runtime() {
    let a = PitModel::new(5, 45.0);
    let b = PitModel::new(6, 45.0);

    let a_pred = a.predict(1.0, 8.0); // warms A's runtime cache
    let mut c = a.clone();
    assert_eq!(c.predict(1.0, 8.0), a_pred, "a clone starts bit-identical");

    c.import(&b.export()).expect("matching architectures");
    assert_eq!(
        c.predict(1.0, 8.0),
        b.predict(1.0, 8.0),
        "the clone must serve the imported weights"
    );
    assert_eq!(
        a.predict(1.0, 8.0),
        a_pred,
        "importing into the clone must not touch the original"
    );
}

/// Export taken *after* an import (with a warm cache in between) carries
/// the imported weights: a restored model predicts bit-identically to the
/// mutated source — the path every artifact publish exercises.
#[test]
fn export_after_import_round_trips_the_new_weights() {
    let mut a = PitModel::new(7, 40.0);
    let b = PitModel::new(8, 40.0);
    let _ = a.predict(3.0, 12.0); // warm cache before mutating
    a.import(&b.export()).expect("matching architectures");

    let mut restored = PitModel::new(7, 40.0);
    restored
        .import(&a.export())
        .expect("matching architectures");
    assert_eq!(restored.predict(3.0, 12.0), a.predict(3.0, 12.0));
    assert_eq!(restored.predict(3.0, 12.0), b.predict(3.0, 12.0));
}
